// Extension: the defender's view. MP scores the attacker; this bench
// reports detection precision / recall / false-positive rate of the
// P-scheme per attack archetype, and sweeps the mean-change thresholds to
// trace the detection/false-alarm trade-off (an ROC-style curve) — the
// evaluation a defense designer needs before deploying the pipeline.
#include <cstdio>

#include "bench_common.hpp"
#include "challenge/detection_quality.hpp"
#include "challenge/participants.hpp"

int main() {
  using namespace rab;
  bench::print_header(
      "Extension: P-scheme detection quality per attack archetype");

  const auto& challenge = bench::default_challenge();
  const challenge::ParticipantPopulation population(
      challenge, bench::kPopulationSeed);
  const aggregation::PScheme p;

  std::printf("# strategy,precision,recall,fpr,f1 (mean over 3 draws)\n");
  double naive_recall = 0.0;
  double smart_recall = 0.0;
  for (challenge::StrategyKind kind : challenge::all_strategies()) {
    challenge::DetectionCounts total;
    for (std::uint64_t stream = 0; stream < 3; ++stream) {
      const challenge::DetectionQuality quality =
          challenge::evaluate_detection(
              challenge, population.make(kind, stream), p);
      total += quality.overall;
    }
    std::printf("%s,%.3f,%.3f,%.4f,%.3f\n", to_string(kind),
                total.precision(), total.recall(),
                total.false_positive_rate(), total.f1());
    if (kind == challenge::StrategyKind::kNaiveExtreme) {
      naive_recall = total.recall();
    }
    if (kind == challenge::StrategyKind::kHighVariance) {
      smart_recall = total.recall();
    }
  }
  bench::shape_check(
      "naive extreme attacks are detected far more completely than "
      "high-variance attacks (the R3 evasion, defender's view)",
      naive_recall > smart_recall + 0.2);

  // ------------------------------------------------- threshold trade-off
  bench::print_header(
      "MC threshold sweep: detection vs false alarms (high-variance "
      "attack)");
  std::printf("# threshold1,recall,fpr\n");
  double last_fpr = -1.0;
  bool fpr_monotone = true;
  for (double threshold1 : {0.25, 0.4, 0.5, 0.7, 0.9}) {
    aggregation::PConfig config;
    config.detectors.mc.threshold1 = threshold1;
    config.detectors.mc.threshold2 = threshold1 * 0.6;
    const aggregation::PScheme scheme(config);
    challenge::DetectionCounts total;
    for (std::uint64_t stream = 0; stream < 3; ++stream) {
      total += challenge::evaluate_detection(
                   challenge,
                   population.make(challenge::StrategyKind::kHighVariance,
                                   stream),
                   scheme)
                   .overall;
    }
    std::printf("%.2f,%.3f,%.4f\n", threshold1, total.recall(),
                total.false_positive_rate());
    if (last_fpr >= 0.0 && total.false_positive_rate() > last_fpr + 1e-4) {
      fpr_monotone = false;
    }
    last_fpr = total.false_positive_rate();
  }
  bench::shape_check(
      "raising the mean-change thresholds lowers the false-positive rate "
      "(the detection/false-alarm trade-off the paper's Section IV-F "
      "integration is designed around)",
      fpr_monotone);
  return 0;
}
