// Columnar rating-store microbenches (google-benchmark): group-append
// throughput into the mmap-backed segment log, and the restart race the
// store exists to win — BM_StoreRestartVsReplay times resuming a
// million-rating monitor from mapped segments (checkpoint + zero-copy
// borrowed columns, O(open + mmap)) against the historic restart path
// (checkpoint + re-parsing the whole CSV feed to find the resume point).
// The mapped_bytes / resident_ratings counters show the store leg's memory
// staying bounded by the retention window rather than the feed length.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <span>
#include <vector>

#include "detectors/online_monitor.hpp"
#include "rating/dataset.hpp"
#include "rating/io.hpp"
#include "store/rating_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace rab;

constexpr std::size_t kRestartRatings = 1'000'000;
constexpr double kFeedDays = 2000.0;
constexpr std::int64_t kProducts = 100;

/// One million time-ordered ratings over ~2000 days and 100 products —
/// synthesized directly (the fair generator would dominate setup time at
/// this scale) so the bench measures storage, not data generation.
const std::vector<rating::Rating>& restart_feed() {
  static const std::vector<rating::Rating> feed = [] {
    std::vector<rating::Rating> rows;
    rows.reserve(kRestartRatings);
    Rng rng(20080417);
    const double dt = kFeedDays / static_cast<double>(kRestartRatings);
    for (std::size_t i = 0; i < kRestartRatings; ++i) {
      rating::Rating r;
      r.time = static_cast<double>(i) * dt;
      r.value = std::clamp(rng.gaussian(4.0, 0.6), 0.0, 5.0);
      r.product = ProductId(1 + rng.uniform_int(0, kProducts - 1));
      r.rater = RaterId(rng.uniform_int(0, 49'999));
      rows.push_back(r);
    }
    return rows;
  }();
  return feed;
}

/// Shared monitor configuration for both restart legs; only the storage
/// attachment differs.
detectors::OnlineConfig monitor_config() {
  detectors::OnlineConfig config;
  config.epoch_days = 30.0;
  config.retention_days = 90.0;
  return config;
}

/// One-time setup: the feed written as CSV, plus two fully-ingested
/// monitor states on disk — STRM checkpoints for the CSV-replay leg and a
/// segment store + SREF checkpoints for the mmap leg. Both end with an
/// explicit final checkpoint so each restart resumes the complete state
/// and the legs differ only in how the rating history comes back.
struct RestartSetup {
  std::filesystem::path root = "bench-store-scratch";
  std::string csv;
  std::string ck_plain;
  std::string ck_store;
  std::string store_dir;

  RestartSetup() {
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root);
    csv = (root / "feed.csv").string();
    ck_plain = (root / "ck-plain").string();
    ck_store = (root / "ck-store").string();
    store_dir = (root / "store").string();

    const std::vector<rating::Rating>& feed = restart_feed();
    const rating::Dataset data = rating::Dataset().with_added(feed);
    rating::write_csv_file(csv, data);

    {
      detectors::OnlineConfig config = monitor_config();
      config.checkpoint_dir = ck_plain;
      detectors::OnlineMonitor monitor(config);
      monitor.ingest(std::span<const rating::Rating>(feed));
      monitor.flush();
      monitor.checkpoint_now();
    }
    {
      detectors::OnlineConfig config = monitor_config();
      config.checkpoint_dir = ck_store;
      config.store_dir = store_dir;
      detectors::OnlineMonitor monitor(config);
      monitor.ingest(std::span<const rating::Rating>(feed));
      monitor.flush();
      monitor.checkpoint_now();
    }
  }

  ~RestartSetup() { std::filesystem::remove_all(root); }
};

const RestartSetup& restart_setup() {
  static const RestartSetup setup;
  return setup;
}

/// Arg 0: store leg — open + mmap the segment log, restore the SREF
/// checkpoint over borrowed columns, binary-replay the (empty) tail.
/// Arg 1: replay leg — restore the STRM checkpoint, then re-parse the CSV
/// feed and skip the already-ingested prefix, which is what resuming
/// through the CLI cost before the store existed.
void BM_StoreRestartVsReplay(benchmark::State& state) {
  const RestartSetup& setup = restart_setup();
  const bool replay = state.range(0) != 0;
  std::size_t ingested = 0;
  std::size_t resident = 0;
  std::size_t mapped = 0;
  for (auto _ : state) {
    if (replay) {
      detectors::OnlineConfig config = monitor_config();
      config.checkpoint_dir = setup.ck_plain;
      detectors::OnlineMonitor monitor(config);
      monitor.restore_latest(setup.ck_plain);
      const rating::Dataset data = rating::read_csv_file(setup.csv);
      std::vector<rating::Rating> feed;
      feed.reserve(data.total_ratings());
      for (ProductId id : data.product_ids()) {
        const auto& rs = data.product(id).rows();
        feed.insert(feed.end(), rs.begin(), rs.end());
      }
      std::sort(feed.begin(), feed.end(), rating::ByTime{});
      const std::size_t start = std::min(monitor.ingested(), feed.size());
      monitor.ingest(std::span<const rating::Rating>(feed).subspan(start));
      monitor.flush();
      benchmark::DoNotOptimize(monitor.alarms().size());
      ingested = monitor.ingested();
      resident = monitor.resident_ratings();
    } else {
      detectors::OnlineConfig config = monitor_config();
      config.checkpoint_dir = setup.ck_store;
      config.store_dir = setup.store_dir;
      detectors::OnlineMonitor monitor(config);
      monitor.restore_from_store();
      benchmark::DoNotOptimize(monitor.alarms().size());
      ingested = monitor.ingested();
      resident = monitor.resident_ratings();
      mapped = monitor.rating_store()->mapped_bytes();
    }
  }
  state.SetLabel(replay ? "csv_replay" : "store_mmap");
  state.counters["ratings"] = benchmark::Counter(static_cast<double>(ingested));
  state.counters["resident_ratings"] =
      benchmark::Counter(static_cast<double>(resident));
  state.counters["mapped_bytes"] =
      benchmark::Counter(static_cast<double>(mapped));
}
BENCHMARK(BM_StoreRestartVsReplay)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Group-append throughput into a fresh store: buffered columnar frames +
/// a commit marker per group. Arg 0 appends without durability; Arg 1
/// fsyncs at every group boundary (the batching StoreWriter amortizes, not
/// eliminates, the syscall).
void BM_StoreAppend(benchmark::State& state) {
  const std::vector<rating::Rating>& feed = restart_feed();
  const std::size_t count = 200'000;
  const bool fsync = state.range(0) != 0;
  const std::filesystem::path dir = "bench-store-append";
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    {
      store::StoreConfig sc;
      sc.dir = dir.string();
      sc.fsync = fsync;
      store::RatingStore store(sc);
      for (std::size_t i = 0; i < count; ++i) {
        if (fsync && i % sc.group_ratings == 0) store.sync();
        store.append(feed[i]);
      }
      store.sync();
    }
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * count));
  state.SetLabel(fsync ? "fsync_per_group" : "no_fsync");
}
BENCHMARK(BM_StoreAppend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
