// Figure 8: the attack generator end-to-end. Exercises every box of the
// diagram — parameter controller (ranges + Procedure-2 learning), value set
// generator, time set generator, and the value&time mapper — against all
// three aggregation schemes, printing the best attack profile the generator
// learns per defense.
#include <cstdio>
#include <vector>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "bench_common.hpp"
#include "core/attack_generator.hpp"

int main() {
  using namespace rab;
  bench::print_header("Figure 8: attack generator vs each defense");

  const auto& challenge = bench::default_challenge();
  const core::AttackGenerator generator(challenge, 808);

  // 1. Broad coverage mode: sample profiles from user-supplied ranges.
  core::ParameterRanges ranges;
  std::printf(
      "# sampled profiles: bias,sigma,duration,offset,mp_sa,mp_p\n");
  const aggregation::SaScheme sa;
  const aggregation::BfScheme bf;
  const aggregation::PScheme p;
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    const core::AttackProfile profile =
        generator.sample_profile(ranges, stream);
    const challenge::Submission s = generator.generate(profile, stream);
    std::printf("%.2f,%.2f,%.1f,%.1f,%.3f,%.3f\n", profile.bias,
                profile.sigma, profile.duration_days, profile.offset_days,
                challenge.evaluate(s, sa).overall,
                challenge.evaluate(s, p).overall);
  }

  // 2. Learning mode: Procedure 2 against each scheme.
  core::AttackProfile timing;
  timing.duration_days = 50.0;
  timing.offset_days = 5.0;
  core::RegionSearchOptions options;
  options.trials = 5;  // lighter than Figure 5's full m=10 run

  struct Row {
    const char* name;
    const aggregation::AggregationScheme& scheme;
    double bias = 0.0;
    double sigma = 0.0;
    double mp = 0.0;
  };
  std::vector<Row> rows{{"SA", sa}, {"BF", bf}, {"P", p}};
  std::printf("# learned per scheme: scheme,best_bias,best_sigma,best_mp\n");
  for (Row& row : rows) {
    const core::RegionSearchResult search =
        generator.optimize(row.scheme, options, timing);
    row.bias = search.best_bias;
    row.sigma = search.best_sigma;
    row.mp = search.best_mp;
    std::printf("%s,%.3f,%.3f,%.3f\n", row.name, row.bias, row.sigma,
                row.mp);
  }

  bench::shape_check(
      "the generator learns larger (more negative) bias against SA than "
      "against the P-scheme",
      rows[0].bias < rows[2].bias);
  bench::shape_check(
      "the generator learns larger variance against the P-scheme than "
      "against SA (variance is what defeats signal detection)",
      rows[2].sigma >= rows[0].sigma - 0.25);
  bench::shape_check("the learned attack is weakest against the P-scheme",
                     rows[2].mp <= rows[0].mp && rows[2].mp <= rows[1].mp);
  return 0;
}
