// Extension: the boosting-attack study the paper defers to future work.
//
// Section V-B observes that boosting (positive bias) is much weaker than
// downgrading because the fair mean of popular products sits near the top
// of the scale — "there is no much room to further boost" — and that the
// positive-bias half of the variance-bias plot therefore has no resolution.
// This bench quantifies both halves of that claim:
//   (a) on the default challenge (fair mean ~4) the best achievable boost
//       MP is a fraction of the best downgrade MP under every scheme;
//   (b) on a head-room challenge (fair mean ~3) boosting recovers most of
//       its power, confirming the ceiling is the cause.
#include <algorithm>
#include <cstdio>

#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "bench_common.hpp"
#include "challenge/participants.hpp"
#include "rating/fair_generator.hpp"

namespace {

using namespace rab;

/// Max per-product MP split into boost vs downgrade targets over a
/// population.
struct SplitMp {
  double boost = 0.0;
  double downgrade = 0.0;
};

SplitMp best_split(const challenge::Challenge& challenge,
                   const std::vector<challenge::Submission>& population,
                   const aggregation::AggregationScheme& scheme) {
  SplitMp best;
  for (const auto& submission : population) {
    const challenge::MpResult mp = challenge.evaluate(submission, scheme);
    for (ProductId id : challenge.config().boost_targets) {
      best.boost = std::max(best.boost, mp.per_product.at(id));
    }
    for (ProductId id : challenge.config().downgrade_targets) {
      best.downgrade = std::max(best.downgrade, mp.per_product.at(id));
    }
  }
  return best;
}

challenge::Challenge headroom_challenge() {
  rating::FairDataConfig config;
  config.mean_value = 3.0;  // room to boost
  config.seed = 424242;
  return challenge::Challenge(
      rating::FairDataGenerator(config).generate());
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: boosting vs downgrading (the paper's future work)");

  const aggregation::SaScheme sa;
  const aggregation::PScheme p;

  // (a) default challenge, fair mean ~4 (the paper's setting).
  const auto& ceiling = bench::default_challenge();
  const auto& population = bench::default_population();
  const SplitMp sa_ceiling = best_split(ceiling, population, sa);
  const SplitMp p_ceiling = best_split(ceiling, population, p);
  std::printf("# setting,scheme,best_boost_mp,best_downgrade_mp\n");
  std::printf("mean4,SA,%.3f,%.3f\n", sa_ceiling.boost,
              sa_ceiling.downgrade);
  std::printf("mean4,P,%.3f,%.3f\n", p_ceiling.boost, p_ceiling.downgrade);

  // (b) head-room challenge, fair mean ~3.
  const challenge::Challenge room = headroom_challenge();
  const auto room_population =
      challenge::ParticipantPopulation(room, bench::kPopulationSeed)
          .generate(120);
  const SplitMp sa_room = best_split(room, room_population, sa);
  const SplitMp p_room = best_split(room, room_population, p);
  std::printf("mean3,SA,%.3f,%.3f\n", sa_room.boost, sa_room.downgrade);
  std::printf("mean3,P,%.3f,%.3f\n", p_room.boost, p_room.downgrade);

  bench::shape_check(
      "near the scale ceiling, boosting is much weaker than downgrading "
      "(Section V-B's observation)",
      sa_ceiling.boost < 0.6 * sa_ceiling.downgrade);
  bench::shape_check(
      "with head-room (fair mean ~3) boosting recovers relative strength",
      sa_room.boost / sa_room.downgrade >
          sa_ceiling.boost / sa_ceiling.downgrade);
  bench::shape_check(
      "the P-scheme also bounds boost attacks below the SA baseline",
      p_ceiling.boost <= sa_ceiling.boost &&
          p_room.boost <= sa_room.boost);
  return 0;
}
