// Serving-path microbenches (google-benchmark): the per-frame costs a
// `rab serve` deployment pays before any analysis happens. Codec benches
// bound the wire overhead per rating batch (encode + decode of the
// length-prefixed binary format, and the JSONL fallback for comparison —
// the gap is why the binary protocol is the default). Queue benches
// bound the reserve/push/pop handoff between a connection thread and a
// shard worker, and shard_of bounds the per-rating routing cost. The
// reconnect-storm bench prices the v2 resume path: N clients
// re-attaching at once after a server restart (connect + kResume +
// durable-floor probe), the burst every crash recovery produces. The
// end-to-end serve throughput number lives in the loadgen report
// (tools/tier1.sh --serve); bench_report records these microbenches in
// BENCH_serve.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/queue.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "rating/rating.hpp"
#include "util/rng.hpp"

namespace {

using namespace rab;

std::vector<rating::Rating> make_batch(std::size_t n) {
  Rng rng(41);
  std::vector<rating::Rating> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rating::Rating r;
    r.time = static_cast<double>(i) * 0.01;
    r.value = rng.uniform(0.0, 5.0);
    r.rater = RaterId(rng.uniform_int(0, 9999));
    r.product = ProductId(rng.uniform_int(0, 63));
    batch.push_back(r);
  }
  return batch;
}

void BM_WireEncodeRateBatch(benchmark::State& state) {
  const auto batch = make_batch(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode_rate_payload(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireEncodeRateBatch)->Arg(64)->Arg(512)->Arg(4096);

void BM_WireDecodeRateBatch(benchmark::State& state) {
  const std::string payload =
      net::encode_rate_payload(make_batch(static_cast<std::size_t>(
          state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_rate_payload(payload));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireDecodeRateBatch)->Arg(64)->Arg(512)->Arg(4096);

void BM_WireDecodeFrameHeader(benchmark::State& state) {
  const std::string bytes =
      net::encode_frame(net::Frame{net::FrameType::kPing, ""});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_frame_header(
        std::span<const char, net::kFrameHeaderBytes>(
            bytes.data(), net::kFrameHeaderBytes),
        true));
  }
}
BENCHMARK(BM_WireDecodeFrameHeader);

// The JSONL fallback parsing one rate line with 8 ratings — the
// debuggability tax relative to BM_WireDecodeRateBatch.
void BM_WireParseJsonlRate(benchmark::State& state) {
  std::string line = R"({"type":"rate","ratings":[)";
  for (int i = 0; i < 8; ++i) {
    if (i > 0) line += ',';
    line += "[" + std::to_string(i) + ".5,4.0," + std::to_string(100 + i) +
            "," + std::to_string(i % 4) + "]";
  }
  line += "]}";
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_json_request(line));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_WireParseJsonlRate);

void BM_ShardOf(benchmark::State& state) {
  std::int64_t product = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::shard_of(product++, 8));
  }
}
BENCHMARK(BM_ShardOf);

// Uncontended single-thread handoff: reserve + push + pop of one batch.
void BM_QueueReservePushPop(benchmark::State& state) {
  net::BoundedTaskQueue queue(128);
  const auto batch = make_batch(64);
  net::ShardTask task;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.try_reserve());
    queue.push_reserved(net::ShardTask{batch, nullptr});
    benchmark::DoNotOptimize(queue.pop(task));
  }
}
BENCHMARK(BM_QueueReservePushPop);

// Producer/consumer handoff across real threads: the batches/second one
// connection can stream through one shard queue.
void BM_QueueCrossThread(benchmark::State& state) {
  const std::size_t total = static_cast<std::size_t>(state.range(0));
  const auto batch = make_batch(64);
  for (auto _ : state) {
    net::BoundedTaskQueue queue(128);
    std::thread consumer([&] {
      net::ShardTask task;
      while (queue.pop(task)) {
      }
    });
    std::size_t pushed = 0;
    while (pushed < total) {
      if (queue.try_reserve()) {
        queue.push_reserved(net::ShardTask{batch, nullptr});
        ++pushed;
      }
    }
    queue.close();
    consumer.join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_QueueCrossThread)->Arg(1024)->Unit(benchmark::kMicrosecond);

// Reconnect storm: N clients simultaneously re-attach to live sessions
// against one running server — connect, kResume, then one empty kRateSeq
// as a durable-floor probe — the burst a restarted server absorbs before
// any replayed ratings flow. Sessions are established once up front so
// every iteration measures pure resume cost, not kHello setup.
void BM_ReconnectStorm(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  net::ServeConfig config;
  config.listen.host = "127.0.0.1";
  config.listen.port = 0;  // ephemeral; resolved by server.addr()
  config.shards = 1;
  config.max_connections = 2 * clients + 16;
  net::Server server(config);
  server.start();
  std::thread runner([&] { server.run(); });
  const net::Addr addr = server.addr();

  std::vector<std::uint64_t> sessions(clients);
  std::vector<std::uint64_t> seqs(clients, 0);
  for (std::size_t i = 0; i < clients; ++i) {
    net::Client hello(addr);
    const net::Frame reply = hello.roundtrip({net::FrameType::kHello, ""});
    sessions[i] = net::decode_session_ack_payload(reply.payload).session_id;
  }

  for (auto _ : state) {
    std::vector<std::thread> storm;
    storm.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
      storm.emplace_back([&, i] {
        net::Client client(addr);
        const net::Frame resume = client.roundtrip(
            {net::FrameType::kResume, net::encode_u64_payload(sessions[i])});
        benchmark::DoNotOptimize(
            net::decode_session_ack_payload(resume.payload));
        const net::Frame ack = client.roundtrip(
            {net::FrameType::kRateSeq,
             net::encode_rate_seq_payload(++seqs[i], {})});
        benchmark::DoNotOptimize(net::decode_rate_ack_payload(ack.payload));
      });
    }
    for (auto& t : storm) {
      t.join();
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(clients));

  server.request_drain();
  runner.join();
}
BENCHMARK(BM_ReconnectStorm)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
