// Section V-A headline result: the maximum MP the attackers achieve under
// the P-scheme is a fraction (the paper reports ~1/3) of what they achieve
// under the SA- and BF-schemes. Also runs the detector ablation called out
// in DESIGN.md: the P-scheme with subsets of its detector bank.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/entropy_scheme.hpp"
#include "aggregation/median_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "bench_common.hpp"

namespace {

using namespace rab;

struct SchemeStats {
  double max_mp = 0.0;
  double mean_mp = 0.0;
  std::string best_label;
};

SchemeStats evaluate_all(const aggregation::AggregationScheme& scheme) {
  const auto& challenge = bench::default_challenge();
  const auto& population = bench::default_population();
  SchemeStats stats;
  double sum = 0.0;
  for (const auto& submission : population) {
    const double mp = challenge.evaluate(submission, scheme).overall;
    sum += mp;
    if (mp > stats.max_mp) {
      stats.max_mp = mp;
      stats.best_label = submission.label;
    }
  }
  stats.mean_mp = sum / static_cast<double>(population.size());
  return stats;
}

}  // namespace

int main() {
  bench::print_header(
      "Table (Sec V-A): max/mean MP over 251 submissions per scheme");

  const aggregation::SaScheme sa;
  const aggregation::BfScheme bf;
  const aggregation::PScheme p;

  const SchemeStats sa_stats = evaluate_all(sa);
  const SchemeStats bf_stats = evaluate_all(bf);
  const SchemeStats p_stats = evaluate_all(p);

  std::printf("# scheme,max_mp,mean_mp,best_submission\n");
  std::printf("SA,%.3f,%.3f,%s\n", sa_stats.max_mp, sa_stats.mean_mp,
              sa_stats.best_label.c_str());
  std::printf("BF,%.3f,%.3f,%s\n", bf_stats.max_mp, bf_stats.mean_mp,
              bf_stats.best_label.c_str());
  std::printf("P,%.3f,%.3f,%s\n", p_stats.max_mp, p_stats.mean_mp,
              p_stats.best_label.c_str());
  std::printf("P/SA max ratio: %.2f (paper: ~0.33)\n",
              p_stats.max_mp / sa_stats.max_mp);
  std::printf("P/BF max ratio: %.2f\n", p_stats.max_mp / bf_stats.max_mp);

  bench::shape_check(
      "P-scheme max MP is well below both SA and BF max MP",
      p_stats.max_mp < 0.7 * sa_stats.max_mp &&
          p_stats.max_mp < 0.95 * bf_stats.max_mp);
  bench::shape_check("BF max MP is comparable to SA max MP (majority-rule "
                     "filtering barely helps against smart attacks)",
                     bf_stats.max_mp > 0.5 * sa_stats.max_mp);

  // Extension rows (not in the paper): two more baselines from the
  // robustness literature, for context.
  const aggregation::MedianScheme median;
  const aggregation::EntropyScheme entropy;
  const SchemeStats med_stats = evaluate_all(median);
  const SchemeStats ent_stats = evaluate_all(entropy);
  std::printf("MED,%.3f,%.3f,%s (extension)\n", med_stats.max_mp,
              med_stats.mean_mp, med_stats.best_label.c_str());
  std::printf("ENT,%.3f,%.3f,%s (extension)\n", ent_stats.max_mp,
              ent_stats.mean_mp, ent_stats.best_label.c_str());

  // ---------------------------------------------------------------- ablation
  bench::print_header("Ablation: P-scheme with detector subsets (max MP)");
  struct Variant {
    const char* name;
    detectors::DetectorToggles toggles;
  };
  detectors::DetectorToggles all;
  detectors::DetectorToggles no_mc = all;
  no_mc.use_mc = false;
  detectors::DetectorToggles no_arc = all;
  no_arc.use_arc = false;
  detectors::DetectorToggles no_hc = all;
  no_hc.use_hc = false;
  detectors::DetectorToggles no_me = all;
  no_me.use_me = false;
  const Variant variants[] = {
      {"full", all},       {"no-MC", no_mc}, {"no-ARC", no_arc},
      {"no-HC", no_hc},    {"no-ME", no_me},
  };

  std::printf("# variant,max_mp,mean_mp\n");
  double full_max = 0.0;
  double no_arc_max = 0.0;
  for (const Variant& v : variants) {
    aggregation::PConfig config;
    config.toggles = v.toggles;
    const aggregation::PScheme scheme(config);
    const SchemeStats stats = evaluate_all(scheme);
    std::printf("%s,%.3f,%.3f\n", v.name, stats.max_mp, stats.mean_mp);
    if (std::string(v.name) == "full") full_max = stats.max_mp;
    if (std::string(v.name) == "no-ARC") no_arc_max = stats.max_mp;
  }
  bench::shape_check(
      "removing the arrival-rate detectors weakens the P-scheme (both "
      "integration paths hinge on ARC confirmation)",
      no_arc_max >= full_max);
  return 0;
}
