// Figure 2: variance-bias plot of all submissions for product 1 under the
// P-scheme, with AMP/LMP/UMP top-10 marks. The paper's reading: the strong
// downgrade submissions concentrate in region R3 (medium bias, medium-to-
// large variance) — large variance washes out the signal features the
// P-scheme detects.
#include <cstdio>

#include "aggregation/p_scheme.hpp"
#include "bench_common.hpp"

int main() {
  using namespace rab;
  bench::print_header("Figure 2: variance-bias plot, P-scheme, product 1");

  const aggregation::PScheme scheme;
  const auto points = challenge::analyze_population(
      bench::default_challenge(), bench::default_population(), scheme);
  bench::print_variance_bias(points);

  const bench::RegionCounts regions = bench::lmp_regions(points);
  std::printf("LMP winners by region: R1=%d R2=%d R3=%d other=%d\n",
              regions.r1, regions.r2, regions.r3, regions.other);
  bench::shape_check(
      "strong downgrade attacks against the P-scheme concentrate in R3 "
      "(medium bias, medium-to-large variance)",
      regions.r3 >= regions.r1 && regions.r3 >= regions.r2);
  return 0;
}
