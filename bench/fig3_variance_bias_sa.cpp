// Figure 3: variance-bias plot under the SA-scheme (plain averaging, no
// detection). The paper's reading: without a defense, the winning strategy
// is simply the largest bias — strong submissions concentrate in R1.
#include <cstdio>

#include "aggregation/sa_scheme.hpp"
#include "bench_common.hpp"

int main() {
  using namespace rab;
  bench::print_header("Figure 3: variance-bias plot, SA-scheme, product 1");

  const aggregation::SaScheme scheme;
  const auto points = challenge::analyze_population(
      bench::default_challenge(), bench::default_population(), scheme);
  bench::print_variance_bias(points);

  const bench::RegionCounts regions = bench::lmp_regions(points);
  std::printf("LMP winners by region: R1=%d R2=%d R3=%d other=%d\n",
              regions.r1, regions.r2, regions.r3, regions.other);
  bench::shape_check(
      "without a defense the strong downgrade attacks concentrate in R1 "
      "(large negative bias)",
      regions.r1 > regions.r2 && regions.r1 > regions.r3);
  return 0;
}
