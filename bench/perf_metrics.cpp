// Instrumentation-overhead microbenches (google-benchmark): what a
// metrics touch costs on the hot paths it was added to. The load-bearing
// numbers are the disarmed ones — BM_MetricsCounterDisabled is the price
// every instrumented call site pays when collection is off (one relaxed
// atomic load, the same fast path as a disarmed failpoint,
// BM_FailpointDisarmed alongside for comparison) — plus BM_MetricsScrape,
// which bounds how much a `rab stats` export or a `--metrics-out`
// snapshot steals from the epoch loop. Span benches cover the tracer the
// same way. Under RAB_NO_METRICS the enabled/disabled distinction
// disappears and the benches measure the compiled-out stubs.
#include <benchmark/benchmark.h>

#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace {

using namespace rab;

util::metrics::Counter& bench_counter() {
  return util::metrics::counter("bench.metrics.ticks");
}

util::metrics::Histogram& bench_histogram() {
  return util::metrics::histogram("bench.metrics.seconds",
                                  util::metrics::latency_bounds_seconds());
}

void BM_MetricsCounterEnabled(benchmark::State& state) {
  util::metrics::set_enabled(util::metrics::kCompiledIn);
  util::metrics::Counter& ticks = bench_counter();
  for (auto _ : state) {
    ticks.add(1);
  }
}
BENCHMARK(BM_MetricsCounterEnabled);

void BM_MetricsCounterDisabled(benchmark::State& state) {
  util::metrics::set_enabled(false);
  util::metrics::Counter& ticks = bench_counter();
  for (auto _ : state) {
    ticks.add(1);
  }
  util::metrics::set_enabled(util::metrics::kCompiledIn);
}
BENCHMARK(BM_MetricsCounterDisabled);

// The bar the disarmed counter is measured against: a disarmed failpoint
// check, this repo's existing "free when off" reference.
void BM_FailpointDisarmed(benchmark::State& state) {
  for (auto _ : state) {
    RAB_FAILPOINT("checkpoint.write.body");
  }
}
BENCHMARK(BM_FailpointDisarmed);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  util::metrics::set_enabled(util::metrics::kCompiledIn);
  util::metrics::Histogram& seconds = bench_histogram();
  double value = 0.0;
  for (auto _ : state) {
    seconds.observe(value);
    value = value < 1.0 ? value + 1e-4 : 0.0;
  }
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_MetricsScrape(benchmark::State& state) {
  util::metrics::set_enabled(util::metrics::kCompiledIn);
  bench_counter().add(1);
  bench_histogram().observe(0.5);
  for (auto _ : state) {
    util::metrics::Snapshot snap = util::metrics::scrape();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_MetricsScrape);

void BM_TraceSpanEnabled(benchmark::State& state) {
  util::trace::clear();
  util::trace::set_enabled(true);
  for (auto _ : state) {
    RAB_TRACE_SPAN("bench.span");
    // Spans land in a bounded per-thread buffer; drain it so the bench
    // measures recording, not the buffer-full early-out.
    if (state.iterations() % 4096 == 0) util::trace::clear();
  }
  util::trace::set_enabled(false);
  util::trace::clear();
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_TraceSpanDisabled(benchmark::State& state) {
  util::trace::set_enabled(false);
  for (auto _ : state) {
    RAB_TRACE_SPAN("bench.span");
  }
}
BENCHMARK(BM_TraceSpanDisabled);

}  // namespace

BENCHMARK_MAIN();
