// Shared setup for the figure/table benches: the default challenge, the
// 251-submission synthetic population, and small printing helpers.
//
// Every bench prints the series the corresponding paper figure/table plots,
// one CSV-ish block per figure, followed by a SHAPE-CHECK section stating
// the qualitative property the paper reports and whether this run
// reproduces it.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "challenge/analysis.hpp"
#include "challenge/challenge.hpp"
#include "challenge/participants.hpp"

namespace rab::bench {

inline constexpr std::uint64_t kChallengeSeed = 20070425;
inline constexpr std::uint64_t kPopulationSeed = 17;
inline constexpr std::size_t kPopulationSize = 251;

/// The challenge instance shared by all benches (built once per process).
inline const challenge::Challenge& default_challenge() {
  static const challenge::Challenge instance =
      challenge::Challenge::make_default(kChallengeSeed);
  return instance;
}

/// The 251 synthetic submissions (built once per process).
inline const std::vector<challenge::Submission>& default_population() {
  static const std::vector<challenge::Submission> instance =
      challenge::ParticipantPopulation(default_challenge(), kPopulationSeed)
          .generate(kPopulationSize);
  return instance;
}

inline void print_header(const std::string& title) {
  std::printf("==== %s ====\n", title.c_str());
}

inline void shape_check(const std::string& claim, bool reproduced) {
  std::printf("SHAPE-CHECK: %s -> %s\n", claim.c_str(),
              reproduced ? "REPRODUCED" : "NOT REPRODUCED");
}

/// Variance-bias scatter for one scheme: prints every point and a region
/// summary over the LMP (downgrade-winner) marks, the way Figures 2-4 are
/// read in the paper.
inline void print_variance_bias(
    const std::vector<challenge::VarianceBiasPoint>& points) {
  std::printf("# index,label,bias,stddev,overall_mp,product_mp,color\n");
  for (const auto& p : points) {
    std::printf("%zu,%s,%.3f,%.3f,%.3f,%.3f,%s\n", p.index, p.label.c_str(),
                p.bias, p.stddev, p.overall_mp, p.product_mp,
                to_string(color_of(p)));
  }
}

/// The paper's negative-bias regions (Section V-B): R1 large bias / small-
/// to-medium variance, R2 medium bias / small-to-medium variance, R3 medium
/// bias / medium-to-large variance.
enum class Region { kR1, kR2, kR3, kOther };

inline Region region_of(const challenge::VarianceBiasPoint& p) {
  if (p.bias >= 0.0) return Region::kOther;
  const bool large_bias = p.bias <= -3.0;
  const bool large_var = p.stddev >= 0.7;
  if (large_bias && !large_var) return Region::kR1;
  if (!large_bias && !large_var) return Region::kR2;
  if (!large_bias && large_var) return Region::kR3;
  return Region::kOther;  // large bias + large variance (rare corner)
}

inline const char* to_string(Region r) {
  switch (r) {
    case Region::kR1:
      return "R1";
    case Region::kR2:
      return "R2";
    case Region::kR3:
      return "R3";
    case Region::kOther:
      return "other";
  }
  return "?";
}

struct RegionCounts {
  int r1 = 0;
  int r2 = 0;
  int r3 = 0;
  int other = 0;

  void add(Region r) {
    switch (r) {
      case Region::kR1:
        ++r1;
        break;
      case Region::kR2:
        ++r2;
        break;
      case Region::kR3:
        ++r3;
        break;
      case Region::kOther:
        ++other;
        break;
    }
  }
};

/// Counts regions over the LMP-marked (strong downgrade) submissions.
inline RegionCounts lmp_regions(
    const std::vector<challenge::VarianceBiasPoint>& points) {
  RegionCounts counts;
  for (const auto& p : points) {
    if (p.lmp) counts.add(region_of(p));
  }
  return counts;
}

}  // namespace rab::bench
