// Figure 5: Procedure 2's optimum-region search on the variance-bias plane
// against the P-scheme. The paper starts from bias 0..-4, stddev 0..2 with
// N = 4 subareas and m = 10 trials, converges in ~4 rounds, and reports
// that the resulting MP beats every submission from the challenge.
#include <algorithm>
#include <cstdio>
#include <string>

#include "aggregation/p_scheme.hpp"
#include "bench_common.hpp"
#include "core/attack_generator.hpp"

int main() {
  using namespace rab;
  bench::print_header(
      "Figure 5: Procedure 2 region search on (bias, stddev) vs P-scheme");

  const auto& challenge = bench::default_challenge();
  const aggregation::PScheme p;
  const core::AttackGenerator generator(challenge, 4242);

  core::AttackProfile timing;
  timing.duration_days = 50.0;
  timing.offset_days = 5.0;

  // The MP surface over the (bias, stddev) plane — the contour background
  // of the paper's Figure 5 (coarse grid, 2 draws per cell).
  std::printf("# surface: bias,stddev,mp (max of 2 draws)\n");
  for (double bias = -3.75; bias <= -0.3; bias += 0.75) {
    for (double sigma = 0.1; sigma <= 1.9; sigma += 0.45) {
      core::AttackProfile probe = timing;
      probe.bias = bias;
      probe.sigma = sigma;
      double best = 0.0;
      for (std::uint64_t draw = 0; draw < 2; ++draw) {
        best = std::max(
            best,
            challenge.evaluate(generator.generate(probe, 900 + draw), p)
                .overall);
      }
      std::printf("%.2f,%.2f,%.3f\n", bias, sigma, best);
    }
  }

  // Procedure 2 searches (bias, sigma); the Figure-8 parameter controller
  // also owns the timing, so run the search under the timing shapes the
  // challenge data exhibits — a one-month burst, a ~7-week run, and a
  // whole-window spread — and keep the strongest result.
  core::RegionSearchOptions options;  // paper grid 2x2; m slightly above 10
  options.trials = 12;

  core::AttackProfile burst_timing = timing;
  burst_timing.duration_days = 30.0;
  burst_timing.offset_days = 26.0;
  core::AttackProfile spread_timing = timing;
  spread_timing.offset_days = 0.0;
  spread_timing.duration_days =
      challenge.config().window.length() - 1.0;

  const char* winner = "7-week timing";
  core::RegionSearchResult search = generator.optimize(p, options, timing);
  if (const auto r = generator.optimize(p, options, burst_timing);
      r.best_mp > search.best_mp) {
    search = r;
    winner = "burst timing";
  }
  if (const auto r = generator.optimize(p, options, spread_timing);
      r.best_mp > search.best_mp) {
    search = r;
    winner = "spread timing";
  }

  std::printf("# round,bias_lo,bias_hi,sigma_lo,sigma_hi,best_mp (%s)\n",
              winner);
  for (std::size_t i = 0; i < search.rounds.size(); ++i) {
    const auto& round = search.rounds[i];
    std::printf("%zu,%.3f,%.3f,%.3f,%.3f,%.3f\n", i + 1, round.bias.lo,
                round.bias.hi, round.sigma.lo, round.sigma.hi,
                round.best_mp);
  }
  std::printf("final center: bias=%.3f stddev=%.3f (paper: ~(-2.3, 1.6))\n",
              search.best_bias, search.best_sigma);
  std::printf("best generated MP: %.3f\n", search.best_mp);

  // Compare against the full population's best under the P-scheme.
  double population_best = 0.0;
  std::string best_label;
  for (const auto& submission : bench::default_population()) {
    const double mp = challenge.evaluate(submission, p).overall;
    if (mp > population_best) {
      population_best = mp;
      best_label = submission.label;
    }
  }
  std::printf("population best MP under P: %.3f (%s)\n", population_best,
              best_label.c_str());

  bench::shape_check(
      "the search converges to medium bias with medium-to-large variance "
      "(the R3 region, not the extreme-bias corner)",
      search.best_bias > -3.2 && search.best_bias < -0.8 &&
          search.best_sigma > 0.5);
  bench::shape_check(
      "the heuristically generated attack matches or beats every "
      "challenge submission",
      search.best_mp >= 0.95 * population_best);
  return 0;
}
