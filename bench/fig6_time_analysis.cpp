// Figure 6: MP (P-scheme, product 1) versus the average unfair-rating
// interval (attack duration / number of unfair ratings). The paper finds an
// interior optimum (~3 days in their data): attacks that arrive too fast
// are detected, attacks spread too thin barely move any monthly aggregate.
// Without detection (SA) the optimum interval is small (< 1.2 days: pack
// everything into the two counted months).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "bench_common.hpp"
#include "core/attack_generator.hpp"

int main() {
  using namespace rab;
  bench::print_header(
      "Figure 6: MP vs average unfair-rating interval (product 1)");

  const auto& challenge = bench::default_challenge();
  const aggregation::PScheme p;
  const aggregation::SaScheme sa;
  const core::AttackGenerator generator(challenge, 606);
  const ProductId product(1);
  const double window_days = challenge.config().window.length();

  // Sweep the interval by varying duration (and squad size when a long
  // interval cannot fit 50 ratings into the window).
  const std::vector<double> intervals{0.2, 0.4, 0.8, 1.2, 1.6, 2.0, 3.0,
                                      4.0, 6.0, 8.0, 10.0, 12.0, 14.0};
  std::printf("# interval_days,p_mp,sa_mp (median over 5 draws, product 1)\n");

  double best_p_interval = 0.0;
  double best_p_mp = -1.0;
  double best_sa_interval = 0.0;
  double best_sa_mp = -1.0;
  for (double interval : intervals) {
    std::size_t count = challenge.config().attack_raters;
    double duration = interval * static_cast<double>(count);
    if (duration > window_days - 1.0) {
      duration = window_days - 1.0;
      count = static_cast<std::size_t>(duration / interval);
      if (count < 2) count = 2;
    }
    core::AttackProfile profile;
    profile.bias = -2.3;
    profile.sigma = 1.0;
    profile.duration_days = duration;
    profile.ratings_per_product = count;

    std::vector<double> p_mps;
    std::vector<double> sa_mps;
    for (std::uint64_t draw = 0; draw < 5; ++draw) {
      const challenge::Submission s =
          generator.generate(profile, 7000 + draw);
      p_mps.push_back(
          challenge.evaluate(s, p).per_product.at(product));
      sa_mps.push_back(
          challenge.evaluate(s, sa).per_product.at(product));
    }
    std::sort(p_mps.begin(), p_mps.end());
    std::sort(sa_mps.begin(), sa_mps.end());
    const double p_mp = p_mps[p_mps.size() / 2];
    const double sa_mp = sa_mps[sa_mps.size() / 2];
    std::printf("%.2f,%.3f,%.3f\n", interval, p_mp, sa_mp);
    if (p_mp > best_p_mp) {
      best_p_mp = p_mp;
      best_p_interval = interval;
    }
    if (sa_mp > best_sa_mp) {
      best_sa_mp = sa_mp;
      best_sa_interval = interval;
    }
  }
  std::printf("best interval under P: %.2f days (MP %.3f)\n",
              best_p_interval, best_p_mp);
  std::printf("best interval under SA: %.2f days (MP %.3f)\n",
              best_sa_interval, best_sa_mp);

  bench::shape_check(
      "under the P-scheme the best interval is interior (neither the "
      "fastest nor the slowest sweep point)",
      best_p_interval > intervals.front() &&
          best_p_interval < intervals.back());
  bench::shape_check(
      "without detection the best interval is small (< 1.2 days: pack all "
      "ratings into the two counted months)",
      best_sa_interval <= 1.2);
  return 0;
}
