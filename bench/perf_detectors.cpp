// Performance microbenches (google-benchmark): throughput of each detector,
// the AR fit, the BF filter, and the end-to-end P-scheme. Not a paper
// figure — these are the engineering ablations DESIGN.md calls out (e.g.
// by-count vs by-duration ME windows).
#include <benchmark/benchmark.h>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "cluster/single_linkage.hpp"
#include "detectors/arc_detector.hpp"
#include "detectors/hc_detector.hpp"
#include "detectors/mc_detector.hpp"
#include "detectors/me_detector.hpp"
#include "rating/fair_generator.hpp"
#include "signal/ar.hpp"

namespace {

using namespace rab;

rating::ProductRatings stream_of(std::int64_t days) {
  rating::FairDataConfig config;
  config.product_count = 1;
  config.history_days = static_cast<double>(days);
  return rating::FairDataGenerator(config).generate_product(ProductId(1));
}

void BM_MeanChangeDetector(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  const detectors::MeanChangeDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_MeanChangeDetector)->Arg(60)->Arg(180)->Arg(365);

void BM_ArrivalRateDetector(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  const detectors::ArrivalRateDetector detector(detectors::ArcConfig{},
                                                detectors::ArcMode::kLow);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ArrivalRateDetector)->Arg(60)->Arg(180)->Arg(365);

void BM_HistogramDetector(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  const detectors::HistogramDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_HistogramDetector)->Arg(60)->Arg(180)->Arg(365);

void BM_ModelErrorDetectorByCount(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  const detectors::ModelErrorDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ModelErrorDetectorByCount)->Arg(60)->Arg(180);

void BM_ModelErrorDetectorByDuration(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  detectors::MeConfig config;
  config.window = signal::WindowSpec::by_duration(14.0);
  const detectors::ModelErrorDetector detector(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ModelErrorDetectorByDuration)->Arg(60)->Arg(180);

void BM_ArFit(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> xs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    xs.push_back(rng.gaussian(4.0, 0.8));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fit_ar(xs, 4));
  }
}
BENCHMARK(BM_ArFit)->Arg(40)->Arg(100)->Arg(400);

void BM_SingleLinkage1d(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> xs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    xs.push_back(rng.uniform(0.0, 5.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::single_linkage_1d(xs, 2));
  }
}
BENCHMARK(BM_SingleLinkage1d)->Arg(40)->Arg(400);

void BM_SchemeAggregate(benchmark::State& state) {
  rating::FairDataConfig config;
  config.product_count = 9;
  config.history_days = 180.0;
  const rating::Dataset data =
      rating::FairDataGenerator(config).generate();

  const aggregation::SaScheme sa;
  const aggregation::BfScheme bf;
  const aggregation::PScheme p;
  const aggregation::AggregationScheme* scheme = nullptr;
  switch (state.range(0)) {
    case 0:
      scheme = &sa;
      break;
    case 1:
      scheme = &bf;
      break;
    default:
      scheme = &p;
      break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->aggregate(data, 30.0));
  }
  state.SetLabel(state.range(0) == 0   ? "SA"
                 : state.range(0) == 1 ? "BF"
                                       : "P");
}
BENCHMARK(BM_SchemeAggregate)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
