// Performance microbenches (google-benchmark): throughput of each detector,
// the AR fit, the BF filter, and the end-to-end P-scheme. Not a paper
// figure — these are the engineering ablations DESIGN.md calls out (e.g.
// by-count vs by-duration ME windows).
#include <benchmark/benchmark.h>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "cluster/single_linkage.hpp"
#include "detectors/arc_detector.hpp"
#include "detectors/hc_detector.hpp"
#include "detectors/mc_detector.hpp"
#include "detectors/me_detector.hpp"
#include "core/attack_generator.hpp"
#include "rating/fair_generator.hpp"
#include "signal/ar.hpp"
#include "signal/rolling.hpp"
#include "signal/windowing.hpp"
#include "stats/glrt.hpp"
#include "util/parallel.hpp"

namespace {

using namespace rab;

rating::ProductRatings stream_of(std::int64_t days) {
  rating::FairDataConfig config;
  config.product_count = 1;
  config.history_days = static_cast<double>(days);
  return rating::FairDataGenerator(config).generate_product(ProductId(1));
}

void BM_MeanChangeDetector(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  const detectors::MeanChangeDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_MeanChangeDetector)->Arg(60)->Arg(180)->Arg(365);

// Copy-vs-rolling ablation for the MC indicator curve. The detector itself
// uses the rolling prefix path; this is the former per-sample copy loop,
// kept here as the baseline the fast path is measured against.
void BM_MeanChangeCurveCopy(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  const std::vector<signal::Sample> samples = stream.samples();
  const stats::GaussianMeanGlrt glrt(detectors::McConfig{}.glrt_threshold);
  const signal::WindowSpec window = detectors::McConfig{}.window;
  for (auto _ : state) {
    signal::Curve curve;
    curve.reserve(samples.size());
    for (std::size_t k = 0; k < samples.size(); ++k) {
      const signal::IndexRange w = signal::window_around(samples, k, window);
      const auto [left, right] = signal::split_at(w, k);
      const std::vector<double> x1 = signal::values_in(samples, left);
      const std::vector<double> x2 = signal::values_in(samples, right);
      curve.push_back(
          signal::CurvePoint{samples[k].time, glrt.statistic(x1, x2)});
    }
    benchmark::DoNotOptimize(curve);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_MeanChangeCurveCopy)->Arg(60)->Arg(180)->Arg(365);

void BM_MeanChangeCurveRolling(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  const detectors::MeanChangeDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.indicator_curve(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_MeanChangeCurveRolling)->Arg(60)->Arg(180)->Arg(365);

void BM_ArrivalRateDetector(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  const detectors::ArrivalRateDetector detector(detectors::ArcConfig{},
                                                detectors::ArcMode::kLow);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ArrivalRateDetector)->Arg(60)->Arg(180)->Arg(365);

void BM_HistogramDetector(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  const detectors::HistogramDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_HistogramDetector)->Arg(60)->Arg(180)->Arg(365);

void BM_ModelErrorDetectorByCount(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  const detectors::ModelErrorDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ModelErrorDetectorByCount)->Arg(60)->Arg(180);

void BM_ModelErrorDetectorByDuration(benchmark::State& state) {
  const auto stream = stream_of(state.range(0));
  detectors::MeConfig config;
  config.window = signal::WindowSpec::by_duration(14.0);
  const detectors::ModelErrorDetector detector(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ModelErrorDetectorByDuration)->Arg(60)->Arg(180);

void BM_ArFit(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> xs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    xs.push_back(rng.gaussian(4.0, 0.8));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fit_ar(xs, 4));
  }
}
BENCHMARK(BM_ArFit)->Arg(40)->Arg(100)->Arg(400);

void BM_SingleLinkage1d(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> xs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    xs.push_back(rng.uniform(0.0, 5.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::single_linkage_1d(xs, 2));
  }
}
BENCHMARK(BM_SingleLinkage1d)->Arg(40)->Arg(400);

void BM_SchemeAggregate(benchmark::State& state) {
  rating::FairDataConfig config;
  config.product_count = 9;
  config.history_days = 180.0;
  const rating::Dataset data =
      rating::FairDataGenerator(config).generate();

  const aggregation::SaScheme sa;
  const aggregation::BfScheme bf;
  const aggregation::PScheme p;
  const aggregation::AggregationScheme* scheme = nullptr;
  switch (state.range(0)) {
    case 0:
      scheme = &sa;
      break;
    case 1:
      scheme = &bf;
      break;
    default:
      scheme = &p;
      break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->aggregate(data, 30.0));
  }
  state.SetLabel(state.range(0) == 0   ? "SA"
                 : state.range(0) == 1 ? "BF"
                                       : "P");
}
BENCHMARK(BM_SchemeAggregate)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Serial-vs-parallel scaling of the P-scheme's per-product detector fan-out.
// Arg = worker threads (overrides RAB_THREADS for the run).
void BM_SchemeAggregateThreads(benchmark::State& state) {
  rating::FairDataConfig config;
  config.product_count = 9;
  config.history_days = 180.0;
  const rating::Dataset data =
      rating::FairDataGenerator(config).generate();
  const aggregation::PScheme p;

  util::set_thread_count(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.aggregate(data, 30.0));
  }
  util::set_thread_count(1);
  state.SetLabel("P/t" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SchemeAggregateThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Serial-vs-parallel scaling of Procedure 2's per-round attack evaluations
// (a shortened region search against the P-scheme; fig5 runs the full one).
void BM_RegionSearchThreads(benchmark::State& state) {
  const challenge::Challenge challenge = challenge::Challenge::make_default();
  const aggregation::PScheme p;
  const core::AttackGenerator generator(challenge, 4242);

  core::AttackProfile timing;
  timing.duration_days = 50.0;
  timing.offset_days = 5.0;
  core::RegionSearchOptions options;
  options.trials = 4;
  options.max_rounds = 1;

  util::set_thread_count(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.optimize(p, options, timing));
  }
  util::set_thread_count(1);
  state.SetLabel("t" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RegionSearchThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
