// Extension: seed robustness of the headline result.
//
// The paper's claim is about one dataset and one human population; a
// synthetic reproduction must show its headline shape is not an artifact
// of one lucky seed. This bench re-runs the Section V-A comparison on
// several independently generated challenges and populations.
#include <cstdio>
#include <vector>

#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "bench_common.hpp"
#include "challenge/participants.hpp"

int main() {
  using namespace rab;
  bench::print_header(
      "Extension: P/SA max-MP ratio across independent challenge seeds");

  const aggregation::SaScheme sa;
  const aggregation::PScheme p;
  const std::vector<std::uint64_t> seeds{1001, 2002, 3003, 4004};

  std::printf("# seed,sa_max,p_max,ratio\n");
  int reproduced = 0;
  for (std::uint64_t seed : seeds) {
    const challenge::Challenge challenge =
        challenge::Challenge::make_default(seed);
    const auto population =
        challenge::ParticipantPopulation(challenge, seed ^ 0xbeef)
            .generate(100);

    double sa_max = 0.0;
    double p_max = 0.0;
    for (const auto& submission : population) {
      sa_max = std::max(sa_max,
                        challenge.evaluate(submission, sa).overall);
      p_max =
          std::max(p_max, challenge.evaluate(submission, p).overall);
    }
    const double ratio = p_max / sa_max;
    std::printf("%llu,%.3f,%.3f,%.3f\n",
                static_cast<unsigned long long>(seed), sa_max, p_max,
                ratio);
    if (ratio < 0.75) ++reproduced;
  }

  bench::shape_check(
      "the P-scheme bounds worst-case MP well below SA on every seed",
      reproduced == static_cast<int>(seeds.size()));
  return 0;
}
