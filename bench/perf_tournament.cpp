// Tournament benches (google-benchmark): how fast the scheme x attack
// matrix fills. cells/sec (items processed = cells) is the headline rate
// bench_report tracks; the P-scheme bench also reports the detector-
// result cache hit rate its region search sustains — the warm-cache
// fraction is what makes repeated probes on the same cell cheap.
#include <benchmark/benchmark.h>

#include "challenge/challenge.hpp"
#include "core/tournament.hpp"
#include "util/metrics.hpp"

namespace {

using namespace rab;

core::TournamentOptions mini_options() {
  core::TournamentOptions options;
  options.schemes = {"SA", "MED"};
  options.attacks = {"indep-random", "squad-pre"};
  options.search.trials = 2;
  options.search.max_rounds = 2;
  options.search.grid = 2;
  return options;
}

/// The 2x2 mini matrix tier1.sh --tournament smokes: cheap schemes, one
/// independent and one squad column.
void BM_TournamentMini(benchmark::State& state) {
  const challenge::Challenge challenge = challenge::Challenge::make_default();
  const core::TournamentOptions options = mini_options();
  std::size_t cells = 0;
  for (auto _ : state) {
    const core::TournamentResult result =
        core::run_tournament(challenge, options);
    benchmark::DoNotOptimize(result.cells.data());
    cells += result.cells.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["cells_per_sec"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TournamentMini)->Unit(benchmark::kMillisecond);

/// A single P-scheme cell: the detector bank dominates, so the result
/// cache decides the cost of every probe after the first per stream.
/// hit_rate is (cache.hits delta) / (hits + misses delta) over the run.
void BM_TournamentPCellWarmCache(benchmark::State& state) {
  const challenge::Challenge challenge = challenge::Challenge::make_default();
  core::TournamentOptions options = mini_options();
  options.schemes = {"P"};
  options.attacks = {"indep-heuristic"};
  const util::metrics::Snapshot before = util::metrics::scrape();
  std::size_t cells = 0;
  for (auto _ : state) {
    const core::TournamentResult result =
        core::run_tournament(challenge, options);
    benchmark::DoNotOptimize(result.cells.data());
    cells += result.cells.size();
  }
  const util::metrics::Snapshot after = util::metrics::scrape();
  const double hits = static_cast<double>(
      after.counter_value("cache.hits") - before.counter_value("cache.hits"));
  const double misses =
      static_cast<double>(after.counter_value("cache.misses") -
                          before.counter_value("cache.misses"));
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["cells_per_sec"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] =
      hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
}
BENCHMARK(BM_TournamentPCellWarmCache)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
