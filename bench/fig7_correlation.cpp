// Figure 7: does correlating unfair ratings with the fair ratings improve
// the attack? Take the top-10 submissions (by MP under the P-scheme),
// reorder each submission's values with Procedure 3 (heuristic
// anti-correlation) and with 5 random shuffles, and compare the MPs.
//
// The paper reports the heuristic ordering beats the original most of the
// time. Our reproduction (EXPERIMENTS.md) confirms that direction against
// the signal-model detection pathway (ARC+ME/MC) and finds the histogram
// detector punishes the ordering under the full P-scheme, so both
// configurations are printed.
#include <cstdio>
#include <vector>

#include "aggregation/p_scheme.hpp"
#include "bench_common.hpp"
#include "challenge/analysis.hpp"
#include "core/value_time_mapper.hpp"

namespace {

using namespace rab;

challenge::Submission reorder(const challenge::Challenge& challenge,
                              const challenge::Submission& submission,
                              core::CorrelationMode mode, Rng rng) {
  challenge::Submission out;
  out.label = submission.label + "-reordered";
  for (ProductId id : challenge.targets()) {
    const auto rs = submission.for_product(id);
    if (rs.empty()) continue;
    std::vector<double> values;
    std::vector<Day> times;
    for (const auto& r : rs) {
      values.push_back(r.value);
      times.push_back(r.time);
    }
    const auto mapped = core::map_values_to_times(
        values, times, mode, challenge.fair().product(id), rng);
    for (std::size_t k = 0; k < mapped.size(); ++k) {
      rating::Rating r = rs[k];
      r.time = mapped[k].time;
      r.value = mapped[k].value;
      out.ratings.push_back(r);
    }
  }
  return out;
}

void run(const aggregation::AggregationScheme& scheme, const char* tag,
         bool* heuristic_wins_majority) {
  const auto& challenge = bench::default_challenge();
  const auto& population = bench::default_population();

  // Top 10 by this scheme's MP.
  std::vector<std::pair<double, std::size_t>> scored;
  for (std::size_t i = 0; i < population.size(); ++i) {
    scored.emplace_back(
        challenge.evaluate(population[i], scheme).overall, i);
  }
  std::sort(scored.rbegin(), scored.rend());

  std::printf("# [%s] id,label,original_mp,heuristic_mp,random_mp_avg5\n",
              tag);
  int heuristic_wins = 0;
  for (int k = 0; k < 10; ++k) {
    const auto& submission = population[scored[k].second];
    Rng rng(4096 + static_cast<std::uint64_t>(k));
    const double original = scored[k].first;
    const double heuristic =
        challenge
            .evaluate(reorder(challenge, submission,
                              core::CorrelationMode::kHeuristic,
                              rng.fork(0)),
                      scheme)
            .overall;
    double random = 0.0;
    for (int j = 0; j < 5; ++j) {
      random += challenge
                    .evaluate(reorder(challenge, submission,
                                      core::CorrelationMode::kRandom,
                                      rng.fork(10 + j)),
                              scheme)
                    .overall;
    }
    random /= 5.0;
    if (heuristic >= random) ++heuristic_wins;
    std::printf("%d,%s,%.3f,%.3f,%.3f\n", k, submission.label.c_str(),
                original, heuristic, random);
  }
  std::printf("[%s] heuristic >= random in %d/10 cases\n", tag,
              heuristic_wins);
  if (heuristic_wins_majority != nullptr) {
    *heuristic_wins_majority = heuristic_wins >= 6;
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7: ordering strategies (original / Procedure-3 heuristic / "
      "random), top-10 submissions");

  bool signal_model_majority = false;
  {
    // Signal-model pathway (the paper's emphasis): histogram detector off.
    aggregation::PConfig config;
    config.toggles.use_hc = false;
    const aggregation::PScheme p_signal(config);
    run(p_signal, "P(signal-model)", &signal_model_majority);
  }
  {
    const aggregation::PScheme p_full;
    run(p_full, "P(full)", nullptr);
  }

  bench::shape_check(
      "Procedure-3 correlation matches or beats random ordering most of "
      "the time against the signal-model detectors",
      signal_model_majority);
  return 0;
}
