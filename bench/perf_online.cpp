// Streaming-ingestion microbenches (google-benchmark): the naive
// full-reanalysis OnlineMonitor baseline (no detector-result cache, one
// thread — what every epoch used to cost) versus the incremental engine
// (IntegrationCache + parallel product fan-out + retention compaction).
// Items processed = ratings ingested, so the items/sec ratio between
// BM_OnlineIngestIncrementalRetention and BM_OnlineIngestFullReanalysis
// is the end-to-end ingest speedup bench_report tracks; the
// resident_ratings counter shows the retention window keeping history
// flat while the baseline pins the whole feed.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <thread>
#include <vector>

#include "detectors/online_monitor.hpp"
#include "rating/fair_generator.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace rab;

/// Default-challenge-scale feed (9 products) over a multi-year streaming
/// horizon, with two planted downgrade bursts, merged into one
/// time-ordered stream. The long horizon is the point: full reanalysis
/// pays for the entire accumulated history at every epoch (quadratic in
/// stream age), while the retention window keeps per-epoch cost flat.
const std::vector<rating::Rating>& default_feed() {
  static const std::vector<rating::Rating> feed = [] {
    rating::FairDataConfig config;
    config.history_days = 1440.0;
    config.seed = 20070425;
    rating::Dataset data = rating::FairDataGenerator(config).generate();

    Rng rng(99);
    std::vector<rating::Rating> attack;
    for (int burst = 0; burst < 2; ++burst) {
      const double begin = burst == 0 ? 180.0 : 1260.0;
      for (int i = 0; i < 50; ++i) {
        rating::Rating r;
        r.time = rng.uniform(begin, begin + 12.0);
        r.value = 0.0;
        r.rater = RaterId(1'000'000 + burst * 100 + i);
        r.product = ProductId(1 + burst);
        r.unfair = true;
        attack.push_back(r);
      }
    }
    data = data.with_added(attack);

    std::vector<rating::Rating> merged;
    for (ProductId id : data.product_ids()) {
      const auto& rs = data.product(id).rows();
      merged.insert(merged.end(), rs.begin(), rs.end());
    }
    std::sort(merged.begin(), merged.end(), rating::ByTime{});
    return merged;
  }();
  return feed;
}

std::size_t hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void run_feed(benchmark::State& state, const detectors::OnlineConfig& config,
              std::size_t threads) {
  const std::vector<rating::Rating>& feed = default_feed();
  util::set_thread_count(threads);
  std::size_t resident = 0;
  std::size_t alarms = 0;
  for (auto _ : state) {
    detectors::OnlineMonitor monitor(config);
    monitor.ingest(std::span<const rating::Rating>(feed));
    monitor.flush();
    benchmark::DoNotOptimize(monitor.alarms().size());
    resident = monitor.resident_ratings();
    alarms = monitor.alarms().size();
  }
  util::set_thread_count(1);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * feed.size()));
  state.counters["resident_ratings"] =
      benchmark::Counter(static_cast<double>(resident));
  state.counters["alarms"] = benchmark::Counter(static_cast<double>(alarms));
}

/// The seed path: every epoch re-runs the full detector bank over every
/// product's entire history, serially.
void BM_OnlineIngestFullReanalysis(benchmark::State& state) {
  detectors::OnlineConfig config;
  config.epoch_days = 30.0;
  config.cache_streams = 0;
  run_feed(state, config, 1);
}
BENCHMARK(BM_OnlineIngestFullReanalysis)->Unit(benchmark::kMillisecond);

/// Cache + parallel fan-out, still unbounded history — bit-identical
/// alarms to the baseline (asserted in tests/test_online_monitor.cpp).
void BM_OnlineIngestIncremental(benchmark::State& state) {
  detectors::OnlineConfig config;
  config.epoch_days = 30.0;
  run_feed(state, config, hardware_threads());
}
BENCHMARK(BM_OnlineIngestIncremental)->Unit(benchmark::kMillisecond);

/// The production configuration: incremental engine plus a 90-day
/// retention window, so per-epoch cost and resident history stay flat as
/// the feed grows.
void BM_OnlineIngestIncrementalRetention(benchmark::State& state) {
  detectors::OnlineConfig config;
  config.epoch_days = 30.0;
  config.retention_days = 90.0;
  run_feed(state, config, hardware_threads());
}
BENCHMARK(BM_OnlineIngestIncrementalRetention)
    ->Unit(benchmark::kMillisecond);

/// Monitor loaded with the production-configuration feed, for the
/// checkpoint benches below. The state snapshotted is what a long-lived
/// deployment would carry: retention-window ratings, trust counts, alarm
/// and epoch history.
const detectors::OnlineMonitor& loaded_monitor() {
  static const detectors::OnlineMonitor monitor = [] {
    detectors::OnlineConfig config;
    config.epoch_days = 30.0;
    config.retention_days = 90.0;
    detectors::OnlineMonitor m(config);
    m.ingest(std::span<const rating::Rating>(default_feed()));
    m.flush();
    return m;
  }();
  return monitor;
}

/// Cost of one crash-safety snapshot (serialize + CRC + tmp-write + fsync
/// + rename). This is the per-epoch overhead a deployment pays for
/// --checkpoint-dir, so it is tracked next to the ingest throughput it
/// taxes.
void BM_OnlineCheckpointSave(benchmark::State& state) {
  const detectors::OnlineMonitor& monitor = loaded_monitor();
  const std::filesystem::path dir = "bench-ckpt-scratch";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "bench.rabck").string();
  std::uintmax_t bytes = 0;
  for (auto _ : state) {
    monitor.save_checkpoint(path);
    bytes = std::filesystem::file_size(path);
  }
  state.counters["snapshot_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_OnlineCheckpointSave)->Unit(benchmark::kMillisecond);

/// Cost of recovery: read + checksum-verify + rebuild the monitor from a
/// snapshot. Restart latency after a crash is this plus replaying the
/// ratings that arrived since the snapshot.
void BM_OnlineCheckpointRestore(benchmark::State& state) {
  const detectors::OnlineMonitor& monitor = loaded_monitor();
  const std::filesystem::path dir = "bench-ckpt-scratch";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "bench.rabck").string();
  monitor.save_checkpoint(path);
  std::size_t ingested = 0;
  for (auto _ : state) {
    detectors::OnlineMonitor restored(monitor.config());
    restored.restore_checkpoint(path);
    benchmark::DoNotOptimize(restored.alarms().size());
    ingested = restored.ingested();
  }
  state.counters["ingested"] =
      benchmark::Counter(static_cast<double>(ingested));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_OnlineCheckpointRestore)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
