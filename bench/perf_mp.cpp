// MP-evaluation microbenches (google-benchmark): the copy path
// (Dataset::with_added + aggregate) versus the zero-copy overlay path
// (DatasetOverlay + aggregate_overlay + detector-result caching) that the
// region search and the attack generator actually drive, plus the
// allocation-light evaluate_overall fast path. Items processed = MP
// evaluations, so the evals/sec ratio between BM_MpEvaluateCopy and
// BM_MpEvaluateOverlay is the hot-loop speedup bench_report tracks.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "challenge/challenge.hpp"
#include "core/attack_generator.hpp"

namespace {

using namespace rab;

enum SchemeKind : std::int64_t { kSa = 0, kP = 1 };

std::unique_ptr<aggregation::AggregationScheme> make_scheme(
    std::int64_t kind) {
  if (kind == kP) return std::make_unique<aggregation::PScheme>();
  return std::make_unique<aggregation::SaScheme>();
}

/// The pre-overlay baseline: detector-result caching off, so every
/// evaluation re-runs the full detector bank like the old copy path did.
std::unique_ptr<aggregation::AggregationScheme> make_uncached_scheme(
    std::int64_t kind) {
  if (kind == kP) {
    aggregation::PConfig config;
    config.cache_streams = 0;
    return std::make_unique<aggregation::PScheme>(config);
  }
  return std::make_unique<aggregation::SaScheme>();
}

const char* scheme_label(std::int64_t kind) {
  return kind == kP ? "P" : "SA";
}

/// Default-size challenge plus a cycle of distinct generated submissions —
/// the same shape of work the region-search inner loop performs (repeated
/// evaluations, a handful of touched products each).
struct MpBenchFixture {
  challenge::Challenge challenge = challenge::Challenge::make_default();
  std::vector<challenge::Submission> submissions;

  explicit MpBenchFixture(std::size_t count = 8) {
    const core::AttackGenerator generator(challenge, /*seed=*/424242);
    core::AttackProfile profile;
    profile.bias = -3.0;
    profile.sigma = 0.5;
    profile.duration_days = 40.0;
    for (std::size_t i = 0; i < count; ++i) {
      submissions.push_back(generator.generate(profile, 0xbe9c0000ULL + i));
    }
  }
};

void BM_MpEvaluateCopy(benchmark::State& state) {
  const MpBenchFixture fx;
  const auto scheme = make_uncached_scheme(state.range(0));
  state.SetLabel(scheme_label(state.range(0)));
  // Warm the fair-baseline cache so both paths measure the hot loop only.
  (void)fx.challenge.metric().evaluate_dataset(
      fx.challenge.apply(fx.submissions[0]), *scheme);
  std::size_t i = 0;
  for (auto _ : state) {
    const challenge::Submission& s =
        fx.submissions[i++ % fx.submissions.size()];
    benchmark::DoNotOptimize(
        fx.challenge.metric()
            .evaluate_dataset(fx.challenge.fair().with_added(s.ratings),
                              *scheme)
            .overall);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MpEvaluateCopy)->Arg(kSa)->Arg(kP)->Unit(benchmark::kMillisecond);

void BM_MpEvaluateOverlay(benchmark::State& state) {
  const MpBenchFixture fx;
  const auto scheme = make_scheme(state.range(0));
  state.SetLabel(scheme_label(state.range(0)));
  (void)fx.challenge.metric().evaluate(fx.submissions[0], *scheme);
  std::size_t i = 0;
  for (auto _ : state) {
    const challenge::Submission& s =
        fx.submissions[i++ % fx.submissions.size()];
    benchmark::DoNotOptimize(
        fx.challenge.metric().evaluate(s, *scheme).overall);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MpEvaluateOverlay)
    ->Arg(kSa)
    ->Arg(kP)
    ->Unit(benchmark::kMillisecond);

void BM_MpEvaluateOverall(benchmark::State& state) {
  const MpBenchFixture fx;
  const auto scheme = make_scheme(state.range(0));
  state.SetLabel(scheme_label(state.range(0)));
  (void)fx.challenge.metric().evaluate_overall(fx.submissions[0], *scheme);
  std::size_t i = 0;
  for (auto _ : state) {
    const challenge::Submission& s =
        fx.submissions[i++ % fx.submissions.size()];
    benchmark::DoNotOptimize(
        fx.challenge.metric().evaluate_overall(s, *scheme));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MpEvaluateOverall)
    ->Arg(kSa)
    ->Arg(kP)
    ->Unit(benchmark::kMillisecond);

// The acceptance-style case: re-evaluating one fixed submission (cache
// fully warm) — the upper bound the caches buy on repeated evaluation.
void BM_MpEvaluateRepeated(benchmark::State& state) {
  const MpBenchFixture fx(1);
  const auto scheme = make_scheme(state.range(0));
  state.SetLabel(scheme_label(state.range(0)));
  (void)fx.challenge.metric().evaluate(fx.submissions[0], *scheme);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.challenge.metric().evaluate(fx.submissions[0], *scheme).overall);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MpEvaluateRepeated)
    ->Arg(kSa)
    ->Arg(kP)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
