// Figure 4: variance-bias plot under the BF-scheme (beta-function
// majority-rule filtering). The paper's reading: BF only removes ratings
// with large bias and very small variance — the bottom-left corner of the
// R1 region empties compared with Figure 3, but R1 still dominates because
// a little variance defeats the filter.
#include <cstdio>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "bench_common.hpp"

int main() {
  using namespace rab;
  bench::print_header("Figure 4: variance-bias plot, BF-scheme, product 1");

  const aggregation::BfScheme scheme;
  const auto points = challenge::analyze_population(
      bench::default_challenge(), bench::default_population(), scheme);
  bench::print_variance_bias(points);

  const bench::RegionCounts regions = bench::lmp_regions(points);
  std::printf("LMP winners by region: R1=%d R2=%d R3=%d other=%d\n",
              regions.r1, regions.r2, regions.r3, regions.other);

  // The corner BF is supposed to clean out: bias <= -3.5, stddev <= 0.25.
  int bf_corner_winners = 0;
  for (const auto& p : points) {
    if (p.lmp && p.bias <= -3.5 && p.stddev <= 0.25) ++bf_corner_winners;
  }
  // Same corner under SA for contrast.
  const aggregation::SaScheme sa;
  const auto sa_points = challenge::analyze_population(
      bench::default_challenge(), bench::default_population(), sa);
  int sa_corner_winners = 0;
  for (const auto& p : sa_points) {
    if (p.lmp && p.bias <= -3.5 && p.stddev <= 0.25) ++sa_corner_winners;
  }
  std::printf("bottom-left-corner LMP winners: BF=%d vs SA=%d\n",
              bf_corner_winners, sa_corner_winners);

  bench::shape_check(
      "BF empties the bottom-left corner (large bias, very small variance) "
      "that wins under SA",
      bf_corner_winners < sa_corner_winners);
  bench::shape_check(
      "strong downgrade attacks against BF still favour large bias "
      "(R1 at least matches R3: moderate variance already defeats the "
      "filter)",
      regions.r1 >= regions.r3);
  return 0;
}
