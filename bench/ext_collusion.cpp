// Extension: collusion-group discovery across attack archetypes.
//
// The paper's threat model is collaborative unfair rating; this bench asks
// how visible the collaboration itself is, per strategy: what fraction of
// the 50-rater squad lands in the biggest discovered group (squad recall),
// and how many honest raters get dragged in (purity).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "challenge/collusion.hpp"
#include "challenge/participants.hpp"

int main() {
  using namespace rab;
  bench::print_header(
      "Extension: collusion-group discovery per attack archetype");

  const auto& challenge = bench::default_challenge();
  const challenge::ParticipantPopulation population(
      challenge, bench::kPopulationSeed);
  const std::int64_t attacker_base = challenge.config().attacker_id_base;
  const double squad =
      static_cast<double>(challenge.config().attack_raters);

  challenge::CollusionConfig config;
  config.time_window = 20.0;  // attacks span up to two months

  std::printf("# strategy,squad_recall,group_purity (mean over 3 draws)\n");
  double burst_recall = 0.0;
  double lowrate_recall = 0.0;
  for (challenge::StrategyKind kind : challenge::all_strategies()) {
    double recall_sum = 0.0;
    double purity_sum = 0.0;
    for (std::uint64_t stream = 0; stream < 3; ++stream) {
      const rating::Dataset data =
          challenge.apply(population.make(kind, stream));
      const auto groups = challenge::find_collusion_groups(data, config);
      double recall = 0.0;
      double purity = 1.0;
      if (!groups.empty()) {
        const auto& top = groups.front();
        std::size_t attackers = 0;
        for (RaterId rater : top.raters) {
          if (rater.value() >= attacker_base) ++attackers;
        }
        recall = static_cast<double>(attackers) / squad;
        purity = static_cast<double>(attackers) /
                 static_cast<double>(top.raters.size());
      }
      recall_sum += recall;
      purity_sum += purity;
    }
    std::printf("%s,%.3f,%.3f\n", to_string(kind), recall_sum / 3.0,
                purity_sum / 3.0);
    if (kind == challenge::StrategyKind::kNaiveExtreme) {
      burst_recall = recall_sum / 3.0;
    }
    if (kind == challenge::StrategyKind::kLowRate) {
      lowrate_recall = recall_sum / 3.0;
    }
  }

  bench::shape_check(
      "tightly coordinated squads (naive-extreme) are more exposed as a "
      "group than diffuse ones (low-rate)",
      burst_recall > lowrate_recall);
  return 0;
}
