// rab_chaos — standalone crash/recovery torture driver for OnlineMonitor.
//
// Builds a synthetic attacked feed, runs it uninterrupted for a reference,
// then replays it while killing the monitor at every catalogued failpoint,
// at injected short/corrupt snapshot writes, and at N random feed
// positions — recovering from the newest valid checkpoint each time and
// requiring the recovered run to be bit-identical (alarms, per-epoch
// stats, raw trust evidence) to the reference, at every requested thread
// count. A SIGTERM leg raises the real signal mid-feed and proves the
// drain path equals an explicit flush, and that the drain checkpoint is
// a valid resume point. Exit 0 when every scenario matches; 1 on any
// divergence.
//
//   rab_chaos
//   rab_chaos --days 300 --products 4 --kill-points 50 --threads 1,8
//   RAB_FAULTS='cache.insert:throw,every=64' rab_chaos --threads 8
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "detectors/checkpoint.hpp"
#include "detectors/online_monitor.hpp"
#include "rating/fair_generator.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/shutdown.hpp"

namespace {

using namespace rab;
namespace fs = std::filesystem;

struct Options {
  double days = 150.0;
  std::size_t products = 2;
  std::uint64_t seed = 7;
  std::size_t kill_points = 24;
  std::vector<std::size_t> threads = {1, 8};
  double epoch_days = 10.0;
  double retention_days = 40.0;
  std::string scratch = "rab-chaos-work";
};

std::vector<rating::Rating> make_feed(const Options& opt) {
  rating::FairDataConfig config;
  config.product_count = opt.products;
  config.history_days = opt.days;
  config.seed = opt.seed;
  rating::Dataset data = rating::FairDataGenerator(config).generate();

  // One burst attack per dataset so alarms and trust damage are real.
  Rng rng(opt.seed * 1000003 + 1);
  std::vector<rating::Rating> burst;
  const double begin = opt.days * 0.4;
  for (std::size_t i = 0; i < 50; ++i) {
    rating::Rating r;
    r.time = rng.uniform(begin, begin + 12.0);
    r.value = 0.0;
    r.rater = RaterId(1'000'000 + static_cast<std::int64_t>(i));
    r.product = ProductId(1 % opt.products);
    r.unfair = true;
    burst.push_back(r);
  }
  data = data.with_added(burst);

  std::vector<rating::Rating> feed;
  for (ProductId id : data.product_ids()) {
    const auto& rs = data.product(id).rows();
    feed.insert(feed.end(), rs.begin(), rs.end());
  }
  std::sort(feed.begin(), feed.end(), rating::ByTime{});
  return feed;
}

detectors::OnlineConfig base_config(const Options& opt) {
  detectors::OnlineConfig config;
  config.epoch_days = opt.epoch_days;
  config.retention_days = opt.retention_days;
  config.trust_forgetting = 0.95;
  return config;
}

/// Everything a recovered run must reproduce bit-identically.
struct Observable {
  std::vector<detectors::Alarm> alarms;
  std::vector<detectors::OnlineEpochStats> epochs;
  std::vector<trust::RaterCounts> trust;
  std::size_t ingested = 0;
  std::size_t resident = 0;
  std::size_t compacted = 0;

  friend bool operator==(const Observable&, const Observable&) = default;
};

Observable observe(const detectors::OnlineMonitor& m) {
  return Observable{m.alarms(),           m.epoch_stats(),
                    m.trust().export_counts(), m.ingested(),
                    m.resident_ratings(), m.compacted_ratings()};
}

class ScratchDir {
 public:
  explicit ScratchDir(std::string path) : path_(std::move(path)) {
    fs::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

detectors::OnlineMonitor recover(const detectors::OnlineConfig& config,
                                 const std::string& dir) {
  detectors::OnlineMonitor fresh(config);
  (void)fresh.restore_latest(dir);
  return fresh;
}

/// Replays the feed with `spec` armed; each injected IoError kills the
/// monitor, which is then recovered from the checkpoint directory.
Observable chaos_run(const std::vector<rating::Rating>& feed,
                     const Options& opt, const std::string& dir,
                     const std::string& spec, int& crashes) {
  detectors::OnlineConfig config = base_config(opt);
  config.checkpoint_dir = dir;
  util::arm_failpoints(spec);
  detectors::OnlineMonitor monitor(config);
  std::size_t next = 0;
  crashes = 0;
  while (crashes < 128) {
    try {
      while (next < feed.size()) {
        monitor.ingest(feed[next]);
        ++next;
      }
      monitor.flush();
      break;
    } catch (const IoError&) {
      ++crashes;
      monitor = recover(config, dir);
      next = monitor.ingested();
    }
  }
  util::disarm_failpoints();
  if (crashes >= 128) {
    throw LogicError("chaos: no forward progress under '" + spec + "'");
  }
  return observe(monitor);
}

/// Abrupt kill at feed position `kill_at`, then recover and replay.
Observable kill_run(const std::vector<rating::Rating>& feed,
                    const Options& opt, const std::string& dir,
                    std::size_t kill_at) {
  detectors::OnlineConfig config = base_config(opt);
  config.checkpoint_dir = dir;
  {
    detectors::OnlineMonitor doomed(config);
    for (std::size_t i = 0; i < kill_at; ++i) doomed.ingest(feed[i]);
  }
  detectors::OnlineMonitor monitor = recover(config, dir);
  for (std::size_t i = monitor.ingested(); i < feed.size(); ++i) {
    monitor.ingest(feed[i]);
  }
  monitor.flush();
  return observe(monitor);
}

struct Tally {
  int scenarios = 0;
  int mismatches = 0;

  void check(bool ok, const char* kind, const std::string& what) {
    ++scenarios;
    if (!ok) {
      ++mismatches;
      std::printf("FAIL  %-10s %s: recovered run diverged\n", kind,
                  what.c_str());
    }
  }
};

/// SIGTERM-drain leg: replay through the real signal machinery —
/// std::raise(SIGTERM) after `stop_at` ratings, a loop that polls
/// util::shutdown_requested() exactly like `rab monitor` does, then
/// OnlineMonitor::drain(). Two identities must hold:
///   1. the drained state equals an explicit flush() of the same prefix
///      (drain is the same analysis, just interruptible);
///   2. a monitor recovered from the drain checkpoint and fed the rest
///      of the feed equals the uninterrupted full-feed reference (the
///      drain checkpoint is a resume point, not a dead end).
void sigterm_drain_run(const std::vector<rating::Rating>& feed,
                       const Options& opt, const std::string& dir,
                       std::size_t stop_at, const Observable& reference,
                       Tally& tally) {
  util::install_shutdown_handlers();
  util::reset_shutdown_flag();

  detectors::OnlineConfig config = base_config(opt);
  config.checkpoint_dir = dir;
  detectors::OnlineMonitor monitor(config);
  std::size_t next = 0;
  while (next < feed.size() && !util::shutdown_requested()) {
    monitor.ingest(feed[next]);
    ++next;
    if (next == stop_at) std::raise(SIGTERM);
  }
  monitor.drain();
  const std::string at = "at rating " + std::to_string(next);

  detectors::OnlineMonitor flushed(base_config(opt));
  for (std::size_t i = 0; i < next; ++i) flushed.ingest(feed[i]);
  flushed.flush();
  tally.check(observe(monitor) == observe(flushed), "sigterm",
              at + " (drain == flush)");

  detectors::OnlineMonitor resumed = recover(config, dir);
  for (std::size_t i = resumed.ingested(); i < feed.size(); ++i) {
    resumed.ingest(feed[i]);
  }
  resumed.flush();
  tally.check(observe(resumed) == reference, "sigterm",
              at + " (resume == reference)");

  util::reset_shutdown_flag();
}

int run(const Options& opt) {
  const std::vector<rating::Rating> feed = make_feed(opt);
  std::printf("chaos: %zu ratings, %zu products, %.0f days, epochs of %.0f "
              "days\n",
              feed.size(), opt.products, opt.days, opt.epoch_days);

  Tally tally;
  for (const std::size_t threads : opt.threads) {
    util::set_thread_count(threads);
    std::printf("-- %zu thread(s)\n", threads);

    detectors::OnlineMonitor reference_monitor(base_config(opt));
    for (const auto& r : feed) reference_monitor.ingest(r);
    reference_monitor.flush();
    const Observable reference = observe(reference_monitor);
    std::printf("reference: %zu epochs, %zu alarms, %zu raters\n",
                reference.epochs.size(), reference.alarms.size(),
                reference.trust.size());

    int fired = 0;
    for (const std::string_view name : util::failpoint_catalog()) {
      ScratchDir dir(opt.scratch);
      int crashes = 0;
      const Observable got = chaos_run(feed, opt, dir.path(),
                                       std::string(name) + ":throw",
                                       crashes);
      tally.check(got == reference, "failpoint", std::string(name));
      if (util::failpoint_fires(name) > 0) ++fired;
    }
    std::printf("failpoints: %zu catalogued, %d on the monitor path\n",
                util::failpoint_catalog().size(), fired);

    for (const std::string& spec :
         {std::string("checkpoint.write.body:short"),
          std::string("checkpoint.write.body:corrupt,seed=3"),
          std::string("checkpoint.write.body:short,every=4"),
          std::string("checkpoint.write.rename:throw,every=5")}) {
      ScratchDir dir(opt.scratch);
      int crashes = 0;
      const Observable got = chaos_run(feed, opt, dir.path(), spec, crashes);
      tally.check(got == reference, "inject", spec);
    }

    Rng rng(opt.seed * 31 + 2026);
    std::vector<std::size_t> kills{0, 1, feed.size() - 1, feed.size()};
    while (kills.size() < opt.kill_points) {
      kills.push_back(static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(feed.size()) - 1)));
    }
    for (const std::size_t kill_at : kills) {
      ScratchDir dir(opt.scratch);
      tally.check(kill_run(feed, opt, dir.path(), kill_at) == reference,
                  "kill", "at rating " + std::to_string(kill_at));
    }
    std::printf("kill points: %zu random positions recovered\n",
                kills.size());

    const std::size_t n = feed.size();
    const std::size_t stops[] = {n / 5, n / 2, (4 * n) / 5};
    for (const std::size_t stop_at : stops) {
      ScratchDir dir(opt.scratch);
      sigterm_drain_run(feed, opt, dir.path(), stop_at, reference, tally);
    }
    std::printf("sigterm: %zu drain points, drain==flush and "
                "resume==reference\n",
                std::size(stops));
  }

  if (tally.mismatches == 0) {
    std::printf("chaos: all %d scenarios bit-identical\n", tally.scenarios);
    return 0;
  }
  std::printf("chaos: %d of %d scenarios DIVERGED\n", tally.mismatches,
              tally.scenarios);
  return 1;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: rab_chaos [--days D] [--products N] [--seed S]\n"
      "                 [--kill-points N] [--threads 1,8]\n"
      "                 [--epoch DAYS] [--retention DAYS] [--dir PATH]\n"
      "Crash/recovery torture test: exit 0 when every recovered run is\n"
      "bit-identical to the uninterrupted reference, 1 otherwise.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    std::map<std::string, std::string> flags;
    for (int i = 1; i + 1 < argc; i += 2) {
      const std::string key = argv[i];
      if (key.rfind("--", 0) != 0) return usage();
      flags[key.substr(2)] = argv[i + 1];
    }
    if ((argc - 1) % 2 != 0) return usage();

    const auto get = [&](const char* name, auto parse, auto fallback) {
      const auto it = flags.find(name);
      return it == flags.end() ? fallback : parse(it->second);
    };
    // Checked parsers: "10x", "-1" and plain garbage must be reported as
    // usage errors naming the flag, not parsed partially (std::stod) or
    // wrapped to a huge unsigned (std::stoul), and never escape as a
    // generic std::invalid_argument.
    opt.days = get("days", [](const std::string& s) {
      return util::parse_double_in(s, "--days", 1.0, 1.0e6);
    }, opt.days);
    opt.products = get("products", [](const std::string& s) {
      return static_cast<std::size_t>(
          util::parse_u64_in(s, "--products", 1, 1u << 20));
    }, opt.products);
    opt.seed = get("seed", [](const std::string& s) {
      return util::parse_u64(s, "--seed");
    }, opt.seed);
    opt.kill_points = get("kill-points", [](const std::string& s) {
      return static_cast<std::size_t>(
          util::parse_u64_in(s, "--kill-points", 4, 1u << 20));
    }, opt.kill_points);
    opt.epoch_days = get("epoch", [](const std::string& s) {
      return util::parse_double_in(s, "--epoch", 0.001, 1.0e6);
    }, opt.epoch_days);
    opt.retention_days = get("retention", [](const std::string& s) {
      return util::parse_double_in(s, "--retention", 0.001, 1.0e6);
    }, opt.retention_days);
    opt.scratch = get("dir", [](const std::string& s) { return s; },
                      opt.scratch);
    if (const auto it = flags.find("threads"); it != flags.end()) {
      opt.threads.clear();
      const std::string& list = it->second;
      std::size_t begin = 0;
      while (begin <= list.size()) {
        const std::size_t end = std::min(list.find(',', begin), list.size());
        opt.threads.push_back(static_cast<std::size_t>(util::parse_u64_in(
            list.substr(begin, end - begin), "--threads", 1, 256)));
        begin = end + 1;
      }
    }
    if (opt.kill_points < 4 || opt.threads.empty() || opt.products == 0) {
      return usage();
    }
    return run(opt);
  } catch (const InvalidArgument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
