#!/usr/bin/env python3
"""Compare fresh bench_report JSON against the checked-in baseline.

Usage:
    tools/bench_delta.py [--current DIR] [--baseline DIR]

Reads every BENCH_*.json in the current directory (default: build/) that
has a matching file in the baseline directory (default: bench/baseline/),
prints the per-benchmark ratio baseline/current (>1 means faster now), and
a geometric-mean speedup per suite and overall. Informational only: the
exit code is always 0 so a slow run never fails a build; CI gates on the
tier-1 tests, not on wall clock.

Stdlib only — no third-party imports.
"""

import argparse
import glob
import json
import math
import os
import sys


def load_times(path):
    """Map benchmark name -> real_time (ns) from google-benchmark JSON."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        time = bench.get("real_time")
        if name is not None and time is not None:
            times[name] = float(time)
    return times


def geomean(ratios):
    vals = [r for r in ratios if r > 0.0]
    if not vals:
        return None
    return math.exp(sum(math.log(r) for r in vals) / len(vals))


def main():
    parser = argparse.ArgumentParser(
        description="Print before/after deltas for bench_report output.")
    parser.add_argument("--current", default="build",
                        help="directory with fresh BENCH_*.json (default: build)")
    parser.add_argument("--baseline", default="bench/baseline",
                        help="directory with baseline BENCH_*.json "
                             "(default: bench/baseline)")
    args = parser.parse_args()

    if not os.path.isdir(args.baseline):
        print(f"bench_delta: no baseline directory at {args.baseline}; "
              "nothing to compare.")
        return 0

    current_files = sorted(glob.glob(os.path.join(args.current,
                                                  "BENCH_*.json")))
    if not current_files:
        print(f"bench_delta: no BENCH_*.json under {args.current}; "
              "run the bench_report target first.")
        return 0

    all_ratios = []
    compared_any = False
    for cur_path in current_files:
        name = os.path.basename(cur_path)
        base_path = os.path.join(args.baseline, name)
        if not os.path.isfile(base_path):
            print(f"{name}: no baseline, skipped")
            continue
        try:
            cur = load_times(cur_path)
            base = load_times(base_path)
        except (json.JSONDecodeError, OSError) as err:
            print(f"{name}: unreadable ({err}), skipped")
            continue

        shared = sorted(set(cur) & set(base))
        # Benchmarks on only one side are reported, not silently dropped:
        # a new bench with no baseline row would otherwise look "covered",
        # and a vanished one would hide a deleted or renamed benchmark.
        only_current = sorted(set(cur) - set(base))
        only_baseline = sorted(set(base) - set(cur))
        for bench in only_current:
            print(f"{name}: warning: {bench} has no baseline entry, skipped "
                  "(add it to bench/baseline/ to track it)")
        for bench in only_baseline:
            print(f"{name}: warning: baseline entry {bench} missing from "
                  "this run, skipped")
        if not shared:
            print(f"{name}: no overlapping benchmarks, skipped")
            continue
        compared_any = True

        print(f"\n{name}  (baseline/current real_time; >1.00x is faster now)")
        suite_ratios = []
        for bench in shared:
            ratio = base[bench] / cur[bench] if cur[bench] > 0 else 0.0
            suite_ratios.append(ratio)
            print(f"  {bench:45s} {base[bench]:>12.0f} -> {cur[bench]:>10.0f}"
                  f"  {ratio:6.2f}x")
        gm = geomean(suite_ratios)
        if gm is not None:
            print(f"  {'geomean':45s} {'':>12s}    {'':>10s}  {gm:6.2f}x")
        all_ratios.extend(suite_ratios)

    if compared_any:
        gm = geomean(all_ratios)
        if gm is not None:
            print(f"\noverall geomean speedup vs baseline: {gm:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
