#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then (optionally) the
# parallel execution engine's determinism and detector tests under
# ThreadSanitizer.
#
#   tools/tier1.sh           # build + ctest + streaming-monitor smoke test
#   tools/tier1.sh --tsan    # additionally: TSAN build of the threaded tests
#   tools/tier1.sh --ubsan   # additionally: UBSan build of the ingest tests
#   tools/tier1.sh --chaos   # additionally: ASan+UBSan build of the
#                            # checkpoint/failpoint crash-recovery torture
#
# The TSAN pass builds into build-tsan/ with -DRAB_TSAN=ON and runs the
# tests that exercise the thread pool (test_parallel), the detector suite
# whose hot paths run inside parallel_for (test_detectors), and the overlay
# equivalence suite that hammers the detector-result cache from the pool
# (test_overlay).
#
# The UBSan pass builds into build-ubsan/ with -DRAB_UBSAN=ON and runs the
# suites that parse untrusted input or narrow integers (test_util,
# test_rating, test_challenge) plus the streaming monitor
# (test_online_monitor).
#
# The chaos pass builds into build-chaos/ with -DRAB_ASAN=ON -DRAB_UBSAN=ON
# and runs the fault-injection and checkpoint suites (test_failpoint,
# test_checkpoint, test_chaos) plus the rab_chaos kill-and-restore driver,
# at 1 and 8 worker threads. Every snapshot written mid-crash must restore
# bit-identically or be rejected by its checksum.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
# End-to-end smoke test: the streaming example must run and raise alarms.
./build/examples/streaming_monitor >/dev/null

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DRAB_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target test_parallel test_detectors test_overlay
  # Exercise the pool with real contention regardless of the host's cores.
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_parallel
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_detectors
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_overlay
fi

if [[ "${1:-}" == "--ubsan" ]]; then
  cmake -B build-ubsan -S . -DRAB_UBSAN=ON >/dev/null
  cmake --build build-ubsan -j "$(nproc)" \
    --target test_util test_rating test_challenge test_online_monitor
  ./build-ubsan/tests/test_util
  ./build-ubsan/tests/test_rating
  ./build-ubsan/tests/test_challenge
  RAB_THREADS=8 ./build-ubsan/tests/test_online_monitor
fi

if [[ "${1:-}" == "--chaos" ]]; then
  cmake -B build-chaos -S . -DRAB_ASAN=ON -DRAB_UBSAN=ON >/dev/null
  cmake --build build-chaos -j "$(nproc)" \
    --target test_failpoint test_checkpoint test_chaos rab_chaos
  for threads in 1 8; do
    RAB_THREADS="$threads" ./build-chaos/tests/test_failpoint
    RAB_THREADS="$threads" ./build-chaos/tests/test_checkpoint
    RAB_THREADS="$threads" ./build-chaos/tests/test_chaos
  done
  # Kill-and-restore torture across every catalogued failpoint plus random
  # kill offsets; checks bit-identical recovery at 1 and 8 threads itself.
  ./build-chaos/tools/rab_chaos
fi
