#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then (optionally) the
# parallel execution engine's determinism and detector tests under
# ThreadSanitizer.
#
#   tools/tier1.sh           # build + ctest
#   tools/tier1.sh --tsan    # additionally: TSAN build of the threaded tests
#
# The TSAN pass builds into build-tsan/ with -DRAB_TSAN=ON and runs the
# tests that exercise the thread pool (test_parallel), the detector suite
# whose hot paths run inside parallel_for (test_detectors), and the overlay
# equivalence suite that hammers the detector-result cache from the pool
# (test_overlay).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DRAB_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target test_parallel test_detectors test_overlay
  # Exercise the pool with real contention regardless of the host's cores.
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_parallel
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_detectors
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_overlay
fi
