#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then (optionally) the
# parallel execution engine's determinism and detector tests under
# ThreadSanitizer.
#
#   tools/tier1.sh           # build + ctest + streaming-monitor smoke test
#   tools/tier1.sh --tsan    # additionally: TSAN build of the threaded tests
#   tools/tier1.sh --ubsan   # additionally: UBSan build of the ingest tests
#   tools/tier1.sh --chaos   # additionally: ASan+UBSan build of the
#                            # checkpoint/failpoint crash-recovery torture
#   tools/tier1.sh --strict-fp # additionally: RAB_STRICT_FP=ON build (exact
#                            # scalar FP order in the batch kernels) + full
#                            # suite + determinism tests at RAB_THREADS=8
#   tools/tier1.sh --serve   # additionally: live `rab serve` smoke — loadgen
#                            # burst, query + metrics scrape, SIGTERM drain,
#                            # restart from the drain checkpoints, and a diff
#                            # against a server that never stopped
#
# The TSAN pass builds into build-tsan/ with -DRAB_TSAN=ON and runs the
# tests that exercise the thread pool (test_parallel), the detector suite
# whose hot paths run inside parallel_for (test_detectors), the overlay
# equivalence suite that hammers the detector-result cache from the pool
# (test_overlay), and the serving suite whose connection threads race the
# shard workers through the bounded queues (test_net).
#
# The UBSan pass builds into build-ubsan/ with -DRAB_UBSAN=ON and runs the
# suites that parse untrusted input or narrow integers (test_util,
# test_rating, test_challenge) plus the streaming monitor
# (test_online_monitor).
#
# The chaos pass builds into build-chaos/ with -DRAB_ASAN=ON -DRAB_UBSAN=ON
# and runs the fault-injection, checkpoint, and segment-store suites
# (test_failpoint, test_checkpoint, test_chaos, test_store) plus the
# rab_chaos kill-and-restore driver, at 1 and 8 worker threads. Every
# snapshot written mid-crash must restore bit-identically or be rejected by
# its checksum; every torn or rotten store group must truncate back to the
# last commit marker on reopen.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
# End-to-end smoke test: the streaming example must run and raise alarms.
./build/examples/streaming_monitor >/dev/null
# Observability smoke test: `rab stats` must export a non-empty Prometheus
# page with detector run counters, and the metrics kill switch must work.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./build/tools/rab generate --out "$smoke_dir/fair.csv" --seed 7 \
  --products 3 --days 60 >/dev/null
./build/tools/rab stats --data "$smoke_dir/fair.csv" \
  --out "$smoke_dir/stats.prom"
grep -q '^rab_detector_mc_runs_total [1-9]' "$smoke_dir/stats.prom"
RAB_METRICS=0 ./build/tools/rab stats --data "$smoke_dir/fair.csv" \
  --format json --out "$smoke_dir/stats.json"
grep -q '"detector.mc.runs":0' "$smoke_dir/stats.json"

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DRAB_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target test_parallel test_detectors test_overlay test_metrics test_net
  # Exercise the pool with real contention regardless of the host's cores.
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_parallel
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_detectors
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_overlay
  # Scrape-while-writing and thread-exit shard retirement under TSan.
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_metrics
  # Shard router and bounded queues: connection threads vs shard workers.
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_net
fi

if [[ "${1:-}" == "--ubsan" ]]; then
  cmake -B build-ubsan -S . -DRAB_UBSAN=ON >/dev/null
  cmake --build build-ubsan -j "$(nproc)" \
    --target test_util test_rating test_challenge test_online_monitor
  ./build-ubsan/tests/test_util
  ./build-ubsan/tests/test_rating
  ./build-ubsan/tests/test_challenge
  RAB_THREADS=8 ./build-ubsan/tests/test_online_monitor
fi

if [[ "${1:-}" == "--strict-fp" ]]; then
  cmake -B build-strict -S . -DRAB_STRICT_FP=ON >/dev/null
  cmake --build build-strict -j "$(nproc)"
  ctest --test-dir build-strict --output-on-failure -j "$(nproc)"
  # The strict kernels must stay deterministic under real pool contention.
  RAB_THREADS=8 ./build-strict/tests/test_soa_equivalence
  RAB_THREADS=8 ./build-strict/tests/test_parallel
  RAB_THREADS=8 ./build-strict/tests/test_online_monitor
fi

if [[ "${1:-}" == "--serve" ]]; then
  # Live-daemon smoke over a unix socket: loadgen burst, queries, a
  # Prometheus scrape, SIGTERM drain, restart from the drain checkpoints
  # with the rest of the feed, then a byte diff of the per-shard summary
  # JSON against a server that saw the whole feed uninterrupted.
  serve_dir="$smoke_dir/serve"
  mkdir -p "$serve_dir"
  serve_pid=""
  trap 'if [[ -n "${serve_pid:-}" ]]; then kill "$serve_pid" 2>/dev/null || true; fi
        rm -rf "$smoke_dir"' EXIT

  ./build/tools/rab generate --out "$serve_dir/feed.csv" --seed 11 \
    --products 6 --days 120 >/dev/null
  # Time-ordered split so the restarted server's feed continues where the
  # drained one stopped (each shard requires non-decreasing time).
  grep -v '^#' "$serve_dir/feed.csv" | sort -t, -k3,3g \
    > "$serve_dir/sorted.csv"
  half=$(( $(wc -l < "$serve_dir/sorted.csv") / 2 ))
  head -n "$half" "$serve_dir/sorted.csv" > "$serve_dir/a.csv"
  tail -n +"$((half + 1))" "$serve_dir/sorted.csv" > "$serve_dir/b.csv"

  sock="$serve_dir/rab.sock"
  serve_flags=(--listen "unix:$sock" --shards 2 --epoch 10 --retention 40
               --checkpoint-dir "$serve_dir/ckpt")
  wait_ready() {
    for _ in $(seq 100); do
      ./build/tools/rab query --addr "unix:$sock" --what ping \
        >/dev/null 2>&1 && return 0
      sleep 0.1
    done
    echo "serve smoke: daemon did not come up on $sock" >&2
    return 1
  }

  ./build/tools/rab serve "${serve_flags[@]}" > "$serve_dir/serve1.jsonl" &
  serve_pid=$!
  wait_ready
  ./build/tools/rab loadgen --addr "unix:$sock" --data "$serve_dir/a.csv" \
    --server-shards 2 --batch 128 --report build/BENCH_serve.json >/dev/null
  ./build/tools/rab query --addr "unix:$sock" --what stats |
    grep -q '"type":"stats"'
  ./build/tools/rab query --addr "unix:$sock" --what metrics |
    grep -q '^rab_serve_ratings_total [1-9]'
  grep -q '"latency_seconds"' build/BENCH_serve.json
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  grep -q '"type":"summary"' "$serve_dir/serve1.jsonl"

  # Restart from the drain checkpoints; stream the remainder; drain.
  ./build/tools/rab serve "${serve_flags[@]}" > "$serve_dir/serve2.jsonl" &
  serve_pid=$!
  wait_ready
  ./build/tools/rab loadgen --addr "unix:$sock" --data "$serve_dir/b.csv" \
    --server-shards 2 --batch 128 --drain 1 >/dev/null
  wait "$serve_pid"

  # Reference: a fresh server that ingests the whole feed in one run.
  rm -rf "$serve_dir/ckpt"
  ./build/tools/rab serve "${serve_flags[@]}" > "$serve_dir/serve3.jsonl" &
  serve_pid=$!
  wait_ready
  ./build/tools/rab loadgen --addr "unix:$sock" \
    --data "$serve_dir/sorted.csv" --server-shards 2 --batch 128 \
    --drain 1 >/dev/null
  wait "$serve_pid"
  serve_pid=""

  # Drain + restart must be bit-identical to never stopping.
  diff "$serve_dir/serve2.jsonl" "$serve_dir/serve3.jsonl"
  echo "serve smoke: drained/restarted state identical to uninterrupted run"
fi

if [[ "${1:-}" == "--chaos" ]]; then
  cmake -B build-chaos -S . -DRAB_ASAN=ON -DRAB_UBSAN=ON >/dev/null
  cmake --build build-chaos -j "$(nproc)" \
    --target test_failpoint test_checkpoint test_chaos test_store rab_chaos
  for threads in 1 8; do
    RAB_THREADS="$threads" ./build-chaos/tests/test_failpoint
    RAB_THREADS="$threads" ./build-chaos/tests/test_checkpoint
    RAB_THREADS="$threads" ./build-chaos/tests/test_chaos
    RAB_THREADS="$threads" ./build-chaos/tests/test_store
  done
  # Kill-and-restore torture across every catalogued failpoint plus random
  # kill offsets; checks bit-identical recovery at 1 and 8 threads itself.
  ./build-chaos/tools/rab_chaos
fi
