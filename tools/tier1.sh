#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then (optionally) the
# parallel execution engine's determinism and detector tests under
# ThreadSanitizer.
#
#   tools/tier1.sh           # build + ctest + streaming-monitor smoke test
#   tools/tier1.sh --tsan    # additionally: TSAN build of the threaded tests
#   tools/tier1.sh --ubsan   # additionally: UBSan build of the ingest tests
#   tools/tier1.sh --chaos   # additionally: ASan+UBSan build of the
#                            # checkpoint/failpoint crash-recovery torture
#   tools/tier1.sh --strict-fp # additionally: RAB_STRICT_FP=ON build (exact
#                            # scalar FP order in the batch kernels) + full
#                            # suite + determinism tests at RAB_THREADS=8
#   tools/tier1.sh --serve   # additionally: live `rab serve` smoke — loadgen
#                            # burst, query + metrics scrape, SIGTERM drain,
#                            # restart from the drain checkpoints, and a diff
#                            # against a server that never stopped
#   tools/tier1.sh --tournament # additionally: `rab tournament` smoke — a
#                            # 2x2 scheme x attack mini-matrix (one collusion
#                            # squad column, one collusion-guarded scheme row)
#                            # whose JSON must be byte-identical across
#                            # reruns and RAB_THREADS settings
#   tools/tier1.sh --serve-chaos # additionally: ASan+UBSan crash-tolerance
#                            # proof — SIGKILL a store-backed daemon at 8
#                            # seeded-random offsets while resumable clients
#                            # stream, restart each time, and byte-diff the
#                            # final state + query answers against a server
#                            # that was never killed, at {1,8} shards x {1,8}
#                            # threads; then once more with net.* failpoints
#                            # armed in both processes
#
# The TSAN pass builds into build-tsan/ with -DRAB_TSAN=ON and runs the
# tests that exercise the thread pool (test_parallel), the detector suite
# whose hot paths run inside parallel_for (test_detectors), the overlay
# equivalence suite that hammers the detector-result cache from the pool
# (test_overlay), and the serving suite whose connection threads race the
# shard workers through the bounded queues (test_net).
#
# The UBSan pass builds into build-ubsan/ with -DRAB_UBSAN=ON and runs the
# suites that parse untrusted input or narrow integers (test_util,
# test_rating, test_challenge) plus the streaming monitor
# (test_online_monitor).
#
# The chaos pass builds into build-chaos/ with -DRAB_ASAN=ON -DRAB_UBSAN=ON
# and runs the fault-injection, checkpoint, and segment-store suites
# (test_failpoint, test_checkpoint, test_chaos, test_store) plus the
# rab_chaos kill-and-restore driver, at 1 and 8 worker threads. Every
# snapshot written mid-crash must restore bit-identically or be rejected by
# its checksum; every torn or rotten store group must truncate back to the
# last commit marker on reopen.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
# End-to-end smoke test: the streaming example must run and raise alarms.
./build/examples/streaming_monitor >/dev/null
# Observability smoke test: `rab stats` must export a non-empty Prometheus
# page with detector run counters, and the metrics kill switch must work.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./build/tools/rab generate --out "$smoke_dir/fair.csv" --seed 7 \
  --products 3 --days 60 >/dev/null
./build/tools/rab stats --data "$smoke_dir/fair.csv" \
  --out "$smoke_dir/stats.prom"
grep -q '^rab_detector_mc_runs_total [1-9]' "$smoke_dir/stats.prom"
RAB_METRICS=0 ./build/tools/rab stats --data "$smoke_dir/fair.csv" \
  --format json --out "$smoke_dir/stats.json"
grep -q '"detector.mc.runs":0' "$smoke_dir/stats.json"

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DRAB_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target test_parallel test_detectors test_overlay test_metrics test_net
  # Exercise the pool with real contention regardless of the host's cores.
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_parallel
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_detectors
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_overlay
  # Scrape-while-writing and thread-exit shard retirement under TSan.
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_metrics
  # Shard router and bounded queues: connection threads vs shard workers.
  RAB_THREADS=8 TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_net
fi

if [[ "${1:-}" == "--ubsan" ]]; then
  cmake -B build-ubsan -S . -DRAB_UBSAN=ON >/dev/null
  cmake --build build-ubsan -j "$(nproc)" \
    --target test_util test_rating test_challenge test_online_monitor
  ./build-ubsan/tests/test_util
  ./build-ubsan/tests/test_rating
  ./build-ubsan/tests/test_challenge
  RAB_THREADS=8 ./build-ubsan/tests/test_online_monitor
fi

if [[ "${1:-}" == "--strict-fp" ]]; then
  cmake -B build-strict -S . -DRAB_STRICT_FP=ON >/dev/null
  cmake --build build-strict -j "$(nproc)"
  ctest --test-dir build-strict --output-on-failure -j "$(nproc)"
  # The strict kernels must stay deterministic under real pool contention.
  RAB_THREADS=8 ./build-strict/tests/test_soa_equivalence
  RAB_THREADS=8 ./build-strict/tests/test_parallel
  RAB_THREADS=8 ./build-strict/tests/test_online_monitor
fi

if [[ "${1:-}" == "--tournament" ]]; then
  # End-to-end tournament smoke: a 2x2 mini-matrix (independent + squad
  # attack columns, plain + collusion-guarded scheme rows) on a small
  # generated pool. The JSON matrix must be byte-identical across reruns
  # and thread counts — the determinism contract docs/CLI.md promises.
  tdir="$smoke_dir/tournament"
  mkdir -p "$tdir"
  ./build/tools/rab generate --out "$tdir/pool.csv" --seed 17 \
    --products 8 --days 120 >/dev/null
  t_flags=(--data "$tdir/pool.csv" --schemes SA,SA+CG
           --attacks indep-random,squad-pre --trials 2 --rounds 2 --grid 2)
  RAB_THREADS=1 ./build/tools/rab tournament "${t_flags[@]}" \
    --out "$tdir/t1.json" --table "$tdir/t1.md" >/dev/null
  RAB_THREADS=1 ./build/tools/rab tournament "${t_flags[@]}" \
    --out "$tdir/t1-again.json" >/dev/null
  RAB_THREADS=8 ./build/tools/rab tournament "${t_flags[@]}" \
    --out "$tdir/t8.json" >/dev/null
  diff "$tdir/t1.json" "$tdir/t1-again.json"
  diff "$tdir/t1.json" "$tdir/t8.json"
  grep -q '"schema": "rab-tournament-v1"' "$tdir/t1.json"
  grep -q 'squad-pre' "$tdir/t1.md"
  grep -q '| SA+CG |' "$tdir/t1.md"
  echo "tournament smoke: 2x2 matrix byte-identical at 1 and 8 threads"
fi

if [[ "${1:-}" == "--serve" ]]; then
  # Live-daemon smoke over a unix socket: loadgen burst, queries, a
  # Prometheus scrape, SIGTERM drain, restart from the drain checkpoints
  # with the rest of the feed, then a byte diff of the per-shard summary
  # JSON against a server that saw the whole feed uninterrupted.
  serve_dir="$smoke_dir/serve"
  mkdir -p "$serve_dir"
  serve_pid=""
  trap 'if [[ -n "${serve_pid:-}" ]]; then kill "$serve_pid" 2>/dev/null || true; fi
        rm -rf "$smoke_dir"' EXIT

  ./build/tools/rab generate --out "$serve_dir/feed.csv" --seed 11 \
    --products 6 --days 120 >/dev/null
  # Time-ordered split so the restarted server's feed continues where the
  # drained one stopped (each shard requires non-decreasing time).
  grep -v '^#' "$serve_dir/feed.csv" | sort -t, -k3,3g \
    > "$serve_dir/sorted.csv"
  half=$(( $(wc -l < "$serve_dir/sorted.csv") / 2 ))
  head -n "$half" "$serve_dir/sorted.csv" > "$serve_dir/a.csv"
  tail -n +"$((half + 1))" "$serve_dir/sorted.csv" > "$serve_dir/b.csv"

  sock="$serve_dir/rab.sock"
  serve_flags=(--listen "unix:$sock" --shards 2 --epoch 10 --retention 40
               --checkpoint-dir "$serve_dir/ckpt")
  wait_ready() {
    for _ in $(seq 100); do
      ./build/tools/rab query --addr "unix:$sock" --what ping \
        >/dev/null 2>&1 && return 0
      sleep 0.1
    done
    echo "serve smoke: daemon did not come up on $sock" >&2
    return 1
  }

  ./build/tools/rab serve "${serve_flags[@]}" > "$serve_dir/serve1.jsonl" &
  serve_pid=$!
  wait_ready
  ./build/tools/rab loadgen --addr "unix:$sock" --data "$serve_dir/a.csv" \
    --server-shards 2 --batch 128 --report build/BENCH_serve.json >/dev/null
  ./build/tools/rab query --addr "unix:$sock" --what stats |
    grep -q '"type":"stats"'
  ./build/tools/rab query --addr "unix:$sock" --what metrics |
    grep -q '^rab_serve_ratings_total [1-9]'
  grep -q '"latency_seconds"' build/BENCH_serve.json
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  grep -q '"type":"summary"' "$serve_dir/serve1.jsonl"

  # Restart from the drain checkpoints; stream the remainder; drain.
  ./build/tools/rab serve "${serve_flags[@]}" > "$serve_dir/serve2.jsonl" &
  serve_pid=$!
  wait_ready
  ./build/tools/rab loadgen --addr "unix:$sock" --data "$serve_dir/b.csv" \
    --server-shards 2 --batch 128 --drain 1 >/dev/null
  wait "$serve_pid"

  # Reference: a fresh server that ingests the whole feed in one run.
  rm -rf "$serve_dir/ckpt"
  ./build/tools/rab serve "${serve_flags[@]}" > "$serve_dir/serve3.jsonl" &
  serve_pid=$!
  wait_ready
  ./build/tools/rab loadgen --addr "unix:$sock" \
    --data "$serve_dir/sorted.csv" --server-shards 2 --batch 128 \
    --drain 1 >/dev/null
  wait "$serve_pid"
  serve_pid=""

  # Drain + restart must be bit-identical to never stopping.
  diff "$serve_dir/serve2.jsonl" "$serve_dir/serve3.jsonl"
  echo "serve smoke: drained/restarted state identical to uninterrupted run"
fi

if [[ "${1:-}" == "--serve-chaos" ]]; then
  # Crash-tolerance proof for the serving path (DESIGN.md §5i), under
  # ASan+UBSan: a store-backed daemon is SIGKILL'd at 8 seeded-random
  # offsets while a protocol-v2 loadgen streams a paced feed; every
  # restart recovers from the store and the clients reconnect + replay
  # their unacked windows. The final per-shard state and the trust /
  # alarms / stats query answers must byte-match a server that was never
  # killed — zero lost ratings, zero double-applied — at {1,8} shards x
  # {1,8} worker threads. A second leg repeats the proof with the net.*
  # failpoint catalog armed in both processes.
  cmake -B build-chaos -S . -DRAB_ASAN=ON -DRAB_UBSAN=ON >/dev/null
  cmake --build build-chaos -j "$(nproc)" --target rab_cli
  RAB=./build-chaos/tools/rab
  chaos_dir="$smoke_dir/serve-chaos"
  mkdir -p "$chaos_dir"
  serve_pid=""
  lg_pid=""
  trap 'kill -9 ${serve_pid:-} ${lg_pid:-} 2>/dev/null || true
        rm -rf "$smoke_dir"' EXIT

  sock="$chaos_dir/rab.sock"
  wait_ready() {
    for _ in $(seq 300); do
      "$RAB" query --addr "unix:$sock" --what ping >/dev/null 2>&1 && return 0
      sleep 0.1
    done
    echo "serve-chaos: daemon did not come up on $sock" >&2
    return 1
  }
  snapshot_queries() {  # $1 = output path prefix; daemon must be live
    # Per-instance counters (accepted/rejected/io_errors/queue) do not
    # survive a restart and are not state; strip them before diffing.
    "$RAB" query --addr "unix:$sock" --what stats |
      sed -E 's/"(accepted|rejected|io_errors|queue)":[0-9]+,?//g' \
        > "$1.stats"
    for rater in 0 1 42; do
      "$RAB" query --addr "unix:$sock" --what trust --rater "$rater" \
        > "$1.trust$rater"
    done
    "$RAB" query --addr "unix:$sock" --what alarms > "$1.alarms"
  }
  # Identical synthetic feed for the reference and the chaos run (the
  # pacing below only stretches wall clock; final state depends only on
  # rating content, which the seed pins).
  lg_flags=(--ratings 40000 --raters 300 --products 32 --days 40 --seed 29
            --batch 128 --resume 1)

  run_reference() {  # $1 = run dir, $2 = shards, $3 = threads, $4 = conns
    RAB_THREADS="$3" "$RAB" serve "${serve_flags[@]}" \
      --checkpoint-dir "$1/ref-ckpt" --store-dir "$1/ref-store" \
      > "$1/ref.jsonl" &
    serve_pid=$!
    wait_ready
    "$RAB" loadgen --addr "unix:$sock" "${lg_flags[@]}" \
      --connections "$4" --server-shards "$2" >/dev/null
    snapshot_queries "$1/ref"
    "$RAB" query --addr "unix:$sock" --what drain >/dev/null
    wait "$serve_pid"
    serve_pid=""
    grep '"type":"shard"' "$1/ref.jsonl" > "$1/ref.shards"
  }

  kill_loop() {  # $1 = run dir, $2 = shards, $3 = threads, $4 = kill count
    local kills=0
    for _ in $(seq "$4"); do
      sleep "0.$((500 + RANDOM % 400))"
      kill -0 "$lg_pid" 2>/dev/null || break
      kill -9 "$serve_pid" 2>/dev/null || true
      wait "$serve_pid" 2>/dev/null || true
      kills=$((kills + 1))
      RAB_FAULTS="${serve_faults:-}" RAB_THREADS="$3" \
        "$RAB" serve "${serve_flags[@]}" \
        --checkpoint-dir "$1/ckpt" --store-dir "$1/store" \
        > "$1/chaos.jsonl" &
      serve_pid=$!
      wait_ready
    done
    if [[ "$kills" -lt "$4" ]]; then
      echo "serve-chaos: only $kills/$4 kills landed before the feed ended" >&2
      return 1
    fi
  }

  check_run() {  # $1 = run dir, $2 = expected ratings
    diff "$1/ref.shards" "$1/chaos.shards"
    for q in stats trust0 trust1 trust42 alarms; do
      diff "$1/ref.$q" "$1/chaos.$q"
    done
    grep -q "\"ratings\":$2," "$1/report.json"
    grep -q "\"accepted\":$2," "$1/report.json"
    grep -q '"interrupted":false' "$1/report.json"
    if grep -q '"reconnects":0,' "$1/report.json"; then
      echo "serve-chaos: expected nonzero reconnects in $1/report.json" >&2
      return 1
    fi
  }

  serve_faults=""  # kill_loop restarts re-arm this spec (fault leg below)
  for combo in "1 1" "1 8" "8 1" "8 8"; do
    read -r shards threads <<< "$combo"
    run="$chaos_dir/s$shards-t$threads"
    mkdir -p "$run"
    serve_flags=(--listen "unix:$sock" --shards "$shards" --epoch 5
                 --retention 20)
    run_reference "$run" "$shards" "$threads" "$shards"

    # Chaos: paced stream, SIGKILL the daemon at 8 seeded-random offsets.
    RAB_THREADS="$threads" "$RAB" serve "${serve_flags[@]}" \
      --checkpoint-dir "$run/ckpt" --store-dir "$run/store" \
      > "$run/chaos.jsonl" &
    serve_pid=$!
    wait_ready
    "$RAB" loadgen --addr "unix:$sock" "${lg_flags[@]}" \
      --connections "$shards" --server-shards "$shards" --rate 1500 \
      --report "$run/report.json" >/dev/null &
    lg_pid=$!
    RANDOM=$((20260808 + shards * 100 + threads))
    kill_loop "$run" "$shards" "$threads" 8
    wait "$lg_pid"
    lg_pid=""
    snapshot_queries "$run/chaos"
    "$RAB" query --addr "unix:$sock" --what drain >/dev/null
    wait "$serve_pid"
    serve_pid=""
    grep '"type":"shard"' "$run/chaos.jsonl" > "$run/chaos.shards"

    check_run "$run" 40000
    echo "serve-chaos: $shards shards x $threads threads survived 8 kills" \
         "bit-identically"
  done

  # Failpoint leg: the same exactly-once proof with the net.* fault
  # catalog armed — the daemon drops accepted connections and a session
  # registration, the loadgen suffers failed writes, short writes,
  # corrupted frames, and short reads — plus 2 more kills. The drain and
  # the query snapshots run from this (unarmed) shell so fault noise
  # never masks a state divergence.
  run="$chaos_dir/faults"
  mkdir -p "$run"
  serve_flags=(--listen "unix:$sock" --shards 2 --epoch 5 --retention 20)
  run_reference "$run" 2 2 1
  serve_faults='net.accept:throw,once;net.session.drop:throw,once'
  RAB_FAULTS="$serve_faults" \
    RAB_THREADS=2 "$RAB" serve "${serve_flags[@]}" \
    --checkpoint-dir "$run/ckpt" --store-dir "$run/store" \
    > "$run/chaos.jsonl" &
  serve_pid=$!
  wait_ready
  RAB_FAULTS='net.write.fail:throw,every=151;net.write.short:throw,every=163;net.frame.corrupt:corrupt,every=157,seed=7;net.read.short:throw,every=149' \
    "$RAB" loadgen --addr "unix:$sock" "${lg_flags[@]}" \
    --connections 1 --server-shards 2 --rate 4000 \
    --report "$run/report.json" >/dev/null &
  lg_pid=$!
  RANDOM=20260808
  kill_loop "$run" 2 2 2
  wait "$lg_pid"
  lg_pid=""
  snapshot_queries "$run/chaos"
  "$RAB" query --addr "unix:$sock" --what drain >/dev/null
  wait "$serve_pid"
  serve_pid=""
  grep '"type":"shard"' "$run/chaos.jsonl" > "$run/chaos.shards"
  check_run "$run" 40000
  echo "serve-chaos: armed net.* failpoints + 2 kills, still bit-identical"
fi

if [[ "${1:-}" == "--chaos" ]]; then
  cmake -B build-chaos -S . -DRAB_ASAN=ON -DRAB_UBSAN=ON >/dev/null
  cmake --build build-chaos -j "$(nproc)" \
    --target test_failpoint test_checkpoint test_chaos test_store rab_chaos
  for threads in 1 8; do
    RAB_THREADS="$threads" ./build-chaos/tests/test_failpoint
    RAB_THREADS="$threads" ./build-chaos/tests/test_checkpoint
    RAB_THREADS="$threads" ./build-chaos/tests/test_chaos
    RAB_THREADS="$threads" ./build-chaos/tests/test_store
  done
  # Kill-and-restore torture across every catalogued failpoint plus random
  # kill offsets; checks bit-identical recovery at 1 and 8 threads itself.
  ./build-chaos/tools/rab_chaos
fi
