// rab — command-line front end to the library.
//
// Subcommands:
//   generate    synthesize a fair-rating dataset and write it to CSV
//   attack      craft one unfair-rating submission against a dataset
//   population  synthesize a whole population of attack submissions
//   evaluate    score a submission's manipulation power under a scheme
//   tournament  scheme x attack matrix: strongest-found attack per cell
//               via Procedure-2 region search, fanned over the pool
//   detect      run the P-scheme pipeline over a dataset and report
//               suspicious raters
//   monitor     stream a CSV feed through the incremental OnlineMonitor
//               and emit JSONL alarms + per-epoch counters
//   stats       run the P-scheme pipeline over a dataset and export the
//               metrics registry (Prometheus text or JSON)
//   serve       sharded streaming ingest daemon (length-prefixed binary
//               frames with a JSONL fallback; see docs/CLI.md)
//   loadgen     replay a CSV or synthetic feed against a running serve
//               and report throughput + ingest-latency quantiles
//   query       one-shot query (trust/alarms/stats/series/metrics/
//               drain/ping) against a running serve
//
// Examples:
//   rab generate --out fair.csv --seed 7
//   rab attack --data fair.csv --out sub.csv --bias -2.3 --sigma 1.2
//   rab evaluate --data fair.csv --submission sub.csv --scheme P
//   rab detect --data fair.csv
//   rab generate --out feed.csv && rab monitor --data feed.csv --epoch 15
//   rab stats --data fair.csv --format prom
//
// Full man-page-style documentation: docs/CLI.md; metric and span names:
// docs/METRICS.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aggregation/factory.hpp"
#include "aggregation/p_scheme.hpp"
#include "challenge/challenge.hpp"
#include "challenge/collusion.hpp"
#include "challenge/participants.hpp"
#include "challenge/report.hpp"
#include "challenge/submission_io.hpp"
#include "core/attack_generator.hpp"
#include "core/tournament.hpp"
#include "detectors/online_monitor.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "rating/fair_generator.hpp"
#include "rating/io.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/parse.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"

namespace {

using namespace rab;

/// Minimal --flag value parser: flags come in pairs, order-free.
/// Numeric accessors route through util/parse.hpp so a malformed value
/// ("abc", "10x", "-1" for an unsigned flag) is an InvalidArgument
/// naming the flag — exit code 2 — instead of a raw std::stod/stoull
/// escape (std::invalid_argument, exit 1) or a silent wrap/truncation.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw InvalidArgument("expected --flag, got '" + key + "'");
      }
      values_[key.substr(2)] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      throw InvalidArgument("flags must come in --name value pairs");
    }
  }

  /// Rejects flags outside `allowed` — a misspelled flag must fail
  /// loudly (exit 2), not silently fall back to the default value.
  void restrict(const std::string& command,
                std::initializer_list<const char*> allowed) const {
    for (const auto& [name, value] : values_) {
      if (std::find_if(allowed.begin(), allowed.end(),
                       [&](const char* a) { return name == a; }) ==
          allowed.end()) {
        throw InvalidArgument("unknown flag --" + name + " for 'rab " +
                              command + "' (see rab " + command +
                              " usage in docs/CLI.md)");
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const {
    const auto it = values_.find(name);
    if (it != values_.end()) return it->second;
    if (!fallback.empty()) return fallback;
    throw InvalidArgument("missing required flag --" + name);
  }

  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return util::parse_double(it->second, "--" + name);
  }

  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return util::parse_u64(it->second, "--" + name);
  }

  [[nodiscard]] std::uint64_t get_u64_in(const std::string& name,
                                         std::uint64_t fallback,
                                         std::uint64_t lo,
                                         std::uint64_t hi) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return util::parse_u64_in(it->second, "--" + name, lo, hi);
  }

  [[nodiscard]] std::int64_t get_i64(const std::string& name,
                                     std::int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return util::parse_i64(it->second, "--" + name);
  }

  [[nodiscard]] bool get_bool(const std::string& name,
                              bool fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    const std::string& v = it->second;
    if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
    if (v == "0" || v == "false" || v == "off" || v == "no") return false;
    throw InvalidArgument("--" + name + ": expected a boolean (0/1/true/"
                          "false/on/off/yes/no), got '" + v + "'");
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Scheme specs (SA/BF/P/MED/ENT/RV/XL, optional +CG) resolve through the
/// shared factory, so every subcommand accepts exactly what a tournament
/// matrix prints.
std::unique_ptr<aggregation::AggregationScheme> make_scheme(
    const std::string& spec) {
  return aggregation::make_scheme(spec);
}

/// Splits a comma-separated flag value ("SA,MED,ENT") into its items.
std::vector<std::string> split_csv(const std::string& value,
                                   const std::string& flag) {
  std::vector<std::string> items;
  std::string::size_type start = 0;
  while (start <= value.size()) {
    const std::string::size_type comma = value.find(',', start);
    const std::string item =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    if (item.empty()) {
      throw InvalidArgument(flag + ": empty item in '" + value + "'");
    }
    items.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

challenge::Challenge load_challenge(const Args& args) {
  return challenge::Challenge(
      rating::read_csv_file(args.get("data")).fair_only());
}

int cmd_generate(const Args& args) {
  rating::FairDataConfig config;
  config.seed = args.get_u64("seed", config.seed);
  config.product_count = static_cast<std::size_t>(
      args.get_u64("products", config.product_count));
  config.history_days = args.get_double("days", config.history_days);
  config.mean_value = args.get_double("mean", config.mean_value);
  const rating::Dataset data =
      rating::FairDataGenerator(config).generate();
  rating::write_csv_file(args.get("out"), data);
  std::printf("wrote %zu fair ratings (%zu products, %.0f days) to %s\n",
              data.total_ratings(), data.product_count(),
              config.history_days, args.get("out").c_str());
  return 0;
}

int cmd_attack(const Args& args) {
  const challenge::Challenge ch = load_challenge(args);
  core::AttackProfile profile;
  profile.bias = args.get_double("bias", profile.bias);
  profile.sigma = args.get_double("sigma", profile.sigma);
  profile.duration_days =
      args.get_double("duration", profile.duration_days);
  profile.offset_days = args.get_double("offset", profile.offset_days);
  if (const std::string mode = args.get("correlation", "random");
      mode == "heuristic") {
    profile.correlation = core::CorrelationMode::kHeuristic;
  } else if (mode == "blend") {
    profile.correlation = core::CorrelationMode::kBlend;
  } else if (mode != "random") {
    throw InvalidArgument("unknown correlation mode '" + mode +
                          "' (use random, heuristic or blend)");
  }
  const core::AttackGenerator generator(ch, args.get_u64("seed", 1));
  const challenge::Submission submission =
      generator.generate(profile, args.get_u64("stream", 0));
  challenge::write_submission_file(args.get("out"), submission);
  std::printf("wrote %zu unfair ratings to %s\n",
              submission.ratings.size(), args.get("out").c_str());
  return 0;
}

int cmd_population(const Args& args) {
  const challenge::Challenge ch = load_challenge(args);
  const challenge::ParticipantPopulation population(
      ch, args.get_u64("seed", 17));
  const auto submissions = population.generate(
      static_cast<std::size_t>(args.get_u64("count", 251)));
  std::ofstream out(args.get("out"));
  if (!out) throw IoError("cannot open " + args.get("out"));
  challenge::write_population(out, submissions);
  out.flush();
  if (!out) throw IoError("write failed (disk full?): " + args.get("out"));
  std::printf("wrote %zu submissions to %s\n", submissions.size(),
              args.get("out").c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  const challenge::Challenge ch = load_challenge(args);
  const challenge::Submission submission =
      challenge::read_submission_file(args.get("submission"));
  const auto scheme = make_scheme(args.get("scheme", "P"));
  const challenge::MpResult mp = ch.evaluate(submission, *scheme);
  std::printf("scheme %s: overall MP %.4f\n", scheme->name().c_str(),
              mp.overall);
  for (const auto& [id, value] : mp.per_product) {
    if (value > 0.0) {
      std::printf("  product %lld: MP %.4f\n",
                  static_cast<long long>(id.value()), value);
    }
  }
  return 0;
}

int cmd_optimize(const Args& args) {
  const challenge::Challenge ch = load_challenge(args);
  const auto scheme = make_scheme(args.get("scheme", "P"));
  const core::AttackGenerator generator(ch, args.get_u64("seed", 1));

  core::AttackProfile timing;
  timing.duration_days = args.get_double("duration", 50.0);
  timing.offset_days = args.get_double("offset", 5.0);

  core::RegionSearchOptions options;
  options.trials = static_cast<std::size_t>(args.get_u64("trials", 10));
  options.max_rounds =
      static_cast<std::size_t>(args.get_u64("rounds", 12));

  const core::RegionSearchResult search =
      generator.optimize(*scheme, options, timing);
  std::printf("scheme %s: learned bias %.3f, stddev %.3f, best MP %.4f\n",
              scheme->name().c_str(), search.best_bias, search.best_sigma,
              search.best_mp);
  for (std::size_t i = 0; i < search.rounds.size(); ++i) {
    const auto& round = search.rounds[i];
    std::printf("  round %zu: bias [%.2f, %.2f] stddev [%.2f, %.2f] "
                "best %.3f\n",
                i + 1, round.bias.lo, round.bias.hi, round.sigma.lo,
                round.sigma.hi, round.best_mp);
  }
  if (!args.get("out", "-").empty() && args.get("out", "-") != "-") {
    const challenge::Submission best =
        generator.realize_best(*scheme, search, timing);
    challenge::write_submission_file(args.get("out"), best);
    std::printf("strongest found submission written to %s\n",
                args.get("out").c_str());
  }
  return 0;
}

int cmd_tournament(const Args& args) {
  const challenge::Challenge ch = load_challenge(args);
  core::TournamentOptions options;
  options.schemes =
      split_csv(args.get("schemes", "SA,MED,ENT,P"), "--schemes");
  options.attacks = split_csv(
      args.get("attacks", "indep-random,indep-heuristic,squad-pre,squad-sybil"),
      "--attacks");
  options.seed = args.get_u64("seed", options.seed);
  options.duration_days =
      args.get_double("duration", options.duration_days);
  options.offset_days = args.get_double("offset", options.offset_days);
  options.search.trials = static_cast<std::size_t>(
      args.get_u64_in("trials", options.search.trials, 1, 1u << 20));
  options.search.max_rounds = static_cast<std::size_t>(
      args.get_u64_in("rounds", options.search.max_rounds, 1, 1u << 10));
  options.search.grid = static_cast<std::size_t>(
      args.get_u64_in("grid", options.search.grid, 1, 64));

  const core::TournamentResult result = core::run_tournament(ch, options);
  const std::string json = core::tournament_json(result);
  if (const std::string out_path = args.get("out", "-"); out_path != "-") {
    std::ofstream out(out_path);
    if (!out) throw IoError("cannot open " + out_path);
    out << json;
    out.flush();
    if (!out) throw IoError("tournament: write failed: " + out_path);
    std::printf("matrix written to %s\n", out_path.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }
  if (const std::string table_path = args.get("table", "-");
      table_path != "-") {
    std::ofstream out(table_path);
    if (!out) throw IoError("cannot open " + table_path);
    out << core::tournament_table(result);
    out.flush();
    if (!out) throw IoError("tournament: write failed: " + table_path);
    std::printf("table written to %s\n", table_path.c_str());
  }
  return 0;
}

int cmd_report(const Args& args) {
  const rating::Dataset data = rating::read_csv_file(args.get("data"));
  challenge::ReportOptions options;
  options.bin_days = args.get_double("bin", options.bin_days);
  options.trust_threshold =
      args.get_double("trust-below", options.trust_threshold);
  const std::string report = challenge::markdown_report(data, options);
  if (const std::string out_path = args.get("out", "-"); out_path != "-") {
    std::ofstream out(out_path);
    if (!out) throw IoError("cannot open " + out_path);
    out << report;
    std::printf("report written to %s\n", out_path.c_str());
  } else {
    std::fputs(report.c_str(), stdout);
  }
  return 0;
}

int cmd_detect(const Args& args) {
  const rating::Dataset data = rating::read_csv_file(args.get("data"));
  const aggregation::PScheme p;
  aggregation::PDiagnostics diagnostics;
  (void)p.aggregate_detailed(data, args.get_double("bin", 30.0),
                             &diagnostics);

  std::size_t flagged = 0;
  for (const auto& [id, result] : diagnostics.integration) {
    flagged += result.suspicious_count();
  }
  std::printf("%zu of %zu ratings flagged suspicious\n", flagged,
              data.total_ratings());

  struct Row {
    RaterId rater;
    double trust;
  };
  std::vector<Row> rows;
  for (RaterId rater : data.rater_ids()) {
    const double trust = diagnostics.trust.trust(rater);
    if (trust < args.get_double("trust-below", 0.5)) {
      rows.push_back(Row{rater, trust});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.trust < b.trust; });
  std::printf("%zu raters below the trust threshold:\n", rows.size());
  for (const Row& row : rows) {
    std::printf("  rater %-10lld trust %.3f\n",
                static_cast<long long>(row.rater.value()), row.trust);
  }

  // Group structure: coordinated squads betray themselves even when their
  // individual ratings pass the signal tests.
  const auto groups = challenge::find_collusion_groups(data);
  std::printf("%zu collusion-group candidate(s):\n", groups.size());
  for (const auto& group : groups) {
    std::printf("  group of %zu raters (mean pair score %.2f): ",
                group.raters.size(), group.mean_pair_score);
    for (std::size_t i = 0; i < std::min<std::size_t>(6, group.raters.size());
         ++i) {
      std::printf("%lld ", static_cast<long long>(group.raters[i].value()));
    }
    if (group.raters.size() > 6) std::printf("...");
    std::printf("\n");
  }
  return 0;
}

/// Shared by `rab stats` and `rab monitor --trace-out`: arms span tracing
/// (opt-in, off by default) with a clean buffer. Returns the output path,
/// or "-" when tracing stays off.
std::string arm_tracing(const Args& args) {
  const std::string path = args.get("trace-out", "-");
  if (path != "-") {
    util::trace::clear();
    util::trace::set_enabled(true);
  }
  return path;
}

/// Writes the Chrome trace-event JSON collected since arm_tracing.
void dump_trace(const std::string& path) {
  if (path == "-") return;
  util::trace::set_enabled(false);
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path);
  util::trace::write_chrome_trace(out);
  out.flush();
  if (!out) throw IoError("trace write failed (disk full?): " + path);
}

int cmd_stats(const Args& args) {
  const std::string trace_path = arm_tracing(args);
  const rating::Dataset data = rating::read_csv_file(args.get("data"));

  // Drive the full detection pipeline so every detector, cache, trust, and
  // pool metric has something to report, then export the registry.
  const aggregation::PScheme p;
  (void)p.aggregate(data, args.get_double("bin", 30.0));

  const util::metrics::Snapshot snapshot = util::metrics::scrape();
  std::ostream* os = &std::cout;
  std::ofstream file;
  const std::string out_path = args.get("out", "-");
  if (out_path != "-") {
    file.open(out_path);
    if (!file) throw IoError("cannot open " + out_path);
    os = &file;
  }
  if (const std::string format = args.get("format", "prom");
      format == "prom") {
    util::metrics::write_prometheus(*os, snapshot);
  } else if (format == "json") {
    util::metrics::write_json(*os, snapshot);
    *os << '\n';
  } else {
    throw InvalidArgument("unknown format '" + format +
                          "' (use prom or json)");
  }
  os->flush();
  if (!*os) throw IoError("stats write failed (disk full?)");
  dump_trace(trace_path);
  return 0;
}

/// Drains and prints monitor output accumulated since the last call:
/// alarms and per-epoch counters, one JSON object per line.
void drain_monitor(const detectors::OnlineMonitor& monitor,
                   std::size_t& alarms_seen, std::size_t& epochs_seen,
                   std::FILE* out) {
  // Epoch records first, then the alarms they raised; both carry explicit
  // timestamps, so consumers can re-interleave however they like.
  for (; epochs_seen < monitor.epoch_stats().size(); ++epochs_seen) {
    const detectors::OnlineEpochStats& e =
        monitor.epoch_stats()[epochs_seen];
    std::fprintf(
        out,
        "{\"type\":\"epoch\",\"epoch_end\":%.6g,\"ratings\":%zu,"
        "\"products_analyzed\":%zu,\"marked_ratings\":%zu,\"alarms\":%zu,"
        "\"cache_hits\":%zu,\"cache_partial_hits\":%zu,"
        "\"cache_misses\":%zu,\"resident_ratings\":%zu,"
        "\"compacted_ratings\":%zu}\n",
        e.epoch_end, e.ratings, e.products_analyzed, e.marked_ratings,
        e.alarms, e.cache_hits, e.cache_partial_hits, e.cache_misses,
        e.resident_ratings, e.compacted_ratings);
  }
  for (; alarms_seen < monitor.alarms().size(); ++alarms_seen) {
    const detectors::Alarm& a = monitor.alarms()[alarms_seen];
    std::fprintf(out,
                 "{\"type\":\"alarm\",\"product\":%lld,\"raised_at\":%.6g,"
                 "\"marked_ratings\":%zu,\"interval\":[%.6g,%.6g]}\n",
                 static_cast<long long>(a.product.value()), a.raised_at,
                 a.marked_ratings, a.interval.begin, a.interval.end);
  }
}

/// Appends one JSONL metrics record — the full registry snapshot tagged
/// with the monitor's epoch count — to the --metrics-out stream.
void emit_metrics_record(std::ostream& out, std::size_t epochs) {
  out << "{\"type\":\"metrics\",\"epochs\":" << epochs << ",\"metrics\":";
  util::metrics::write_json(out, util::metrics::scrape());
  out << "}\n";
}

/// Monitor knobs shared verbatim by `rab monitor` and (per shard, with
/// the directory flags re-rooted) `rab serve`.
detectors::OnlineConfig monitor_config_from(const Args& args) {
  detectors::OnlineConfig config;
  config.epoch_days = args.get_double("epoch", config.epoch_days);
  config.retention_days =
      args.get_double("retention", config.retention_days);
  config.min_alarm_marks = static_cast<std::size_t>(
      args.get_u64("min-marks", config.min_alarm_marks));
  config.trust_forgetting =
      args.get_double("forgetting", config.trust_forgetting);
  config.cache_streams = static_cast<std::size_t>(
      args.get_u64("cache-streams", config.cache_streams));
  config.checkpoint_dir = args.get("checkpoint-dir", "-") == "-"
                              ? std::string()
                              : args.get("checkpoint-dir");
  config.checkpoint_every_epochs = static_cast<std::size_t>(
      args.get_u64("checkpoint-every", config.checkpoint_every_epochs));
  config.checkpoint_keep = static_cast<std::size_t>(
      args.get_u64("checkpoint-keep", config.checkpoint_keep));
  config.store_dir = args.get("store-dir", "-") == "-"
                         ? std::string()
                         : args.get("store-dir");
  config.store_segment_bytes = static_cast<std::size_t>(args.get_u64(
      "store-segment-bytes", config.store_segment_bytes));
  // RAB_STORE_SYNC=0/off/false trades the crash durability of the last
  // un-synced groups for ingest speed (benches, bulk backfills).
  if (const char* env = std::getenv("RAB_STORE_SYNC")) {
    const std::string v(env);
    config.store_fsync = !(v == "0" || v == "off" || v == "false");
  }
  return config;
}

/// Merges a product-grouped dataset into one time-ordered feed (a live
/// site's feed is already time-ordered; CSV datasets are by product).
std::vector<rating::Rating> merge_feed(const rating::Dataset& data) {
  std::vector<rating::Rating> feed;
  feed.reserve(data.total_ratings());
  for (ProductId id : data.product_ids()) {
    const auto& rs = data.product(id).rows();
    feed.insert(feed.end(), rs.begin(), rs.end());
  }
  std::sort(feed.begin(), feed.end(), rating::ByTime{});
  return feed;
}

int cmd_monitor(const Args& args) {
  // SIGINT/SIGTERM trigger a graceful drain: checkpoint the pre-flush
  // state, analyze the final partial epoch, emit the summary, exit 0.
  util::install_shutdown_handlers();
  const std::string trace_path = arm_tracing(args);
  // Flags before data: a malformed flag value must be reported as such,
  // not masked by whatever the feed load happens to say first.
  const detectors::OnlineConfig config = monitor_config_from(args);
  const std::string data = args.get("data");
  const std::vector<rating::Rating> feed =
      merge_feed(data == "-" ? rating::read_csv(std::cin)
                             : rating::read_csv_file(data));
  detectors::OnlineMonitor monitor(config);

  std::FILE* out = stdout;
  std::FILE* opened = nullptr;
  if (const std::string out_path = args.get("out", "-"); out_path != "-") {
    opened = std::fopen(out_path.c_str(), "w");
    if (opened == nullptr) throw IoError("cannot open " + out_path);
    out = opened;
  }

  // --metrics-out is a separate JSONL stream: one registry snapshot per
  // closed epoch plus a final one, so a dashboard can tail it without
  // parsing the alarm feed.
  std::ofstream metrics_out;
  if (const std::string path = args.get("metrics-out", "-"); path != "-") {
    metrics_out.open(path);
    if (!metrics_out) throw IoError("cannot open " + path);
  }

  const std::size_t chunk = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.get_u64("chunk", 512)));
  std::size_t alarms_seen = 0;
  std::size_t epochs_seen = 0;
  std::size_t metrics_epochs_seen = 0;
  std::size_t start = 0;

  // Crash recovery: restore the newest valid snapshot and resume the feed
  // from the restored high-water mark — the continued run is bit-identical
  // to one that never crashed. Records from before the crash were already
  // emitted by the previous process, so the drain counters skip them.
  if (!config.store_dir.empty()) {
    // Store-backed restart: zero-copy restore from the mapped segment log
    // plus binary replay of the un-snapshotted tail. The feed is only
    // needed for ratings the store has not seen yet.
    const auto gen = monitor.restore_from_store();
    if (monitor.ingested() > 0) {
      start = monitor.ingested();
      alarms_seen = monitor.alarms().size();
      epochs_seen = monitor.epoch_stats().size();
      std::fprintf(out,
                   "{\"type\":\"resume\",\"generation\":%zu,"
                   "\"ingested\":%zu,\"alarms\":%zu,\"epochs\":%zu}\n",
                   gen.value_or(0), start, alarms_seen, epochs_seen);
      if (start > feed.size()) {
        throw InvalidArgument(
            "monitor: store is ahead of the feed (restored " +
            std::to_string(start) + " ratings, feed has " +
            std::to_string(feed.size()) + ") — wrong --data file?");
      }
    }
  } else if (!config.checkpoint_dir.empty()) {
    if (const auto gen = monitor.restore_latest(config.checkpoint_dir)) {
      start = monitor.ingested();
      alarms_seen = monitor.alarms().size();
      epochs_seen = monitor.epoch_stats().size();
      std::fprintf(out,
                   "{\"type\":\"resume\",\"generation\":%zu,"
                   "\"ingested\":%zu,\"alarms\":%zu,\"epochs\":%zu}\n",
                   *gen, start, alarms_seen, epochs_seen);
      if (start > feed.size()) {
        throw InvalidArgument(
            "monitor: checkpoint is ahead of the feed (restored " +
            std::to_string(start) + " ratings, feed has " +
            std::to_string(feed.size()) + ") — wrong --data file?");
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  bool interrupted = false;
  for (std::size_t i = start; i < feed.size(); i += chunk) {
    // The flag is only probed between chunks, so the signal never lands
    // mid-ingest: the drain below always sees a consistent monitor.
    if (util::shutdown_requested()) {
      interrupted = true;
      break;
    }
    const std::size_t n = std::min(chunk, feed.size() - i);
    monitor.ingest(std::span<const rating::Rating>(feed.data() + i, n));
    drain_monitor(monitor, alarms_seen, epochs_seen, out);
    if (metrics_out.is_open() &&
        monitor.epoch_stats().size() > metrics_epochs_seen) {
      metrics_epochs_seen = monitor.epoch_stats().size();
      emit_metrics_record(metrics_out, metrics_epochs_seen);
    }
  }
  if (interrupted) {
    // drain() snapshots BEFORE the final analysis so a restart replays
    // from here bit-identically to a run that was never signaled.
    monitor.drain();
    std::fprintf(out, "{\"type\":\"shutdown\",\"signal\":%d,"
                 "\"ingested\":%zu}\n",
                 util::shutdown_signal(), monitor.ingested());
  } else {
    monitor.flush();
  }
  drain_monitor(monitor, alarms_seen, epochs_seen, out);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Trust distribution: order-independent quantile summary.
  std::vector<double> trust_values;
  monitor.trust().visit(
      [&](RaterId, double t) { trust_values.push_back(t); });
  std::sort(trust_values.begin(), trust_values.end());
  const auto quantile = [&](double q) {
    if (trust_values.empty()) return 0.5;
    const std::size_t i = std::min(
        trust_values.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(
                                         trust_values.size() - 1) + 0.5));
    return trust_values[i];
  };
  double trust_mean = 0.0;
  for (double t : trust_values) trust_mean += t;
  if (!trust_values.empty()) {
    trust_mean /= static_cast<double>(trust_values.size());
  }

  const auto cache = monitor.cache_stats();
  std::fprintf(
      out,
      "{\"type\":\"summary\",\"ratings\":%zu,\"epochs\":%zu,"
      "\"alarms\":%zu,\"seconds\":%.3f,\"ratings_per_sec\":%.1f,"
      "\"resident_ratings\":%zu,\"compacted_ratings\":%zu,"
      "\"cache\":{\"hits\":%zu,\"partial_hits\":%zu,\"misses\":%zu},"
      "\"trust\":{\"raters\":%zu,\"mean\":%.4f,\"p10\":%.4f,"
      "\"p50\":%.4f,\"p90\":%.4f}}\n",
      monitor.ingested(), monitor.epoch_stats().size(),
      monitor.alarms().size(), seconds,
      seconds > 0.0 ? static_cast<double>(monitor.ingested()) / seconds
                    : 0.0,
      monitor.resident_ratings(), monitor.compacted_ratings(), cache.hits,
      cache.partial_hits, cache.misses, trust_values.size(), trust_mean,
      quantile(0.1), quantile(0.5), quantile(0.9));

  if (metrics_out.is_open()) {
    emit_metrics_record(metrics_out, monitor.epoch_stats().size());
    metrics_out.flush();
    if (!metrics_out) throw IoError("monitor: metrics write failed");
  }
  dump_trace(trace_path);

  // SIGPIPE is ignored process-wide, so a broken downstream pipe shows
  // up as a stream error here instead of killing the process silently.
  if (std::fflush(out) != 0 || std::ferror(out) != 0) {
    throw IoError("monitor: write failed (broken pipe or disk full?)");
  }
  if (opened != nullptr) {
    if (std::fclose(opened) != 0) {
      throw IoError("monitor: write failed (disk full?)");
    }
  }
  return 0;
}

int cmd_serve(const Args& args) {
  util::install_shutdown_handlers();
  net::ServeConfig config;
  config.listen = net::Addr::parse(args.get("listen", "127.0.0.1:7787"));
  config.shards = static_cast<std::size_t>(
      args.get_u64_in("shards", 1, 1, 4096));
  config.queue_capacity = static_cast<std::size_t>(
      args.get_u64_in("queue-capacity", 128, 1, 1u << 20));
  config.max_connections = static_cast<std::size_t>(
      args.get_u64("max-connections", config.max_connections));
  config.retry_after = args.get_double("retry-after", config.retry_after);
  config.io_timeout = args.get_double("io-timeout", config.io_timeout);
  config.idle_timeout =
      args.get_double("idle-timeout", config.idle_timeout);
  if (const char* env = std::getenv("RAB_SERVE_BACKLOG")) {
    config.backlog = static_cast<int>(
        util::parse_u64_in(env, "RAB_SERVE_BACKLOG", 1, 65535));
  }
  config.monitor = monitor_config_from(args);

  net::Server server(std::move(config));
  server.start();
  std::fprintf(stderr, "rab serve: listening on %s (%zu shard%s)\n",
               server.addr().to_string().c_str(), server.shards(),
               server.shards() == 1 ? "" : "s");
  // Blocks until SIGINT/SIGTERM, a kDrain frame, or request_drain();
  // every shard is checkpointed and flushed before this returns.
  server.run();

  std::uint64_t ingested = 0;
  std::uint64_t alarms = 0;
  for (std::size_t s = 0; s < server.shards(); ++s) {
    const detectors::OnlineMonitor& m = server.monitor(s);
    std::printf("{\"type\":\"shard\",\"shard\":%zu,\"ingested\":%zu,"
                "\"epochs\":%zu,\"alarms\":%zu,\"resident\":%zu}\n",
                s, m.ingested(), m.epoch_stats().size(), m.alarms().size(),
                m.resident_ratings());
    ingested += m.ingested();
    alarms += m.alarms().size();
  }
  std::printf("{\"type\":\"summary\",\"shards\":%zu,\"ingested\":%llu,"
              "\"alarms\":%llu}\n",
              server.shards(), static_cast<unsigned long long>(ingested),
              static_cast<unsigned long long>(alarms));
  if (std::fflush(stdout) != 0 || std::ferror(stdout) != 0) {
    throw IoError("serve: summary write failed (broken pipe?)");
  }
  return 0;
}

int cmd_loadgen(const Args& args) {
  // SIGINT/SIGTERM stop the feed gracefully: the partial report (with
  // "interrupted":true) is still written to --report and stdout.
  util::install_shutdown_handlers();
  net::LoadgenConfig config;
  config.addr = net::Addr::parse(args.get("addr", "127.0.0.1:7787"));
  if (const std::string data = args.get("data", "-"); data != "-") {
    config.data_csv = data;
  }
  config.ratings = args.get_u64("ratings", config.ratings);
  config.products = static_cast<std::size_t>(
      args.get_u64_in("products", config.products, 1, 1u << 30));
  config.raters = static_cast<std::size_t>(
      args.get_u64_in("raters", config.raters, 1, 1u << 30));
  config.days = args.get_double("days", config.days);
  config.mean = args.get_double("mean", config.mean);
  config.sigma = args.get_double("sigma", config.sigma);
  config.seed = args.get_u64("seed", config.seed);
  config.rate = args.get_double("rate", config.rate);
  config.batch = static_cast<std::size_t>(
      args.get_u64_in("batch", config.batch, 1, net::kMaxBatchRatings));
  config.connections = static_cast<std::size_t>(
      args.get_u64_in("connections", config.connections, 1, 1024));
  config.server_shards = static_cast<std::size_t>(
      args.get_u64_in("server-shards", config.server_shards, 1, 4096));
  config.max_retries = static_cast<std::size_t>(
      args.get_u64("max-retries", config.max_retries));
  config.drain_at_end = args.get_bool("drain", false);
  config.resume = args.get_bool("resume", false);
  config.backoff_base =
      args.get_double("backoff-base", config.backoff_base);
  config.backoff_cap = args.get_double("backoff-cap", config.backoff_cap);

  const net::LoadgenReport report = net::run_loadgen(config);
  const std::string json = net::report_json(report);
  if (const std::string path = args.get("report", "-"); path != "-") {
    std::ofstream file(path);
    if (!file) throw IoError("cannot open " + path);
    file << json << '\n';
    file.flush();
    if (!file) throw IoError("loadgen: report write failed: " + path);
  }
  std::printf("%s\n", json.c_str());
  return 0;
}

int cmd_query(const Args& args) {
  net::Client client(
      net::Addr::parse(args.get("addr", "127.0.0.1:7787")));
  const std::string what = args.get("what", "stats");
  std::string reply;
  if (what == "trust") {
    reply = client.trust(args.get_i64("rater", -1));
  } else if (what == "alarms") {
    reply = client.alarms(args.get_u64("since", 0));
  } else if (what == "stats") {
    reply = client.stats();
  } else if (what == "series") {
    reply = client.series(args.get_i64("product", -1));
  } else if (what == "metrics") {
    reply = client.metrics();
  } else if (what == "drain") {
    reply = client.drain();
  } else if (what == "ping") {
    reply = client.ping();
  } else {
    throw InvalidArgument(
        "--what: expected trust|alarms|stats|series|metrics|drain|ping, "
        "got '" + what + "'");
  }
  std::fputs(reply.c_str(), stdout);
  if (reply.empty() || reply.back() != '\n') std::fputc('\n', stdout);
  if (std::fflush(stdout) != 0 || std::ferror(stdout) != 0) {
    throw IoError("query: write failed (broken pipe?)");
  }
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: rab <command> [--flag value ...]\n"
      "commands:\n"
      "  generate   --out F [--seed N --products N --days D --mean M]\n"
      "  attack     --data F --out F [--bias B --sigma S --duration D\n"
      "             --offset O --correlation random|heuristic|blend\n"
      "             --seed N --stream I]\n"
      "  population --data F --out F [--count N --seed N]\n"
      "  evaluate   --data F --submission F [--scheme SPEC]\n"
      "             (SPEC is SA|BF|P|MED|ENT|RV|XL, optionally with a\n"
      "             +CG collusion-guard suffix, e.g. SA+CG)\n"
      "  optimize   --data F [--scheme SPEC --duration D --offset O\n"
      "             --trials N --rounds N --out F]\n"
      "  tournament --data F [--schemes S1,S2,... --attacks A1,A2,...\n"
      "             --seed N --trials N --rounds N --grid N\n"
      "             --duration D --offset O --out F --table F]\n"
      "             (scheme x attack matrix: Procedure-2 region search\n"
      "             per cell, fanned over the thread pool; attacks are\n"
      "             indep-random|indep-heuristic|squad-pre|squad-sybil|\n"
      "             squad-osc; --out gets deterministic JSON\n"
      "             (rab-tournament-v1), --table a markdown table;\n"
      "             byte-identical at any RAB_THREADS)\n"
      "  detect     --data F [--bin DAYS --trust-below T]\n"
      "  report     --data F [--bin DAYS --trust-below T --out F]\n"
      "  monitor    --data F|- [--epoch DAYS --retention DAYS\n"
      "             --min-marks N --forgetting L --cache-streams N\n"
      "             --chunk N --out F --checkpoint-dir DIR\n"
      "             --checkpoint-every N --checkpoint-keep K\n"
      "             --store-dir DIR --store-segment-bytes N\n"
      "             --metrics-out F --trace-out F]\n"
      "             (JSONL alarms + epoch counters; with --checkpoint-dir\n"
      "             the monitor snapshots its state there every N epochs\n"
      "             and resumes from the newest valid snapshot on start;\n"
      "             with --store-dir every rating is also appended to a\n"
      "             columnar mmap segment log and restart resumes\n"
      "             zero-copy from it instead of re-parsing the feed;\n"
      "             --metrics-out appends a JSONL metrics snapshot per\n"
      "             epoch, --trace-out writes Chrome trace-event JSON)\n"
      "  stats      --data F [--bin DAYS --format prom|json --out F\n"
      "             --trace-out F]\n"
      "             (runs the P-scheme pipeline, then exports the metrics\n"
      "             registry; see docs/METRICS.md for the name catalog)\n"
      "  serve      [--listen HOST:PORT|unix:/path --shards N\n"
      "             --queue-capacity N --max-connections N\n"
      "             --retry-after SECONDS --io-timeout SECONDS\n"
      "             --idle-timeout SECONDS plus every monitor knob:\n"
      "             --epoch --retention --min-marks --forgetting\n"
      "             --cache-streams --checkpoint-dir --checkpoint-every\n"
      "             --checkpoint-keep --store-dir --store-segment-bytes]\n"
      "             (streaming ingest daemon: products hash-shard across\n"
      "             N workers, each an OnlineMonitor; checkpoint/store\n"
      "             dirs get per-shard subdirectories shard-NNNN;\n"
      "             SIGINT/SIGTERM or a drain frame checkpoints and\n"
      "             flushes every shard before exit; a SIGKILL'd server\n"
      "             restarted on the same --store-dir resumes and dedups\n"
      "             sequenced sessions exactly-once; wire protocol and\n"
      "             frame grammar: docs/CLI.md)\n"
      "  loadgen    [--addr HOST:PORT|unix:/path --data F --ratings N\n"
      "             --products N --raters N --days D --mean M --sigma S\n"
      "             --seed N --rate R/S --batch N --connections N\n"
      "             --server-shards N --max-retries N --drain 0|1\n"
      "             --resume 0|1 --backoff-base S --backoff-cap S\n"
      "             --report F]\n"
      "             (replays a CSV or synthetic feed against rab serve\n"
      "             and reports throughput + ingest-latency quantiles as\n"
      "             JSON; --server-shards must match the server for >1\n"
      "             connections; --resume 1 uses protocol-v2 sessions —\n"
      "             sequenced frames, reconnect + replay across server\n"
      "             restarts, exactly-once ingest; SIGINT/SIGTERM writes\n"
      "             the partial report with \"interrupted\":true)\n"
      "  query      [--addr HOST:PORT|unix:/path --what trust|alarms|\n"
      "             stats|series|metrics|drain|ping --rater N\n"
      "             --product N --since N]\n"
      "             (one-shot query against a running rab serve)\n"
      "environment:\n"
      "  RAB_THREADS   worker threads for the analysis fan-out\n"
      "  RAB_SERVE_BACKLOG  listen(2) backlog for rab serve (default 64)\n"
      "  RAB_METRICS   set to 0/off/false to disable metrics collection\n"
      "  RAB_FAULTS    deterministic fault injection spec, e.g.\n"
      "                'checkpoint.write.body:corrupt' (see\n"
      "                src/util/failpoint.hpp for the grammar + catalog)\n"
      "  RAB_STRICT_FP set to 1/on/true to run the detector kernels in\n"
      "                the exact scalar FP operation order (bit-identical\n"
      "                to the pre-vectorization code; see DESIGN.md 5g)\n"
      "  RAB_STORE_SYNC set to 0/off/false to disable the rating store's\n"
      "                batched fsync (faster ingest, weaker crash\n"
      "                durability; see DESIGN.md 5h)\n"
      "exit codes:\n"
      "  0   success\n"
      "  1   runtime failure (unexpected exception)\n"
      "  2   usage, bad input, or I/O environment error\n"
      "      (InvalidArgument / IoError)\n"
      "  70  internal invariant violation (LogicError; please report)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    // Fault injection and the metrics kill switch are read once at the
    // entry point; library code never looks at the environment on its own.
    util::arm_failpoints_from_env();
    util::metrics::set_enabled_from_env();
    // Process-wide: a peer or downstream pipe that vanishes must surface
    // as a write error (IoError, exit 2), never a silent SIGPIPE death.
    util::ignore_sigpipe();
    const Args args(argc, argv, 2);
    if (command == "generate") {
      args.restrict(command, {"out", "seed", "products", "days", "mean"});
      return cmd_generate(args);
    }
    if (command == "attack") {
      args.restrict(command, {"data", "out", "bias", "sigma", "duration",
                              "offset", "correlation", "seed", "stream"});
      return cmd_attack(args);
    }
    if (command == "population") {
      args.restrict(command, {"data", "out", "count", "seed"});
      return cmd_population(args);
    }
    if (command == "evaluate") {
      args.restrict(command, {"data", "submission", "scheme"});
      return cmd_evaluate(args);
    }
    if (command == "optimize") {
      args.restrict(command, {"data", "scheme", "duration", "offset",
                              "trials", "rounds", "out", "seed"});
      return cmd_optimize(args);
    }
    if (command == "tournament") {
      args.restrict(command,
                    {"data", "schemes", "attacks", "seed", "trials",
                     "rounds", "grid", "duration", "offset", "out",
                     "table"});
      return cmd_tournament(args);
    }
    if (command == "detect") {
      args.restrict(command, {"data", "bin", "trust-below"});
      return cmd_detect(args);
    }
    if (command == "report") {
      args.restrict(command, {"data", "bin", "trust-below", "out"});
      return cmd_report(args);
    }
    if (command == "monitor") {
      args.restrict(command,
                    {"data", "epoch", "retention", "min-marks",
                     "forgetting", "cache-streams", "chunk", "out",
                     "checkpoint-dir", "checkpoint-every",
                     "checkpoint-keep", "store-dir",
                     "store-segment-bytes", "metrics-out", "trace-out"});
      return cmd_monitor(args);
    }
    if (command == "stats") {
      args.restrict(command,
                    {"data", "bin", "format", "out", "trace-out"});
      return cmd_stats(args);
    }
    if (command == "serve") {
      args.restrict(command,
                    {"listen", "shards", "queue-capacity",
                     "max-connections", "retry-after", "io-timeout",
                     "idle-timeout", "epoch",
                     "retention", "min-marks", "forgetting",
                     "cache-streams", "checkpoint-dir",
                     "checkpoint-every", "checkpoint-keep", "store-dir",
                     "store-segment-bytes"});
      return cmd_serve(args);
    }
    if (command == "loadgen") {
      args.restrict(command,
                    {"addr", "data", "ratings", "products", "raters",
                     "days", "mean", "sigma", "seed", "rate", "batch",
                     "connections", "server-shards", "max-retries",
                     "drain", "report", "resume", "backoff-base",
                     "backoff-cap"});
      return cmd_loadgen(args);
    }
    if (command == "query") {
      args.restrict(command,
                    {"addr", "what", "rater", "product", "since"});
      return cmd_query(args);
    }
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage();
  } catch (const LogicError& e) {
    // A library invariant broke: the bug is ours, not the caller's.
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 70;  // EX_SOFTWARE
  } catch (const InvalidArgument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
