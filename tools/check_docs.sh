#!/usr/bin/env bash
# Cross-checks the documentation against the binary and the source tree,
# so docs/CLI.md and docs/METRICS.md cannot silently drift:
#
#   - every subcommand in `rab` usage has a "### rab <cmd>" section in
#     docs/CLI.md, and vice versa
#   - every --flag in the usage text is documented, and every flag row in
#     docs/CLI.md exists in the usage text
#   - the environment knobs and exit codes appear in both
#   - every metric registered in src/ is catalogued in docs/METRICS.md,
#     and every metric row in the catalog exists in src/
#   - same for trace-span names
#   - every scheme spec the aggregation factory accepts appears in
#     docs/CLI.md, and every attack family the tournament accepts appears
#     in both docs/CLI.md and docs/ATTACKS.md (and vice versa for the
#     attack tables)
#
#   tools/check_docs.sh [path/to/rab]     # default: build/tools/rab
set -euo pipefail
cd "$(dirname "$0")/.."

RAB="${1:-build/tools/rab}"
if [[ ! -x "$RAB" ]]; then
  echo "check_docs: $RAB not built (cmake --build build --target rab_cli)" >&2
  exit 2
fi

fail=0
err() {
  echo "check_docs: $*" >&2
  fail=1
}

# Compares two newline-separated sorted sets; reports members of one
# missing from the other.
diff_sets() { # left right left_label right_label
  local only
  only="$(comm -23 <(echo "$1") <(echo "$2"))"
  [[ -z "$only" ]] || err "$3 but not $4: $(echo $only)"
  only="$(comm -13 <(echo "$1") <(echo "$2"))"
  [[ -z "$only" ]] || err "$4 but not $3: $(echo $only)"
}

usage_text="$("$RAB" 2>&1 || true)"

# --- Subcommands ----------------------------------------------------------
usage_cmds="$(echo "$usage_text" |
  awk '/^commands:/{f=1;next} /^[a-z]/{f=0} f' |
  grep -oE '^  [a-z]+' | tr -d ' ' | sort -u)"
doc_cmds="$(grep -oE '^### rab [a-z]+' docs/CLI.md | awk '{print $3}' |
  sort -u)"
diff_sets "$usage_cmds" "$doc_cmds" "in usage" "in docs/CLI.md"

# --- Flags ----------------------------------------------------------------
# Usage -> docs: every flag the binary advertises must appear in CLI.md.
# (--flag is the synopsis placeholder, not a real flag. Herestrings, not
# echo|grep -q: early-match grep -q + pipefail turns echo's SIGPIPE into
# a false failure.)
usage_flags="$(grep -oE '\-\-[a-z-]+' <<<"$usage_text" |
  grep -vx -- '--flag' | sort -u)"
while IFS= read -r flag; do
  grep -q -- "\`$flag\`" docs/CLI.md ||
    err "flag $flag is in usage but not documented in docs/CLI.md"
done <<<"$usage_flags"
# Docs -> usage: every flag row in CLI.md must exist in the usage text.
doc_flags="$(grep -oE '^\| `--[a-z-]+`' docs/CLI.md |
  grep -oE '\-\-[a-z-]+' | sort -u)"
while IFS= read -r flag; do
  grep -q -- "$flag" <<<"$usage_text" ||
    err "flag $flag is documented in docs/CLI.md but not in usage"
done <<<"$doc_flags"

# --- Environment knobs and exit codes -------------------------------------
for var in RAB_THREADS RAB_METRICS RAB_FAULTS RAB_STRICT_FP RAB_STORE_SYNC \
           RAB_SERVE_BACKLOG; do
  grep -q "$var" <<<"$usage_text" ||
    err "environment variable $var missing from usage"
  grep -q "$var" docs/CLI.md ||
    err "environment variable $var missing from docs/CLI.md"
done
for code in 0 1 2 70; do
  grep -qE "^\| \`$code\` \|" docs/CLI.md ||
    err "exit code $code missing from docs/CLI.md"
done

# --- Metric names ---------------------------------------------------------
# Registered in source: direct counter/gauge/histogram registrations plus
# the DetectorInstruments prefixes (which expand to .runs/.alarms/.seconds).
src_metrics="$( (grep -rhozoE \
    'metrics::(counter|gauge|histogram)\(\s*"[a-z0-9_.]+"' src |
    tr '\0' '\n' | grep -oE '"[a-z0-9_.]+"' | tr -d '"'
  for prefix in $(grep -rhoE 'DetectorInstruments::make\("[a-z0-9_.]+"' \
      src | grep -oE '"[a-z0-9_.]+"' | tr -d '"'); do
    echo "$prefix.runs"
    echo "$prefix.alarms"
    echo "$prefix.seconds"
  done) | sort -u)"
doc_metrics="$(grep -oE '^\| `[a-z0-9_.]+`' docs/METRICS.md |
  tr -d '|` ' | sort -u)"
# Span rows share the table shape; strip them out of the metric set.
src_spans="$( (grep -rhoE 'RAB_TRACE_SPAN\("[a-z0-9_.]+"\)' src |
  grep -oE '"[a-z0-9_.]+"' | tr -d '"'
  grep -rhoE '\.run\("[a-z0-9_.]+"' src |
  grep -oE '"[a-z0-9_.]+"' | tr -d '"') | sort -u)"
doc_metrics_only="$(comm -23 <(echo "$doc_metrics") <(echo "$src_spans"))"
diff_sets "$src_metrics" "$doc_metrics_only" \
  "metric registered in src/" "catalogued in docs/METRICS.md"

# Docs -> source for spans: every span documented must exist in src. The
# reverse (src -> docs) holds because detector spans share metric
# prefixes and the remaining spans are RAB_TRACE_SPAN literals.
while IFS= read -r span; do
  echo "$doc_metrics" | grep -qx "$span" ||
    err "span $span is in src/ but not catalogued in docs/METRICS.md"
done <<<"$src_spans"

# --- Scheme specs and attack families --------------------------------------
# Source of truth: the factory's base-name list (src/aggregation/factory.cpp)
# and the tournament's attack catalog (src/core/tournament.cpp).
src_schemes="$(grep -oE '"[A-Z]+"' src/aggregation/factory.cpp |
  tr -d '"' | sort -u)"
while IFS= read -r scheme; do
  grep -q "\`$scheme\`" docs/CLI.md ||
    err "scheme $scheme is in the factory but not documented in docs/CLI.md"
done <<<"$src_schemes"
grep -q '`+CG`' docs/CLI.md ||
  err "the +CG collusion-guard suffix is not documented in docs/CLI.md"

src_attacks="$(awk '/known_attack_names/,/^}/' src/core/tournament.cpp |
  grep -oE '"[a-z-]+"' | tr -d '"' | sort -u)"
for doc in docs/CLI.md docs/ATTACKS.md; do
  while IFS= read -r attack; do
    grep -q "\`$attack\`" "$doc" ||
      err "attack family $attack is in the tournament but not in $doc"
  done <<<"$src_attacks"
  # Reverse direction: an attack row in a doc table must still exist.
  doc_attacks="$(grep -oE '^\| `(indep|squad)-[a-z-]+`' "$doc" |
    grep -oE '(indep|squad)-[a-z-]+' | sort -u)"
  [[ -z "$doc_attacks" ]] && continue
  while IFS= read -r attack; do
    grep -qx "$attack" <<<"$src_attacks" ||
      err "attack family $attack is in $doc but unknown to the tournament"
  done <<<"$doc_attacks"
done

if [[ "$fail" -ne 0 ]]; then
  echo "check_docs: FAILED — docs and source have drifted" >&2
  exit 1
fi
echo "check_docs: OK"
