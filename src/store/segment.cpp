#include "store/segment.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace rab::store {

namespace {

constexpr std::uint32_t kFrameMagic = 0x52464253u;  // "SBFR" little-endian

void put_u32(std::string& out, std::uint32_t v) {
  char raw[4];
  std::memcpy(raw, &v, sizeof v);
  out.append(raw, sizeof raw);
}

void put_u64(std::string& out, std::uint64_t v) {
  char raw[8];
  std::memcpy(raw, &v, sizeof v);
  out.append(raw, sizeof raw);
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

PageLayout page_layout(std::size_t rows) {
  PageLayout l;
  l.times_bytes = align_up(rows * sizeof(double));
  l.values_bytes = align_up(rows * sizeof(double));
  l.raters_bytes = align_up(rows * sizeof(std::int64_t));
  l.unfair_bytes = align_up(rows * sizeof(std::uint8_t));
  return l;
}

void encode_segment_header(std::string& out, std::uint32_t flags) {
  const std::size_t base = out.size();
  out.append(kSegmentMagic, sizeof kSegmentMagic);
  put_u32(out, kSegmentVersion);
  put_u32(out, flags);
  out.resize(base + kSegmentHeaderBytes, '\0');
}

std::optional<std::uint32_t> decode_segment_header(
    std::span<const std::byte> image) {
  if (image.size() < kSegmentHeaderBytes) return std::nullopt;
  if (std::memcmp(image.data(), kSegmentMagic, sizeof kSegmentMagic) != 0) {
    return std::nullopt;
  }
  const std::uint32_t version = get_u32(image.data() + 8);
  if (version != kSegmentVersion) return std::nullopt;
  return get_u32(image.data() + 12);
}

void encode_frame_header(std::string& out, const FrameHeader& h) {
  const std::size_t base = out.size();
  put_u32(out, kFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(h.kind));
  put_u64(out, static_cast<std::uint64_t>(h.product));
  put_u64(out, h.count);
  put_u64(out, h.row_begin);
  put_u32(out, h.body_crc);
  put_u32(out, util::crc32(std::string_view(out.data() + base, 36)));
  out.resize(base + kFrameHeaderBytes, '\0');
}

std::optional<FrameHeader> decode_frame_header(
    std::span<const std::byte> bytes) {
  if (bytes.size() < kFrameHeaderBytes) return std::nullopt;
  const std::byte* p = bytes.data();
  if (get_u32(p) != kFrameMagic) return std::nullopt;
  const std::uint32_t stored_crc = get_u32(p + 36);
  if (stored_crc !=
      util::crc32(std::string_view(reinterpret_cast<const char*>(p), 36))) {
    return std::nullopt;
  }
  FrameHeader h;
  const std::uint32_t kind = get_u32(p + 4);
  if (kind != static_cast<std::uint32_t>(FrameKind::kPage) &&
      kind != static_cast<std::uint32_t>(FrameKind::kCommit) &&
      kind != static_cast<std::uint32_t>(FrameKind::kSummary) &&
      kind != static_cast<std::uint32_t>(FrameKind::kSession)) {
    return std::nullopt;
  }
  h.kind = static_cast<FrameKind>(kind);
  h.product = static_cast<std::int64_t>(get_u64(p + 8));
  h.count = get_u64(p + 16);
  h.row_begin = get_u64(p + 24);
  h.body_crc = get_u32(p + 32);
  return h;
}

}  // namespace rab::store
