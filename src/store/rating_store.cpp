#include "store/rating_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <type_traits>
#include <utility>

#include "store/segment.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rab::store {

namespace fs = std::filesystem;

// Borrowed raters columns reinterpret the mapped i64 column in place.
static_assert(sizeof(RaterId) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<RaterId>);
static_assert(std::is_standard_layout_v<RaterId>);

namespace {

struct StoreMetrics {
  util::metrics::Counter& appended =
      util::metrics::counter("store.appended_ratings");
  util::metrics::Counter& groups = util::metrics::counter("store.groups");
  util::metrics::Counter& fsyncs = util::metrics::counter("store.fsyncs");
  util::metrics::Counter& sealed =
      util::metrics::counter("store.segments_sealed");
  util::metrics::Counter& compactions =
      util::metrics::counter("store.compactions");
  util::metrics::Counter& unlinked =
      util::metrics::counter("store.segments_unlinked");
  util::metrics::Gauge& segments = util::metrics::gauge("store.segments");
  util::metrics::Gauge& mapped = util::metrics::gauge("store.mapped_bytes");
  util::metrics::Gauge& buffered =
      util::metrics::gauge("store.buffered_ratings");
};

StoreMetrics& store_metrics() {
  static StoreMetrics m;
  return m;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError("store: " + what + ": " + std::strerror(errno));
}

/// Marks the store broken when a mutation path unwinds with an exception;
/// disarm() on the success path. A broken store refuses every later
/// operation — recovery is reopening, which truncates to the last commit.
class Poison {
 public:
  explicit Poison(bool& flag) : flag_(flag) {}
  ~Poison() {
    if (armed_) flag_ = true;
  }
  void disarm() { armed_ = false; }

 private:
  bool& flag_;
  bool armed_ = true;
};

/// Appends a page frame (header + padded column payload) for `rows` of one
/// product starting at absolute index `row_begin`.
void append_page_cols(std::string& out, ProductId product,
                      std::uint64_t row_begin, std::span<const double> times,
                      std::span<const double> values,
                      std::span<const std::int64_t> raters,
                      std::span<const std::uint8_t> unfair) {
  const std::size_t n = times.size();
  const PageLayout layout = page_layout(n);
  std::string payload(layout.payload_bytes(), '\0');
  char* t = payload.data();
  char* v = t + layout.times_bytes;
  char* r = v + layout.values_bytes;
  char* u = r + layout.raters_bytes;
  std::memcpy(t, times.data(), n * sizeof(double));
  std::memcpy(v, values.data(), n * sizeof(double));
  std::memcpy(r, raters.data(), n * sizeof(std::int64_t));
  std::memcpy(u, unfair.data(), n * sizeof(std::uint8_t));
  FrameHeader h;
  h.kind = FrameKind::kPage;
  h.product = product.value();
  h.count = n;
  h.row_begin = row_begin;
  h.body_crc = util::crc32(payload.data(), payload.size());
  encode_frame_header(out, h);
  out += payload;
}

void append_page_rows(std::string& out, ProductId product,
                      std::uint64_t row_begin,
                      std::span<const rating::Rating> rows) {
  std::vector<double> times, values;
  std::vector<std::int64_t> raters;
  std::vector<std::uint8_t> unfair;
  times.reserve(rows.size());
  values.reserve(rows.size());
  raters.reserve(rows.size());
  unfair.reserve(rows.size());
  for (const rating::Rating& r : rows) {
    times.push_back(r.time);
    values.push_back(r.value);
    raters.push_back(r.rater.value());
    unfair.push_back(r.unfair ? std::uint8_t{1} : std::uint8_t{0});
  }
  append_page_cols(out, product, row_begin, times, values, raters, unfair);
}

void append_commit(std::string& out) {
  FrameHeader h;
  h.kind = FrameKind::kCommit;
  h.body_crc = util::crc32(nullptr, 0);
  encode_frame_header(out, h);
}

void append_summary(std::string& out, ProductId product,
                    std::uint64_t row_begin) {
  FrameHeader h;
  h.kind = FrameKind::kSummary;
  h.product = product.value();
  h.row_begin = row_begin;
  h.body_crc = util::crc32(nullptr, 0);
  encode_frame_header(out, h);
}

void append_session_marker(std::string& out, std::uint64_t session,
                           std::uint64_t seq) {
  FrameHeader h;
  h.kind = FrameKind::kSession;
  h.product = static_cast<std::int64_t>(session);
  h.row_begin = seq;
  h.body_crc = util::crc32(nullptr, 0);
  encode_frame_header(out, h);
}

/// Row ordering the monitor's streams use: ByTime over (time, value, rater).
bool row_before(double ta, double va, std::int64_t ra, double tb, double vb,
                std::int64_t rb) {
  if (ta != tb) return ta < tb;
  if (va != vb) return va < vb;
  return ra < rb;
}

}  // namespace

RatingStore::Mapping::~Mapping() {
  if (addr != nullptr) ::munmap(addr, len);
}

RatingStore::RatingStore(StoreConfig config) : config_(std::move(config)) {
  static_assert(std::endian::native == std::endian::little ||
                std::endian::native == std::endian::big);
  if constexpr (std::endian::native != std::endian::little) {
    throw IoError("store: segment format requires a little-endian host");
  }
  RAB_EXPECTS(!config_.dir.empty());
  RAB_EXPECTS(config_.group_ratings >= 1);
  RAB_EXPECTS(config_.segment_bytes >= 4 * kAlign);
  open_all();
}

RatingStore::~RatingStore() {
  if (!broken_) {
    try {
      sync();
    } catch (...) {
      // Destructors must not throw; the data lost is at most the last
      // un-synced group, exactly what a crash at this point would lose.
    }
  }
  if (active_fd_ >= 0) ::close(active_fd_);
}

std::string RatingStore::segment_path(std::uint64_t id) const {
  char name[32];
  std::snprintf(name, sizeof name, "seg-%016llu.rabseg",
                static_cast<unsigned long long>(id));
  return config_.dir + "/" + name;
}

const RatingStore::Mapping* RatingStore::map_file(const std::string& path,
                                                  std::size_t len) {
  RAB_FAILPOINT("store.read.map");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open " + path);
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) throw_errno("mmap " + path);
  mappings_.push_back(std::make_unique<Mapping>(addr, len));
  mapped_bytes_ += len;
  return mappings_.back().get();
}

std::size_t RatingStore::index_frames(const Mapping& map, std::uint64_t id,
                                      std::size_t from, std::size_t until,
                                      bool tail_rule) {
  const auto* base = static_cast<const std::byte*>(map.addr);
  Segment& seg = segments_.at(id);

  struct Staged {
    FrameHeader header;
    std::size_t payload_off = 0;
  };
  std::vector<Staged> staged;  // frames since the last commit (tail_rule)

  auto apply = [&](const FrameHeader& h, std::size_t payload_off) {
    if (h.kind == FrameKind::kSession) {
      auto& wm = session_watermarks_[static_cast<std::uint64_t>(h.product)];
      wm = std::max(wm, h.row_begin);
      return;
    }
    const ProductId product(h.product);
    PerProduct& pp = products_[product];
    if (h.kind == FrameKind::kPage) {
      const PageLayout layout = page_layout(h.count);
      Extent e;
      e.segment_id = id;
      e.row_begin = h.row_begin;
      e.count = h.count;
      e.times = reinterpret_cast<const double*>(base + payload_off);
      e.values = reinterpret_cast<const double*>(base + payload_off +
                                                 layout.times_bytes);
      e.raters = reinterpret_cast<const std::int64_t*>(
          base + payload_off + layout.times_bytes + layout.values_bytes);
      e.unfair = reinterpret_cast<const std::uint8_t*>(
          base + payload_off + layout.times_bytes + layout.values_bytes +
          layout.raters_bytes);
      pp.extents.push_back(e);
      pp.total_rows = std::max(pp.total_rows, e.row_end());
    } else {  // kSummary
      seg.summary_products.push_back(product);
      auto [it, inserted] = summary_floor_.try_emplace(product, h.row_begin);
      if (!inserted) it->second = std::max(it->second, h.row_begin);
      pp.total_rows = std::max(pp.total_rows, h.row_begin);
    }
  };

  std::size_t off = from;
  std::size_t last_commit = from;
  while (off < until) {
    const bool bad = [&] {
      if (until - off < kFrameHeaderBytes) return true;
      const auto header =
          decode_frame_header({base + off, until - off});
      if (!header) return true;
      if (header->kind == FrameKind::kCommit) {
        off += kFrameHeaderBytes;
        if (tail_rule) {
          for (const Staged& s : staged) apply(s.header, s.payload_off);
          staged.clear();
          last_commit = off;
        }
        return false;
      }
      if (header->kind == FrameKind::kSummary ||
          header->kind == FrameKind::kSession) {
        if (tail_rule) {
          staged.push_back({*header, 0});
        } else {
          apply(*header, 0);
        }
        off += kFrameHeaderBytes;
        return false;
      }
      // Page frame: bounds + body CRC before anything points into it.
      const PageLayout layout = page_layout(header->count);
      if (header->count == 0) return true;
      if (until - off - kFrameHeaderBytes < layout.payload_bytes()) {
        return true;
      }
      const std::size_t payload_off = off + kFrameHeaderBytes;
      const std::uint32_t crc = util::crc32(base + payload_off,
                                            layout.payload_bytes());
      if (crc != header->body_crc) return true;
      if (tail_rule) {
        staged.push_back({*header, payload_off});
      } else {
        apply(*header, payload_off);
      }
      off = payload_off + layout.payload_bytes();
      return false;
    }();
    if (bad) {
      if (tail_rule) break;
      throw CorruptData("store: invalid frame in sealed segment " +
                        segments_.at(id).path);
    }
  }
  return tail_rule ? last_commit : until;
}

void RatingStore::rebuild_extent_index() {
  auto trim_front = [](Extent& e, std::uint64_t n) {
    e.times += n;
    e.values += n;
    e.raters += n;
    e.unfair += n;
    e.row_begin += n;
    e.count -= n;
  };
  for (auto& [product, pp] : products_) {
    std::uint64_t floor = 0;
    if (auto it = summary_floor_.find(product); it != summary_floor_.end()) {
      floor = it->second;
    }
    std::vector<Extent> kept;
    kept.reserve(pp.extents.size());
    for (Extent e : pp.extents) {
      if (e.row_end() <= floor) continue;
      if (e.row_begin < floor) trim_front(e, floor - e.row_begin);
      kept.push_back(e);
    }
    // Duplicates are possible after a crash between the compactor's rename
    // and its input unlink; prefer the newer (higher-id) copy.
    std::sort(kept.begin(), kept.end(), [](const Extent& a, const Extent& b) {
      if (a.row_begin != b.row_begin) return a.row_begin < b.row_begin;
      return a.segment_id > b.segment_id;
    });
    std::vector<Extent> out;
    std::uint64_t covered = floor;
    bool first = true;
    for (Extent e : kept) {
      if (first) {
        covered = e.row_begin;
        first = false;
      }
      if (e.row_end() <= covered) continue;
      if (e.row_begin > covered) {
        throw CorruptData("store: gap in stored rows for product " +
                          std::to_string(product.value()));
      }
      if (e.row_begin < covered) trim_front(e, covered - e.row_begin);
      out.push_back(e);
      covered = e.row_end();
    }
    pp.extents = std::move(out);
    pp.min_row = pp.extents.empty() ? floor : pp.extents.front().row_begin;
    pp.total_rows = std::max({pp.total_rows, covered, floor});
  }
}

void RatingStore::open_all() {
  RAB_TRACE_SPAN("store.open");
  RAB_FAILPOINT("store.open");
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    throw IoError("store: cannot create " + config_.dir + ": " + ec.message());
  }

  std::vector<std::uint64_t> ids;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp")) {
      // Leftover of a compaction that crashed before its rename.
      fs::remove(entry.path(), ec);
      continue;
    }
    if (name.size() != 27 || !name.starts_with("seg-") ||
        !name.ends_with(".rabseg")) {
      continue;
    }
    const std::string digits = name.substr(4, 16);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    ids.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(ids.begin(), ids.end());

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint64_t id = ids[i];
    const std::string path = segment_path(id);
    const bool last = i + 1 == ids.size();
    segments_[id] = Segment{path, false, {}};

    const std::uintmax_t size = fs::file_size(path, ec);
    if (ec) throw IoError("store: cannot stat " + path + ": " + ec.message());

    std::size_t valid = 0;
    bool sealed = false;
    if (size >= kSegmentHeaderBytes) {
      const Mapping* map = map_file(path, static_cast<std::size_t>(size));
      const auto flags = decode_segment_header(
          {static_cast<const std::byte*>(map->addr), map->len});
      if (!flags) {
        if (!last) {
          throw CorruptData("store: bad segment header in " + path);
        }
        // Garbled header on the append tail: everything is torn.
      } else {
        sealed = (*flags & kFlagSealed) != 0;
        if (sealed && last && i > 0) {
          // Compactor output must be the oldest data; a sealed segment can
          // only be followed by append segments.
        }
        valid = index_frames(*map, id, kSegmentHeaderBytes, map->len,
                             /*tail_rule=*/last && !sealed);
      }
      segments_[id].sealed_flag = sealed;
    } else if (!last) {
      throw CorruptData("store: truncated sealed segment " + path);
    }

    if (last && !sealed) {
      const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
      if (fd < 0) throw_errno("open " + path);
      if (valid < size && ::ftruncate(fd, static_cast<off_t>(valid)) != 0) {
        ::close(fd);
        throw_errno("truncate " + path);
      }
      if (::lseek(fd, static_cast<off_t>(valid), SEEK_SET) < 0) {
        ::close(fd);
        throw_errno("seek " + path);
      }
      active_fd_ = fd;
      active_id_ = id;
      active_bytes_ = valid;
      indexed_until_ = valid;
      active_header_pending_ = valid == 0;
    }
  }
  next_id_ = ids.empty() ? 1 : ids.back() + 1;
  rebuild_extent_index();
  update_gauges();
}

void RatingStore::ensure_active() {
  if (active_fd_ >= 0) return;
  const std::uint64_t id = next_id_++;
  const std::string path = segment_path(id);
  RAB_FAILPOINT("store.append.open");
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("create " + path);
  segments_[id] = Segment{path, false, {}};
  active_fd_ = fd;
  active_id_ = id;
  active_bytes_ = 0;
  indexed_until_ = 0;
  active_header_pending_ = true;
}

void RatingStore::write_group(std::string& buffer) {
  const util::FaultOutcome fault =
      util::failpoint_io("store.append.frame", buffer.size());
  const std::size_t to_write =
      util::apply_fault(fault, buffer.data(), buffer.size());
  std::size_t written = 0;
  while (written < to_write) {
    const ssize_t n =
        ::write(active_fd_, buffer.data() + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      broken_ = true;
      throw_errno("write group");
    }
    written += static_cast<std::size_t>(n);
  }
  if (to_write < buffer.size()) {
    broken_ = true;
    throw IoError("store: short group write (" + std::to_string(to_write) +
                  " of " + std::to_string(buffer.size()) + " bytes)");
  }
  active_bytes_ += buffer.size();
}

void RatingStore::append(const rating::Rating& r) {
  RAB_EXPECTS(r.product.value() >= 0);
  products_[r.product].pending.push_back(r);
  ++pending_total_;
  // marker_commits defers flushing to maybe_flush() at batch boundaries so
  // groups never split a batch (the exactly-once commit invariant).
  if (!config_.marker_commits && pending_total_ >= config_.group_ratings) {
    flush();
  }
}

void RatingStore::mark_session(std::uint64_t session, std::uint64_t seq) {
  auto& wm = pending_sessions_[session];
  wm = std::max(wm, seq);
}

bool RatingStore::maybe_flush() {
  if (pending_total_ < config_.group_ratings) return false;
  flush();
  return true;
}

void RatingStore::flush() {
  if (broken_) {
    throw IoError("store: broken after a failed write; reopen to recover");
  }
  if (pending_total_ == 0 && pending_sessions_.empty()) return;
  ensure_active();
  std::string buf;
  if (active_header_pending_) encode_segment_header(buf, 0);
  for (auto& [product, pp] : products_) {
    if (pp.pending.empty()) continue;
    append_page_rows(buf, product, pp.total_rows, pp.pending);
  }
  for (const auto& [session, seq] : pending_sessions_) {
    append_session_marker(buf, session, seq);
  }
  append_commit(buf);
  write_group(buf);
  active_header_pending_ = false;
  std::uint64_t flushed = 0;
  for (auto& [product, pp] : products_) {
    if (pp.pending.empty()) continue;
    pp.total_rows += pp.pending.size();
    flushed += pp.pending.size();
    pp.pending.clear();
  }
  pending_total_ = 0;
  for (const auto& [session, seq] : pending_sessions_) {
    auto& wm = session_watermarks_[session];
    wm = std::max(wm, seq);
  }
  pending_sessions_.clear();
  store_metrics().appended.add(flushed);
  store_metrics().groups.add();
  if (active_bytes_ >= config_.segment_bytes) seal_active();
  update_gauges();
}

void RatingStore::sync() {
  if (broken_) {
    throw IoError("store: broken after a failed write; reopen to recover");
  }
  flush();
  if (active_fd_ < 0 || !config_.fsync) return;
  RAB_FAILPOINT("store.append.fsync");
  if (::fsync(active_fd_) != 0) {
    broken_ = true;
    throw_errno("fsync");
  }
  store_metrics().fsyncs.add();
}

void RatingStore::seal_active() {
  if (active_fd_ < 0) return;
  Poison poison(broken_);
  RAB_FAILPOINT("store.seal");
  if (config_.fsync) {
    if (::fsync(active_fd_) != 0) throw_errno("fsync before seal");
    store_metrics().fsyncs.add();
  }
  ::close(active_fd_);
  active_fd_ = -1;
  if (active_bytes_ > 0) {
    const Mapping* map = map_file(segments_.at(active_id_).path, active_bytes_);
    const std::size_t from =
        indexed_until_ == 0 ? kSegmentHeaderBytes : indexed_until_;
    index_frames(*map, active_id_, from, active_bytes_, /*tail_rule=*/false);
    store_metrics().sealed.add();
  } else {
    // Created but never written: drop the empty file.
    std::error_code ec;
    fs::remove(segments_.at(active_id_).path, ec);
    segments_.erase(active_id_);
  }
  active_id_ = 0;
  active_bytes_ = 0;
  indexed_until_ = 0;
  active_header_pending_ = false;
  poison.disarm();
  update_gauges();
}

std::uint64_t RatingStore::floor_for(
    const std::map<ProductId, std::uint64_t>& watermark,
    ProductId product) const {
  const auto it = watermark.find(product);
  return it == watermark.end() ? 0 : it->second;
}

void RatingStore::compact(const std::map<ProductId, std::uint64_t>& watermark) {
  RAB_TRACE_SPAN("store.compact");
  flush();  // also rejects a broken store
  Poison poison(broken_);

  // ---- Tier-1 retention: unlink fully-stale sealed segments. ----
  std::set<std::uint64_t> stale;
  for (const auto& [id, seg] : segments_) {
    if (active_fd_ >= 0 && id == active_id_) continue;
    stale.insert(id);
  }
  for (const auto& [product, pp] : products_) {
    const std::uint64_t floor = floor_for(watermark, product);
    for (const Extent& e : pp.extents) {
      if (e.row_end() > floor) stale.erase(e.segment_id);
    }
  }
  // Unlinking may only remove a *prefix* of each product's extent chain —
  // anything else would leave a row gap that reopening rejects.
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [product, pp] : products_) {
      bool seen_live = false;
      for (const Extent& e : pp.extents) {
        if (!stale.contains(e.segment_id)) {
          seen_live = true;
        } else if (seen_live) {
          stale.erase(e.segment_id);
          changed = true;
        }
      }
    }
  }
  if (!stale.empty()) {
    // Products losing their whole extent chain (or a summary carried only
    // by a stale segment) need a fresh summary so row counters survive.
    std::set<ProductId> need;
    for (const auto& [product, pp] : products_) {
      if (pp.extents.empty()) continue;
      bool all_stale = true;
      for (const Extent& e : pp.extents) {
        if (!stale.contains(e.segment_id)) all_stale = false;
      }
      if (all_stale) need.insert(product);
    }
    for (const std::uint64_t id : stale) {
      for (const ProductId p : segments_.at(id).summary_products) {
        need.insert(p);
      }
    }
    if (!need.empty() || !session_watermarks_.empty()) {
      ensure_active();
      std::string buf;
      if (active_header_pending_) encode_segment_header(buf, 0);
      for (const ProductId p : need) {
        const PerProduct& pp = products_.at(p);
        bool all_stale = true;
        for (const Extent& e : pp.extents) {
          if (!stale.contains(e.segment_id)) all_stale = false;
        }
        append_summary(buf, p, all_stale ? pp.total_rows : pp.min_row);
      }
      // Stale segments may hold the only kSession copy of a watermark;
      // re-emit the full table so dedup state survives the unlink.
      for (const auto& [session, seq] : session_watermarks_) {
        append_session_marker(buf, session, seq);
      }
      append_commit(buf);
      write_group(buf);
      active_header_pending_ = false;
      if (config_.fsync) {
        // The summaries must be durable before their sources vanish.
        if (::fsync(active_fd_) != 0) throw_errno("fsync summaries");
        store_metrics().fsyncs.add();
      }
    }
    for (auto& [product, pp] : products_) {
      std::erase_if(pp.extents, [&](const Extent& e) {
        return stale.contains(e.segment_id);
      });
      pp.min_row =
          pp.extents.empty() ? pp.total_rows : pp.extents.front().row_begin;
    }
    for (const std::uint64_t id : stale) {
      RAB_FAILPOINT("store.compact.unlink");
      std::error_code ec;
      fs::remove(segments_.at(id).path, ec);
      segments_.erase(id);
      store_metrics().unlinked.add();
    }
  }

  // ---- Tier-2: consolidate when sealed segments pile up. ----
  std::size_t sealed_count = segments_.size();
  if (active_fd_ >= 0) --sealed_count;
  if (sealed_count > config_.consolidate_after) consolidate(watermark);

  poison.disarm();
  update_gauges();
}

void RatingStore::consolidate(
    const std::map<ProductId, std::uint64_t>& watermark) {
  if (active_fd_ >= 0) {
    if (active_bytes_ > 0) {
      seal_active();
    } else {
      ::close(active_fd_);
      active_fd_ = -1;
      std::error_code ec;
      fs::remove(segments_.at(active_id_).path, ec);
      segments_.erase(active_id_);
      active_id_ = 0;
      indexed_until_ = 0;
      active_header_pending_ = false;
    }
  }

  const std::uint64_t id = next_id_++;
  std::string image;
  encode_segment_header(image, kFlagSealed);
  for (const auto& [product, pp] : products_) {
    const std::uint64_t first =
        std::max(floor_for(watermark, product), pp.min_row);
    if (first < pp.total_rows && !pp.extents.empty()) {
      const std::size_t n = pp.total_rows - first;
      std::vector<double> times, values;
      std::vector<std::int64_t> raters;
      std::vector<std::uint8_t> unfair;
      times.reserve(n);
      values.reserve(n);
      raters.reserve(n);
      unfair.reserve(n);
      for (const Extent& e : pp.extents) {
        if (e.row_end() <= first) continue;
        const std::uint64_t skip =
            first > e.row_begin ? first - e.row_begin : 0;
        for (std::uint64_t i = skip; i < e.count; ++i) {
          times.push_back(e.times[i]);
          values.push_back(e.values[i]);
          raters.push_back(e.raters[i]);
          unfair.push_back(e.unfair[i]);
        }
      }
      append_page_cols(image, product, first, times, values, raters, unfair);
    } else if (pp.total_rows > 0) {
      append_summary(image, product, pp.total_rows);
    }
  }
  // Session watermarks must survive their source segments being unlinked.
  for (const auto& [session, seq] : session_watermarks_) {
    append_session_marker(image, session, seq);
  }
  if (image.size() == kSegmentHeaderBytes) return;  // nothing stored at all

  const std::string path = segment_path(id);
  const std::string tmp = path + ".tmp";
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) throw_errno("create " + tmp);
    const util::FaultOutcome fault =
        util::failpoint_io("store.compact.write", image.size());
    const std::size_t to_write =
        util::apply_fault(fault, image.data(), image.size());
    std::size_t written = 0;
    bool failed = false;
    while (written < to_write) {
      const ssize_t n =
          ::write(fd, image.data() + written, to_write - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        failed = true;
        break;
      }
      written += static_cast<std::size_t>(n);
    }
    if (!failed && config_.fsync && ::fsync(fd) != 0) failed = true;
    ::close(fd);
    if (failed || to_write < image.size()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw IoError("store: consolidated segment write failed: " + tmp);
    }
  }
  RAB_FAILPOINT("store.compact.rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("rename " + tmp);
  }
  if (config_.fsync) {
    const int dfd = ::open(config_.dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }

  std::vector<std::uint64_t> inputs;
  for (const auto& [in_id, seg] : segments_) inputs.push_back(in_id);
  const Mapping* map = map_file(path, image.size());
  segments_[id] = Segment{path, true, {}};
  for (auto& [product, pp] : products_) pp.extents.clear();
  index_frames(*map, id, kSegmentHeaderBytes, image.size(),
               /*tail_rule=*/false);
  for (auto& [product, pp] : products_) {
    pp.min_row =
        pp.extents.empty() ? pp.total_rows : pp.extents.front().row_begin;
  }
  for (const std::uint64_t in_id : inputs) {
    RAB_FAILPOINT("store.compact.unlink");
    std::error_code ec;
    fs::remove(segments_.at(in_id).path, ec);
    segments_.erase(in_id);
    store_metrics().unlinked.add();
  }
  store_metrics().compactions.add();
}

std::vector<ProductId> RatingStore::products() const {
  std::vector<ProductId> out;
  for (const auto& [product, pp] : products_) {
    if (pp.total_rows > 0) out.push_back(product);
  }
  return out;
}

std::uint64_t RatingStore::rows(ProductId product) const {
  const auto it = products_.find(product);
  return it == products_.end() ? 0 : it->second.total_rows;
}

std::uint64_t RatingStore::min_row(ProductId product) const {
  const auto it = products_.find(product);
  return it == products_.end() ? 0 : it->second.min_row;
}

rating::ProductRatings RatingStore::load(ProductId product,
                                         std::uint64_t row_begin,
                                         std::uint64_t row_end) const {
  RAB_EXPECTS(row_begin <= row_end);
  if (row_begin == row_end) return rating::ProductRatings(product);
  const auto it = products_.find(product);
  if (it == products_.end()) {
    throw CorruptData("store: load of unknown product " +
                      std::to_string(product.value()));
  }
  const PerProduct& pp = it->second;
  const std::uint64_t stored_end =
      pp.extents.empty() ? pp.min_row : pp.extents.back().row_end();
  if (row_begin < pp.min_row || row_end > stored_end) {
    throw CorruptData("store: rows [" + std::to_string(row_begin) + ", " +
                      std::to_string(row_end) + ") of product " +
                      std::to_string(product.value()) +
                      " are not stored (have [" + std::to_string(pp.min_row) +
                      ", " + std::to_string(stored_end) + "))");
  }

  // The monitor inserts in ByTime order, so the stored arrival order is
  // almost always already canonical — verify with one adjacent scan and
  // borrow straight from the map when the range sits in a single extent.
  bool canonical = true;
  const Extent* single = nullptr;
  {
    bool have_prev = false;
    double pt = 0, pv = 0;
    std::int64_t pr = 0;
    for (const Extent& e : pp.extents) {
      if (e.row_end() <= row_begin || e.row_begin >= row_end) continue;
      if (e.row_begin <= row_begin && row_end <= e.row_end()) {
        single = &e;
      }
      const std::uint64_t lo =
          row_begin > e.row_begin ? row_begin - e.row_begin : 0;
      const std::uint64_t hi = std::min<std::uint64_t>(
          e.count, row_end - e.row_begin);
      for (std::uint64_t i = lo; i < hi; ++i) {
        if (have_prev &&
            row_before(e.times[i], e.values[i], e.raters[i], pt, pv, pr)) {
          canonical = false;
        }
        pt = e.times[i];
        pv = e.values[i];
        pr = e.raters[i];
        have_prev = true;
      }
      if (!canonical) break;
    }
  }

  if (canonical && single != nullptr) {
    const std::uint64_t off = row_begin - single->row_begin;
    const std::size_t n = row_end - row_begin;
    return rating::ProductRatings::borrowed(
        product, std::span<const double>(single->times + off, n),
        std::span<const double>(single->values + off, n),
        std::span<const RaterId>(
            reinterpret_cast<const RaterId*>(single->raters) + off, n),
        std::span<const std::uint8_t>(single->unfair + off, n));
  }

  std::vector<rating::Rating> gathered;
  gathered.reserve(row_end - row_begin);
  for (const Extent& e : pp.extents) {
    if (e.row_end() <= row_begin || e.row_begin >= row_end) continue;
    const std::uint64_t lo =
        row_begin > e.row_begin ? row_begin - e.row_begin : 0;
    const std::uint64_t hi =
        std::min<std::uint64_t>(e.count, row_end - e.row_begin);
    for (std::uint64_t i = lo; i < hi; ++i) {
      gathered.push_back(rating::Rating{e.times[i], e.values[i],
                                        RaterId(e.raters[i]), product,
                                        e.unfair[i] != 0});
    }
  }
  if (!canonical) {
    std::stable_sort(gathered.begin(), gathered.end(), rating::ByTime{});
  }
  return rating::ProductRatings::from_sorted(product, std::move(gathered));
}

std::vector<rating::Rating> RatingStore::tail(
    const std::map<ProductId, std::uint64_t>& from) const {
  std::vector<rating::Rating> out;
  for (const auto& [product, pp] : products_) {
    std::uint64_t start = pp.min_row;
    if (const auto it = from.find(product); it != from.end()) {
      if (it->second < pp.min_row) {
        throw CorruptData("store: replay tail of product " +
                          std::to_string(product.value()) +
                          " starts below the stored rows");
      }
      start = it->second;
    }
    for (const Extent& e : pp.extents) {
      if (e.row_end() <= start) continue;
      const std::uint64_t lo = start > e.row_begin ? start - e.row_begin : 0;
      for (std::uint64_t i = lo; i < e.count; ++i) {
        out.push_back(rating::Rating{e.times[i], e.values[i],
                                     RaterId(e.raters[i]), product,
                                     e.unfair[i] != 0});
      }
    }
  }
  // Time order only: the monitor ingests across products by arrival time,
  // and equal-time cross-product order cannot affect its per-epoch state.
  std::stable_sort(out.begin(), out.end(),
                   [](const rating::Rating& a, const rating::Rating& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::size_t RatingStore::segment_count() const { return segments_.size(); }

void RatingStore::update_gauges() const {
  store_metrics().segments.set(static_cast<double>(segments_.size()));
  store_metrics().mapped.set(static_cast<double>(mapped_bytes_));
  store_metrics().buffered.set(static_cast<double>(pending_total_));
}

}  // namespace rab::store
