// On-disk segment format for the columnar rating store.
//
// A segment is an append-only file: a 64-byte segment header followed by a
// sequence of 64-byte-aligned CRC-framed *frames*. A page frame carries one
// product's rating columns (times / values / raters / unfair — the SoA
// layout of rating::ProductRatings) as fixed-width little-endian arrays,
// each column padded out to a 64-byte boundary so a mapped segment can be
// handed to the kernel layer as aligned `std::span<const double>` without
// copying. A commit frame marks a durable group boundary on the append
// path (StoreWriter group-append); a summary frame records the compaction
// prefix of a product whose every stored row has aged out of retention, so
// its absolute row counter survives the segments being unlinked.
//
// Integrity reuses the checkpoint recipe (DESIGN.md §5e): every frame
// carries a CRC over its header and a CRC over its padded payload
// (util::crc32, IEEE 802.3). Recovery semantics live in
// store/rating_store.cpp: an append segment is valid up to its last intact
// commit frame; a sealed (consolidated) segment must verify end to end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace rab::store {

/// Rounds up to the payload/frame alignment every column start obeys.
inline constexpr std::size_t kAlign = 64;
[[nodiscard]] constexpr std::size_t align_up(std::size_t n) {
  return (n + (kAlign - 1)) & ~(kAlign - 1);
}

/// Segment header magic, first 8 bytes of every segment file.
inline constexpr char kSegmentMagic[8] = {'R', 'A', 'B', 'S',
                                          'E', 'G', '1', '\0'};
inline constexpr std::uint32_t kSegmentVersion = 1;

/// Segment flags (u32 at offset 12).
inline constexpr std::uint32_t kFlagSealed = 1u;  ///< written complete (compactor output)

inline constexpr std::size_t kSegmentHeaderBytes = kAlign;
inline constexpr std::size_t kFrameHeaderBytes = kAlign;

/// Frame kinds.
enum class FrameKind : std::uint32_t {
  kPage = 1,     ///< one product's rating columns
  kCommit = 2,   ///< group-append commit marker (no payload)
  kSummary = 3,  ///< compaction prefix: product rows below row_begin dropped
  kSession = 4,  ///< ingest-session sequence watermark (no payload)
};

/// Decoded frame header. On disk (little-endian):
///   u32 magic   u32 kind   i64 product   u64 count   u64 row_begin
///   u32 body_crc   u32 header_crc(first 36 bytes)   zeros to 64
struct FrameHeader {
  FrameKind kind = FrameKind::kPage;
  std::int64_t product = -1;    ///< session id (as i64) for kSession frames
  std::uint64_t count = 0;      ///< rows in a page; 0 otherwise
  std::uint64_t row_begin = 0;  ///< first-row index; sequence for kSession
  std::uint32_t body_crc = 0;   ///< CRC of the padded payload
};

/// Byte sizes of the four column arrays of an n-row page, each padded to
/// kAlign. Column order within the payload: times, values, raters, unfair.
struct PageLayout {
  std::size_t times_bytes = 0;
  std::size_t values_bytes = 0;
  std::size_t raters_bytes = 0;
  std::size_t unfair_bytes = 0;
  [[nodiscard]] std::size_t payload_bytes() const {
    return times_bytes + values_bytes + raters_bytes + unfair_bytes;
  }
  [[nodiscard]] std::size_t frame_bytes() const {
    return kFrameHeaderBytes + payload_bytes();
  }
};
[[nodiscard]] PageLayout page_layout(std::size_t rows);

/// Appends a segment header (with `flags`) to `out`.
void encode_segment_header(std::string& out, std::uint32_t flags);

/// Parses and validates the segment header at the start of `image`.
/// Returns the flags, or nullopt when the header is missing/garbled.
[[nodiscard]] std::optional<std::uint32_t> decode_segment_header(
    std::span<const std::byte> image);

/// Appends an encoded frame header (CRCs filled in) to `out`.
void encode_frame_header(std::string& out, const FrameHeader& h);

/// Parses the frame header at `bytes` (which must hold at least
/// kFrameHeaderBytes). Returns nullopt on bad magic, bad kind, or a
/// header-CRC mismatch — the torn-tail signal on the append path.
[[nodiscard]] std::optional<FrameHeader> decode_frame_header(
    std::span<const std::byte> bytes);

}  // namespace rab::store
