// Columnar mmap-backed persistent rating store.
//
// RatingStore is the durability substrate under the streaming monitor: an
// append-only log of segments (format in store/segment.hpp) holding the
// SoA rating columns in fixed-width little-endian pages. It replaces
// replay-from-CSV as the restart path — a restarted monitor mmaps the
// segments and resumes *zero-copy*: ProductRatings borrows the mapped
// columns directly (rating/product_ratings.hpp borrowed-column mode)
// instead of re-parsing and re-ingesting, so restart costs O(open + mmap).
//
// Write path (`StoreWriter` semantics): append() buffers rows per product;
// a *group-append* flushes all buffers as one contiguous write — one page
// frame per product followed by a commit frame — and fsync is batched at
// sync() (checkpoint/shutdown boundaries), not per group. A crash tears at
// worst the last un-committed group: recovery truncates the append segment
// back to its last intact commit frame, and the monitor re-ingests the
// lost suffix from its feed.
//
// Tiers (background-free, run inline from compact()):
//   tier 0  the active append segment (group-append target)
//   tier 1  sealed segments (rolled over at segment_bytes)
//   tier 2  one consolidated segment (compactor output, one page per
//           product), produced when tier 1 grows past consolidate_after
// Retention compaction is aligned with the monitor's window: a sealed
// segment whose every row sits below the caller's per-product watermark is
// summarized (so absolute row counters survive) and unlinked. Watermarks
// must come from a *durable* checkpoint — the monitor only passes
// watermarks already covered by every checkpoint generation it may fall
// back to.
//
// Lifetime rule: segment mappings live as long as the RatingStore, even
// after their file is unlinked — borrowed ProductRatings streams point
// into them. Destroy every borrowed stream before the store.
// Not thread-safe; the monitor calls it from its (single) ingest thread.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rating/product_ratings.hpp"
#include "rating/rating.hpp"
#include "util/ids.hpp"

namespace rab::store {

struct StoreConfig {
  /// Segment directory; created if missing.
  std::string dir;
  /// Roll (seal) the active segment once it reaches this many bytes.
  std::size_t segment_bytes = 8ull << 20;
  /// Group-append threshold: buffered ratings before an automatic flush.
  std::size_t group_ratings = 4096;
  /// Batch fsync at sync()/seal boundaries. Off trades the crash-
  /// durability of the latest groups for speed (RAB_STORE_SYNC=0).
  bool fsync = true;
  /// Consolidate sealed segments into one once more than this many hold
  /// live rows.
  std::size_t consolidate_after = 4;
  /// Batch-aligned commits: append() never auto-flushes; the ingest loop
  /// calls maybe_flush() at batch boundaries instead, so every committed
  /// group holds only complete batches plus their session markers — the
  /// invariant the exactly-once resume protocol relies on (DESIGN.md §5i).
  bool marker_commits = false;
};

class RatingStore {
 public:
  /// Opens (or initializes) the store: maps every segment, verifies frame
  /// CRCs, truncates a torn append tail back to its last commit frame.
  /// Throws IoError on environment failure and CorruptData when a sealed
  /// segment fails verification.
  explicit RatingStore(StoreConfig config);
  ~RatingStore();

  RatingStore(const RatingStore&) = delete;
  RatingStore& operator=(const RatingStore&) = delete;

  /// Buffers one rating on the group-append path; flushes automatically
  /// at group_ratings. Ratings of one product must arrive in ByTime order
  /// or the zero-copy restart degrades to a gathered sort (see load()).
  void append(const rating::Rating& r);

  /// Writes buffered groups to the active segment (no fsync).
  void flush();

  /// Records an ingest-session sequence watermark to be persisted (as a
  /// kSession frame) inside the next flushed group — the same group that
  /// carries the batch's rows, so marker durability implies row durability
  /// and vice versa. Watermarks are monotone per session.
  void mark_session(std::uint64_t session, std::uint64_t seq);

  /// Batch-boundary flush trigger for marker_commits mode: flushes when
  /// the buffered total has reached group_ratings. Returns true when a
  /// group was committed (buffered rows + markers became crash-durable).
  bool maybe_flush();

  /// Committed session watermarks: recovered at open from kSession frames
  /// and advanced by every flushed group. Max applied sequence per session.
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>&
  session_watermarks() const {
    return session_watermarks_;
  }

  /// flush() + batched fsync of the active segment (when config.fsync).
  void sync();

  /// Retention/tier maintenance; see file comment. `watermark` maps each
  /// product to its compaction prefix — rows with absolute index below it
  /// are no longer needed by any restart path.
  void compact(const std::map<ProductId, std::uint64_t>& watermark);

  /// Products with any stored row (flushed; buffered rows excluded).
  [[nodiscard]] std::vector<ProductId> products() const;

  /// Absolute row counter of a product: rows ever flushed (0 if unknown).
  [[nodiscard]] std::uint64_t rows(ProductId product) const;

  /// Lowest absolute row index still stored for a product.
  [[nodiscard]] std::uint64_t min_row(ProductId product) const;

  /// Materializes rows [row_begin, row_end) of one product, zero-copy when
  /// the range lies in a single mapped extent in canonical ByTime order
  /// (the common case after consolidation); otherwise gathers — still
  /// binary column copies, never a re-parse. Only rows mapped at open (or
  /// sealed since) are loadable; throws CorruptData when the range is not
  /// available. The returned stream borrows the store's mappings — it must
  /// not outlive the store.
  [[nodiscard]] rating::ProductRatings load(ProductId product,
                                            std::uint64_t row_begin,
                                            std::uint64_t row_end) const;

  /// All stored rows with per-product index >= from[product] (products
  /// absent from `from` start at their min_row), merged across products in
  /// time order — the binary replay tail for monitor recovery.
  [[nodiscard]] std::vector<rating::Rating> tail(
      const std::map<ProductId, std::uint64_t>& from) const;

  // Introspection (tests, benches, stats).
  [[nodiscard]] std::size_t segment_count() const;
  [[nodiscard]] std::size_t mapped_bytes() const { return mapped_bytes_; }
  [[nodiscard]] std::size_t buffered_ratings() const { return pending_total_; }
  [[nodiscard]] const StoreConfig& config() const { return config_; }

 private:
  /// One mmap'ed segment image; unmapped only at store destruction.
  struct Mapping {
    Mapping(void* addr, std::size_t len) : addr(addr), len(len) {}
    ~Mapping();
    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;
    void* addr = nullptr;
    std::size_t len = 0;
  };

  /// One product's contiguous run of rows inside a mapped page.
  struct Extent {
    std::uint64_t segment_id = 0;
    std::uint64_t row_begin = 0;
    std::uint64_t count = 0;
    const double* times = nullptr;
    const double* values = nullptr;
    const std::int64_t* raters = nullptr;
    const std::uint8_t* unfair = nullptr;
    [[nodiscard]] std::uint64_t row_end() const { return row_begin + count; }
  };

  struct PerProduct {
    std::vector<Extent> extents;          ///< ascending, contiguous rows
    std::uint64_t total_rows = 0;         ///< absolute row counter
    std::uint64_t min_row = 0;            ///< lowest stored row index
    std::vector<rating::Rating> pending;  ///< buffered, un-flushed rows
  };

  struct Segment {
    std::string path;
    bool sealed_flag = false;  ///< written-complete (compactor output)
    /// Products whose compaction summary lives (only) here; they need a
    /// replacement summary before this segment may be unlinked.
    std::vector<ProductId> summary_products;
  };

  void open_all();
  const Mapping* map_file(const std::string& path, std::size_t len);
  /// Validates + indexes frames of a mapped segment in [from, until).
  /// Returns the end offset of the last intact commit frame (`tail_rule`)
  /// or throws CorruptData on any invalid frame (!tail_rule).
  std::size_t index_frames(const Mapping& map, std::uint64_t id,
                           std::size_t from, std::size_t until,
                           bool tail_rule);
  void rebuild_extent_index();
  void ensure_active();
  /// Writes one group buffer to the active segment. Mutable: an armed
  /// 'corrupt' failpoint flips bits in place before the write.
  void write_group(std::string& buffer);
  void seal_active();
  void consolidate(const std::map<ProductId, std::uint64_t>& watermark);
  [[nodiscard]] std::string segment_path(std::uint64_t id) const;
  [[nodiscard]] std::uint64_t floor_for(
      const std::map<ProductId, std::uint64_t>& watermark,
      ProductId product) const;
  void update_gauges() const;

  StoreConfig config_;
  std::map<std::uint64_t, Segment> segments_;  ///< live (linked) segments
  std::vector<std::unique_ptr<Mapping>> mappings_;
  std::map<ProductId, PerProduct> products_;
  /// Highest summary-frame row_begin seen per product (compaction floor).
  std::map<ProductId, std::uint64_t> summary_floor_;
  /// Committed session → max sequence (kSession frames; see above).
  std::map<std::uint64_t, std::uint64_t> session_watermarks_;
  /// Marked but not yet flushed session watermarks.
  std::map<std::uint64_t, std::uint64_t> pending_sessions_;
  std::size_t pending_total_ = 0;
  std::size_t mapped_bytes_ = 0;

  // Active (tier-0) append segment.
  int active_fd_ = -1;
  std::uint64_t active_id_ = 0;
  std::size_t active_bytes_ = 0;    ///< valid bytes written so far
  std::size_t indexed_until_ = 0;   ///< prefix already in the extent index
  bool active_header_pending_ = false;
  std::uint64_t next_id_ = 1;
  /// A failed write leaves an undefined tail; every later op must refuse
  /// until the store is reopened (which truncates back to the last commit).
  bool broken_ = false;
};

}  // namespace rab::store
