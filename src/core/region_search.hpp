// Heuristic unfair-rating value-set optimization — Procedure 2.
//
// Searches the variance-bias plane for the region that maximizes
// manipulation power against a target defense: repeatedly divide the
// interested area into overlapping subareas, probe each subarea's center
// with m randomly generated attacks, keep the best subarea, and stop when
// the area is small. The paper shows the result beats every human
// submission from the challenge (Figure 5).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/attack_profile.hpp"

namespace rab::core {

struct RegionSearchOptions {
  Range bias{-4.0, 0.0};     ///< initial interested area, bias axis
  Range sigma{0.0, 2.0};     ///< initial interested area, std-dev axis
  std::size_t grid = 2;      ///< subareas per axis (N = grid^2, paper N=4)
  std::size_t trials = 10;   ///< m attacks probed per subarea center
  double shrink = 0.6;       ///< subarea size relative to the parent
  double min_bias_width = 0.5;   ///< stop threshold, bias axis
  double min_sigma_width = 0.25; ///< stop threshold, std-dev axis
  std::size_t max_rounds = 12;   ///< hard cap (Procedure 2 loops until small)
};

/// Evaluates the MP of one random attack drawn at (bias, sigma);
/// `trial` decorrelates repeated draws at the same point.
///
/// Thread-safety contract: region_search fans a round's grid^2 * trials
/// evaluations out over rab::util::parallel_for, so the evaluator must be
/// callable concurrently. Derive all randomness from `trial` alone (fork a
/// fresh Rng per call, as AttackGenerator::optimize does); then the search
/// result is bit-identical at any RAB_THREADS setting.
using AttackEvaluator =
    std::function<double(double bias, double sigma, std::size_t trial)>;

/// One round's outcome, for tracing the search like Figure 5.
struct RegionSearchRound {
  Range bias;
  Range sigma;
  double best_mp = 0.0;  ///< best MP among the probed subarea centers
};

struct RegionSearchResult {
  std::vector<RegionSearchRound> rounds;  ///< area after each round
  double best_bias = 0.0;   ///< center of the final interested area
  double best_sigma = 0.0;
  double best_mp = 0.0;     ///< best MP observed anywhere during the search
};

/// Runs Procedure 2. The evaluator is called rounds * grid^2 * trials
/// times at most, in parallel within each round (see AttackEvaluator).
RegionSearchResult region_search(const RegionSearchOptions& options,
                                 const AttackEvaluator& evaluate);

}  // namespace rab::core
