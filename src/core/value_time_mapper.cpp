#include "core/value_time_mapper.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "util/error.hpp"

namespace rab::core {

namespace {

/// Shared walk of Procedure 3's structure: consume times ascending; for
/// each, look up the preceding fair value and pick the remaining unfair
/// value `pick_farthest` ? farthest from it : closest to it.
std::vector<TimedValue> correlate(std::vector<double> values,
                                  std::vector<Day> times,
                                  const rating::ProductRatings& fair,
                                  bool pick_farthest) {
  RAB_EXPECTS(values.size() == times.size());
  std::sort(times.begin(), times.end());

  const std::span<const double> fair_times = fair.times();
  const std::span<const double> fair_values = fair.values();
  std::vector<TimedValue> out;
  out.reserve(times.size());

  // `values` plays the role of the paper's "rating value set"; `times` is
  // the "rating time set", consumed in ascending order (MinT).
  for (Day min_t : times) {
    // NearV: the fair rating value whose time is just before MinT. With no
    // preceding fair rating, use the first fair value (or the scale middle
    // when the fair stream is empty).
    double near_v = 0.5 * (rating::kMinRating + rating::kMaxRating);
    if (!fair_times.empty()) {
      const auto it =
          std::lower_bound(fair_times.begin(), fair_times.end(), min_t);
      const auto idx = static_cast<std::size_t>(it - fair_times.begin());
      near_v = idx == 0 ? fair_values.front() : fair_values[idx - 1];
    }
    const auto chosen = std::max_element(
        values.begin(), values.end(),
        [near_v, pick_farthest](double a, double b) {
          const double da = std::fabs(a - near_v);
          const double db = std::fabs(b - near_v);
          return pick_farthest ? da < db : da > db;
        });
    RAB_ENSURES(chosen != values.end());
    out.push_back(TimedValue{min_t, *chosen});
    values.erase(chosen);
  }
  return out;
}

}  // namespace

std::vector<TimedValue> heuristic_correlation(
    std::vector<double> values, std::vector<Day> times,
    const rating::ProductRatings& fair) {
  return correlate(std::move(values), std::move(times), fair,
                   /*pick_farthest=*/true);
}

std::vector<TimedValue> blend_correlation(
    std::vector<double> values, std::vector<Day> times,
    const rating::ProductRatings& fair) {
  return correlate(std::move(values), std::move(times), fair,
                   /*pick_farthest=*/false);
}

std::vector<TimedValue> map_values_to_times(
    std::vector<double> values, std::vector<Day> times, CorrelationMode mode,
    const rating::ProductRatings& fair, Rng& rng) {
  RAB_EXPECTS(values.size() == times.size());
  if (mode == CorrelationMode::kHeuristic) {
    return heuristic_correlation(std::move(values), std::move(times), fair);
  }
  if (mode == CorrelationMode::kBlend) {
    return blend_correlation(std::move(values), std::move(times), fair);
  }
  std::sort(times.begin(), times.end());
  rng.shuffle(values);
  std::vector<TimedValue> out;
  out.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    out.push_back(TimedValue{times[i], values[i]});
  }
  return out;
}

}  // namespace rab::core
