// The unfair rating generator (paper Section V-E, Figure 8).
//
// Composition of the pieces:
//   value set generator  -- bias/variance        (value_set_generator)
//   time set generator   -- arrival rate         (time_set_generator)
//   value & time mapper  -- correlation          (value_time_mapper)
//   parameter controller -- user ranges + learning from attack effect
//                           via Procedure 2       (region_search)
//
// The generator targets a Challenge: it knows the contest's boost/downgrade
// products, the insertion window, and the attacker squad, and emits valid
// Submissions ready for MP evaluation under any aggregation scheme.
#pragma once

#include <cstdint>

#include "aggregation/scheme.hpp"
#include "challenge/challenge.hpp"
#include "challenge/submission.hpp"
#include "core/attack_profile.hpp"
#include "core/region_search.hpp"
#include "util/rng.hpp"

namespace rab::core {

class AttackGenerator {
 public:
  /// The generator borrows the challenge (must outlive the generator).
  AttackGenerator(const challenge::Challenge& challenge, std::uint64_t seed);

  /// Builds one submission realizing `profile`; `stream` individualizes the
  /// random draws so repeated calls give independent attacks.
  [[nodiscard]] challenge::Submission generate(const AttackProfile& profile,
                                               std::uint64_t stream) const;

  /// Draws a profile uniformly from `ranges` (the parameter controller's
  /// non-learning mode: broad coverage of the attack space).
  [[nodiscard]] AttackProfile sample_profile(const ParameterRanges& ranges,
                                             std::uint64_t stream) const;

  /// Learns the strongest (bias, sigma) against `scheme` with Procedure 2,
  /// holding the timing parameters of `timing` fixed. This is the
  /// "heuristically learning from the attack effect of its previous
  /// attacks" loop of Figure 8.
  [[nodiscard]] RegionSearchResult optimize(
      const aggregation::AggregationScheme& scheme,
      const RegionSearchOptions& options, const AttackProfile& timing) const;

  /// The submission realizing an optimization result (best bias/sigma with
  /// `timing`'s timing), picking the best of `trials` draws under `scheme`.
  [[nodiscard]] challenge::Submission realize_best(
      const aggregation::AggregationScheme& scheme,
      const RegionSearchResult& search, const AttackProfile& timing,
      std::size_t trials = 10) const;

  [[nodiscard]] const challenge::Challenge& challenge() const {
    return *challenge_;
  }

 private:
  const challenge::Challenge* challenge_;
  std::uint64_t seed_;
};

}  // namespace rab::core
