#include "core/region_search.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace rab::core {

namespace {

/// Subarea `i` of `n` along one axis: size shrink*width, centered at the
/// (i + 0.5)/n fraction of the parent range. Adjacent subareas overlap
/// whenever shrink > 1/n, as Procedure 2 allows.
Range subrange(const Range& parent, std::size_t i, std::size_t n,
               double shrink) {
  const double center =
      parent.lo + parent.width() * (static_cast<double>(i) + 0.5) /
                      static_cast<double>(n);
  const double half = 0.5 * shrink * parent.width();
  return Range{center - half, center + half};
}

}  // namespace

RegionSearchResult region_search(const RegionSearchOptions& options,
                                 const AttackEvaluator& evaluate) {
  RAB_EXPECTS(options.grid >= 1);
  RAB_EXPECTS(options.trials >= 1);
  RAB_EXPECTS(options.shrink > 0.0 && options.shrink < 1.0);
  RAB_EXPECTS(options.bias.width() > 0.0);
  RAB_EXPECTS(options.sigma.width() >= 0.0);
  RAB_EXPECTS(evaluate != nullptr);

  RegionSearchResult result;
  Range bias = options.bias;
  Range sigma = options.sigma;
  std::size_t trial_counter = 0;

  const std::size_t cells = options.grid * options.grid;
  const std::size_t probes = cells * options.trials;

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    double round_best = -1.0;
    Range best_bias = bias;
    Range best_sigma = sigma;

    // Probe each subarea's center with m random attacks; a subarea's score
    // is the best MP among them (Procedure 2 lines 6-7). The grid^2 * m
    // evaluations of a round are embarrassingly parallel: flat probe index
    // p covers cell p / trials, trial p % trials, and maps to the same
    // trial id the serial bi -> si -> t loop nest would have used, so the
    // reduction below is bit-identical at any thread count.
    std::vector<double> mp(probes, 0.0);
    util::parallel_for(probes, [&](std::size_t p) {
      const std::size_t cell = p / options.trials;
      const Range sub_bias =
          subrange(bias, cell / options.grid, options.grid, options.shrink);
      const Range sub_sigma =
          subrange(sigma, cell % options.grid, options.grid, options.shrink);
      mp[p] = evaluate(sub_bias.center(), std::max(sub_sigma.center(), 0.0),
                       trial_counter + p);
    });
    trial_counter += probes;

    for (std::size_t cell = 0; cell < cells; ++cell) {
      const Range sub_bias =
          subrange(bias, cell / options.grid, options.grid, options.shrink);
      const Range sub_sigma =
          subrange(sigma, cell % options.grid, options.grid, options.shrink);
      double sub_best = 0.0;
      for (std::size_t t = 0; t < options.trials; ++t) {
        sub_best = std::max(sub_best, mp[cell * options.trials + t]);
      }
      result.best_mp = std::max(result.best_mp, sub_best);
      if (sub_best > round_best) {
        round_best = sub_best;
        best_bias = sub_bias;
        best_sigma = sub_sigma;
      }
    }

    bias = best_bias;
    sigma.lo = std::max(best_sigma.lo, 0.0);
    sigma.hi = best_sigma.hi;
    result.rounds.push_back(RegionSearchRound{bias, sigma, round_best});

    if (bias.width() < options.min_bias_width &&
        sigma.width() < options.min_sigma_width) {
      break;  // interested area is small enough (Procedure 2 line 10)
    }
  }

  result.best_bias = bias.center();
  result.best_sigma = std::max(sigma.center(), 0.0);
  return result;
}

}  // namespace rab::core
