// Attack parameterization (paper Section V-E).
//
// The analysis of the challenge data found that an unfair-rating attack is
// described by four features: value bias, value variance, arrival rate
// (attack duration for a fixed squad), and correlation with the fair
// ratings. AttackProfile captures one concrete choice; ParameterRanges
// captures the user-supplied ranges the parameter controller explores.
#pragma once

#include <cstddef>

#include "util/day.hpp"

namespace rab::core {

/// Closed numeric range [lo, hi].
struct Range {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] double width() const { return hi - lo; }
  [[nodiscard]] double center() const { return 0.5 * (lo + hi); }
  [[nodiscard]] bool contains(double x) const { return x >= lo && x <= hi; }
};

/// How unfair values are matched to insertion times.
enum class CorrelationMode {
  kRandom,     ///< independent pairing (what real attackers did)
  kHeuristic,  ///< Procedure 3: anti-correlate with preceding fair ratings
  kBlend,      ///< the symmetric probe: place each time's *closest*
               ///< remaining value, so unfair ratings mimic the local fair
               ///< signal instead of countering it
};

/// One concrete attack configuration, applied to every targeted product.
/// Bias is expressed for downgrade targets; boost targets mirror it upward
/// with the (smaller) headroom above the fair mean.
struct AttackProfile {
  double bias = -2.0;        ///< mean(unfair) - mean(fair), downgrade sign
  double sigma = 0.5;        ///< value spread before clamping/rounding
  double duration_days = 30; ///< attack duration
  double offset_days = 0.0;  ///< start offset inside the challenge window
  std::size_t ratings_per_product = 50;  ///< squad slice per product
  CorrelationMode correlation = CorrelationMode::kRandom;
  bool discrete_values = true;  ///< round to whole stars
};

/// Parameter ranges fed to the attack generator's controller (the "user
/// input" box of Figure 8).
struct ParameterRanges {
  Range bias{-4.0, 0.0};
  Range sigma{0.0, 2.0};
  Range duration_days{10.0, 80.0};
  Range offset_days{0.0, 40.0};
};

}  // namespace rab::core
