// Value & time mapper (Figure 8, center) — pairs a value set with a time
// set, optionally creating correlation with the fair ratings via the
// paper's heuristic (Procedure 3).
//
// Procedure 3: repeatedly take the earliest unmatched time, find the fair
// rating immediately preceding it, and assign the remaining unfair value
// farthest from that fair value. The unfair stream then systematically
// counters the fair signal; Section V-D shows this ordering beats both the
// original and random orderings most of the time.
#pragma once

#include <vector>

#include "core/attack_profile.hpp"
#include "rating/product_ratings.hpp"
#include "util/day.hpp"
#include "util/rng.hpp"

namespace rab::core {

/// One (time, value) pairing.
struct TimedValue {
  Day time = 0.0;
  double value = 0.0;
};

/// Pairs `values` with `times` (same length) under `mode`.
/// kRandom shuffles the values over the sorted times; kHeuristic runs
/// Procedure 3 against `fair` (the product's fair stream); kBlend runs the
/// symmetric variant (closest value instead of farthest).
std::vector<TimedValue> map_values_to_times(
    std::vector<double> values, std::vector<Day> times, CorrelationMode mode,
    const rating::ProductRatings& fair, Rng& rng);

/// Procedure 3 exactly as printed in the paper. Exposed for tests.
std::vector<TimedValue> heuristic_correlation(
    std::vector<double> values, std::vector<Day> times,
    const rating::ProductRatings& fair);

/// The symmetric probe: earliest time gets the remaining value *closest*
/// to the preceding fair rating, so the unfair stream mimics the fair one.
std::vector<TimedValue> blend_correlation(
    std::vector<double> values, std::vector<Day> times,
    const rating::ProductRatings& fair);

}  // namespace rab::core
