// Rating value set generator (Figure 8, left box).
//
// Draws a multiset of unfair rating values with a prescribed bias and
// variance around the fair mean, clamped to the rating scale and optionally
// discretized to whole stars.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace rab::core {

struct ValueSetParams {
  double fair_mean = 4.0;   ///< mean of the product's fair ratings
  double bias = -2.0;       ///< target mean offset from fair_mean
  double sigma = 0.5;       ///< standard deviation before clamping
  std::size_t count = 50;
  bool discrete = true;     ///< round to whole stars
};

/// Generates one value set; values land in [kMinRating, kMaxRating].
std::vector<double> generate_value_set(const ValueSetParams& params,
                                       Rng& rng);

}  // namespace rab::core
