#include "core/value_set_generator.hpp"

#include <algorithm>
#include <cmath>

#include "rating/rating.hpp"
#include "util/error.hpp"

namespace rab::core {

std::vector<double> generate_value_set(const ValueSetParams& params,
                                       Rng& rng) {
  RAB_EXPECTS(params.sigma >= 0.0);
  std::vector<double> values;
  values.reserve(params.count);
  const double target = params.fair_mean + params.bias;
  for (std::size_t i = 0; i < params.count; ++i) {
    double v = rng.gaussian(target, params.sigma);
    v = std::clamp(v, rating::kMinRating, rating::kMaxRating);
    if (params.discrete) v = std::round(v);
    values.push_back(v);
  }
  return values;
}

}  // namespace rab::core
