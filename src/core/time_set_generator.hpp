// Rating time set generator (Figure 8, right box).
//
// Places unfair-rating times inside the challenge window according to an
// arrival model. Supports the two shapes observed in the challenge data:
// uniform placement over an attack duration (what participants did) and a
// Poisson stream with a chosen rate (for fine-grained arrival-rate sweeps,
// Section V-C).
#pragma once

#include <cstddef>
#include <vector>

#include "util/day.hpp"
#include "util/rng.hpp"

namespace rab::core {

struct TimeSetParams {
  Interval window;            ///< allowed insertion window
  double offset_days = 0.0;   ///< attack start offset from window.begin
  double duration_days = 30;  ///< attack duration (clipped to the window)
  std::size_t count = 50;
};

/// `count` times uniform over [window.begin + offset, + duration], sorted.
/// Times never leave the window.
std::vector<Day> generate_time_set(const TimeSetParams& params, Rng& rng);

/// Poisson-process times with inter-arrival rate `per_day`, starting at
/// window.begin + offset, truncated to `count` and to the window; if the
/// process exits the window before `count` arrivals, the remaining times
/// wrap back to the attack start (keeping exactly `count` insertions, as a
/// challenge participant must place all their raters). Sorted.
std::vector<Day> generate_poisson_time_set(const TimeSetParams& params,
                                           double per_day, Rng& rng);

/// `count` times split evenly over `bursts` short bursts of
/// `burst_days` each, with burst starts spread across the attack span
/// (offset/duration of `params`). The multi-burst shape some challenge
/// participants used to dodge single-interval detection. Sorted.
std::vector<Day> generate_burst_time_set(const TimeSetParams& params,
                                         std::size_t bursts,
                                         double burst_days, Rng& rng);

}  // namespace rab::core
