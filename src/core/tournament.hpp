// Scheme × attack tournament: Procedure-2 region search per cell.
//
// For every (aggregation scheme, attack family) pair the tournament runs
// the paper's region search over the (bias, sigma) plane — the same
// Procedure 2 the attack generator uses — with the attack family fixing
// how a probe at (bias, sigma, trial) becomes a submission: either an
// independent attack (core/attack_generator.hpp) or a coordinated squad
// (challenge/squad.hpp). Each cell therefore reports the *strongest found*
// attack of that family against that defense, which is the matrix
// EXPERIMENTS.md tabulates.
//
// Determinism: cells fan out over util::ThreadPool (one result slot per
// cell; each cell's own region search runs inline on its worker), every
// probe derives its randomness from (cell, trial) alone, and the JSON
// writer formats without timestamps — so the matrix is byte-identical
// across reruns and RAB_THREADS settings.
//
// Squad submissions break the contest's formal rules on purpose (duplicate
// ratings across phases, churned ids beyond the rater budget), so all
// cells score through MpMetric::evaluate_overall, not Challenge::evaluate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "challenge/challenge.hpp"
#include "core/region_search.hpp"

namespace rab::core {

/// The attack families a tournament column can name.
///   indep-random     independent attackers, random value/time pairing
///   indep-heuristic  independent attackers, Procedure-3 anti-correlation
///   squad-pre        squad with a trust-building honest pre-rating phase
///   squad-sybil      squad-pre plus mid-strike Sybil id churn
///   squad-osc        squad oscillating between strike and camouflage
const std::vector<std::string>& known_attack_names();

struct TournamentOptions {
  std::vector<std::string> schemes{"SA", "MED", "ENT", "P"};
  std::vector<std::string> attacks{"indep-random", "indep-heuristic",
                                   "squad-pre", "squad-sybil"};
  std::uint64_t seed = 1;
  /// Timing of independent attacks (profile duration/offset) and the
  /// squad strike window length.
  double duration_days = 50.0;
  double offset_days = 5.0;
  RegionSearchOptions search;
};

/// One (scheme, attack) outcome: the strongest found attack of the family.
struct TournamentCell {
  std::string scheme;  ///< scheme spec (aggregation::make_scheme)
  std::string attack;  ///< attack family (known_attack_names)
  double best_mp = 0.0;
  double best_bias = 0.0;
  double best_sigma = 0.0;
  std::size_t rounds = 0;       ///< region-search rounds until converged
  std::size_t evaluations = 0;  ///< MP evaluations spent on the cell
};

struct TournamentResult {
  TournamentOptions options;
  std::vector<TournamentCell> cells;  ///< scheme-major, attack-minor

  [[nodiscard]] const TournamentCell& cell(const std::string& scheme,
                                           const std::string& attack) const;
};

/// Runs the full matrix against `challenge`. Throws InvalidArgument on an
/// unknown scheme spec or attack name before any cell runs.
TournamentResult run_tournament(const challenge::Challenge& challenge,
                                const TournamentOptions& options);

/// Machine-readable matrix (schema rab-tournament-v1); byte-identical
/// across reruns and thread counts for a given challenge + options.
std::string tournament_json(const TournamentResult& result);

/// The human half: a GitHub-markdown table (schemes down, attacks across,
/// best MP per cell) for pasting into EXPERIMENTS.md.
std::string tournament_table(const TournamentResult& result);

}  // namespace rab::core
