#include "core/time_set_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rab::core {

namespace {

Day clamp_into(Day t, const Interval& window) {
  return std::clamp(t, window.begin,
                    std::nextafter(window.end, window.begin));
}

}  // namespace

std::vector<Day> generate_time_set(const TimeSetParams& params, Rng& rng) {
  RAB_EXPECTS(!params.window.empty());
  RAB_EXPECTS(params.duration_days > 0.0);
  RAB_EXPECTS(params.offset_days >= 0.0);

  const Day begin =
      clamp_into(params.window.begin + params.offset_days, params.window);
  const Day end = clamp_into(begin + params.duration_days, params.window);

  std::vector<Day> times;
  times.reserve(params.count);
  for (std::size_t i = 0; i < params.count; ++i) {
    times.push_back(begin + rng.uniform(0.0, std::max(end - begin, 1e-6)));
  }
  for (Day& t : times) t = clamp_into(t, params.window);
  std::sort(times.begin(), times.end());
  return times;
}

std::vector<Day> generate_poisson_time_set(const TimeSetParams& params,
                                           double per_day, Rng& rng) {
  RAB_EXPECTS(!params.window.empty());
  RAB_EXPECTS(per_day > 0.0);

  const Day begin =
      clamp_into(params.window.begin + params.offset_days, params.window);
  std::vector<Day> times;
  times.reserve(params.count);
  Day t = begin;
  while (times.size() < params.count) {
    t += rng.exponential(per_day);
    if (t >= params.window.end) {
      // Participant must place every rater: restart the stream at the
      // attack start with fresh arrivals.
      t = begin + rng.exponential(per_day);
      if (t >= params.window.end) t = begin;  // degenerate tiny window
    }
    times.push_back(clamp_into(t, params.window));
  }
  std::sort(times.begin(), times.end());
  return times;
}

std::vector<Day> generate_burst_time_set(const TimeSetParams& params,
                                         std::size_t bursts,
                                         double burst_days, Rng& rng) {
  RAB_EXPECTS(!params.window.empty());
  RAB_EXPECTS(bursts >= 1);
  RAB_EXPECTS(burst_days > 0.0);

  const Day span_begin =
      clamp_into(params.window.begin + params.offset_days, params.window);
  const Day span_end =
      clamp_into(span_begin + params.duration_days, params.window);
  const double span = std::max(span_end - span_begin, burst_days);

  std::vector<Day> times;
  times.reserve(params.count);
  for (std::size_t b = 0; b < bursts; ++b) {
    // Burst b serves an equal slice of the count (remainder to the last).
    const std::size_t begin_index = params.count * b / bursts;
    const std::size_t end_index = params.count * (b + 1) / bursts;
    const Day burst_start = span_begin +
                            rng.uniform(0.0, std::max(span - burst_days,
                                                      1e-6));
    for (std::size_t i = begin_index; i < end_index; ++i) {
      times.push_back(clamp_into(
          burst_start + rng.uniform(0.0, burst_days), params.window));
    }
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace rab::core
