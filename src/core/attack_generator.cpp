#include "core/attack_generator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/time_set_generator.hpp"
#include "core/value_set_generator.hpp"
#include "core/value_time_mapper.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace rab::core {

AttackGenerator::AttackGenerator(const challenge::Challenge& challenge,
                                 std::uint64_t seed)
    : challenge_(&challenge), seed_(seed) {}

challenge::Submission AttackGenerator::generate(const AttackProfile& profile,
                                                std::uint64_t stream) const {
  RAB_EXPECTS(profile.ratings_per_product >= 1);
  RAB_EXPECTS(profile.ratings_per_product <=
              challenge_->config().attack_raters);
  Rng rng = Rng(seed_).fork(stream);

  challenge::Submission out;
  std::ostringstream label;
  label << "generated(bias=" << profile.bias << ",sigma=" << profile.sigma
        << ",dur=" << profile.duration_days << ")";
  out.label = label.str();

  const challenge::ChallengeConfig& config = challenge_->config();

  auto emit = [&](ProductId id, bool boost) {
    const double fair_mean = challenge_->fair_mean(id);

    ValueSetParams vparams;
    vparams.fair_mean = fair_mean;
    // The profile's bias is expressed downgrade-side; boosting mirrors it
    // into the (much smaller) headroom above the fair mean.
    const double magnitude = std::fabs(profile.bias);
    vparams.bias =
        boost ? std::min(magnitude, rating::kMaxRating - fair_mean)
              : -magnitude;
    vparams.sigma = profile.sigma;
    vparams.count = profile.ratings_per_product;
    vparams.discrete = profile.discrete_values;
    std::vector<double> values = generate_value_set(vparams, rng);

    TimeSetParams tparams;
    tparams.window = config.window;
    tparams.offset_days = profile.offset_days;
    tparams.duration_days = profile.duration_days;
    tparams.count = profile.ratings_per_product;
    std::vector<Day> times = generate_time_set(tparams, rng);

    const std::vector<TimedValue> mapped = map_values_to_times(
        std::move(values), std::move(times), profile.correlation,
        challenge_->fair().product(id), rng);

    for (std::size_t k = 0; k < mapped.size(); ++k) {
      rating::Rating r;
      r.time = mapped[k].time;
      r.value = mapped[k].value;
      r.rater = challenge_->attacker(k);
      r.product = id;
      r.unfair = true;
      out.ratings.push_back(r);
    }
  };

  for (ProductId id : config.boost_targets) emit(id, /*boost=*/true);
  for (ProductId id : config.downgrade_targets) emit(id, /*boost=*/false);
  return out;
}

AttackProfile AttackGenerator::sample_profile(const ParameterRanges& ranges,
                                              std::uint64_t stream) const {
  Rng rng = Rng(seed_ ^ 0xabcdef12345ULL).fork(stream);
  AttackProfile profile;
  profile.bias = rng.uniform(ranges.bias.lo, ranges.bias.hi);
  profile.sigma = rng.uniform(std::max(ranges.sigma.lo, 0.0),
                              std::max(ranges.sigma.hi, 0.0));
  profile.duration_days =
      rng.uniform(ranges.duration_days.lo, ranges.duration_days.hi);
  profile.offset_days =
      rng.uniform(ranges.offset_days.lo, ranges.offset_days.hi);
  profile.ratings_per_product = challenge_->config().attack_raters;
  return profile;
}

RegionSearchResult AttackGenerator::optimize(
    const aggregation::AggregationScheme& scheme,
    const RegionSearchOptions& options, const AttackProfile& timing) const {
  const AttackEvaluator evaluator = [&](double bias, double sigma,
                                        std::size_t trial) {
    AttackProfile probe = timing;
    probe.bias = bias;
    probe.sigma = sigma;
    const challenge::Submission submission =
        generate(probe, 0x5e4c0000ULL + trial);
    return challenge_->evaluate_overall(submission, scheme);
  };
  return region_search(options, evaluator);
}

challenge::Submission AttackGenerator::realize_best(
    const aggregation::AggregationScheme& scheme,
    const RegionSearchResult& search, const AttackProfile& timing,
    std::size_t trials) const {
  RAB_EXPECTS(trials >= 1);
  AttackProfile profile = timing;
  profile.bias = search.best_bias;
  profile.sigma = search.best_sigma;

  // Monte Carlo over realizations: every draw forks its RNG from the trial
  // index, so the trials are independent and can run concurrently. The
  // serial argmax below keeps first-wins tie-breaking, making the chosen
  // submission identical at any thread count.
  std::vector<challenge::Submission> candidates(trials);
  std::vector<double> mps(trials, -1.0);
  util::parallel_for(trials, [&](std::size_t t) {
    candidates[t] = generate(profile, 0xbe570000ULL + t);
    mps[t] = challenge_->evaluate_overall(candidates[t], scheme);
  });

  std::size_t best = 0;
  for (std::size_t t = 1; t < trials; ++t) {
    if (mps[t] > mps[best]) best = t;
  }
  return std::move(candidates[best]);
}

}  // namespace rab::core
