#include "core/tournament.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "aggregation/factory.hpp"
#include "challenge/squad.hpp"
#include "core/attack_generator.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace rab::core {

namespace {

/// Squad presets per attack family; the region search owns bias/sigma.
challenge::SquadConfig squad_preset(const std::string& attack,
                                    const challenge::Challenge& challenge,
                                    const TournamentOptions& options) {
  challenge::SquadConfig config;
  config.squad_size = challenge.config().attack_raters;
  if (attack == "squad-pre" || attack == "squad-sybil") {
    // Build trust for a month, then strike.
    config.pre_days = 30.0;
    config.strike_offset_days = 35.0;
    config.strike_days = options.duration_days;
    if (attack == "squad-sybil") config.churn_rate = 0.5;
  } else {  // squad-osc
    // No pre-phase; a long, low-duty oscillation across the window.
    config.strike_offset_days = options.offset_days;
    config.strike_days = 70.0;
    config.duty_cycle = 0.6;
  }
  return config;
}

bool is_squad(const std::string& attack) {
  return attack.rfind("squad-", 0) == 0;
}

/// The family's evaluator: turn a probe (bias, sigma, trial) into a
/// submission and score it. Randomness comes from (cell, trial) alone —
/// the region-search thread-safety contract.
AttackEvaluator make_evaluator(const std::string& attack, std::size_t cell,
                               const challenge::Challenge& challenge,
                               const aggregation::AggregationScheme& scheme,
                               const TournamentOptions& options) {
  const std::uint64_t stream_base = static_cast<std::uint64_t>(cell) << 20;
  if (is_squad(attack)) {
    const challenge::SquadGenerator generator(challenge, options.seed);
    const challenge::SquadConfig preset =
        squad_preset(attack, challenge, options);
    return [&challenge, &scheme, generator, preset, stream_base](
               double bias, double sigma, std::size_t trial) {
      challenge::SquadConfig config = preset;
      config.bias = bias;
      config.sigma = sigma;
      const challenge::Submission submission =
          generator.generate(config, stream_base + trial);
      return challenge.metric().evaluate_overall(submission, scheme);
    };
  }
  const AttackGenerator generator(challenge, options.seed);
  AttackProfile profile;
  profile.duration_days = options.duration_days;
  profile.offset_days = options.offset_days;
  profile.correlation = attack == "indep-heuristic"
                            ? CorrelationMode::kHeuristic
                            : CorrelationMode::kRandom;
  return [&challenge, &scheme, generator, profile, stream_base](
             double bias, double sigma, std::size_t trial) {
    AttackProfile probe = profile;
    probe.bias = bias;
    probe.sigma = sigma;
    const challenge::Submission submission =
        generator.generate(probe, stream_base + trial);
    return challenge.metric().evaluate_overall(submission, scheme);
  };
}

/// %.17g — round-trip exact and byte-stable for the JSON writer.
std::string fmt_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

void append_json_string_array(std::ostringstream& os,
                              const std::vector<std::string>& items) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << items[i] << '"';
  }
  os << ']';
}

}  // namespace

const std::vector<std::string>& known_attack_names() {
  static const std::vector<std::string> names{
      "indep-random", "indep-heuristic", "squad-pre", "squad-sybil",
      "squad-osc"};
  return names;
}

const TournamentCell& TournamentResult::cell(
    const std::string& scheme, const std::string& attack) const {
  for (const TournamentCell& c : cells) {
    if (c.scheme == scheme && c.attack == attack) return c;
  }
  throw InvalidArgument("no tournament cell (" + scheme + ", " + attack +
                        ")");
}

TournamentResult run_tournament(const challenge::Challenge& challenge,
                                const TournamentOptions& options) {
  RAB_EXPECTS(!options.schemes.empty());
  RAB_EXPECTS(!options.attacks.empty());
  // Fail on a bad spec before any cell burns region-search time.
  for (const std::string& spec : options.schemes) {
    (void)aggregation::make_scheme(spec);
  }
  for (const std::string& attack : options.attacks) {
    const auto& known = known_attack_names();
    if (std::find(known.begin(), known.end(), attack) == known.end()) {
      std::string valid;
      for (const std::string& name : known) {
        if (!valid.empty()) valid += ", ";
        valid += name;
      }
      throw InvalidArgument("unknown attack '" + attack + "' (use " +
                            valid + ")");
    }
  }

  static auto& cells_counter = util::metrics::counter("tournament.cells");
  static auto& evals_counter =
      util::metrics::counter("tournament.evaluations");

  TournamentResult result;
  result.options = options;
  const std::size_t n_cells =
      options.schemes.size() * options.attacks.size();
  result.cells.resize(n_cells);

  // One cell per slot; a cell's own region search fans its probes with a
  // nested parallel_for, which runs inline on this cell's worker — so the
  // matrix parallelizes across cells without oversubscription, and every
  // probe's randomness is a function of (cell, trial) alone.
  util::parallel_for(n_cells, [&](std::size_t i) {
    const std::string& scheme_spec =
        options.schemes[i / options.attacks.size()];
    const std::string& attack = options.attacks[i % options.attacks.size()];
    const auto scheme = aggregation::make_scheme(scheme_spec);
    const AttackEvaluator evaluate =
        make_evaluator(attack, i, challenge, *scheme, options);
    const RegionSearchResult search =
        region_search(options.search, evaluate);

    TournamentCell& cell = result.cells[i];
    cell.scheme = scheme_spec;
    cell.attack = attack;
    cell.best_mp = search.best_mp;
    cell.best_bias = search.best_bias;
    cell.best_sigma = search.best_sigma;
    cell.rounds = search.rounds.size();
    cell.evaluations = search.rounds.size() * options.search.grid *
                       options.search.grid * options.search.trials;
    cells_counter.add();
    evals_counter.add(cell.evaluations);
  });
  return result;
}

std::string tournament_json(const TournamentResult& result) {
  const TournamentOptions& o = result.options;
  std::ostringstream os;
  os << "{\n  \"schema\": \"rab-tournament-v1\",\n  \"seed\": " << o.seed
     << ",\n  \"duration_days\": " << fmt_double(o.duration_days)
     << ",\n  \"offset_days\": " << fmt_double(o.offset_days)
     << ",\n  \"search\": {\"grid\": " << o.search.grid
     << ", \"trials\": " << o.search.trials
     << ", \"max_rounds\": " << o.search.max_rounds
     << ", \"shrink\": " << fmt_double(o.search.shrink) << "},\n"
     << "  \"schemes\": ";
  append_json_string_array(os, o.schemes);
  os << ",\n  \"attacks\": ";
  append_json_string_array(os, o.attacks);
  os << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const TournamentCell& c = result.cells[i];
    os << "    {\"scheme\": \"" << c.scheme << "\", \"attack\": \""
       << c.attack << "\", \"best_mp\": " << fmt_double(c.best_mp)
       << ", \"best_bias\": " << fmt_double(c.best_bias)
       << ", \"best_sigma\": " << fmt_double(c.best_sigma)
       << ", \"rounds\": " << c.rounds
       << ", \"evaluations\": " << c.evaluations << '}'
       << (i + 1 < result.cells.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string tournament_table(const TournamentResult& result) {
  const TournamentOptions& o = result.options;
  std::ostringstream os;
  os << "| scheme \\ attack |";
  for (const std::string& attack : o.attacks) os << ' ' << attack << " |";
  os << "\n|---|";
  for (std::size_t i = 0; i < o.attacks.size(); ++i) os << "---|";
  os << '\n';
  char buffer[32];
  for (const std::string& scheme : o.schemes) {
    os << "| " << scheme << " |";
    for (const std::string& attack : o.attacks) {
      const TournamentCell& c = result.cell(scheme, attack);
      std::snprintf(buffer, sizeof buffer, "%.3f", c.best_mp);
      os << ' ' << buffer << " |";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace rab::core
