#include "cluster/single_linkage.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "util/error.hpp"
#include "util/scratch.hpp"

namespace rab::cluster {

namespace {

/// Union-find with path compression and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

Clustering labels_from_sets(DisjointSets& sets, std::size_t n) {
  Clustering out;
  out.labels.assign(n, 0);
  std::unordered_map<std::size_t, std::size_t> root_to_label;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = sets.find(i);
    const auto it = root_to_label.emplace(root, root_to_label.size()).first;
    out.labels[i] = it->second;
  }
  out.cluster_count = root_to_label.size();
  return out;
}

}  // namespace

std::vector<std::size_t> Clustering::sizes() const {
  std::vector<std::size_t> out(cluster_count, 0);
  for (std::size_t label : labels) ++out[label];
  return out;
}

Clustering single_linkage_1d(std::span<const double> points, std::size_t k) {
  const std::size_t n = points.size();
  RAB_EXPECTS(k >= 1 && k <= n);

  // Sort indices by value; gaps between sorted neighbors are the only MST
  // edges in 1-D, so cutting the k-1 largest gaps yields the clustering.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return points[a] < points[b]; });

  std::vector<std::pair<double, std::size_t>> gaps;  // (gap, left position)
  gaps.reserve(n > 0 ? n - 1 : 0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    gaps.emplace_back(points[order[i + 1]] - points[order[i]], i);
  }
  // Keep the k-1 largest gaps as cuts; ties broken by position for
  // determinism.
  std::sort(gaps.begin(), gaps.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<bool> cut(n, false);
  for (std::size_t i = 0; i + 1 < k && i < gaps.size(); ++i) {
    cut[gaps[i].second] = true;
  }

  DisjointSets sets(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!cut[i]) sets.unite(order[i], order[i + 1]);
  }
  return labels_from_sets(sets, n);
}

Clustering single_linkage_packed(std::span<const double> packed,
                                 std::size_t n, std::size_t k) {
  RAB_EXPECTS(n >= 1 && packed.size() == n * (n - 1) / 2);
  RAB_EXPECTS(k >= 1 && k <= n);
  const std::size_t m = packed.size();
  RAB_EXPECTS(m <= std::numeric_limits<std::uint32_t>::max());

  // Sort 4-byte pair indices instead of (d, a, b) edge records: the packed
  // layout is (i, j)-lexicographic, so index order IS the old tie-break
  // order and the merge sequence is unchanged.
  struct PackedOrderTag {};
  auto& order = util::scratch_vector<std::uint32_t, PackedOrderTag>();
  order.resize(m);
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              if (packed[x] != packed[y]) return packed[x] < packed[y];
              return x < y;
            });

  // row_of[p] = i of the pair at packed position p; j follows from the
  // row's start offset.
  struct PackedRowTag {};
  auto& row_of = util::scratch_vector<std::uint32_t, PackedRowTag>();
  row_of.resize(m);
  for (std::size_t i = 0, p = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      row_of[p++] = static_cast<std::uint32_t>(i);
    }
  }

  // Kruskal: merge until exactly k components remain.
  DisjointSets sets(n);
  std::size_t components = n;
  for (std::uint32_t p : order) {
    if (components == k) break;
    const std::size_t i = row_of[p];
    const std::size_t j = p - packed_index(i, i + 1, n) + i + 1;
    if (sets.unite(i, j)) --components;
  }
  RAB_ENSURES(components == k);
  return labels_from_sets(sets, n);
}

Clustering single_linkage(std::span<const double> dist, std::size_t n,
                          std::size_t k) {
  RAB_EXPECTS(n >= 1 && dist.size() == n * n);

  struct FullPackTag {};
  auto& packed = util::scratch_aligned_vector<double, FullPackTag>();
  packed.resize(n * (n - 1) / 2);
  std::size_t p = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      packed[p++] = dist[i * n + j];
    }
  }
  return single_linkage_packed({packed.data(), packed.size()}, n, k);
}

util::aligned_vector<double> pairwise_euclidean(std::span<const double> points,
                                                std::size_t n,
                                                std::size_t dim) {
  RAB_EXPECTS(dim >= 1);
  RAB_EXPECTS(points.size() == n * dim);
  util::aligned_vector<double> out(n >= 1 ? n * (n - 1) / 2 : 0);
  std::size_t p = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* pi = points.data() + i * dim;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double* pj = points.data() + j * dim;
      double acc = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = pi[d] - pj[d];
        acc += diff * diff;
      }
      out[p++] = std::sqrt(acc);
    }
  }
  return out;
}

std::pair<std::size_t, std::size_t> two_cluster_sizes(
    std::span<const double> values) {
  RAB_EXPECTS(values.size() >= 2);
  const Clustering c = single_linkage_1d(values, 2);
  const std::vector<std::size_t> sizes = c.sizes();
  RAB_ENSURES(sizes.size() == 2);
  return {std::min(sizes[0], sizes[1]), std::max(sizes[0], sizes[1])};
}

Clustering connected_components(std::span<const Edge> edges, std::size_t n) {
  RAB_EXPECTS(n > 0);
  DisjointSets sets(n);
  for (const Edge& e : edges) {
    RAB_EXPECTS(e.a < n && e.b < n);
    sets.unite(e.a, e.b);
  }
  return labels_from_sets(sets, n);
}

Split1d two_cluster_split(std::span<const double> values) {
  RAB_EXPECTS(values.size() >= 2);
  // Thread-local scratch: the HC detector calls this once per window and
  // the per-call allocation dominated its profile.
  struct TwoClusterSortTag {};
  auto& sorted = util::scratch_vector<double, TwoClusterSortTag>();
  sorted.assign(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  std::size_t best = 0;
  double best_gap = sorted[1] - sorted[0];
  for (std::size_t i = 1; i + 1 < sorted.size(); ++i) {
    const double gap = sorted[i + 1] - sorted[i];
    if (gap > best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  Split1d split;
  split.left_count = best + 1;
  split.right_count = sorted.size() - best - 1;
  split.gap = best_gap;
  return split;
}

}  // namespace rab::cluster
