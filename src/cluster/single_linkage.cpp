#include "cluster/single_linkage.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/error.hpp"

namespace rab::cluster {

namespace {

/// Union-find with path compression and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

Clustering labels_from_sets(DisjointSets& sets, std::size_t n) {
  Clustering out;
  out.labels.assign(n, 0);
  std::unordered_map<std::size_t, std::size_t> root_to_label;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = sets.find(i);
    const auto it = root_to_label.emplace(root, root_to_label.size()).first;
    out.labels[i] = it->second;
  }
  out.cluster_count = root_to_label.size();
  return out;
}

}  // namespace

std::vector<std::size_t> Clustering::sizes() const {
  std::vector<std::size_t> out(cluster_count, 0);
  for (std::size_t label : labels) ++out[label];
  return out;
}

Clustering single_linkage_1d(std::span<const double> points, std::size_t k) {
  const std::size_t n = points.size();
  RAB_EXPECTS(k >= 1 && k <= n);

  // Sort indices by value; gaps between sorted neighbors are the only MST
  // edges in 1-D, so cutting the k-1 largest gaps yields the clustering.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return points[a] < points[b]; });

  std::vector<std::pair<double, std::size_t>> gaps;  // (gap, left position)
  gaps.reserve(n > 0 ? n - 1 : 0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    gaps.emplace_back(points[order[i + 1]] - points[order[i]], i);
  }
  // Keep the k-1 largest gaps as cuts; ties broken by position for
  // determinism.
  std::sort(gaps.begin(), gaps.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<bool> cut(n, false);
  for (std::size_t i = 0; i + 1 < k && i < gaps.size(); ++i) {
    cut[gaps[i].second] = true;
  }

  DisjointSets sets(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!cut[i]) sets.unite(order[i], order[i + 1]);
  }
  return labels_from_sets(sets, n);
}

Clustering single_linkage(std::span<const double> dist, std::size_t n,
                          std::size_t k) {
  RAB_EXPECTS(dist.size() == n * n);
  RAB_EXPECTS(k >= 1 && k <= n);

  struct Edge {
    double d;
    std::size_t a;
    std::size_t b;
  };
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      edges.push_back(Edge{dist[i * n + j], i, j});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.d != y.d) return x.d < y.d;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });

  // Kruskal: merge until exactly k components remain.
  DisjointSets sets(n);
  std::size_t components = n;
  for (const Edge& e : edges) {
    if (components == k) break;
    if (sets.unite(e.a, e.b)) --components;
  }
  RAB_ENSURES(components == k);
  return labels_from_sets(sets, n);
}

std::pair<std::size_t, std::size_t> two_cluster_sizes(
    std::span<const double> values) {
  RAB_EXPECTS(values.size() >= 2);
  const Clustering c = single_linkage_1d(values, 2);
  const std::vector<std::size_t> sizes = c.sizes();
  RAB_ENSURES(sizes.size() == 2);
  return {std::min(sizes[0], sizes[1]), std::max(sizes[0], sizes[1])};
}

Clustering connected_components(std::span<const Edge> edges, std::size_t n) {
  RAB_EXPECTS(n > 0);
  DisjointSets sets(n);
  for (const Edge& e : edges) {
    RAB_EXPECTS(e.a < n && e.b < n);
    sets.unite(e.a, e.b);
  }
  return labels_from_sets(sets, n);
}

Split1d two_cluster_split(std::span<const double> values) {
  RAB_EXPECTS(values.size() >= 2);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  std::size_t best = 0;
  double best_gap = sorted[1] - sorted[0];
  for (std::size_t i = 1; i + 1 < sorted.size(); ++i) {
    const double gap = sorted[i + 1] - sorted[i];
    if (gap > best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  Split1d split;
  split.left_count = best + 1;
  split.right_count = sorted.size() - best - 1;
  split.gap = best_gap;
  return split;
}

}  // namespace rab::cluster
