// Single-linkage agglomerative clustering.
//
// The histogram-change detector (paper Section IV-D) forms two clusters from
// the rating values in a window "using the simple linkage method" (Matlab
// clusterdata). Single-linkage clustering into k clusters is equivalent to
// building the minimum spanning tree of the points and cutting its k-1
// longest edges, which is how this module implements it (Kruskal +
// union-find), giving O(n^2 log n) for arbitrary dissimilarities and
// O(n log n) for the 1-D specialization.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/scratch.hpp"

namespace rab::cluster {

/// Cluster assignment: labels[i] in [0, k) for each input point, with
/// cluster ids ordered by each cluster's first member.
struct Clustering {
  std::vector<std::size_t> labels;
  std::size_t cluster_count = 0;

  /// Number of points carrying each label.
  [[nodiscard]] std::vector<std::size_t> sizes() const;
};

/// Single-linkage clustering of 1-D points into exactly `k` clusters
/// (k >= 1, k <= points.size()). For 1-D data single linkage reduces to
/// splitting at the k-1 largest gaps of the sorted sequence.
Clustering single_linkage_1d(std::span<const double> points, std::size_t k);

/// Generic single-linkage clustering from a full pairwise distance matrix
/// given row-major in `dist` (size n*n, symmetric, zero diagonal). Packs
/// the upper triangle into thread-local scratch and delegates to
/// single_linkage_packed, so each symmetric distance is touched once.
Clustering single_linkage(std::span<const double> dist, std::size_t n,
                          std::size_t k);

/// Index of pair (i, j), i < j, in the packed upper triangle of an n-point
/// distance set — row-major over rows i, columns j > i.
[[nodiscard]] constexpr std::size_t packed_index(std::size_t i, std::size_t j,
                                                 std::size_t n) {
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

/// Single-linkage clustering from packed upper-triangle distances (size
/// n*(n-1)/2, laid out per packed_index). Merge order matches
/// single_linkage on the equivalent full matrix exactly: edges ascend by
/// distance with (i, j)-lexicographic tie-breaking.
Clustering single_linkage_packed(std::span<const double> packed,
                                 std::size_t n, std::size_t k);

/// Packed upper-triangle Euclidean distances of `n` row-major `dim`-d
/// points (points.size() == n*dim). Each pair is computed once; the inner
/// accumulation over `dim` is a contiguous vectorizable loop.
[[nodiscard]] util::aligned_vector<double> pairwise_euclidean(
    std::span<const double> points, std::size_t n, std::size_t dim);

/// Convenience for the HC detector: splits values into two single-linkage
/// clusters and returns {n_small, n_large} — the two cluster sizes in
/// ascending order. Requires at least 2 points.
std::pair<std::size_t, std::size_t> two_cluster_sizes(
    std::span<const double> values);

/// The 1-D two-cluster split described by its separating gap. For 1-D data
/// the single-linkage two-cluster cut is exactly the largest gap of the
/// sorted values.
struct Split1d {
  std::size_t left_count = 0;   ///< points at or below the gap
  std::size_t right_count = 0;  ///< points above the gap
  double gap = 0.0;             ///< value distance separating the clusters
};

/// Computes the single-linkage two-cluster split of `values` (>= 2 points).
Split1d two_cluster_split(std::span<const double> values);

/// Undirected edge between two node indices.
struct Edge {
  std::size_t a = 0;
  std::size_t b = 0;
};

/// Connected components of an undirected graph over `n` nodes. Labels are
/// assigned like Clustering's (ordered by first member).
Clustering connected_components(std::span<const Edge> edges, std::size_t n);

}  // namespace rab::cluster
