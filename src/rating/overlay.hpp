// Zero-copy overlay datasets: a fair base plus per-product unfair extras.
//
// Applying an attack submission used to mean copying the entire fair
// dataset (Dataset::with_added) even though a submission perturbs only the
// few target products. DatasetOverlay instead *borrows* the fair base and
// keeps the extra ratings in small per-product side streams; OverlayProduct
// exposes the merged stream as a view — iteration, random access, and
// index_range work without materializing a combined Dataset, and untouched
// products delegate straight to the base stream at zero cost.
//
// The merged order is exactly what Dataset::with_added produces: the union
// sorted by rating::ByTime, with base ratings preceding extras on full
// ByTime ties (with_added inserts extras at upper_bound). Every view
// accessor is bit-identical to the materialized equivalent, which is what
// lets the MP evaluation hot loop switch paths without changing results.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "rating/dataset.hpp"
#include "rating/product_ratings.hpp"
#include "rating/rating.hpp"
#include "signal/windowing.hpp"

namespace rab::rating {

/// Merged view of one product: a borrowed base stream plus a (possibly
/// empty) overlay of extra ratings. Accessors mirror ProductRatings.
///
/// Thread-safety: concurrent reads are safe *except* the first merged()
/// call on a touched product, which materializes lazily; callers that share
/// one OverlayProduct across threads must call merged() once beforehand (the
/// P-scheme's per-product fan-out gives each product to one worker, which
/// satisfies this naturally).
class OverlayProduct {
 public:
  OverlayProduct() = default;

  /// @param base the fair stream (may be nullptr when the overlay rates a
  ///        product absent from the base); borrowed, must outlive the view.
  /// @param extra the overlay ratings for this product, any order.
  OverlayProduct(const ProductRatings* base, ProductId product,
                 std::vector<Rating> extra);

  [[nodiscard]] ProductId product() const { return product_; }
  [[nodiscard]] std::size_t size() const {
    return base_size() + extra_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  /// True when this product has overlay ratings on top of the base.
  [[nodiscard]] bool touched() const { return !extra_.empty(); }
  [[nodiscard]] std::size_t extra_count() const { return extra_.size(); }

  /// Rating at merged position `i` (base-first on ByTime ties). O(log e)
  /// in the overlay size before merged() materializes, O(1) after.
  [[nodiscard]] Rating at(std::size_t i) const;

  /// Time span [first rating, last rating], identical to the span of the
  /// materialized merged stream.
  [[nodiscard]] Interval span() const;

  /// Index range [first, last) of merged positions with time inside
  /// `interval` — computed from the two sorted halves, no merge performed.
  [[nodiscard]] signal::IndexRange index_range(
      const Interval& interval) const;

  /// Merged ratings with time in [interval.begin, interval.end).
  [[nodiscard]] std::vector<Rating> in_interval(
      const Interval& interval) const;

  /// All merged rating values in merged order.
  [[nodiscard]] std::vector<double> values() const;

  /// Visits every merged rating in order via a linear two-pointer walk.
  template <typename F>
  void for_each(F&& f) const {
    std::size_t b = 0;
    std::size_t e = 0;
    const std::size_t nb = base_size();
    const std::size_t ne = extra_.size();
    while (b < nb || e < ne) {
      // Base goes first unless the next extra is strictly ByTime-smaller —
      // the same tie-breaking as with_added's upper_bound insertion.
      if (b < nb && (e >= ne || !extra_first(e, b))) {
        f(base_->at(b++));
      } else {
        f(extra_.at(e++));
      }
    }
  }

  /// Visits, in merged order, every rating with time inside `interval` —
  /// in_interval without the vector allocations, for per-bin aggregation
  /// loops.
  template <typename F>
  void for_each_in(const Interval& interval, F&& f) const {
    signal::IndexRange base_range{};
    if (base_ != nullptr) base_range = base_->index_range(interval);
    const signal::IndexRange extra_range = extra_.index_range(interval);
    std::size_t b = base_range.first;
    std::size_t e = extra_range.first;
    while (b < base_range.last || e < extra_range.last) {
      if (b < base_range.last &&
          (e >= extra_range.last || !extra_first(e, b))) {
        f(base_->at(b++));
      } else {
        f(extra_.at(e++));
      }
    }
  }

  /// The merged stream as a contiguous ProductRatings — what detector
  /// analysis consumes. Untouched products return the base stream by
  /// reference (zero copy); touched products materialize lazily, once.
  [[nodiscard]] const ProductRatings& merged() const;

 private:
  [[nodiscard]] std::size_t base_size() const {
    return base_ != nullptr ? base_->size() : 0;
  }

  /// ByTime{}(extra row e, base row b), compared column-wise so the merge
  /// walks never assemble Rating records just to order them.
  [[nodiscard]] bool extra_first(std::size_t e, std::size_t b) const {
    const double te = extra_.times()[e];
    const double tb = base_->times()[b];
    if (te != tb) return te < tb;
    const double ve = extra_.values()[e];
    const double vb = base_->values()[b];
    if (ve != vb) return ve < vb;
    return extra_.raters()[e] < base_->raters()[b];
  }

  const ProductRatings* base_ = nullptr;
  ProductId product_;
  ProductRatings extra_;                  ///< overlay, ByTime-sorted
  std::vector<std::size_t> merged_pos_;   ///< merged index of each extra
  mutable std::unique_ptr<ProductRatings> merged_;  ///< lazy materialization
};

/// A fair base Dataset with extra (attack) ratings layered on top. Presents
/// the same product-oriented surface as Dataset but never copies the base;
/// schemes aggregate it through OverlayProduct views.
///
/// The base is borrowed and must outlive the overlay.
class DatasetOverlay {
 public:
  DatasetOverlay(const Dataset& base, std::span<const Rating> extra);

  [[nodiscard]] const Dataset& base() const { return *base_; }

  [[nodiscard]] std::size_t product_count() const { return products_.size(); }
  [[nodiscard]] std::size_t total_ratings() const;
  [[nodiscard]] std::size_t extra_count() const { return extra_.size(); }

  /// The raw overlay ratings (all products, construction order). Lets a
  /// wrapper scheme rebuild a *filtered* overlay over the same base —
  /// collusion_guard drops flagged raters' extras this way instead of
  /// materializing the union.
  [[nodiscard]] const std::vector<Rating>& extras() const { return extra_; }

  /// Product ids present in base or overlay, ascending.
  [[nodiscard]] std::vector<ProductId> product_ids() const;

  [[nodiscard]] bool has_product(ProductId id) const;

  /// Merged view for a product; throws InvalidArgument if absent.
  [[nodiscard]] const OverlayProduct& product(ProductId id) const;

  /// True when `id` has overlay ratings.
  [[nodiscard]] bool touched(ProductId id) const;

  /// Union of the spans of all merged product streams — identical to
  /// base().with_added(extra).span().
  [[nodiscard]] Interval span() const;

  /// The equivalent owning Dataset (base().with_added(extras)). Fallback
  /// for consumers that need a real Dataset; the hot paths never call it.
  [[nodiscard]] Dataset materialize() const;

 private:
  const Dataset* base_;
  std::vector<Rating> extra_;
  std::map<ProductId, OverlayProduct> products_;
};

}  // namespace rab::rating
