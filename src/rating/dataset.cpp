#include "rating/dataset.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace rab::rating {

void Dataset::add(const Rating& r) {
  products_.try_emplace(r.product, r.product).first->second.add(r);
}

void Dataset::add_all(std::span<const Rating> rs) {
  for (const Rating& r : rs) add(r);
}

std::size_t Dataset::total_ratings() const {
  std::size_t n = 0;
  for (const auto& [id, stream] : products_) n += stream.size();
  return n;
}

std::vector<ProductId> Dataset::product_ids() const {
  std::vector<ProductId> ids;
  ids.reserve(products_.size());
  for (const auto& [id, stream] : products_) ids.push_back(id);
  return ids;
}

bool Dataset::has_product(ProductId id) const {
  return products_.contains(id);
}

const ProductRatings& Dataset::product(ProductId id) const {
  const auto it = products_.find(id);
  if (it == products_.end()) {
    std::ostringstream msg;
    msg << "Dataset: unknown product " << id;
    throw InvalidArgument(msg.str());
  }
  return it->second;
}

Interval Dataset::span() const {
  Interval out{};
  bool first = true;
  for (const auto& [id, stream] : products_) {
    if (stream.empty()) continue;
    const Interval s = stream.span();
    if (first) {
      out = s;
      first = false;
    } else {
      out.begin = std::min(out.begin, s.begin);
      out.end = std::max(out.end, s.end);
    }
  }
  return out;
}

std::vector<RaterId> Dataset::rater_ids() const {
  std::set<RaterId> ids;
  for (const auto& [id, stream] : products_) {
    for (RaterId rater : stream.raters()) ids.insert(rater);
  }
  return {ids.begin(), ids.end()};
}

Dataset Dataset::fair_only() const {
  Dataset out;
  for (const auto& [id, stream] : products_) {
    for (const Rating& r : stream.rows()) {
      if (!r.unfair) out.add(r);
    }
  }
  return out;
}

Dataset Dataset::with_added(std::span<const Rating> extra) const {
  Dataset out = *this;
  out.add_all(extra);
  return out;
}

}  // namespace rab::rating
