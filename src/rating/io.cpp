#include "rating/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace rab::rating {

void write_csv(std::ostream& out, const Dataset& dataset) {
  out << "# product,rater,time,value,unfair\n";
  for (ProductId id : dataset.product_ids()) {
    for (const Rating& r : dataset.product(id).ratings()) {
      out << r.product.value() << ',' << r.rater.value() << ',' << r.time
          << ',' << r.value << ',' << (r.unfair ? 1 : 0) << '\n';
    }
  }
}

void write_csv_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw Error("rating::write_csv_file: cannot open " + path);
  write_csv(out, dataset);
}

Dataset read_csv(std::istream& in) {
  Dataset dataset;
  for (const csv::Row& row : csv::read(in)) {
    if (row.size() != 5) {
      std::ostringstream msg;
      msg << "rating::read_csv: expected 5 fields, got " << row.size();
      throw Error(msg.str());
    }
    Rating r;
    r.product = ProductId(csv::to_int(row[0]));
    r.rater = RaterId(csv::to_int(row[1]));
    r.time = csv::to_double(row[2]);
    r.value = csv::to_double(row[3]);
    r.unfair = csv::to_int(row[4]) != 0;
    dataset.add(r);
  }
  return dataset;
}

Dataset read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("rating::read_csv_file: cannot open " + path);
  return read_csv(in);
}

}  // namespace rab::rating
