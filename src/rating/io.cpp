#include "rating/io.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace rab::rating {

void write_csv(std::ostream& out, const Dataset& dataset) {
  out << "# product,rater,time,value,unfair\n";
  for (ProductId id : dataset.product_ids()) {
    for (const Rating& r : dataset.product(id).rows()) {
      out << r.product.value() << ',' << r.rater.value() << ',' << r.time
          << ',' << r.value << ',' << (r.unfair ? 1 : 0) << '\n';
    }
  }
  // ofstream reports ENOSPC/EIO only through the stream state; without this
  // check a full disk truncates datasets silently.
  RAB_FAILPOINT("rating.write_csv.flush");
  if (!out) throw IoError("rating::write_csv: stream write failed");
}

void write_csv_file(const std::string& path, const Dataset& dataset) {
  RAB_FAILPOINT("rating.write_csv.open");
  std::ofstream out(path);
  if (!out) throw IoError("rating::write_csv_file: cannot open " + path);
  write_csv(out, dataset);
  out.flush();
  if (!out) {
    throw IoError("rating::write_csv_file: write failed (disk full?): " +
                  path);
  }
}

Dataset read_csv(std::istream& in) {
  Dataset dataset;
  for (const csv::Row& row : csv::read(in)) {
    RAB_FAILPOINT("rating.read_csv.row");
    // The unfair ground-truth column is optional on input: live feeds
    // (rab monitor) have no ground truth to carry.
    if (row.size() != 4 && row.size() != 5) {
      std::ostringstream msg;
      msg << "rating::read_csv: expected 4 or 5 fields, got " << row.size();
      throw InvalidArgument(msg.str());
    }
    Rating r;
    r.product = ProductId(csv::to_int_in(
        row[0], 0, std::numeric_limits<std::int64_t>::max()));
    r.rater = RaterId(csv::to_int_in(
        row[1], 0, std::numeric_limits<std::int64_t>::max()));
    r.time = csv::to_double(row[2]);
    r.value = csv::to_double(row[3]);
    if (!std::isfinite(r.time) || !std::isfinite(r.value)) {
      throw InvalidArgument(
          "rating::read_csv: non-finite time or value in row for product " +
          row[0]);
    }
    r.unfair = row.size() == 5 && csv::to_int(row[4]) != 0;
    dataset.add(r);
  }
  return dataset;
}

Dataset read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("rating::read_csv_file: cannot open " + path);
  return read_csv(in);
}

}  // namespace rab::rating
