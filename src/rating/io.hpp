// CSV persistence for rating datasets.
//
// Format: one rating per row — product,rater,time,value,unfair — with a
// header comment. This is the interchange format between the generator, the
// challenge harness, and external tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "rating/dataset.hpp"

namespace rab::rating {

/// Writes all ratings (every product, time order within product).
void write_csv(std::ostream& out, const Dataset& dataset);
void write_csv_file(const std::string& path, const Dataset& dataset);

/// Reads a dataset previously written by write_csv. The trailing `unfair`
/// column may be omitted (live feeds carry no ground truth; it defaults to
/// 0). Throws rab::InvalidArgument on malformed rows, out-of-range ids, or
/// non-finite times/values, and rab::IoError when the environment fails
/// (file cannot be opened, stream write failure).
Dataset read_csv(std::istream& in);
Dataset read_csv_file(const std::string& path);

}  // namespace rab::rating
