// A rating dataset: all products with their rating streams.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "rating/product_ratings.hpp"
#include "rating/rating.hpp"

namespace rab::rating {

/// All ratings in an experiment, grouped by product. Value type; applying a
/// submission copies the dataset so the original fair data stays pristine.
class Dataset {
 public:
  Dataset() = default;

  /// Inserts a rating into its product's stream.
  void add(const Rating& r);
  void add_all(std::span<const Rating> rs);

  [[nodiscard]] std::size_t product_count() const { return products_.size(); }
  [[nodiscard]] std::size_t total_ratings() const;

  /// Product ids present, in ascending order.
  [[nodiscard]] std::vector<ProductId> product_ids() const;

  [[nodiscard]] bool has_product(ProductId id) const;

  /// Stream for a product; throws InvalidArgument if absent.
  [[nodiscard]] const ProductRatings& product(ProductId id) const;

  /// Union of the spans of all product streams.
  [[nodiscard]] Interval span() const;

  /// Distinct rater ids across all products, ascending.
  [[nodiscard]] std::vector<RaterId> rater_ids() const;

  /// Copy containing only ground-truth fair ratings.
  [[nodiscard]] Dataset fair_only() const;

  /// Copy with `extra` ratings merged in (used to apply attack submissions).
  [[nodiscard]] Dataset with_added(std::span<const Rating> extra) const;

 private:
  std::map<ProductId, ProductRatings> products_;
};

}  // namespace rab::rating
