// Synthetic fair-rating data, standing in for the paper's real data of
// 9 flat-panel TVs from a shopping website (see DESIGN.md substitutions).
//
// The generator reproduces the statistical structure the detectors depend
// on: per-product discrete 0-5 ratings with mean near 4, Poisson daily
// arrivals, and slow natural variation (mean drift, arrival-rate modulation)
// so fair data is realistically non-stationary.
#pragma once

#include <cstddef>
#include <vector>

#include "rating/dataset.hpp"
#include "util/rng.hpp"

namespace rab::rating {

/// Configuration for the fair-data generator.
struct FairDataConfig {
  std::size_t product_count = 9;  ///< the challenge used 9 similar TVs
  double history_days = 180.0;    ///< total fair history length
  double base_arrival_rate = 3.0; ///< mean fair ratings per product per day
  double arrival_rate_jitter = 0.5; ///< per-product rate spread (+/-)
  double mean_value = 4.0;        ///< long-run fair mean (paper: "around 4")
  double value_sigma = 0.8;       ///< spread of the underlying opinion
  double drift_amplitude = 0.15;  ///< slow sinusoidal mean drift (value units)
  double drift_period_days = 90.0;

  /// Non-stationary arrival structure of real product pages (off by
  /// default so the calibrated experiments keep their data):
  /// a post-launch surge that decays, and a weekly activity pattern.
  double launch_boost = 0.0;      ///< extra rate factor at day 0 (e.g. 1.5)
  double launch_decay_days = 30.0;///< e-folding time of the surge
  double weekly_amplitude = 0.0;  ///< +-fractional weekly rate modulation
  bool discrete_values = true;    ///< round to integer stars like the site
  std::size_t honest_rater_pool = 400;  ///< distinct fair rater ids

  /// Individual unfair ratings (paper Section III): ratings that are
  /// unfair through personality, habit or randomness rather than
  /// collaboration. They are part of realistic *fair-side* data — the
  /// paper argues they are "much less harmful" and a defense must not
  /// confuse them with an attack.
  double harsh_rater_fraction = 0.0;   ///< personas rating ~1.5 stars low
  double random_rater_fraction = 0.0;  ///< personas rating uniformly 0..5

  std::uint64_t seed = 20070425;  ///< challenge launch date as default seed
};

/// Generates reproducible fair datasets.
class FairDataGenerator {
 public:
  explicit FairDataGenerator(FairDataConfig config = {});

  [[nodiscard]] const FairDataConfig& config() const { return config_; }

  /// Builds the full dataset (all products).
  [[nodiscard]] Dataset generate() const;

  /// Builds one product's fair stream (product ids are 1-based like the
  /// paper's "product 1").
  [[nodiscard]] ProductRatings generate_product(ProductId id) const;

  /// The persona of a rater under this configuration (deterministic in the
  /// seed and rater id). Exposed so tests can check who is who.
  enum class Persona { kNormal, kHarsh, kRandom };
  [[nodiscard]] Persona persona_of(RaterId rater) const;

 private:
  FairDataConfig config_;
};

}  // namespace rab::rating
