// Time-sorted rating stream for one product.
#pragma once

#include <span>
#include <vector>

#include "rating/rating.hpp"
#include "signal/windowing.hpp"
#include "util/day.hpp"

namespace rab::rating {

/// All ratings for a single product, kept sorted by time.
class ProductRatings {
 public:
  ProductRatings() = default;
  explicit ProductRatings(ProductId product) : product_(product) {}

  [[nodiscard]] ProductId product() const { return product_; }

  /// Inserts one rating (must match this product if the product id is set).
  void add(const Rating& r);

  /// Bulk insert followed by a single re-sort.
  void add_all(std::span<const Rating> rs);

  /// Adopts an already ByTime-sorted vector without re-sorting — add_all's
  /// std::sort is unstable and could swap fully ByTime-tied ratings, so
  /// callers that must preserve a specific merge order (rating::OverlayProduct)
  /// build the vector themselves and hand it over here. The sortedness
  /// precondition is enforced.
  [[nodiscard]] static ProductRatings from_sorted(ProductId product,
                                                  std::vector<Rating> rs);

  [[nodiscard]] std::size_t size() const { return ratings_.size(); }
  [[nodiscard]] bool empty() const { return ratings_.empty(); }
  [[nodiscard]] const std::vector<Rating>& ratings() const { return ratings_; }
  [[nodiscard]] const Rating& at(std::size_t i) const;

  /// Time span [first rating, last rating]; empty interval when no ratings.
  [[nodiscard]] Interval span() const;

  /// All rating values in time order.
  [[nodiscard]] std::vector<double> values() const;

  /// (time, value) samples in time order, for the signal substrate.
  [[nodiscard]] std::vector<signal::Sample> samples() const;

  /// Ratings with time in [interval.begin, interval.end).
  [[nodiscard]] std::vector<Rating> in_interval(const Interval& interval) const;

  /// Index range [first, last) of ratings with time inside `interval`.
  [[nodiscard]] signal::IndexRange index_range(const Interval& interval) const;

  /// Copy with only the fair (ground-truth) ratings — the "without unfair
  /// ratings" stream used by the MP metric.
  [[nodiscard]] ProductRatings fair_only() const;

  /// Copy without the ratings at the given (sorted unique) indices.
  [[nodiscard]] ProductRatings without_indices(
      std::span<const std::size_t> sorted_indices) const;

  /// Removes the first `n` (oldest) ratings in place — the streaming
  /// monitor's retention compaction. n must not exceed size().
  void drop_prefix(std::size_t n);

 private:
  ProductId product_;
  std::vector<Rating> ratings_;
};

}  // namespace rab::rating
