// Time-sorted rating stream for one product.
//
// Storage is structure-of-arrays: the hot fields (time, value, rater,
// unfair flag) live in parallel columns, with the double columns in
// cache-line-aligned storage so the detector kernels (signal/kernels.hpp)
// walk contiguous `std::span<const double>` data. The product id is a
// per-stream constant, not a column — every row of one stream shares it.
// A thin row view (`rows()`, `at()`) reassembles `Rating` records by value
// for callers that want record semantics (overlay, checkpointing, CSV I/O).
#pragma once

#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "rating/rating.hpp"
#include "signal/windowing.hpp"
#include "util/day.hpp"
#include "util/scratch.hpp"

namespace rab::rating {

class ProductRatings;

/// Random-access view over a ProductRatings stream that yields `Rating`
/// records by value, assembled from the columns on each dereference. Cheap
/// to copy; invalidated by any mutation of the underlying stream.
class RowsView {
 public:
  class iterator {
   public:
    using value_type = Rating;
    using reference = Rating;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    // Dereference yields a prvalue, so classic-STL random access is not on
    // offer; C++20 ranges see the stronger concept via iterator_concept.
    using iterator_category = std::input_iterator_tag;
    using iterator_concept = std::random_access_iterator_tag;

    iterator() = default;
    iterator(const ProductRatings* stream, std::size_t i)
        : stream_(stream), i_(i) {}

    [[nodiscard]] Rating operator*() const;
    [[nodiscard]] Rating operator[](difference_type n) const {
      return *(*this + n);
    }

    iterator& operator++() { ++i_; return *this; }
    iterator operator++(int) { iterator t = *this; ++i_; return t; }
    iterator& operator--() { --i_; return *this; }
    iterator operator--(int) { iterator t = *this; --i_; return t; }
    iterator& operator+=(difference_type n) {
      i_ = static_cast<std::size_t>(static_cast<difference_type>(i_) + n);
      return *this;
    }
    iterator& operator-=(difference_type n) { return *this += -n; }
    friend iterator operator+(iterator it, difference_type n) {
      return it += n;
    }
    friend iterator operator+(difference_type n, iterator it) {
      return it += n;
    }
    friend iterator operator-(iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) {
      return a.i_ <=> b.i_;
    }

   private:
    const ProductRatings* stream_ = nullptr;
    std::size_t i_ = 0;
  };

  explicit RowsView(const ProductRatings& stream) : stream_(&stream) {}

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] Rating operator[](std::size_t i) const;
  [[nodiscard]] Rating front() const { return (*this)[0]; }
  [[nodiscard]] Rating back() const { return (*this)[size() - 1]; }
  [[nodiscard]] iterator begin() const { return iterator(stream_, 0); }
  [[nodiscard]] iterator end() const { return iterator(stream_, size()); }

 private:
  const ProductRatings* stream_;
};

/// All ratings for a single product, kept sorted by time.
class ProductRatings {
 public:
  ProductRatings() = default;
  explicit ProductRatings(ProductId product) : product_(product) {}

  [[nodiscard]] ProductId product() const { return product_; }

  /// Inserts one rating (must match this product if the product id is set).
  void add(const Rating& r);

  /// Bulk insert followed by a single re-sort.
  void add_all(std::span<const Rating> rs);

  /// Adopts an already ByTime-sorted vector without re-sorting — add_all's
  /// std::sort is unstable and could swap fully ByTime-tied ratings, so
  /// callers that must preserve a specific merge order (rating::OverlayProduct)
  /// build the vector themselves and hand it over here. The sortedness
  /// precondition is enforced.
  [[nodiscard]] static ProductRatings from_sorted(ProductId product,
                                                  std::vector<Rating> rs);

  /// Adopts externally-owned, already ByTime-sorted columns without
  /// copying — the zero-copy restart path over the store's mapped
  /// segments. The stream only *views* the columns: the owner (the
  /// store's mapping) must outlive it. Read paths are zero-copy;
  /// mutation first materializes a private copy — except drop_prefix,
  /// which just advances the views (the monitor's retention compaction
  /// stays O(1) on a borrowed stream).
  [[nodiscard]] static ProductRatings borrowed(
      ProductId product, std::span<const double> times,
      std::span<const double> values, std::span<const RaterId> raters,
      std::span<const std::uint8_t> unfair);

  /// True while the columns are externally-owned views.
  [[nodiscard]] bool is_borrowed() const { return borrowed_; }

  /// Copies borrowed columns into owned storage; no-op when already owned.
  /// After this the stream no longer references the lender's memory.
  void materialize();

  [[nodiscard]] std::size_t size() const {
    return borrowed_ ? view_times_.size() : times_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Row `i` assembled from the columns, by value.
  [[nodiscard]] Rating at(std::size_t i) const;

  /// Row view over the whole stream (Rating records by value).
  [[nodiscard]] RowsView rows() const { return RowsView(*this); }

  /// Materializes all rows into a ByTime-sorted vector.
  [[nodiscard]] std::vector<Rating> to_rows() const;

  // Column accessors. Spans stay valid until the next mutation.
  [[nodiscard]] std::span<const double> times() const {
    return borrowed_ ? view_times_ : std::span<const double>(times_);
  }
  [[nodiscard]] std::span<const double> values() const {
    return borrowed_ ? view_values_ : std::span<const double>(values_);
  }
  [[nodiscard]] std::span<const RaterId> raters() const {
    return borrowed_ ? view_raters_ : std::span<const RaterId>(raters_);
  }
  [[nodiscard]] std::span<const std::uint8_t> unfair_flags() const {
    return borrowed_ ? view_unfair_ : std::span<const std::uint8_t>(unfair_);
  }

  /// Time span [first rating, last rating]; empty interval when no ratings.
  [[nodiscard]] Interval span() const;

  /// (time, value) samples in time order, for the signal substrate.
  [[nodiscard]] std::vector<signal::Sample> samples() const;

  /// Ratings with time in [interval.begin, interval.end).
  [[nodiscard]] std::vector<Rating> in_interval(const Interval& interval) const;

  /// Index range [first, last) of ratings with time inside `interval`.
  [[nodiscard]] signal::IndexRange index_range(const Interval& interval) const;

  /// First index whose row orders strictly after `r` under ByTime — the
  /// column-layout equivalent of std::upper_bound over the old row vector.
  [[nodiscard]] std::size_t upper_bound(const Rating& r) const;

  /// Copy with only the fair (ground-truth) ratings — the "without unfair
  /// ratings" stream used by the MP metric.
  [[nodiscard]] ProductRatings fair_only() const;

  /// Copy without the ratings at the given (sorted unique) indices.
  [[nodiscard]] ProductRatings without_indices(
      std::span<const std::size_t> sorted_indices) const;

  /// Removes the first `n` (oldest) ratings in place — the streaming
  /// monitor's retention compaction. n must not exceed size().
  void drop_prefix(std::size_t n);

 private:
  void push_row(const Rating& r);

  ProductId product_;
  util::aligned_vector<double> times_;
  util::aligned_vector<double> values_;
  std::vector<RaterId> raters_;
  std::vector<std::uint8_t> unfair_;
  // Borrowed-column mode (see borrowed()): when set, the view_* spans are
  // the columns and the vectors above are empty.
  bool borrowed_ = false;
  std::span<const double> view_times_;
  std::span<const double> view_values_;
  std::span<const RaterId> view_raters_;
  std::span<const std::uint8_t> view_unfair_;
};

inline Rating RowsView::iterator::operator*() const {
  return stream_->at(i_);
}

inline std::size_t RowsView::size() const { return stream_->size(); }

inline Rating RowsView::operator[](std::size_t i) const {
  return stream_->at(i);
}

}  // namespace rab::rating
