#include "rating/fair_generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace rab::rating {

FairDataGenerator::FairDataGenerator(FairDataConfig config)
    : config_(config) {
  RAB_EXPECTS(config_.product_count >= 1);
  RAB_EXPECTS(config_.history_days > 0.0);
  RAB_EXPECTS(config_.base_arrival_rate > 0.0);
  RAB_EXPECTS(config_.arrival_rate_jitter >= 0.0 &&
              config_.arrival_rate_jitter < config_.base_arrival_rate);
  RAB_EXPECTS(config_.mean_value > kMinRating &&
              config_.mean_value < kMaxRating);
  RAB_EXPECTS(config_.value_sigma > 0.0);
  RAB_EXPECTS(config_.drift_period_days > 0.0);
  RAB_EXPECTS(config_.honest_rater_pool >= 1);
  RAB_EXPECTS(config_.harsh_rater_fraction >= 0.0 &&
              config_.random_rater_fraction >= 0.0 &&
              config_.harsh_rater_fraction + config_.random_rater_fraction <=
                  1.0);
  RAB_EXPECTS(config_.launch_boost >= 0.0);
  RAB_EXPECTS(config_.launch_decay_days > 0.0);
  RAB_EXPECTS(config_.weekly_amplitude >= 0.0 &&
              config_.weekly_amplitude < 1.0);
}

FairDataGenerator::Persona FairDataGenerator::persona_of(
    RaterId rater) const {
  // Deterministic per (seed, rater): one uniform draw decides the persona.
  Rng rng = Rng(config_.seed ^ 0x9e3779b97f4a7c15ULL)
                .fork(static_cast<std::uint64_t>(rater.value()));
  const double u = rng.uniform(0.0, 1.0);
  if (u < config_.harsh_rater_fraction) return Persona::kHarsh;
  if (u < config_.harsh_rater_fraction + config_.random_rater_fraction) {
    return Persona::kRandom;
  }
  return Persona::kNormal;
}

Dataset FairDataGenerator::generate() const {
  Dataset dataset;
  for (std::size_t p = 1; p <= config_.product_count; ++p) {
    const ProductRatings stream =
        generate_product(ProductId(static_cast<std::int64_t>(p)));
    for (const Rating& r : stream.rows()) dataset.add(r);
  }
  return dataset;
}

ProductRatings FairDataGenerator::generate_product(ProductId id) const {
  RAB_EXPECTS(id.value() >= 1);
  Rng rng = Rng(config_.seed).fork(static_cast<std::uint64_t>(id.value()));

  // Per-product personality: each TV has a slightly different popularity and
  // quality, like the paper's "9 flat panel TVs with similar features".
  const double rate =
      config_.base_arrival_rate +
      rng.uniform(-config_.arrival_rate_jitter, config_.arrival_rate_jitter);
  const double product_mean =
      config_.mean_value + rng.uniform(-0.15, 0.15);
  const double drift_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);

  // Inhomogeneous Poisson arrivals by thinning: candidates at the peak
  // rate, kept with probability rate(t)/peak. With launch_boost and
  // weekly_amplitude at their defaults of 0 this reduces to a homogeneous
  // process at `rate`.
  const auto rate_at = [&](double t) {
    const double launch =
        1.0 + config_.launch_boost * std::exp(-t / config_.launch_decay_days);
    const double weekly =
        1.0 + config_.weekly_amplitude *
                  std::sin(2.0 * std::numbers::pi * t / 7.0);
    return rate * launch * weekly;
  };
  const double peak_rate =
      rate * (1.0 + config_.launch_boost) * (1.0 + config_.weekly_amplitude);

  // The homogeneous case draws nothing extra, so default configurations
  // reproduce byte-identical streams to earlier library versions.
  const bool homogeneous =
      config_.launch_boost == 0.0 && config_.weekly_amplitude == 0.0;

  ProductRatings stream(id);
  std::vector<Rating> ratings;
  for (double t = rng.exponential(peak_rate); t < config_.history_days;
       t += rng.exponential(peak_rate)) {
    if (!homogeneous && !rng.bernoulli(rate_at(t) / peak_rate)) continue;
    const double drift =
        config_.drift_amplitude *
        std::sin(2.0 * std::numbers::pi * t / config_.drift_period_days +
                 drift_phase);
    const RaterId rater(static_cast<std::int64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(
                               config_.honest_rater_pool - 1))));

    // Individual unfair ratings: persona shifts or replaces the opinion.
    double value = 0.0;
    switch (persona_of(rater)) {
      case Persona::kHarsh:
        value = rng.gaussian(product_mean + drift - 1.5,
                             config_.value_sigma);
        break;
      case Persona::kRandom:
        value = rng.uniform(kMinRating, kMaxRating);
        break;
      case Persona::kNormal:
        value = rng.gaussian(product_mean + drift, config_.value_sigma);
        break;
    }
    value = std::clamp(value, kMinRating, kMaxRating);
    if (config_.discrete_values) value = std::round(value);

    Rating r;
    r.time = t;
    r.value = value;
    r.rater = rater;
    r.product = id;
    r.unfair = false;
    ratings.push_back(r);
  }
  stream.add_all(ratings);
  return stream;
}

}  // namespace rab::rating
