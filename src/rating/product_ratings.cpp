#include "rating/product_ratings.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rab::rating {

void ProductRatings::add(const Rating& r) {
  RAB_EXPECTS(product_.value() < 0 || r.product == product_);
  if (product_.value() < 0) product_ = r.product;
  const auto pos =
      std::upper_bound(ratings_.begin(), ratings_.end(), r, ByTime{});
  ratings_.insert(pos, r);
}

void ProductRatings::add_all(std::span<const Rating> rs) {
  for (const Rating& r : rs) {
    RAB_EXPECTS(product_.value() < 0 || r.product == product_);
    if (product_.value() < 0) product_ = r.product;
    ratings_.push_back(r);
  }
  std::sort(ratings_.begin(), ratings_.end(), ByTime{});
}

ProductRatings ProductRatings::from_sorted(ProductId product,
                                           std::vector<Rating> rs) {
  RAB_EXPECTS(std::is_sorted(rs.begin(), rs.end(), ByTime{}));
  ProductRatings out(product);
  for (const Rating& r : rs) RAB_EXPECTS(r.product == product);
  out.ratings_ = std::move(rs);
  return out;
}

const Rating& ProductRatings::at(std::size_t i) const {
  RAB_EXPECTS(i < ratings_.size());
  return ratings_[i];
}

Interval ProductRatings::span() const {
  if (ratings_.empty()) return Interval{};
  return Interval{ratings_.front().time,
                  std::nextafter(ratings_.back().time,
                                 ratings_.back().time + 1.0)};
}

std::vector<double> ProductRatings::values() const {
  std::vector<double> out;
  out.reserve(ratings_.size());
  for (const Rating& r : ratings_) out.push_back(r.value);
  return out;
}

std::vector<signal::Sample> ProductRatings::samples() const {
  std::vector<signal::Sample> out;
  out.reserve(ratings_.size());
  for (const Rating& r : ratings_) {
    out.push_back(signal::Sample{r.time, r.value});
  }
  return out;
}

std::vector<Rating> ProductRatings::in_interval(const Interval& interval) const {
  const signal::IndexRange range = index_range(interval);
  return {ratings_.begin() + static_cast<std::ptrdiff_t>(range.first),
          ratings_.begin() + static_cast<std::ptrdiff_t>(range.last)};
}

signal::IndexRange ProductRatings::index_range(const Interval& interval) const {
  const auto lo = std::lower_bound(
      ratings_.begin(), ratings_.end(), interval.begin,
      [](const Rating& r, Day t) { return r.time < t; });
  const auto hi = std::lower_bound(
      lo, ratings_.end(), interval.end,
      [](const Rating& r, Day t) { return r.time < t; });
  return signal::IndexRange{static_cast<std::size_t>(lo - ratings_.begin()),
                            static_cast<std::size_t>(hi - ratings_.begin())};
}

ProductRatings ProductRatings::fair_only() const {
  ProductRatings out(product_);
  for (const Rating& r : ratings_) {
    if (!r.unfair) out.ratings_.push_back(r);
  }
  return out;
}

void ProductRatings::drop_prefix(std::size_t n) {
  RAB_EXPECTS(n <= ratings_.size());
  ratings_.erase(ratings_.begin(),
                 ratings_.begin() + static_cast<std::ptrdiff_t>(n));
}

ProductRatings ProductRatings::without_indices(
    std::span<const std::size_t> sorted_indices) const {
  ProductRatings out(product_);
  std::size_t skip = 0;
  for (std::size_t i = 0; i < ratings_.size(); ++i) {
    if (skip < sorted_indices.size() && sorted_indices[skip] == i) {
      ++skip;
      continue;
    }
    out.ratings_.push_back(ratings_[i]);
  }
  RAB_ENSURES(skip == sorted_indices.size());
  return out;
}

}  // namespace rab::rating
