#include "rating/product_ratings.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rab::rating {

void ProductRatings::push_row(const Rating& r) {
  times_.push_back(r.time);
  values_.push_back(r.value);
  raters_.push_back(r.rater);
  unfair_.push_back(r.unfair ? std::uint8_t{1} : std::uint8_t{0});
}

ProductRatings ProductRatings::borrowed(ProductId product,
                                        std::span<const double> times,
                                        std::span<const double> values,
                                        std::span<const RaterId> raters,
                                        std::span<const std::uint8_t> unfair) {
  RAB_EXPECTS(times.size() == values.size() &&
              times.size() == raters.size() && times.size() == unfair.size());
  ProductRatings out(product);
  out.borrowed_ = true;
  out.view_times_ = times;
  out.view_values_ = values;
  out.view_raters_ = raters;
  out.view_unfair_ = unfair;
  return out;
}

void ProductRatings::materialize() {
  if (!borrowed_) return;
  times_.assign(view_times_.begin(), view_times_.end());
  values_.assign(view_values_.begin(), view_values_.end());
  raters_.assign(view_raters_.begin(), view_raters_.end());
  unfair_.assign(view_unfair_.begin(), view_unfair_.end());
  borrowed_ = false;
  view_times_ = {};
  view_values_ = {};
  view_raters_ = {};
  view_unfair_ = {};
}

void ProductRatings::add(const Rating& r) {
  RAB_EXPECTS(product_.value() < 0 || r.product == product_);
  materialize();
  if (product_.value() < 0) product_ = r.product;
  const auto pos = static_cast<std::ptrdiff_t>(upper_bound(r));
  times_.insert(times_.begin() + pos, r.time);
  values_.insert(values_.begin() + pos, r.value);
  raters_.insert(raters_.begin() + pos, r.rater);
  unfair_.insert(unfair_.begin() + pos,
                 r.unfair ? std::uint8_t{1} : std::uint8_t{0});
}

void ProductRatings::add_all(std::span<const Rating> rs) {
  std::vector<Rating> merged = to_rows();
  merged.reserve(merged.size() + rs.size());
  for (const Rating& r : rs) {
    RAB_EXPECTS(product_.value() < 0 || r.product == product_);
    if (product_.value() < 0) product_ = r.product;
    merged.push_back(r);
  }
  std::sort(merged.begin(), merged.end(), ByTime{});
  borrowed_ = false;
  view_times_ = {};
  view_values_ = {};
  view_raters_ = {};
  view_unfair_ = {};
  times_.clear();
  values_.clear();
  raters_.clear();
  unfair_.clear();
  times_.reserve(merged.size());
  values_.reserve(merged.size());
  raters_.reserve(merged.size());
  unfair_.reserve(merged.size());
  for (const Rating& r : merged) push_row(r);
}

ProductRatings ProductRatings::from_sorted(ProductId product,
                                           std::vector<Rating> rs) {
  RAB_EXPECTS(std::is_sorted(rs.begin(), rs.end(), ByTime{}));
  ProductRatings out(product);
  out.times_.reserve(rs.size());
  out.values_.reserve(rs.size());
  out.raters_.reserve(rs.size());
  out.unfair_.reserve(rs.size());
  for (const Rating& r : rs) {
    RAB_EXPECTS(r.product == product);
    out.push_row(r);
  }
  return out;
}

Rating ProductRatings::at(std::size_t i) const {
  RAB_EXPECTS(i < size());
  return Rating{times()[i], values()[i], raters()[i], product_,
                unfair_flags()[i] != 0};
}

std::vector<Rating> ProductRatings::to_rows() const {
  std::vector<Rating> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(at(i));
  return out;
}

Interval ProductRatings::span() const {
  const std::span<const double> ts = times();
  if (ts.empty()) return Interval{};
  return Interval{ts.front(), std::nextafter(ts.back(), ts.back() + 1.0)};
}

std::vector<signal::Sample> ProductRatings::samples() const {
  const std::span<const double> ts = times();
  const std::span<const double> vs = values();
  std::vector<signal::Sample> out;
  out.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    out.push_back(signal::Sample{ts[i], vs[i]});
  }
  return out;
}

std::vector<Rating> ProductRatings::in_interval(const Interval& interval) const {
  const signal::IndexRange range = index_range(interval);
  std::vector<Rating> out;
  out.reserve(range.last - range.first);
  for (std::size_t i = range.first; i < range.last; ++i) out.push_back(at(i));
  return out;
}

signal::IndexRange ProductRatings::index_range(const Interval& interval) const {
  const std::span<const double> ts = times();
  const auto lo = std::lower_bound(ts.begin(), ts.end(), interval.begin);
  const auto hi = std::lower_bound(lo, ts.end(), interval.end);
  return signal::IndexRange{static_cast<std::size_t>(lo - ts.begin()),
                            static_cast<std::size_t>(hi - ts.begin())};
}

std::size_t ProductRatings::upper_bound(const Rating& r) const {
  // std::upper_bound over the columns: first row ordering strictly after r
  // under ByTime (time, then value, then rater).
  const std::span<const double> ts = times();
  const std::span<const double> vs = values();
  const std::span<const RaterId> rs = raters();
  std::size_t lo = 0;
  std::size_t hi = ts.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool row_after =
        r.time != ts[mid]
            ? r.time < ts[mid]
            : (r.value != vs[mid] ? r.value < vs[mid] : r.rater < rs[mid]);
    if (row_after) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

ProductRatings ProductRatings::fair_only() const {
  const std::span<const std::uint8_t> uf = unfair_flags();
  ProductRatings out(product_);
  for (std::size_t i = 0; i < size(); ++i) {
    if (uf[i] == 0) out.push_row(at(i));
  }
  return out;
}

void ProductRatings::drop_prefix(std::size_t n) {
  RAB_EXPECTS(n <= size());
  if (borrowed_) {
    // Retention compaction on a borrowed stream is just advancing the
    // views — the mapped pages behind the dropped prefix stay untouched.
    view_times_ = view_times_.subspan(n);
    view_values_ = view_values_.subspan(n);
    view_raters_ = view_raters_.subspan(n);
    view_unfair_ = view_unfair_.subspan(n);
    return;
  }
  const auto d = static_cast<std::ptrdiff_t>(n);
  times_.erase(times_.begin(), times_.begin() + d);
  values_.erase(values_.begin(), values_.begin() + d);
  raters_.erase(raters_.begin(), raters_.begin() + d);
  unfair_.erase(unfair_.begin(), unfair_.begin() + d);
}

ProductRatings ProductRatings::without_indices(
    std::span<const std::size_t> sorted_indices) const {
  ProductRatings out(product_);
  std::size_t skip = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (skip < sorted_indices.size() && sorted_indices[skip] == i) {
      ++skip;
      continue;
    }
    out.push_row(at(i));
  }
  RAB_ENSURES(skip == sorted_indices.size());
  return out;
}

}  // namespace rab::rating
