#include "rating/product_ratings.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rab::rating {

void ProductRatings::push_row(const Rating& r) {
  times_.push_back(r.time);
  values_.push_back(r.value);
  raters_.push_back(r.rater);
  unfair_.push_back(r.unfair ? std::uint8_t{1} : std::uint8_t{0});
}

void ProductRatings::add(const Rating& r) {
  RAB_EXPECTS(product_.value() < 0 || r.product == product_);
  if (product_.value() < 0) product_ = r.product;
  const auto pos = static_cast<std::ptrdiff_t>(upper_bound(r));
  times_.insert(times_.begin() + pos, r.time);
  values_.insert(values_.begin() + pos, r.value);
  raters_.insert(raters_.begin() + pos, r.rater);
  unfair_.insert(unfair_.begin() + pos,
                 r.unfair ? std::uint8_t{1} : std::uint8_t{0});
}

void ProductRatings::add_all(std::span<const Rating> rs) {
  std::vector<Rating> merged = to_rows();
  merged.reserve(merged.size() + rs.size());
  for (const Rating& r : rs) {
    RAB_EXPECTS(product_.value() < 0 || r.product == product_);
    if (product_.value() < 0) product_ = r.product;
    merged.push_back(r);
  }
  std::sort(merged.begin(), merged.end(), ByTime{});
  times_.clear();
  values_.clear();
  raters_.clear();
  unfair_.clear();
  times_.reserve(merged.size());
  values_.reserve(merged.size());
  raters_.reserve(merged.size());
  unfair_.reserve(merged.size());
  for (const Rating& r : merged) push_row(r);
}

ProductRatings ProductRatings::from_sorted(ProductId product,
                                           std::vector<Rating> rs) {
  RAB_EXPECTS(std::is_sorted(rs.begin(), rs.end(), ByTime{}));
  ProductRatings out(product);
  out.times_.reserve(rs.size());
  out.values_.reserve(rs.size());
  out.raters_.reserve(rs.size());
  out.unfair_.reserve(rs.size());
  for (const Rating& r : rs) {
    RAB_EXPECTS(r.product == product);
    out.push_row(r);
  }
  return out;
}

Rating ProductRatings::at(std::size_t i) const {
  RAB_EXPECTS(i < times_.size());
  return Rating{times_[i], values_[i], raters_[i], product_, unfair_[i] != 0};
}

std::vector<Rating> ProductRatings::to_rows() const {
  std::vector<Rating> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(at(i));
  return out;
}

Interval ProductRatings::span() const {
  if (times_.empty()) return Interval{};
  return Interval{times_.front(),
                  std::nextafter(times_.back(), times_.back() + 1.0)};
}

std::vector<signal::Sample> ProductRatings::samples() const {
  std::vector<signal::Sample> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out.push_back(signal::Sample{times_[i], values_[i]});
  }
  return out;
}

std::vector<Rating> ProductRatings::in_interval(const Interval& interval) const {
  const signal::IndexRange range = index_range(interval);
  std::vector<Rating> out;
  out.reserve(range.last - range.first);
  for (std::size_t i = range.first; i < range.last; ++i) out.push_back(at(i));
  return out;
}

signal::IndexRange ProductRatings::index_range(const Interval& interval) const {
  const auto lo =
      std::lower_bound(times_.begin(), times_.end(), interval.begin);
  const auto hi = std::lower_bound(lo, times_.end(), interval.end);
  return signal::IndexRange{static_cast<std::size_t>(lo - times_.begin()),
                            static_cast<std::size_t>(hi - times_.begin())};
}

std::size_t ProductRatings::upper_bound(const Rating& r) const {
  // std::upper_bound over the columns: first row ordering strictly after r
  // under ByTime (time, then value, then rater).
  std::size_t lo = 0;
  std::size_t hi = size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool row_after =
        r.time != times_[mid]
            ? r.time < times_[mid]
            : (r.value != values_[mid] ? r.value < values_[mid]
                                       : r.rater < raters_[mid]);
    if (row_after) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

ProductRatings ProductRatings::fair_only() const {
  ProductRatings out(product_);
  for (std::size_t i = 0; i < size(); ++i) {
    if (unfair_[i] == 0) out.push_row(at(i));
  }
  return out;
}

void ProductRatings::drop_prefix(std::size_t n) {
  RAB_EXPECTS(n <= size());
  const auto d = static_cast<std::ptrdiff_t>(n);
  times_.erase(times_.begin(), times_.begin() + d);
  values_.erase(values_.begin(), values_.begin() + d);
  raters_.erase(raters_.begin(), raters_.begin() + d);
  unfair_.erase(unfair_.begin(), unfair_.begin() + d);
}

ProductRatings ProductRatings::without_indices(
    std::span<const std::size_t> sorted_indices) const {
  ProductRatings out(product_);
  std::size_t skip = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (skip < sorted_indices.size() && sorted_indices[skip] == i) {
      ++skip;
      continue;
    }
    out.push_row(at(i));
  }
  RAB_ENSURES(skip == sorted_indices.size());
  return out;
}

}  // namespace rab::rating
