// Core rating domain types.
#pragma once

#include "util/day.hpp"
#include "util/ids.hpp"

namespace rab::rating {

/// Rating values live on the 0..5 scale used by the challenge dataset.
inline constexpr double kMinRating = 0.0;
inline constexpr double kMaxRating = 5.0;

/// One submitted rating. `unfair` is ground truth carried by the simulator
/// (never visible to detectors; they must infer it).
struct Rating {
  Day time = 0.0;
  double value = 0.0;
  RaterId rater;
  ProductId product;
  bool unfair = false;

  friend bool operator==(const Rating&, const Rating&) = default;
};

/// Orders ratings chronologically, with value/rater as deterministic
/// tie-breakers for same-instant ratings.
struct ByTime {
  bool operator()(const Rating& a, const Rating& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (a.value != b.value) return a.value < b.value;
    return a.rater < b.rater;
  }
};

}  // namespace rab::rating
