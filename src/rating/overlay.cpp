#include "rating/overlay.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace rab::rating {

OverlayProduct::OverlayProduct(const ProductRatings* base, ProductId product,
                               std::vector<Rating> extra)
    : base_(base), product_(product) {
  for (const Rating& r : extra) {
    RAB_EXPECTS(r.product == product_);
  }
  extra_.add_all(extra);
  if (base_ != nullptr && !extra_.empty()) {
    merged_pos_.reserve(extra_.size());
    for (std::size_t j = 0; j < extra_.size(); ++j) {
      merged_pos_.push_back(base_->upper_bound(extra_.at(j)) + j);
    }
  } else {
    for (std::size_t j = 0; j < extra_.size(); ++j) merged_pos_.push_back(j);
  }
}

Rating OverlayProduct::at(std::size_t i) const {
  RAB_EXPECTS(i < size());
  if (merged_ != nullptr) return merged_->at(i);
  if (extra_.empty()) return base_->at(i);
  // Number of extras at merged positions < i; if i is itself an extra
  // position the rating is extra_[k], otherwise base position i - k.
  const auto it =
      std::lower_bound(merged_pos_.begin(), merged_pos_.end(), i);
  const auto k = static_cast<std::size_t>(it - merged_pos_.begin());
  if (it != merged_pos_.end() && *it == i) return extra_.at(k);
  return base_->at(i - k);
}

Interval OverlayProduct::span() const {
  if (empty()) return Interval{};
  const Day first = at(0).time;
  const Day last = at(size() - 1).time;
  return Interval{first, std::nextafter(last, last + 1.0)};
}

signal::IndexRange OverlayProduct::index_range(
    const Interval& interval) const {
  // Boundaries are pure time lower_bounds, so counting the two sorted
  // halves independently gives the merged positions directly.
  signal::IndexRange base_range{};
  if (base_ != nullptr) base_range = base_->index_range(interval);
  const signal::IndexRange extra_range = extra_.index_range(interval);
  return signal::IndexRange{base_range.first + extra_range.first,
                            base_range.last + extra_range.last};
}

std::vector<Rating> OverlayProduct::in_interval(
    const Interval& interval) const {
  const std::vector<Rating> extras = extra_.in_interval(interval);
  if (base_ == nullptr) return extras;
  std::vector<Rating> bases = base_->in_interval(interval);
  if (extras.empty()) return bases;
  std::vector<Rating> out;
  out.reserve(bases.size() + extras.size());
  // std::merge keeps the first-range element on ties, matching the
  // base-first merged order.
  std::merge(bases.begin(), bases.end(), extras.begin(), extras.end(),
             std::back_inserter(out), ByTime{});
  return out;
}

std::vector<double> OverlayProduct::values() const {
  std::vector<double> out;
  out.reserve(size());
  for_each([&](const Rating& r) { out.push_back(r.value); });
  return out;
}

const ProductRatings& OverlayProduct::merged() const {
  if (!touched()) {
    RAB_EXPECTS(base_ != nullptr);
    return *base_;
  }
  if (merged_ == nullptr) {
    // The walk emits ratings in merged order already; adopt the vector
    // as-is (an unstable re-sort could swap fully ByTime-tied ratings and
    // break bit-identity with with_added).
    std::vector<Rating> rs;
    rs.reserve(size());
    for_each([&](const Rating& r) { rs.push_back(r); });
    merged_ = std::make_unique<ProductRatings>(
        ProductRatings::from_sorted(product_, std::move(rs)));
  }
  return *merged_;
}

DatasetOverlay::DatasetOverlay(const Dataset& base,
                               std::span<const Rating> extra)
    : base_(&base), extra_(extra.begin(), extra.end()) {
  std::map<ProductId, std::vector<Rating>> grouped;
  for (const Rating& r : extra_) grouped[r.product].push_back(r);

  for (ProductId id : base_->product_ids()) {
    auto it = grouped.find(id);
    std::vector<Rating> overlay_ratings;
    if (it != grouped.end()) overlay_ratings = std::move(it->second);
    products_.try_emplace(id, &base_->product(id), id,
                          std::move(overlay_ratings));
    if (it != grouped.end()) grouped.erase(it);
  }
  // Products the overlay rates that the base has never seen.
  for (auto& [id, overlay_ratings] : grouped) {
    products_.try_emplace(id, nullptr, id, std::move(overlay_ratings));
  }
}

std::size_t DatasetOverlay::total_ratings() const {
  std::size_t n = 0;
  for (const auto& [id, view] : products_) n += view.size();
  return n;
}

std::vector<ProductId> DatasetOverlay::product_ids() const {
  std::vector<ProductId> ids;
  ids.reserve(products_.size());
  for (const auto& [id, view] : products_) ids.push_back(id);
  return ids;
}

bool DatasetOverlay::has_product(ProductId id) const {
  return products_.contains(id);
}

const OverlayProduct& DatasetOverlay::product(ProductId id) const {
  const auto it = products_.find(id);
  if (it == products_.end()) {
    std::ostringstream msg;
    msg << "DatasetOverlay: unknown product " << id;
    throw InvalidArgument(msg.str());
  }
  return it->second;
}

bool DatasetOverlay::touched(ProductId id) const {
  const auto it = products_.find(id);
  return it != products_.end() && it->second.touched();
}

Interval DatasetOverlay::span() const {
  Interval out{};
  bool first = true;
  for (const auto& [id, view] : products_) {
    if (view.empty()) continue;
    const Interval s = view.span();
    if (first) {
      out = s;
      first = false;
    } else {
      out.begin = std::min(out.begin, s.begin);
      out.end = std::max(out.end, s.end);
    }
  }
  return out;
}

Dataset DatasetOverlay::materialize() const {
  return base_->with_added(extra_);
}

}  // namespace rab::rating
