// Crash-safe snapshots of OnlineMonitor state.
//
// A deployed monitor accumulates state an attacker would love to see
// destroyed: beta-function trust evidence (Procedure 1) is exactly the
// detection history that makes repeat attacks expensive, so a crash that
// resets it amnesties every previously caught rater. The checkpoint
// subsystem makes the monitor recoverable: snapshot the complete state
// periodically, and after a crash restore the newest valid snapshot and
// replay the (durable) feed from `ingested()` — the recovered run is
// bit-identical to one that never crashed (tests/test_chaos.cpp proves it
// at every registered failpoint and at random kill points).
//
// File format (version 1, little-endian):
//
//   magic "RABCKPT1" (8 bytes)
//   u32 version
//   u32 section count
//   per section: u32 tag, u64 payload size, payload, u32 CRC-32(payload)
//   u32 CRC-32 over every preceding byte of the file
//
// Sections: CONF (semantic config — validated, not applied), CLCK (epoch
// clocks and counters), TRST (raw S/F trust evidence), STRM (per-product
// ratings + alarm bookkeeping), ALRM (alarms raised), EPCH (per-epoch
// stats). Every integrity failure — short file, impossible size, checksum
// mismatch — throws CorruptData, and OnlineMonitor::restore_latest falls
// back to the previous generation, so a torn write or bit rot costs one
// checkpoint interval of replay, never the trust state.
//
// Writes are atomic and durable: serialize to a buffer, write to
// `<path>.tmp`, fsync, rename over `path`, fsync the directory. A crash at
// any point leaves either the old snapshot or the new one, never a hybrid.
// The write path carries failpoints (util/failpoint.hpp) at every
// syscall boundary so the chaos harness can kill it anywhere.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rab::detectors::checkpoint {

inline constexpr std::uint32_t kVersion = 1;
inline constexpr char kMagic[8] = {'R', 'A', 'B', 'C', 'K', 'P', 'T', '1'};

/// File name of generation `gen`: "ckpt-<zero-padded id>.rabck".
[[nodiscard]] std::string generation_filename(std::size_t gen);

/// Inverse of generation_filename; nullopt when `name` is not one.
[[nodiscard]] std::optional<std::size_t> parse_generation(
    const std::string& name);

/// Generation ids present in `dir`, ascending. A missing or unreadable
/// directory yields an empty list (nothing to recover is not an error).
[[nodiscard]] std::vector<std::size_t> list_generations(
    const std::string& dir);

/// Reads and integrity-checks the snapshot at `path` without restoring
/// it: magic, version, section structure, per-section and whole-file
/// checksums. Throws IoError when unreadable, CorruptData when damaged.
void verify_snapshot(const std::string& path);

}  // namespace rab::detectors::checkpoint
