// Mean-change detector (paper Section IV-B).
//
// Slides a window over the rating stream, runs the Gaussian mean-change GLRT
// at each window center to build the MC indicator curve, segments the stream
// at the curve's peaks, and marks segments whose mean deviates from the
// overall mean — strongly (threshold1) on its own, or moderately
// (threshold2) when the segment's raters are also less trusted.
#pragma once

#include "detectors/config.hpp"
#include "rating/product_ratings.hpp"

namespace rab::detectors {

class MeanChangeDetector {
 public:
  explicit MeanChangeDetector(McConfig config = {});

  /// Runs detection over one product's stream. `trust` supplies current
  /// rater trust for the moderate-change condition (Section IV-B.3, cond 2).
  [[nodiscard]] DetectionResult detect(
      const rating::ProductRatings& stream,
      const TrustLookup& trust = default_trust) const;

  /// The MC indicator curve alone (value = GLRT statistic at each rating).
  [[nodiscard]] signal::Curve indicator_curve(
      const rating::ProductRatings& stream) const;

  [[nodiscard]] const McConfig& config() const { return config_; }

 private:
  /// The uninstrumented detection; detect() wraps it with the run/alarm
  /// counters and latency histogram (docs/METRICS.md).
  [[nodiscard]] DetectionResult detect_impl(
      const rating::ProductRatings& stream, const TrustLookup& trust) const;

  McConfig config_;
};

}  // namespace rab::detectors
