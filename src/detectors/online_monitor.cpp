#include "detectors/online_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace rab::detectors {

namespace {

/// Streaming-monitor observability (docs/METRICS.md). Counters accumulate
/// across every OnlineMonitor in the process; the gauges reflect the most
/// recently analyzed monitor.
struct MonitorMetrics {
  util::metrics::Counter& ingested =
      util::metrics::counter("monitor.ingested");
  util::metrics::Counter& epochs =
      util::metrics::counter("monitor.epochs");
  util::metrics::Counter& alarms =
      util::metrics::counter("monitor.alarms");
  util::metrics::Counter& compacted =
      util::metrics::counter("monitor.compacted_ratings");
  util::metrics::Gauge& resident =
      util::metrics::gauge("monitor.resident_ratings");
  util::metrics::Gauge& streams =
      util::metrics::gauge("monitor.streams");
  util::metrics::Histogram& epoch_seconds = util::metrics::histogram(
      "monitor.epoch.seconds", util::metrics::latency_bounds_seconds());

  static const MonitorMetrics& get() {
    static const MonitorMetrics instance;
    return instance;
  }
};

}  // namespace

OnlineMonitor::OnlineMonitor(OnlineConfig config)
    : config_(config), integrator_(config.detectors, config.toggles),
      trust_(config.trust_forgetting) {
  RAB_EXPECTS(config_.epoch_days > 0.0);
  RAB_EXPECTS(config_.retention_days == 0.0 ||
              config_.retention_days >= config_.epoch_days);
  RAB_EXPECTS(config_.checkpoint_every_epochs > 0);
  RAB_EXPECTS(config_.checkpoint_keep > 0);
  if (config_.cache_streams > 0) {
    cache_ = std::make_unique<IntegrationCache>(
        config_.cache_streams, std::max<std::size_t>(1, config_.cache_variants));
  }
  if (!config_.store_dir.empty()) {
    store::StoreConfig sc;
    sc.dir = config_.store_dir;
    sc.segment_bytes = config_.store_segment_bytes;
    sc.group_ratings = config_.store_group_ratings;
    sc.fsync = config_.store_fsync;
    sc.marker_commits = config_.store_marker_commits;
    store_ = std::make_unique<store::RatingStore>(sc);
    // Committed kSession markers are both applied and durable; a later
    // restore_checkpoint/restore_from_store refines these tables.
    applied_wm_ = store_->session_watermarks();
    durable_wm_ = applied_wm_;
  }
}

void OnlineMonitor::begin_atomic_batch() { in_batch_ = true; }

void OnlineMonitor::end_atomic_batch(std::uint64_t session,
                                     std::uint64_t seq) {
  in_batch_ = false;
  if (session != 0) {
    auto& wm = applied_wm_[session];
    wm = std::max(wm, seq);
    // The marker rides the same group as the batch's rows: marker
    // durability and row durability are one event.
    if (store_) store_->mark_session(session, seq);
  }
  if (store_) {
    if (store_->maybe_flush()) durable_wm_ = applied_wm_;
  } else if (config_.checkpoint_dir.empty()) {
    // No persistence configured: nothing can outlast the process, so
    // "durable" degenerates to "applied" and acks mean at-least-applied.
    durable_wm_ = applied_wm_;
  }
  if (deferred_checkpoint_) {
    deferred_checkpoint_ = false;
    do_checkpoint();  // checkpoint_now() refreshes durable_wm_
  }
}

std::uint64_t OnlineMonitor::applied_watermark(std::uint64_t session) const {
  const auto it = applied_wm_.find(session);
  return it == applied_wm_.end() ? 0 : it->second;
}

std::uint64_t OnlineMonitor::durable_watermark(std::uint64_t session) const {
  const auto it = durable_wm_.find(session);
  return it == durable_wm_.end() ? 0 : it->second;
}

void OnlineMonitor::ingest(const rating::Rating& r) {
  // Finiteness first: a NaN time would pass `r.time < last_time_` below,
  // poison last_time_, and permanently disable the ordering guard.
  if (!std::isfinite(r.time) || !std::isfinite(r.value)) {
    throw InvalidArgument(
        "OnlineMonitor: rating time and value must be finite");
  }
  if (r.product.value() < 0 || r.rater.value() < 0) {
    throw InvalidArgument("OnlineMonitor: rating ids must be non-negative");
  }
  if (started_ && r.time < last_time_) {
    throw InvalidArgument(
        "OnlineMonitor: ratings must arrive in time order");
  }
  if (!started_) {
    started_ = true;
    next_epoch_ = r.time + config_.epoch_days;
    folded_until_ = r.time;
  }
  // Close any epochs the new rating has moved past. The periodic
  // checkpoint happens only after next_epoch_ has advanced past the
  // analyzed boundary: a snapshot taken earlier would replay the same
  // boundary again after restore and double-record the epoch.
  while (r.time >= next_epoch_) {
    analyze_epoch(next_epoch_);
    next_epoch_ += config_.epoch_days;
    maybe_checkpoint();
  }
  last_time_ = r.time;
  Stream& stream = streams_.try_emplace(r.product, r.product).first->second;
  stream.ratings.add(r);
  stream.fingerprint_valid = false;
  // Durability last: the checkpoints taken above cover exactly the rows
  // already appended, so the store's durable prefix always matches some
  // replayable monitor state. Replayed rows are already in the store.
  if (store_ && !replaying_) store_->append(r);
  MonitorMetrics::get().ingested.add();
  ++ingested_;
  ++epoch_ingested_;
  ++resident_;
  pending_ = true;
}

void OnlineMonitor::ingest(std::span<const rating::Rating> batch) {
  for (const rating::Rating& r : batch) ingest(r);
}

void OnlineMonitor::flush() {
  if (started_ && pending_) {
    analyze_epoch(std::nextafter(last_time_, last_time_ + 1.0));
    maybe_checkpoint();
  }
  // Shutdown durability: everything ingested is on disk after a flush.
  if (store_) {
    store_->sync();
    durable_wm_ = applied_wm_;
  }
}

void OnlineMonitor::drain() {
  // Snapshot BEFORE the final partial-epoch analysis: the flush below
  // folds evidence and decays trust once more, which an uninterrupted
  // run would only do when its feed actually ended. Restoring this
  // pre-flush snapshot and continuing the feed is therefore
  // bit-identical to never having stopped (the chaos-harness contract),
  // while the operator still gets the partial epoch's alarms on the way
  // out. Deliberately no maybe_checkpoint() after the analysis — a
  // post-flush generation would supersede this one and break that
  // restart bit-identity.
  if (!config_.checkpoint_dir.empty()) (void)checkpoint_now();
  if (started_ && pending_) {
    analyze_epoch(std::nextafter(last_time_, last_time_ + 1.0));
  }
  if (store_) {
    store_->sync();
    durable_wm_ = applied_wm_;
  }
}

std::optional<OnlineMonitor::ProductSummary> OnlineMonitor::product_summary(
    ProductId product) const {
  const auto it = streams_.find(product);
  if (it == streams_.end()) return std::nullopt;
  const Stream& stream = it->second;
  ProductSummary summary;
  summary.resident = stream.ratings.size();
  summary.dropped_rows = stream.dropped_rows;
  summary.marks = stream.previous_marks;
  if (!stream.ratings.empty()) summary.span = stream.ratings.span();
  return summary;
}

std::vector<ProductId> OnlineMonitor::products() const {
  std::vector<ProductId> out;
  out.reserve(streams_.size());
  for (const auto& [product, stream] : streams_) out.push_back(product);
  return out;
}

void OnlineMonitor::maybe_checkpoint() {
  if (config_.checkpoint_dir.empty()) return;
  if (epoch_stats_.size() % config_.checkpoint_every_epochs != 0) return;
  if (in_batch_) {
    // Mid-batch snapshots would cover half-applied batches; defer to
    // end_atomic_batch() (see begin_atomic_batch's contract).
    deferred_checkpoint_ = true;
    return;
  }
  do_checkpoint();
}

void OnlineMonitor::do_checkpoint() {
  (void)checkpoint_now();
  if (!store_) return;
  // Queue this generation's compaction watermark; release the one that
  // checkpoint_keep newer generations have superseded — every snapshot a
  // later restore may fall back to can still load its row ranges.
  std::map<ProductId, std::uint64_t> watermark;
  for (const auto& [product, stream] : streams_) {
    watermark[product] = stream.dropped_rows;
  }
  pending_watermarks_.push_back(std::move(watermark));
  if (pending_watermarks_.size() > config_.checkpoint_keep) {
    const std::map<ProductId, std::uint64_t> safe =
        std::move(pending_watermarks_.front());
    pending_watermarks_.pop_front();
    store_->compact(safe);
  }
}

void OnlineMonitor::analyze_epoch(Day epoch_end) {
  RAB_FAILPOINT("monitor.analyze");
  const util::metrics::ScopedTimer timer(
      MonitorMetrics::get().epoch_seconds);
  RAB_TRACE_SPAN("monitor.epoch");
  trust_.decay();

  OnlineEpochStats stats;
  stats.epoch_end = epoch_end;
  stats.ratings = epoch_ingested_;
  epoch_ingested_ = 0;
  const IntegrationCache::Stats cache_before =
      cache_ ? cache_->stats() : IntegrationCache::Stats{};

  // Deterministic worklist: non-empty streams in product-id order.
  std::vector<Stream*> work;
  work.reserve(streams_.size());
  for (auto& [product, stream] : streams_) {
    if (!stream.ratings.empty()) work.push_back(&stream);
  }
  stats.products_analyzed = work.size();

  // Fan the per-product analysis out over the pool. Each index owns its
  // slot (and its Stream's fingerprint field); trust is read-only here
  // (decay above, record below), and the cache is internally locked, so
  // results are bit-identical at any thread count.
  std::vector<std::shared_ptr<const IntegrationResult>> results(work.size());
  const TrustLookup lookup = trust_.lookup();
  util::parallel_for(work.size(), [&](std::size_t i) {
    Stream& s = *work[i];
    if (cache_) {
      if (!s.fingerprint_valid) {
        s.fingerprint = stream_fingerprint(s.ratings);
        s.fingerprint_valid = true;
      }
      results[i] =
          integrator_.analyze_cached(s.ratings, lookup, *cache_,
                                     &s.fingerprint);
    } else {
      results[i] = std::make_shared<const IntegrationResult>(
          integrator_.analyze(s.ratings, lookup));
    }
  });

  // Serial reduction in product order: fold trust evidence and raise
  // alarms. The fold interval starts at folded_until_, not at
  // epoch_end - epoch_days: a flush's partial epoch would otherwise
  // overlap the tail of the last completed epoch and fold those ratings'
  // evidence twice.
  const Interval fold{folded_until_, epoch_end};
  std::unordered_map<RaterId, trust::EpochCounts> epoch_counts;
  for (std::size_t i = 0; i < work.size(); ++i) {
    Stream& s = *work[i];
    const IntegrationResult& result = *results[i];

    const signal::IndexRange range = s.ratings.index_range(fold);
    for (std::size_t j = range.first; j < range.last; ++j) {
      trust::EpochCounts& c = epoch_counts[s.ratings.raters()[j]];
      ++c.ratings;
      if (result.suspicious[j]) ++c.suspicious;
    }

    // Raise an alarm when this analysis marks more ratings than the last
    // one did — fresh suspicion.
    const std::size_t marks = result.suspicious_count();
    stats.marked_ratings += marks;
    if (marks >= s.previous_marks + config_.min_alarm_marks) {
      Alarm alarm;
      alarm.product = s.ratings.product();
      alarm.raised_at = epoch_end;
      alarm.marked_ratings = marks - s.previous_marks;
      // Report the span of the currently suspicious detector intervals
      // (union bound) as the alarm interval.
      Day lo = s.ratings.span().end;
      Day hi = s.ratings.span().begin;
      for (const auto* detection :
           {&result.mc, &result.harc, &result.larc, &result.hc,
            &result.me}) {
        for (const Interval& iv : detection->suspicious) {
          lo = std::min(lo, iv.begin);
          hi = std::max(hi, iv.end);
        }
      }
      alarm.interval = lo <= hi ? Interval{lo, hi} : Interval{};
      alarms_.push_back(alarm);
      ++stats.alarms;
    }
    s.previous_marks = marks;
    s.last_suspicious = result.suspicious;
  }

  for (const auto& [rater, counts] : epoch_counts) {
    trust_.record(rater, counts);
  }
  folded_until_ = epoch_end;
  pending_ = false;

  if (config_.retention_days > 0.0) compact(epoch_end, stats);

  stats.resident_ratings = resident_;
  if (cache_) {
    const IntegrationCache::Stats after = cache_->stats();
    stats.cache_hits = after.hits - cache_before.hits;
    stats.cache_partial_hits = after.partial_hits - cache_before.partial_hits;
    stats.cache_misses = after.misses - cache_before.misses;
  }
  epoch_stats_.push_back(stats);

  const MonitorMetrics& m = MonitorMetrics::get();
  m.epochs.add();
  m.alarms.add(stats.alarms);
  m.compacted.add(stats.compacted_ratings);
  m.resident.set(static_cast<double>(resident_));
  m.streams.set(static_cast<double>(streams_.size()));
}

void OnlineMonitor::compact(Day epoch_end, OnlineEpochStats& stats) {
  RAB_FAILPOINT("monitor.compact");
  RAB_TRACE_SPAN("monitor.compact");
  // Everything older than the window has had its evidence folded already
  // (retention_days >= epoch_days and folds run through epoch_end), so
  // dropping the prefix loses no trust information — only the raw ratings.
  const Day cutoff = epoch_end - config_.retention_days;
  for (auto& [product, stream] : streams_) {
    const signal::IndexRange stale =
        stream.ratings.index_range(Interval{stream.ratings.span().begin,
                                            cutoff});
    const std::size_t drop = stale.last;
    if (drop == 0) continue;
    // The fresh-marks baseline counted marks over the full stream; keep it
    // comparable with the next (truncated) analysis by subtracting the
    // marks that leave the window.
    std::size_t dropped_marks = 0;
    for (std::size_t i = 0; i < drop && i < stream.last_suspicious.size();
         ++i) {
      if (stream.last_suspicious[i]) ++dropped_marks;
    }
    stream.previous_marks -= std::min(dropped_marks, stream.previous_marks);
    stream.ratings.drop_prefix(drop);
    stream.dropped_rows += drop;
    stream.fingerprint_valid = false;
    stream.last_suspicious.clear();
    resident_ -= drop;
    compacted_ += drop;
    stats.compacted_ratings += drop;
  }
}

IntegrationCache::Stats OnlineMonitor::cache_stats() const {
  return cache_ ? cache_->stats() : IntegrationCache::Stats{};
}

}  // namespace rab::detectors
