#include "detectors/online_monitor.hpp"

#include <cmath>
#include <unordered_map>

#include "util/error.hpp"

namespace rab::detectors {

OnlineMonitor::OnlineMonitor(OnlineConfig config)
    : config_(config), trust_(config.trust_forgetting) {
  RAB_EXPECTS(config_.epoch_days > 0.0);
}

void OnlineMonitor::ingest(const rating::Rating& r) {
  if (started_ && r.time < last_time_) {
    throw InvalidArgument(
        "OnlineMonitor: ratings must arrive in time order");
  }
  if (!started_) {
    started_ = true;
    next_epoch_ = r.time + config_.epoch_days;
  }
  // Close any epochs the new rating has moved past.
  while (r.time >= next_epoch_) {
    analyze_epoch(next_epoch_);
    next_epoch_ += config_.epoch_days;
  }
  last_time_ = r.time;
  streams_.try_emplace(r.product, r.product).first->second.add(r);
  ++ingested_;
}

void OnlineMonitor::flush() {
  if (!started_) return;
  analyze_epoch(std::nextafter(last_time_, last_time_ + 1.0));
}

void OnlineMonitor::analyze_epoch(Day epoch_end) {
  const DetectorIntegrator integrator(config_.detectors, config_.toggles);
  const Interval epoch{epoch_end - config_.epoch_days, epoch_end};

  trust_.decay();
  std::unordered_map<RaterId, trust::EpochCounts> epoch_counts;

  for (auto& [product, stream] : streams_) {
    if (stream.empty()) continue;
    const IntegrationResult result =
        integrator.analyze(stream, trust_.lookup());

    // Fold this epoch's evidence into trust.
    const signal::IndexRange range = stream.index_range(epoch);
    for (std::size_t i = range.first; i < range.last; ++i) {
      trust::EpochCounts& c = epoch_counts[stream.at(i).rater];
      ++c.ratings;
      if (result.suspicious[i]) ++c.suspicious;
    }

    // Raise an alarm when this analysis marks more ratings than the last
    // one did — fresh suspicion.
    const std::size_t marks = result.suspicious_count();
    std::size_t& previous = previous_marks_[product];
    if (marks >= previous + config_.min_alarm_marks) {
      Alarm alarm;
      alarm.product = product;
      alarm.raised_at = epoch_end;
      alarm.marked_ratings = marks - previous;
      // Report the span of the currently suspicious detector intervals
      // (union bound) as the alarm interval.
      Day lo = stream.span().end;
      Day hi = stream.span().begin;
      for (const auto* detection :
           {&result.mc, &result.harc, &result.larc, &result.hc,
            &result.me}) {
        for (const Interval& iv : detection->suspicious) {
          lo = std::min(lo, iv.begin);
          hi = std::max(hi, iv.end);
        }
      }
      alarm.interval = lo <= hi ? Interval{lo, hi} : Interval{};
      alarms_.push_back(alarm);
    }
    previous = marks;
  }

  for (const auto& [rater, counts] : epoch_counts) {
    trust_.record(rater, counts);
  }
}

}  // namespace rab::detectors
