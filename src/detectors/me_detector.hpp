// Signal-model-change (model error) detector (paper Section IV-E; the
// detector of Yang et al., ICDCS-TRM 2007).
//
// Fits an AR model to the ratings in each sliding window with the covariance
// method. Honest ratings behave like white noise around the product mean, so
// the AR fit explains little and the normalized model error stays high. A
// coordinated attack injects temporal structure; the model error drops, and
// the low-error interval is marked suspicious.
#pragma once

#include "detectors/config.hpp"
#include "rating/product_ratings.hpp"

namespace rab::detectors {

class ModelErrorDetector {
 public:
  explicit ModelErrorDetector(MeConfig config = {});

  [[nodiscard]] DetectionResult detect(
      const rating::ProductRatings& stream) const;

  /// The ME curve alone: normalized AR residual power per window center.
  [[nodiscard]] signal::Curve indicator_curve(
      const rating::ProductRatings& stream) const;

  [[nodiscard]] const MeConfig& config() const { return config_; }

 private:
  /// The uninstrumented detection; detect() wraps it with the run/alarm
  /// counters and latency histogram (docs/METRICS.md).
  [[nodiscard]] DetectionResult detect_impl(
      const rating::ProductRatings& stream) const;

  MeConfig config_;
};

}  // namespace rab::detectors
