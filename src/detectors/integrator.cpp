#include "detectors/integrator.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rab::detectors {

std::size_t IntegrationResult::suspicious_count() const {
  return static_cast<std::size_t>(
      std::count(suspicious.begin(), suspicious.end(), true));
}

DetectorIntegrator::DetectorIntegrator(DetectorConfig config,
                                       DetectorToggles toggles)
    : config_(config), toggles_(toggles) {}

void DetectorIntegrator::mark_in_intervals(
    const rating::ProductRatings& stream, const std::vector<Interval>& a,
    const std::vector<Interval>& b, bool mark_high,
    IntegrationResult& result) const {
  for (const Interval& ia : a) {
    for (const Interval& ib : b) {
      const Interval overlap = ia.intersect(ib);
      if (overlap.empty()) continue;
      const signal::IndexRange range = stream.index_range(overlap);
      for (std::size_t i = range.first; i < range.last; ++i) {
        const double v = stream.at(i).value;
        const bool hit = mark_high ? v > result.split.threshold_a
                                   : v < result.split.threshold_b;
        if (hit) result.suspicious[i] = true;
      }
    }
  }
}

void DetectorIntegrator::run_trust_free(const rating::ProductRatings& stream,
                                        IntegrationResult& result) const {
  result.split = value_split_for_mean(stats::mean(stream.values()));

  if (toggles_.use_arc) {
    result.harc =
        ArrivalRateDetector(config_.arc, ArcMode::kHigh).detect(stream);
    result.larc =
        ArrivalRateDetector(config_.arc, ArcMode::kLow).detect(stream);
  }
  if (toggles_.use_hc) {
    result.hc = HistogramDetector(config_.hc).detect(stream);
  }
  if (toggles_.use_me) {
    result.me = ModelErrorDetector(config_.me).detect(stream);
  }
}

void DetectorIntegrator::run_mc_and_integrate(
    const rating::ProductRatings& stream, const TrustLookup& trust,
    IntegrationResult& result) const {
  if (toggles_.use_mc) {
    result.mc = MeanChangeDetector(config_.mc).detect(stream, trust);
  }

  // Path 1: MC suspicious interval confirmed by an arrival-rate change in
  // the matching value band.
  mark_in_intervals(stream, result.mc.suspicious, result.harc.suspicious,
                    /*mark_high=*/true, result);
  mark_in_intervals(stream, result.mc.suspicious, result.larc.suspicious,
                    /*mark_high=*/false, result);

  // Path 2: arrival-rate alarm confirmed by signal structure (low model
  // error) or a second histogram mode.
  std::vector<Interval> structure = result.me.suspicious;
  structure.insert(structure.end(), result.hc.suspicious.begin(),
                   result.hc.suspicious.end());
  mark_in_intervals(stream, result.harc.suspicious, structure,
                    /*mark_high=*/true, result);
  mark_in_intervals(stream, result.larc.suspicious, structure,
                    /*mark_high=*/false, result);
}

IntegrationResult DetectorIntegrator::analyze(
    const rating::ProductRatings& stream, const TrustLookup& trust) const {
  static auto& analyses = util::metrics::counter("integrator.analyses");
  analyses.add();
  RAB_TRACE_SPAN("integrator.analyze");
  IntegrationResult result;
  result.suspicious.assign(stream.size(), false);
  if (stream.empty()) return result;

  run_trust_free(stream, result);
  run_mc_and_integrate(stream, trust, result);
  return result;
}

std::shared_ptr<const IntegrationResult> DetectorIntegrator::analyze_cached(
    const rating::ProductRatings& stream, const TrustLookup& trust,
    IntegrationCache& cache, const Fingerprint* stream_fp) const {
  static auto& analyses =
      util::metrics::counter("integrator.cached_analyses");
  analyses.add();
  RAB_TRACE_SPAN("integrator.analyze_cached");
  const Fingerprint sfp =
      stream_fp != nullptr ? *stream_fp : stream_fingerprint(stream);
  // Only the MC detector consults trust; with MC disabled every trust
  // state shares one variant.
  const Fingerprint tfp =
      toggles_.use_mc ? trust_fingerprint(stream, trust) : Fingerprint{};

  if (auto hit = cache.find(sfp, tfp)) return hit;

  IntegrationResult result;
  result.suspicious.assign(stream.size(), false);
  if (const auto base = cache.find_stream(sfp); base != nullptr) {
    // Known stream, new trust values: reuse the trust-free detector
    // results, re-run only MC and the integration marking.
    result.split = base->split;
    result.harc = base->harc;
    result.larc = base->larc;
    result.hc = base->hc;
    result.me = base->me;
    if (!stream.empty()) run_mc_and_integrate(stream, trust, result);
  } else if (!stream.empty()) {
    run_trust_free(stream, result);
    run_mc_and_integrate(stream, trust, result);
  }

  auto shared =
      std::make_shared<const IntegrationResult>(std::move(result));
  cache.insert(sfp, tfp, shared);
  return shared;
}

}  // namespace rab::detectors
