// Shared instrumentation bundle for the detector bank (internal header).
//
// Each detector's public detect() is a thin wrapper: count the run, time
// it, open a trace span, and count an alarm when the detection reports at
// least one suspicious interval. The bundle keeps the three handles
// together so every detector instruments identically (metric names are
// catalogued in docs/METRICS.md). Observation-only: results are
// bit-identical with metrics enabled, disabled, or compiled out.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "detectors/config.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rab::detectors::detail {

struct DetectorInstruments {
  util::metrics::Counter& runs;
  util::metrics::Counter& alarms;  ///< detections with >= 1 interval
  util::metrics::Histogram& seconds;

  /// Registers "<prefix>.runs", "<prefix>.alarms", "<prefix>.seconds".
  static DetectorInstruments make(const std::string& prefix) {
    return DetectorInstruments{
        util::metrics::counter(prefix + ".runs"),
        util::metrics::counter(prefix + ".alarms"),
        util::metrics::histogram(prefix + ".seconds",
                                 util::metrics::latency_bounds_seconds())};
  }

  /// Runs one detection under the counters/timer/span. `span_name` must
  /// have static storage duration (a literal).
  template <typename Fn>
  DetectionResult run(std::string_view span_name, Fn&& fn) const {
    runs.add();
    const util::metrics::ScopedTimer timer(seconds);
    RAB_TRACE_SPAN(span_name);
    DetectionResult result = std::forward<Fn>(fn)();
    if (result.any_suspicious()) alarms.add();
    return result;
  }
};

}  // namespace rab::detectors::detail
