#include "detectors/hc_detector.hpp"

#include <span>
#include <vector>

#include "detectors/instrumentation.hpp"
#include "signal/kernels.hpp"
#include "util/error.hpp"

namespace rab::detectors {

HistogramDetector::HistogramDetector(HcConfig config) : config_(config) {
  RAB_EXPECTS(config_.window_ratings >= 4);
  RAB_EXPECTS(config_.threshold > 0.0 && config_.threshold <= 1.0);
  RAB_EXPECTS(config_.min_cluster_gap >= 0.0);
}

signal::Curve HistogramDetector::indicator_curve(
    const rating::ProductRatings& stream) const {
  const std::span<const double> times = stream.times();
  // Batch kernel over the value column: one incrementally sorted sliding
  // window instead of a re-sort per center, bit-identical to the historic
  // window_around + two_cluster_split loop (signal/kernels.hpp).
  const std::vector<double> hc = signal::balance_curve(
      stream.values(), config_.window_ratings, config_.min_cluster_gap);
  signal::Curve curve;
  curve.reserve(times.size());
  for (std::size_t k = 0; k < times.size(); ++k) {
    curve.push_back(signal::CurvePoint{times[k], hc[k]});
  }
  return curve;
}

DetectionResult HistogramDetector::detect(
    const rating::ProductRatings& stream) const {
  static const detail::DetectorInstruments instruments =
      detail::DetectorInstruments::make("detector.hc");
  return instruments.run("detector.hc", [&] { return detect_impl(stream); });
}

DetectionResult HistogramDetector::detect_impl(
    const rating::ProductRatings& stream) const {
  DetectionResult result;
  result.curve = indicator_curve(stream);
  result.suspicious =
      signal::intervals_above(result.curve, config_.threshold);
  return result;
}

}  // namespace rab::detectors
