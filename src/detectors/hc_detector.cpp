#include "detectors/hc_detector.hpp"

#include <algorithm>
#include <span>

#include "cluster/single_linkage.hpp"
#include "detectors/instrumentation.hpp"
#include "util/error.hpp"

namespace rab::detectors {

HistogramDetector::HistogramDetector(HcConfig config) : config_(config) {
  RAB_EXPECTS(config_.window_ratings >= 4);
  RAB_EXPECTS(config_.threshold > 0.0 && config_.threshold <= 1.0);
  RAB_EXPECTS(config_.min_cluster_gap >= 0.0);
}

signal::Curve HistogramDetector::indicator_curve(
    const rating::ProductRatings& stream) const {
  const std::span<const double> times = stream.times();
  const std::span<const double> values = stream.values();
  signal::Curve curve;
  curve.reserve(times.size());
  const signal::WindowSpec spec =
      signal::WindowSpec::by_count(config_.window_ratings);

  for (std::size_t k = 0; k < times.size(); ++k) {
    const signal::IndexRange window = signal::window_around(times, k, spec);
    double hc = 0.0;
    if (window.size() >= 4) {
      const std::span<const double> slice =
          values.subspan(window.first, window.size());
      const cluster::Split1d split = cluster::two_cluster_split(slice);
      // Without a real value gap between the clusters the "split" is just
      // adjacent rating levels of one noisy blob — not a second mode.
      if (split.gap >= config_.min_cluster_gap) {
        const double n1 = static_cast<double>(split.left_count);
        const double n2 = static_cast<double>(split.right_count);
        hc = std::min(n1 / n2, n2 / n1);  // Eq. (6)
      }
    }
    curve.push_back(signal::CurvePoint{times[k], hc});
  }
  return curve;
}

DetectionResult HistogramDetector::detect(
    const rating::ProductRatings& stream) const {
  static const detail::DetectorInstruments instruments =
      detail::DetectorInstruments::make("detector.hc");
  return instruments.run("detector.hc", [&] { return detect_impl(stream); });
}

DetectionResult HistogramDetector::detect_impl(
    const rating::ProductRatings& stream) const {
  DetectionResult result;
  result.curve = indicator_curve(stream);
  result.suspicious =
      signal::intervals_above(result.curve, config_.threshold);
  return result;
}

}  // namespace rab::detectors
