// Joint detection of suspicious ratings (paper Section IV-F, Figure 1).
//
// Two parallel decision paths combine the four detectors:
//
//   Path 1 (strong attacks): a mean-change suspicious interval confirmed by
//   an H-ARC (resp. L-ARC) suspicious interval marks the high (resp. low)
//   ratings inside the overlap as suspicious.
//
//   Path 2 (subtle attacks): an H-ARC / L-ARC suspicious interval that the
//   mean-change detector missed still marks ratings when the model-error or
//   histogram detector confirms structure in the same span.
//
// Using any single detector alone would fire on natural variation of fair
// ratings; requiring cross-detector agreement keeps the false-alarm rate
// down, exactly the motivation given in the paper.
#pragma once

#include <memory>
#include <vector>

#include "detectors/arc_detector.hpp"
#include "detectors/config.hpp"
#include "detectors/hc_detector.hpp"
#include "detectors/mc_detector.hpp"
#include "detectors/me_detector.hpp"
#include "detectors/result_cache.hpp"
#include "rating/product_ratings.hpp"

namespace rab::detectors {

/// Full per-product analysis: which ratings are suspicious plus every
/// intermediate detector result for diagnostics and benches.
struct IntegrationResult {
  /// Parallel to the product stream: suspicious[i] applies to stream.at(i).
  std::vector<bool> suspicious;

  DetectionResult mc;
  DetectionResult harc;
  DetectionResult larc;
  DetectionResult hc;
  DetectionResult me;

  /// Value thresholds used for the high/low marking.
  ValueSplit split;

  [[nodiscard]] std::size_t suspicious_count() const;
};

/// Which detectors participate — used by the ablation benches; the default
/// enables everything (the full P-scheme).
struct DetectorToggles {
  bool use_mc = true;
  bool use_arc = true;
  bool use_hc = true;
  bool use_me = true;
};

class DetectorIntegrator {
 public:
  explicit DetectorIntegrator(DetectorConfig config = {},
                              DetectorToggles toggles = {});

  /// Analyzes one product stream; `trust` feeds the MC detector's
  /// moderate-change condition.
  [[nodiscard]] IntegrationResult analyze(
      const rating::ProductRatings& stream,
      const TrustLookup& trust = default_trust) const;

  /// Memoized analyze for the MP evaluation hot loop. Identical content +
  /// identical trust values reuse the cached result outright; a known
  /// stream under new trust reuses its trust-free detector results
  /// (H-ARC/L-ARC/HC/ME, value split) and re-runs only the MC detector and
  /// the integration marking. Results are bit-identical to analyze() —
  /// see result_cache.hpp for the fingerprint/invalidation rules.
  /// `stream_fp`, when non-null, must equal stream_fingerprint(stream);
  /// callers that track content changes (OnlineMonitor) pass it to skip
  /// the per-call O(n) rehash of unchanged streams.
  [[nodiscard]] std::shared_ptr<const IntegrationResult> analyze_cached(
      const rating::ProductRatings& stream, const TrustLookup& trust,
      IntegrationCache& cache, const Fingerprint* stream_fp = nullptr) const;

  [[nodiscard]] const DetectorConfig& config() const { return config_; }

 private:
  void mark_in_intervals(const rating::ProductRatings& stream,
                         const std::vector<Interval>& a,
                         const std::vector<Interval>& b, bool mark_high,
                         IntegrationResult& result) const;

  /// The trust-free detector bank: value split, H-ARC/L-ARC, HC, ME.
  void run_trust_free(const rating::ProductRatings& stream,
                      IntegrationResult& result) const;

  /// The trust-dependent tail: MC detection plus the Figure-1 integration
  /// marking (which combines all detector results into suspicion flags).
  void run_mc_and_integrate(const rating::ProductRatings& stream,
                            const TrustLookup& trust,
                            IntegrationResult& result) const;

  DetectorConfig config_;
  DetectorToggles toggles_;
};

}  // namespace rab::detectors
