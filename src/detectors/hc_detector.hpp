// Histogram-change detector (paper Section IV-D).
//
// Within each sliding window of rating values, forms two clusters by single
// linkage and computes HC(k) = min(n1/n2, n2/n1). Honest ratings cluster as
// one noisy blob (one cluster absorbs almost everything, HC near 0);
// a coordinated attack inserts a second mode, balancing the clusters and
// pushing HC toward 1.
#pragma once

#include "detectors/config.hpp"
#include "rating/product_ratings.hpp"

namespace rab::detectors {

class HistogramDetector {
 public:
  explicit HistogramDetector(HcConfig config = {});

  [[nodiscard]] DetectionResult detect(
      const rating::ProductRatings& stream) const;

  /// The HC curve alone: cluster balance ratio per window center.
  [[nodiscard]] signal::Curve indicator_curve(
      const rating::ProductRatings& stream) const;

  [[nodiscard]] const HcConfig& config() const { return config_; }

 private:
  /// The uninstrumented detection; detect() wraps it with the run/alarm
  /// counters and latency histogram (docs/METRICS.md).
  [[nodiscard]] DetectionResult detect_impl(
      const rating::ProductRatings& stream) const;

  HcConfig config_;
};

}  // namespace rab::detectors
