// Shared configuration and result types for the unfair-rating detectors.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "signal/curve.hpp"
#include "signal/windowing.hpp"
#include "util/day.hpp"
#include "util/ids.hpp"

namespace rab::detectors {

/// Looks up the current trust value of a rater (in [0,1]). Detectors accept
/// this as a callable so they stay decoupled from the trust manager.
using TrustLookup = std::function<double(RaterId)>;

/// Returns 0.5 for every rater — the paper's initial trust value, used when
/// no trust history exists yet.
inline double default_trust(RaterId) { return 0.5; }

/// Indicator curve plus the suspicious time intervals derived from it.
/// Every detector reports this shape so the integrator can combine them.
struct DetectionResult {
  signal::Curve curve;
  std::vector<Interval> suspicious;

  [[nodiscard]] bool any_suspicious() const { return !suspicious.empty(); }

  /// True if any suspicious interval overlaps `interval`.
  [[nodiscard]] bool overlaps(const Interval& interval) const {
    for (const Interval& s : suspicious) {
      if (s.overlaps(interval)) return true;
    }
    return false;
  }
};

/// Mean-change detector parameters (paper Section IV-B; defaults follow
/// Section V-A: 30-day windows).
struct McConfig {
  signal::WindowSpec window = signal::WindowSpec::by_duration(30.0);
  double glrt_threshold = 8.0;    ///< gamma in Eq. (1); ~chi2_1 99.5th pct
  double peak_separation = 5.0;   ///< min days between MC peaks
  double threshold1 = 0.5;        ///< |Bj - Bavg| for "very large mean change"
  double threshold2 = 0.3;        ///< moderate change, needs low trust too
  double trust_ratio = 0.9;       ///< Tj/Tavg below this counts as low trust
  /// Use the median of all rating values as Bavg instead of the mean: a
  /// long-running attack drags the mean toward itself (shrinking every
  /// segment's apparent deviation) but cannot move the median until it
  /// approaches half the stream.
  bool robust_baseline = true;
};

/// Arrival-rate-change detector parameters (Section IV-C).
struct ArcConfig {
  double window_days = 30.0;      ///< 2D in the paper
  double glrt_threshold = 0.04;   ///< (1/2D) ln gamma in Eq. (5)
  double peak_separation = 5.0;   ///< min days between ARC peaks
  /// A segment is suspicious when its rate exceeds the baseline by both an
  /// absolute floor (rate_jump_min ratings/day) and a Poisson z-score: the
  /// excess must be z_threshold standard deviations of the baseline's rate
  /// estimate over the segment, sqrt(baseline / segment_days). The z-score
  /// makes the rule scale-aware, so L-ARC/H-ARC streams with tiny baselines
  /// still register a flood while noisy busy streams stay quiet.
  double z_threshold = 3.5;
  double rate_jump_min = 0.3;     ///< ratings/day floor on the jump
  double baseline_floor = 0.05;   ///< rate floor inside the z-score
  double min_history_days = 5.0;  ///< baseline history needed before a
                                  ///< segment can be judged
  /// Adjacent segments whose rates differ by less than
  /// max(merge_abs, merge_rel * faster_rate) are merged before judging:
  /// noise peaks otherwise fragment a single level shift into pieces whose
  /// baselines contaminate each other.
  double merge_abs = 0.3;
  double merge_rel = 0.25;
};

/// Which daily count stream the ARC detector watches.
enum class ArcMode {
  kAll,   ///< y(n): all ratings
  kHigh,  ///< yh(n): ratings above threshold_a (H-ARC)
  kLow,   ///< yl(n): ratings below threshold_b (L-ARC)
};

/// Histogram-change detector parameters (Section IV-D).
struct HcConfig {
  std::size_t window_ratings = 40;
  double threshold = 0.18;  ///< HC(k) >= threshold marks balanced clusters
  double min_cluster_gap = 0.75;  ///< ignore splits whose clusters are closer
                                  ///< than this in value (pure noise splits)
};

/// Model-error detector parameters (Section IV-E).
struct MeConfig {
  signal::WindowSpec window = signal::WindowSpec::by_count(40);
  std::size_t ar_order = 4;
  double threshold = 0.45;  ///< normalized error below this is suspicious
};

/// Full P-scheme detector bank configuration. The high/low value split
/// (threshold_a/b) is derived from the data per ValueSplit below.
struct DetectorConfig {
  McConfig mc;
  ArcConfig arc;
  HcConfig hc;
  MeConfig me;
};

/// High/low split thresholds given mean rating `m`.
///
/// The paper prints threshold_a = 0.5*m and threshold_b = 0.5*m + 0.5,
/// which on the 0-5 scale with m ~ 4 calls nearly every rating "high"
/// (anything above 2) — H-ARC then mirrors the total arrival process and a
/// confirmed interval marks almost all fair ratings as suspicious. We read
/// the printed formula as a typo and bracket the mean instead: high ratings
/// sit above m + 0.5 and low ratings below m - 0.5, so each ARC variant
/// watches the tail a boost (resp. downgrade) attack must inflate, and
/// marking stays confined to that tail. (Documented in DESIGN.md.)
struct ValueSplit {
  double threshold_a = 0.0;  ///< ratings above this are "high"
  double threshold_b = 0.0;  ///< ratings below this are "low"
};

inline ValueSplit value_split_for_mean(double m) {
  return ValueSplit{m + 0.5, m - 0.5};
}

}  // namespace rab::detectors
