#include "detectors/result_cache.hpp"

#include <algorithm>
#include <bit>

#include "detectors/integrator.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace rab::detectors {

namespace {

/// Process-wide cache counters (every IntegrationCache instance feeds the
/// same registry metrics; per-instance numbers come from stats()).
struct CacheMetrics {
  util::metrics::Counter& hits =
      util::metrics::counter("cache.hits");
  util::metrics::Counter& partial_hits =
      util::metrics::counter("cache.partial_hits");
  util::metrics::Counter& misses =
      util::metrics::counter("cache.misses");
  util::metrics::Counter& inserts =
      util::metrics::counter("cache.inserts");
  util::metrics::Counter& stream_evictions =
      util::metrics::counter("cache.evictions.streams");
  util::metrics::Counter& variant_evictions =
      util::metrics::counter("cache.evictions.variants");

  static const CacheMetrics& get() {
    static const CacheMetrics instance;
    return instance;
  }
};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Two independent accumulation lanes: byte-wise FNV-1a and a
/// splitmix64-mixed chain. A collision requires both 64-bit lanes to agree
/// on different content.
struct Hasher {
  std::uint64_t lo = kFnvOffset;
  std::uint64_t hi = 0x8f5b5b1f0d2c3a47ULL;

  void add(std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      lo ^= (word >> (8 * i)) & 0xffULL;
      lo *= kFnvPrime;
    }
    hi = splitmix64(hi ^ word);
  }
  void add(double d) { add(std::bit_cast<std::uint64_t>(d)); }

  [[nodiscard]] Fingerprint done() const { return Fingerprint{lo, hi}; }
};

}  // namespace

Fingerprint stream_fingerprint(const rating::ProductRatings& stream) {
  Hasher h;
  h.add(static_cast<std::uint64_t>(stream.size()));
  // Column walk, row-major field order — the exact word sequence the old
  // per-Rating loop fed the hasher.
  const auto times = stream.times();
  const auto values = stream.values();
  const auto raters = stream.raters();
  const auto unfair = stream.unfair_flags();
  const auto product =
      static_cast<std::uint64_t>(stream.product().value());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    h.add(times[i]);
    h.add(values[i]);
    h.add(static_cast<std::uint64_t>(raters[i].value()));
    h.add(product);
    h.add(static_cast<std::uint64_t>(unfair[i] != 0 ? 1 : 0));
  }
  return h.done();
}

Fingerprint trust_fingerprint(const rating::ProductRatings& stream,
                              const TrustLookup& trust) {
  Hasher h;
  h.add(static_cast<std::uint64_t>(stream.size()));
  for (RaterId rater : stream.raters()) {
    h.add(trust(rater));
  }
  return h.done();
}

IntegrationCache::IntegrationCache(std::size_t max_streams,
                                   std::size_t max_variants)
    : max_streams_(max_streams), max_variants_(max_variants) {
  RAB_EXPECTS(max_streams_ >= 1);
  RAB_EXPECTS(max_variants_ >= 1);
}

void IntegrationCache::touch_stream(
    std::unordered_map<Fingerprint, Entry, FingerprintHash>::iterator it)
    const {
  stream_lru_.splice(stream_lru_.begin(), stream_lru_, it->second.lru_slot);
}

std::shared_ptr<const IntegrationResult> IntegrationCache::find(
    const Fingerprint& stream, const Fingerprint& trust) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(stream);
  if (it == entries_.end()) return nullptr;
  Entry& entry = it->second;
  const auto hit = entry.by_trust.find(trust);
  if (hit == entry.by_trust.end()) return nullptr;
  touch_stream(it);
  const auto pos =
      std::find(entry.trust_lru.begin(), entry.trust_lru.end(), trust);
  entry.trust_lru.splice(entry.trust_lru.begin(), entry.trust_lru, pos);
  ++stats_.hits;
  CacheMetrics::get().hits.add();
  return hit->second;
}

std::shared_ptr<const IntegrationResult> IntegrationCache::find_stream(
    const Fingerprint& stream) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(stream);
  if (it == entries_.end()) {
    ++stats_.misses;
    CacheMetrics::get().misses.add();
    return nullptr;
  }
  touch_stream(it);
  ++stats_.partial_hits;
  CacheMetrics::get().partial_hits.add();
  return it->second.by_trust.at(it->second.trust_lru.front());
}

void IntegrationCache::insert(
    const Fingerprint& stream, const Fingerprint& trust,
    std::shared_ptr<const IntegrationResult> result) {
  RAB_FAILPOINT("cache.insert");
  const std::lock_guard lock(mutex_);
  auto it = entries_.find(stream);
  if (it == entries_.end()) {
    if (entries_.size() >= max_streams_) {
      const Fingerprint victim = stream_lru_.back();
      stream_lru_.pop_back();
      entries_.erase(victim);
      ++stats_.stream_evictions;
      CacheMetrics::get().stream_evictions.add();
    }
    stream_lru_.push_front(stream);
    it = entries_.try_emplace(stream).first;
    it->second.lru_slot = stream_lru_.begin();
  } else {
    touch_stream(it);
  }
  Entry& entry = it->second;
  if (entry.by_trust.contains(trust)) return;  // first insertion wins
  if (entry.by_trust.size() >= max_variants_) {
    const Fingerprint victim = entry.trust_lru.back();
    entry.trust_lru.pop_back();
    entry.by_trust.erase(victim);
    ++stats_.variant_evictions;
    CacheMetrics::get().variant_evictions.add();
  }
  entry.by_trust.emplace(trust, std::move(result));
  entry.trust_lru.push_front(trust);
  ++stats_.inserts;
  CacheMetrics::get().inserts.add();
}

void IntegrationCache::clear() {
  const std::lock_guard lock(mutex_);
  entries_.clear();
  stream_lru_.clear();
  stats_ = Stats{};
}

IntegrationCache::Stats IntegrationCache::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t IntegrationCache::stream_count() const {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace rab::detectors
