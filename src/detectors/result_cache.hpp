// Per-product detector result caching for the MP evaluation hot loop.
//
// Procedure 2 (region search) and the attack-generator sweeps re-run the
// full detector bank over every product for every candidate attack, even
// though a submission perturbs only the target products: the untouched
// products' streams — and the fair baseline of every product — are analyzed
// with byte-identical input thousands of times. IntegrationCache memoizes
// DetectorIntegrator::analyze keyed by a content fingerprint of the stream
// plus a fingerprint of the trust values the analysis consults.
//
// Granularity: only the mean-change detector reads trust, so a cached
// stream entry keeps its trust-free detector results (H-ARC/L-ARC/HC/ME and
// the value split) reusable across *all* trust states, and stores one full
// IntegrationResult per trust fingerprint. A trust change therefore costs
// one MC re-run plus the integration marking — never an ARC/HC/ME recompute.
//
// Correctness: fingerprints are 128-bit content hashes (two independent
// 64-bit lanes), so a reused result is the output of the same pure function
// on identical input — bit-identical to recomputing, at any thread count.
// A mutated stream changes its fingerprint and can never reuse a stale
// entry. The cache is bounded (LRU over streams and trust variants); an
// eviction only costs a recompute, never changes a result.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "detectors/config.hpp"
#include "rating/product_ratings.hpp"

namespace rab::detectors {

struct IntegrationResult;

/// 128-bit content fingerprint (two independent 64-bit hash lanes).
struct Fingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Fingerprint of a product stream's full content (time, value, rater,
/// product, unfair flag of every rating, in order).
[[nodiscard]] Fingerprint stream_fingerprint(
    const rating::ProductRatings& stream);

/// Fingerprint of the trust values an analysis of `stream` consults: one
/// lookup per rating, in stream order — exactly the reads the MC detector
/// performs.
[[nodiscard]] Fingerprint trust_fingerprint(
    const rating::ProductRatings& stream, const TrustLookup& trust);

/// Thread-safe bounded memo of IntegrationResults. Shared across
/// evaluations (it lives in PScheme); all members may be called
/// concurrently.
class IntegrationCache {
 public:
  /// @param max_streams   distinct stream fingerprints kept (LRU beyond).
  /// @param max_variants  trust variants kept per stream (LRU beyond).
  explicit IntegrationCache(std::size_t max_streams = 64,
                            std::size_t max_variants = 8);

  IntegrationCache(const IntegrationCache&) = delete;
  IntegrationCache& operator=(const IntegrationCache&) = delete;

  /// Full hit: result for exactly this (stream, trust) pair. Counts a hit
  /// when found; counts nothing on failure (the follow-up find_stream call
  /// settles the outcome).
  [[nodiscard]] std::shared_ptr<const IntegrationResult> find(
      const Fingerprint& stream, const Fingerprint& trust) const;

  /// Partial hit: any result for this stream (its trust-free detector
  /// fields are valid for every trust state). Null when the stream is
  /// unknown. Counts a partial hit when found, a miss otherwise.
  [[nodiscard]] std::shared_ptr<const IntegrationResult> find_stream(
      const Fingerprint& stream) const;

  /// Stores a result; keeps the first insertion on a concurrent race (both
  /// racers computed identical results).
  void insert(const Fingerprint& stream, const Fingerprint& trust,
              std::shared_ptr<const IntegrationResult> result);

  void clear();

  /// Lifetime counters, readable at any point without rebuilding the
  /// cache. Also exported through the metrics registry as the cache.*
  /// counters (docs/METRICS.md).
  struct Stats {
    std::size_t hits = 0;          ///< full (stream, trust) reuse
    std::size_t partial_hits = 0;  ///< trust-free fields reused, MC re-run
    std::size_t misses = 0;        ///< full detector bank run
    std::size_t inserts = 0;       ///< results stored (first-wins races
                                   ///< and re-inserts excluded)
    std::size_t stream_evictions = 0;   ///< streams LRU-evicted (all their
                                        ///< trust variants go with them)
    std::size_t variant_evictions = 0;  ///< single trust variants evicted

    friend bool operator==(const Stats&, const Stats&) = default;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t stream_count() const;

 private:
  struct FingerprintHash {
    std::size_t operator()(const Fingerprint& f) const noexcept {
      return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  struct Entry {
    std::unordered_map<Fingerprint,
                       std::shared_ptr<const IntegrationResult>,
                       FingerprintHash>
        by_trust;
    std::list<Fingerprint> trust_lru;  ///< front = most recent
    std::list<Fingerprint>::iterator lru_slot;  ///< into stream_lru_
  };

  void touch_stream(
      std::unordered_map<Fingerprint, Entry, FingerprintHash>::iterator it)
      const;

  std::size_t max_streams_;
  std::size_t max_variants_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<Fingerprint, Entry, FingerprintHash> entries_;
  mutable std::list<Fingerprint> stream_lru_;  ///< front = most recent
  mutable Stats stats_;
};

}  // namespace rab::detectors
