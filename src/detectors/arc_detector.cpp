#include "detectors/arc_detector.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "detectors/instrumentation.hpp"
#include "signal/kernels.hpp"
#include "signal/rolling.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::detectors {

ArrivalRateDetector::ArrivalRateDetector(ArcConfig config, ArcMode mode)
    : config_(config), mode_(mode) {
  RAB_EXPECTS(config_.window_days >= 2.0);
  RAB_EXPECTS(config_.glrt_threshold >= 0.0);
  RAB_EXPECTS(config_.z_threshold >= 0.0);
  RAB_EXPECTS(config_.rate_jump_min >= 0.0);
  RAB_EXPECTS(config_.baseline_floor > 0.0);
}

std::vector<double> ArrivalRateDetector::mode_counts(
    const rating::ProductRatings& stream, Day day_begin, Day day_end,
    const ValueSplit& split) const {
  RAB_EXPECTS(day_end >= day_begin);
  if (day_end == day_begin) return {};
  const auto days = static_cast<std::size_t>(std::ceil(day_end - day_begin));
  std::vector<double> counts(days, 0.0);
  const std::span<const double> times = stream.times();
  const std::span<const double> values = stream.values();
  for (std::size_t i = 0; i < times.size(); ++i) {
    const bool keep =
        mode_ == ArcMode::kAll ||
        (mode_ == ArcMode::kHigh && values[i] > split.threshold_a) ||
        (mode_ == ArcMode::kLow && values[i] < split.threshold_b);
    if (!keep) continue;
    const Day t = times[i];
    if (t < day_begin || t >= day_end) continue;
    const auto idx = static_cast<std::size_t>(t - day_begin);
    if (idx < counts.size()) counts[idx] += 1.0;
  }
  return counts;
}

signal::Curve ArrivalRateDetector::curve_from_counts(
    std::span<const double> counts, Day day_begin) const {
  signal::Curve curve;
  if (counts.size() < 2) return curve;
  // Batch kernel: one prefix pass, then an elementwise GLRT loop (with the
  // integer-log-table fast path in default FP mode).
  const auto half = static_cast<std::size_t>(config_.window_days / 2.0);
  const std::vector<double> stats = signal::poisson_glrt_curve(counts, half);
  curve.reserve(counts.size() - 1);
  for (std::size_t k = 1; k + 1 <= counts.size(); ++k) {
    curve.push_back(
        signal::CurvePoint{day_begin + static_cast<double>(k), stats[k]});
  }
  return curve;
}

signal::Curve ArrivalRateDetector::indicator_curve(
    const rating::ProductRatings& stream) const {
  if (stream.empty()) return {};
  const Interval span = stream.span();
  const Day day_begin = std::floor(span.begin);
  const Day day_end = std::ceil(span.end);
  const ValueSplit split =
      value_split_for_mean(stats::mean(stream.values()));
  return curve_from_counts(mode_counts(stream, day_begin, day_end, split),
                           day_begin);
}

DetectionResult ArrivalRateDetector::detect(
    const rating::ProductRatings& stream) const {
  static const detail::DetectorInstruments arc =
      detail::DetectorInstruments::make("detector.arc");
  static const detail::DetectorInstruments harc =
      detail::DetectorInstruments::make("detector.harc");
  static const detail::DetectorInstruments larc =
      detail::DetectorInstruments::make("detector.larc");
  switch (mode_) {
    case ArcMode::kHigh:
      return harc.run("detector.harc", [&] { return detect_impl(stream); });
    case ArcMode::kLow:
      return larc.run("detector.larc", [&] { return detect_impl(stream); });
    case ArcMode::kAll:
      break;
  }
  return arc.run("detector.arc", [&] { return detect_impl(stream); });
}

DetectionResult ArrivalRateDetector::detect_impl(
    const rating::ProductRatings& stream) const {
  DetectionResult result;
  if (stream.empty()) return result;

  // Build the mode's daily counts once; the indicator curve and the
  // per-segment rates below both read them.
  const Interval stream_span = stream.span();
  const Day day_begin = std::floor(stream_span.begin);
  const Day day_end = std::ceil(stream_span.end);
  const ValueSplit split =
      value_split_for_mean(stats::mean(stream.values()));
  const std::vector<double> counts =
      mode_counts(stream, day_begin, day_end, split);
  result.curve = curve_from_counts(counts, day_begin);
  if (result.curve.empty()) return result;

  signal::PeakOptions peak_opts;
  peak_opts.min_height = config_.glrt_threshold;
  peak_opts.min_separation = config_.peak_separation;
  const std::vector<std::size_t> peaks =
      signal::find_peaks(result.curve, peak_opts);
  std::vector<Interval> segments =
      signal::segments_between_peaks(result.curve, peaks);
  if (segments.size() < 2) return result;

  // Arrival rate per segment = watched ratings per day in the segment.
  // Day d of `counts` stamps time day_begin + d, so the day indices inside
  // [begin, end) are [ceil(begin - day_begin), ceil(end - day_begin));
  // prefix sums then give each segment's total in O(1) instead of a scan.
  const signal::RollingStats rolling{std::span<const double>(counts)};
  auto rate_in = [&](Day begin, Day end) {
    const double lo_f = std::max(std::ceil(begin - day_begin), 0.0);
    const double hi_f = std::max(std::ceil(end - day_begin), lo_f);
    const auto lo =
        std::min(static_cast<std::size_t>(lo_f), counts.size());
    const auto hi =
        std::min(static_cast<std::size_t>(hi_f), counts.size());
    const double days = static_cast<double>(hi - lo);
    return days > 0.0 ? rolling.sum(signal::IndexRange{lo, hi}) / days : 0.0;
  };

  // Merge adjacent segments with (nearly) equal rates: noise peaks split a
  // single level shift into fragments, and a fragment's baseline would then
  // include earlier parts of the same shift.
  {
    std::vector<Interval> merged;
    merged.push_back(segments.front());
    double merged_rate = rate_in(segments.front().begin,
                                 segments.front().end);
    for (std::size_t i = 1; i < segments.size(); ++i) {
      const double rate = rate_in(segments[i].begin, segments[i].end);
      const double tolerance = std::max(
          config_.merge_abs,
          config_.merge_rel * std::max(rate, merged_rate));
      if (std::fabs(rate - merged_rate) < tolerance) {
        // Extend the current merged segment; re-derive its pooled rate.
        merged.back().end = segments[i].end;
        merged_rate = rate_in(merged.back().begin, merged.back().end);
      } else {
        merged.push_back(segments[i]);
        merged_rate = rate;
      }
    }
    segments = std::move(merged);
  }
  if (segments.size() < 2) return result;

  // Section IV-C.3: a segment is suspicious when its rate jumped up versus
  // the rate seen before it. The baseline is the *minimum* rate among the
  // preceding segments of at least min_history_days: the quietest earlier
  // stretch is the honest arrival level, and unlike a preceding-average
  // baseline it cannot be contaminated when a level shift gets fragmented
  // into several segments by noise peaks.
  std::vector<double> rates(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    rates[i] = rate_in(segments[i].begin, segments[i].end);
  }
  for (std::size_t i = 1; i < segments.size(); ++i) {
    double baseline = -1.0;
    for (std::size_t j = 0; j < i; ++j) {
      if (segments[j].length() < config_.min_history_days) continue;
      if (baseline < 0.0 || rates[j] < baseline) baseline = rates[j];
    }
    if (baseline < 0.0) continue;  // no eligible quiet history to compare

    const double excess = rates[i] - baseline;
    const double seg_days = std::max(segments[i].length(), 1.0);
    const double sigma = std::sqrt(
        std::max(baseline, config_.baseline_floor) / seg_days);
    if (excess > config_.rate_jump_min &&
        excess > config_.z_threshold * sigma) {
      result.suspicious.push_back(segments[i]);
    }
  }
  return result;
}

}  // namespace rab::detectors
