// Arrival-rate-change detector (paper Section IV-C).
//
// Builds daily rating counts, slides a 2D-day window, runs the Poisson-rate
// GLRT at each window center to form the ARC curve, segments time at the
// curve's peaks, and marks segments whose arrival rate jumped up relative to
// the previous segment by more than a threshold.
//
// Three modes (Section IV-C.4): all ratings, high ratings only (H-ARC,
// values > threshold_a) and low ratings only (L-ARC, values < threshold_b),
// with threshold_a = 0.5*m and threshold_b = 0.5*m + 0.5 for mean rating m.
#pragma once

#include <span>
#include <vector>

#include "detectors/config.hpp"
#include "rating/product_ratings.hpp"

namespace rab::detectors {

class ArrivalRateDetector {
 public:
  ArrivalRateDetector(ArcConfig config, ArcMode mode);

  /// Runs detection over one product's stream.
  [[nodiscard]] DetectionResult detect(
      const rating::ProductRatings& stream) const;

  /// The ARC curve alone: normalized GLRT statistic per day.
  [[nodiscard]] signal::Curve indicator_curve(
      const rating::ProductRatings& stream) const;

  [[nodiscard]] ArcMode mode() const { return mode_; }
  [[nodiscard]] const ArcConfig& config() const { return config_; }

 private:
  /// The uninstrumented detection; detect() wraps it with the per-mode
  /// run/alarm counters and latency histogram (docs/METRICS.md).
  [[nodiscard]] DetectionResult detect_impl(
      const rating::ProductRatings& stream) const;

  /// Daily counts of the ratings this mode watches, built straight from
  /// the time/value columns (no intermediate sample vector).
  [[nodiscard]] std::vector<double> mode_counts(
      const rating::ProductRatings& stream, Day day_begin, Day day_end,
      const ValueSplit& split) const;

  /// The ARC curve from a daily-count sequence starting at `day_begin` —
  /// shared by indicator_curve and detect_impl so the counts are built
  /// once per detection.
  [[nodiscard]] signal::Curve curve_from_counts(
      std::span<const double> counts, Day day_begin) const;

  ArcConfig config_;
  ArcMode mode_;
};

}  // namespace rab::detectors
