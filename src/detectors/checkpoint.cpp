// Snapshot serialization for OnlineMonitor (format in checkpoint.hpp) and
// the OnlineMonitor checkpoint members. Kept out of online_monitor.cpp so
// the streaming engine and the durability layer evolve separately.
#include "detectors/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <string_view>

#include <fcntl.h>
#include <unistd.h>

#include "detectors/online_monitor.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rab::detectors {

namespace {

/// Checkpoint observability (docs/METRICS.md): attempt counters and
/// whole-operation timings. Counters count attempts; a save or restore
/// that throws still counted.
struct CheckpointMetrics {
  util::metrics::Counter& saves =
      util::metrics::counter("checkpoint.saves");
  util::metrics::Counter& restores =
      util::metrics::counter("checkpoint.restores");
  util::metrics::Histogram& save_seconds = util::metrics::histogram(
      "checkpoint.save.seconds", util::metrics::latency_bounds_seconds());
  util::metrics::Histogram& restore_seconds = util::metrics::histogram(
      "checkpoint.restore.seconds",
      util::metrics::latency_bounds_seconds());

  static const CheckpointMetrics& get() {
    static const CheckpointMetrics instance;
    return instance;
  }
};

namespace fs = std::filesystem;

// Section tags (FourCC).
constexpr std::uint32_t tag(const char (&t)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(t[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(t[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(t[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(t[3])) << 24;
}
constexpr std::uint32_t kConf = tag("CONF");
constexpr std::uint32_t kClck = tag("CLCK");
constexpr std::uint32_t kTrst = tag("TRST");
constexpr std::uint32_t kStrm = tag("STRM");
constexpr std::uint32_t kAlrm = tag("ALRM");
constexpr std::uint32_t kEpch = tag("EPCH");
/// Store-referencing stream section: bookkeeping plus per-stream row
/// ranges into the attached rating store, instead of raw rating rows.
/// Written when (and only when) the monitor has a store attached.
constexpr std::uint32_t kSref = tag("SREF");
/// Ingest-session sequence watermarks (exactly-once resume, DESIGN.md
/// §5i). Optional: absent in snapshots with no sequenced sessions, and
/// tolerated-missing on restore, so no version bump is needed.
constexpr std::uint32_t kSess = tag("SESS");

/// Little-endian append-only byte sink for section payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(const void* data, std::size_t size) { raw(data, size); }

  [[nodiscard]] std::string take() { return std::move(buf_); }
  [[nodiscard]] const std::string& view() const { return buf_; }

 private:
  void raw(const void* data, std::size_t size) {
    // Serialize little-endian regardless of host order (the toolchains we
    // target are all little-endian; the swap is a guard, not a hot path).
    if constexpr (std::endian::native == std::endian::big) {
      const auto* p = static_cast<const char*>(data);
      for (std::size_t i = size; i > 0; --i) buf_.push_back(p[i - 1]);
    } else {
      buf_.append(static_cast<const char*>(data), size);
    }
  }

  std::string buf_;
};

/// Bounds-checked little-endian reader; any overrun is CorruptData.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string_view bytes(std::size_t size) { return take(size); }

  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  std::string_view take(std::size_t size) {
    if (size > remaining()) {
      throw CorruptData("checkpoint: truncated section (wanted " +
                        std::to_string(size) + " bytes, have " +
                        std::to_string(remaining()) + ")");
    }
    const std::string_view out = data_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  template <typename T>
  T scalar() {
    const std::string_view raw = take(sizeof(T));
    T v{};
    if constexpr (std::endian::native == std::endian::big) {
      char swapped[sizeof(T)];
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        swapped[i] = raw[sizeof(T) - 1 - i];
      }
      std::memcpy(&v, swapped, sizeof(T));
    } else {
      std::memcpy(&v, raw.data(), sizeof(T));
    }
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

void encode_window(ByteWriter& w, const signal::WindowSpec& spec) {
  w.u8(spec.is_count() ? 1 : 0);
  w.u64(spec.is_count() ? spec.count() : 0);
  w.f64(spec.is_count() ? 0.0 : spec.duration());
}

/// Serializes every output-affecting configuration field. Restore compares
/// these bytes against the running monitor's own encoding: byte equality
/// is field equality, and a mismatch means the snapshot was taken under a
/// config that would produce different results.
std::string encode_config(const OnlineConfig& c) {
  ByteWriter w;
  w.f64(c.epoch_days);
  w.f64(c.trust_forgetting);
  w.u64(c.min_alarm_marks);
  w.f64(c.retention_days);
  w.u8(static_cast<std::uint8_t>((c.toggles.use_mc ? 1 : 0) |
                                 (c.toggles.use_arc ? 2 : 0) |
                                 (c.toggles.use_hc ? 4 : 0) |
                                 (c.toggles.use_me ? 8 : 0)));
  const DetectorConfig& d = c.detectors;
  encode_window(w, d.mc.window);
  w.f64(d.mc.glrt_threshold);
  w.f64(d.mc.peak_separation);
  w.f64(d.mc.threshold1);
  w.f64(d.mc.threshold2);
  w.f64(d.mc.trust_ratio);
  w.u8(d.mc.robust_baseline ? 1 : 0);
  w.f64(d.arc.window_days);
  w.f64(d.arc.glrt_threshold);
  w.f64(d.arc.peak_separation);
  w.f64(d.arc.z_threshold);
  w.f64(d.arc.rate_jump_min);
  w.f64(d.arc.baseline_floor);
  w.f64(d.arc.min_history_days);
  w.f64(d.arc.merge_abs);
  w.f64(d.arc.merge_rel);
  w.u64(d.hc.window_ratings);
  w.f64(d.hc.threshold);
  w.f64(d.hc.min_cluster_gap);
  encode_window(w, d.me.window);
  w.u64(d.me.ar_order);
  w.f64(d.me.threshold);
  return w.take();
}

struct Section {
  std::uint32_t tag = 0;
  std::string payload;
};

/// Assembles the final file image: header, CRC-framed sections, file CRC.
std::string assemble(const std::vector<Section>& sections) {
  ByteWriter w;
  w.bytes(checkpoint::kMagic, sizeof checkpoint::kMagic);
  w.u32(checkpoint::kVersion);
  w.u32(static_cast<std::uint32_t>(sections.size()));
  for (const Section& s : sections) {
    w.u32(s.tag);
    w.u64(s.payload.size());
    w.bytes(s.payload.data(), s.payload.size());
    w.u32(util::crc32(s.payload));
  }
  w.u32(util::crc32(w.view()));
  return w.take();
}

/// Parses and integrity-checks a file image into sections.
std::map<std::uint32_t, std::string> disassemble(std::string_view image) {
  constexpr std::size_t kHeader = sizeof checkpoint::kMagic + 4 + 4;
  if (image.size() < kHeader + 4) {
    throw CorruptData("checkpoint: file too short (" +
                      std::to_string(image.size()) + " bytes)");
  }
  if (std::memcmp(image.data(), checkpoint::kMagic,
                  sizeof checkpoint::kMagic) != 0) {
    throw CorruptData("checkpoint: bad magic");
  }
  const std::uint32_t file_crc = util::crc32(image.substr(0, image.size() - 4));
  ByteReader trailer(image.substr(image.size() - 4));
  if (trailer.u32() != file_crc) {
    throw CorruptData("checkpoint: whole-file checksum mismatch");
  }

  ByteReader r(image.substr(0, image.size() - 4));
  (void)r.bytes(sizeof checkpoint::kMagic);
  const std::uint32_t version = r.u32();
  if (version != checkpoint::kVersion) {
    throw CorruptData("checkpoint: unsupported version " +
                      std::to_string(version));
  }
  const std::uint32_t count = r.u32();
  std::map<std::uint32_t, std::string> sections;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t section_tag = r.u32();
    const std::uint64_t size = r.u64();
    if (size > r.remaining()) {
      throw CorruptData("checkpoint: section size " + std::to_string(size) +
                        " exceeds file");
    }
    const std::string_view payload = r.bytes(static_cast<std::size_t>(size));
    const std::uint32_t stored = r.u32();
    if (stored != util::crc32(payload)) {
      throw CorruptData("checkpoint: section checksum mismatch");
    }
    if (!sections.emplace(section_tag, std::string(payload)).second) {
      throw CorruptData("checkpoint: duplicate section");
    }
  }
  if (!r.done()) throw CorruptData("checkpoint: trailing bytes");
  return sections;
}

const std::string& require(
    const std::map<std::uint32_t, std::string>& sections,
    std::uint32_t section_tag, const char* name) {
  const auto it = sections.find(section_tag);
  if (it == sections.end()) {
    throw CorruptData("checkpoint: missing section " + std::string(name));
  }
  return it->second;
}

/// Writes `image` to `path` atomically: temp file + fsync + rename +
/// directory fsync. Failpoints bracket every syscall so the chaos harness
/// can crash the writer at each boundary; a short or injected-corrupt
/// write of the body is exactly the torn-write case the checksums exist
/// to catch.
void write_file_atomic(const std::string& path, std::string image) {
  const std::string tmp = path + ".tmp";

  RAB_FAILPOINT("checkpoint.write.open");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw IoError("checkpoint: cannot create " + tmp + ": " +
                  std::strerror(errno));
  }

  try {
    const util::FaultOutcome fault =
        util::failpoint_io("checkpoint.write.body", image.size());
    const std::size_t to_write =
        util::apply_fault(fault, image.data(), image.size());

    std::size_t written = 0;
    while (written < to_write) {
      const ::ssize_t n = ::write(fd, image.data() + written,
                                  to_write - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw IoError("checkpoint: write failed for " + tmp + ": " +
                      std::strerror(errno));
      }
      written += static_cast<std::size_t>(n);
    }
    if (to_write != image.size()) {
      // Injected torn write: the snapshot on disk is incomplete. Report it
      // like ENOSPC — the temp file is abandoned, the previous generation
      // survives untouched.
      throw IoError("checkpoint: short write for " + tmp + " (" +
                    std::to_string(to_write) + " of " +
                    std::to_string(image.size()) + " bytes)");
    }

    RAB_FAILPOINT("checkpoint.write.fsync");
    if (::fsync(fd) != 0) {
      throw IoError("checkpoint: fsync failed for " + tmp + ": " +
                    std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::close(fd) != 0) {
    throw IoError("checkpoint: close failed for " + tmp + ": " +
                  std::strerror(errno));
  }

  RAB_FAILPOINT("checkpoint.write.rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError("checkpoint: rename " + tmp + " -> " + path + " failed: " +
                  std::strerror(errno));
  }

  // Durability of the rename itself: fsync the containing directory.
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::string read_file(const std::string& path) {
  RAB_FAILPOINT("checkpoint.read.open");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("checkpoint: cannot open " + path);
  RAB_FAILPOINT("checkpoint.read.body");
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) throw IoError("checkpoint: read failed for " + path);
  return image;
}

}  // namespace

namespace checkpoint {

std::string generation_filename(std::size_t gen) {
  std::string digits = std::to_string(gen);
  if (digits.size() < 8) digits.insert(0, 8 - digits.size(), '0');
  return "ckpt-" + digits + ".rabck";
}

std::optional<std::size_t> parse_generation(const std::string& name) {
  constexpr std::string_view prefix = "ckpt-";
  constexpr std::string_view suffix = ".rabck";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::size_t gen = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    gen = gen * 10 + static_cast<std::size_t>(c - '0');
  }
  return gen;
}

std::vector<std::size_t> list_generations(const std::string& dir) {
  std::vector<std::size_t> gens;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const auto gen = parse_generation(it->path().filename().string());
    if (gen) gens.push_back(*gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

void verify_snapshot(const std::string& path) {
  (void)disassemble(read_file(path));
}

}  // namespace checkpoint

void OnlineMonitor::save_checkpoint(const std::string& path) const {
  CheckpointMetrics::get().saves.add();
  const util::metrics::ScopedTimer timer(
      CheckpointMetrics::get().save_seconds);
  RAB_TRACE_SPAN("checkpoint.save");
  // A store-referencing snapshot is only as durable as the rows it points
  // at: flush + fsync the segment log before publishing row ranges.
  if (store_) store_->sync();
  std::vector<Section> sections;
  sections.push_back(Section{kConf, encode_config(config_)});

  {
    ByteWriter w;
    w.u8(started_ ? 1 : 0);
    w.u8(pending_ ? 1 : 0);
    w.f64(next_epoch_);
    w.f64(last_time_);
    w.f64(folded_until_);
    w.u64(ingested_);
    w.u64(epoch_ingested_);
    w.u64(resident_);
    w.u64(compacted_);
    sections.push_back(Section{kClck, w.take()});
  }

  {
    ByteWriter w;
    const std::vector<trust::RaterCounts> counts = trust_.export_counts();
    w.u64(counts.size());
    for (const trust::RaterCounts& c : counts) {
      w.i64(c.rater.value());
      w.f64(c.s);
      w.f64(c.f);
    }
    sections.push_back(Section{kTrst, w.take()});
  }

  if (store_) {
    // Store-referencing streams: the rating rows live in the (just
    // synced) segment log; the snapshot records only row ranges, so its
    // size is independent of the retained history.
    ByteWriter w;
    w.u64(streams_.size());
    for (const auto& [product, stream] : streams_) {
      w.i64(product.value());
      w.u64(stream.previous_marks);
      w.u64(stream.dropped_rows);
      w.u64(stream.ratings.size());
      w.u64(stream.last_suspicious.size());
      std::uint8_t packed = 0;
      for (std::size_t i = 0; i < stream.last_suspicious.size(); ++i) {
        if (stream.last_suspicious[i]) {
          packed |= static_cast<std::uint8_t>(1u << (i % 8));
        }
        if (i % 8 == 7 || i + 1 == stream.last_suspicious.size()) {
          w.u8(packed);
          packed = 0;
        }
      }
    }
    sections.push_back(Section{kSref, w.take()});
  } else {
    ByteWriter w;
    w.u64(streams_.size());
    for (const auto& [product, stream] : streams_) {
      w.i64(product.value());
      w.u64(stream.previous_marks);
      w.u64(stream.ratings.size());
      for (const rating::Rating& r : stream.ratings.rows()) {
        w.f64(r.time);
        w.f64(r.value);
        w.i64(r.rater.value());
        w.u8(r.unfair ? 1 : 0);
      }
      w.u64(stream.last_suspicious.size());
      std::uint8_t packed = 0;
      for (std::size_t i = 0; i < stream.last_suspicious.size(); ++i) {
        if (stream.last_suspicious[i]) {
          packed |= static_cast<std::uint8_t>(1u << (i % 8));
        }
        if (i % 8 == 7 || i + 1 == stream.last_suspicious.size()) {
          w.u8(packed);
          packed = 0;
        }
      }
    }
    sections.push_back(Section{kStrm, w.take()});
  }

  {
    ByteWriter w;
    w.u64(alarms_.size());
    for (const Alarm& a : alarms_) {
      w.i64(a.product.value());
      w.f64(a.interval.begin);
      w.f64(a.interval.end);
      w.f64(a.raised_at);
      w.u64(a.marked_ratings);
    }
    sections.push_back(Section{kAlrm, w.take()});
  }

  if (!applied_wm_.empty()) {
    // The snapshot covers every applied row, so the *applied* table is
    // the right dedup floor for a restore from this generation.
    ByteWriter w;
    w.u64(applied_wm_.size());
    for (const auto& [session, seq] : applied_wm_) {
      w.u64(session);
      w.u64(seq);
    }
    sections.push_back(Section{kSess, w.take()});
  }

  {
    ByteWriter w;
    w.u64(epoch_stats_.size());
    for (const OnlineEpochStats& e : epoch_stats_) {
      w.f64(e.epoch_end);
      w.u64(e.ratings);
      w.u64(e.products_analyzed);
      w.u64(e.marked_ratings);
      w.u64(e.alarms);
      w.u64(e.cache_hits);
      w.u64(e.cache_partial_hits);
      w.u64(e.cache_misses);
      w.u64(e.resident_ratings);
      w.u64(e.compacted_ratings);
    }
    sections.push_back(Section{kEpch, w.take()});
  }

  write_file_atomic(path, assemble(sections));
}

void OnlineMonitor::restore_checkpoint(const std::string& path) {
  CheckpointMetrics::get().restores.add();
  const util::metrics::ScopedTimer timer(
      CheckpointMetrics::get().restore_seconds);
  RAB_TRACE_SPAN("checkpoint.restore");
  const std::string image = read_file(path);
  const std::map<std::uint32_t, std::string> sections = disassemble(image);

  if (require(sections, kConf, "CONF") != encode_config(config_)) {
    throw InvalidArgument(
        "checkpoint: snapshot " + path +
        " was taken under a different monitor configuration; restoring it "
        "would silently change results");
  }

  // Parse everything into locals first: a CorruptData thrown halfway must
  // leave the monitor untouched so restore_latest can fall back.
  ByteReader clck(require(sections, kClck, "CLCK"));
  const bool started = clck.u8() != 0;
  const bool pending = clck.u8() != 0;
  const Day next_epoch = clck.f64();
  const Day last_time = clck.f64();
  const Day folded_until = clck.f64();
  const std::size_t ingested = clck.u64();
  const std::size_t epoch_ingested = clck.u64();
  const std::size_t resident = clck.u64();
  const std::size_t compacted = clck.u64();

  ByteReader trst(require(sections, kTrst, "TRST"));
  std::vector<trust::RaterCounts> counts(trst.u64());
  for (trust::RaterCounts& c : counts) {
    c.rater = RaterId(trst.i64());
    c.s = trst.f64();
    c.f = trst.f64();
  }

  std::map<ProductId, Stream> streams;
  if (sections.contains(kSref)) {
    if (!store_) {
      throw InvalidArgument(
          "checkpoint: snapshot " + path +
          " references a rating store, but this monitor has no store_dir "
          "configured — the rating rows live in the segment log");
    }
    ByteReader sref(require(sections, kSref, "SREF"));
    const std::size_t stream_count = sref.u64();
    for (std::size_t s = 0; s < stream_count; ++s) {
      const ProductId product(sref.i64());
      Stream stream(product);
      stream.previous_marks = sref.u64();
      stream.dropped_rows = sref.u64();
      const std::uint64_t retained = sref.u64();
      // Zero-copy resume: the stream borrows the mapped columns (or
      // gathers, still binary) — throws CorruptData when the store no
      // longer holds the range, and restore_latest falls back.
      stream.ratings = store_->load(product, stream.dropped_rows,
                                    stream.dropped_rows + retained);
      stream.last_suspicious.resize(sref.u64());
      std::uint8_t packed = 0;
      for (std::size_t i = 0; i < stream.last_suspicious.size(); ++i) {
        if (i % 8 == 0) packed = sref.u8();
        stream.last_suspicious[i] = (packed >> (i % 8)) & 1u;
      }
      streams.emplace(product, std::move(stream));
    }
  } else {
    if (store_) {
      throw InvalidArgument(
          "checkpoint: snapshot " + path +
          " carries inline rating rows (no store), but this monitor is "
          "store-backed; restore it on a monitor without store_dir");
    }
    ByteReader strm(require(sections, kStrm, "STRM"));
    const std::size_t stream_count = strm.u64();
    for (std::size_t s = 0; s < stream_count; ++s) {
      const ProductId product(strm.i64());
      Stream stream(product);
      stream.previous_marks = strm.u64();
      std::vector<rating::Rating> ratings(strm.u64());
      for (rating::Rating& r : ratings) {
        r.time = strm.f64();
        r.value = strm.f64();
        r.rater = RaterId(strm.i64());
        r.product = product;
        r.unfair = strm.u8() != 0;
      }
      stream.ratings = rating::ProductRatings::from_sorted(product,
                                                           std::move(ratings));
      stream.last_suspicious.resize(strm.u64());
      std::uint8_t packed = 0;
      for (std::size_t i = 0; i < stream.last_suspicious.size(); ++i) {
        if (i % 8 == 0) packed = strm.u8();
        stream.last_suspicious[i] = (packed >> (i % 8)) & 1u;
      }
      streams.emplace(product, std::move(stream));
    }
  }

  ByteReader alrm(require(sections, kAlrm, "ALRM"));
  std::vector<Alarm> alarms(alrm.u64());
  for (Alarm& a : alarms) {
    a.product = ProductId(alrm.i64());
    a.interval.begin = alrm.f64();
    a.interval.end = alrm.f64();
    a.raised_at = alrm.f64();
    a.marked_ratings = alrm.u64();
  }

  std::map<std::uint64_t, std::uint64_t> session_wm;
  if (const auto it = sections.find(kSess); it != sections.end()) {
    ByteReader sess(it->second);
    const std::size_t n = sess.u64();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t session = sess.u64();
      session_wm[session] = sess.u64();
    }
  }

  ByteReader epch(require(sections, kEpch, "EPCH"));
  std::vector<OnlineEpochStats> epoch_stats(epch.u64());
  for (OnlineEpochStats& e : epoch_stats) {
    e.epoch_end = epch.f64();
    e.ratings = epch.u64();
    e.products_analyzed = epch.u64();
    e.marked_ratings = epch.u64();
    e.alarms = epch.u64();
    e.cache_hits = epch.u64();
    e.cache_partial_hits = epch.u64();
    e.cache_misses = epch.u64();
    e.resident_ratings = epch.u64();
    e.compacted_ratings = epch.u64();
  }

  // Commit. The detector-result cache restarts cold: caching never changes
  // results, so recovery stays bit-identical without persisting it.
  trust_.import_counts(counts);
  streams_ = std::move(streams);
  alarms_ = std::move(alarms);
  epoch_stats_ = std::move(epoch_stats);
  started_ = started;
  pending_ = pending;
  next_epoch_ = next_epoch;
  last_time_ = last_time;
  folded_until_ = folded_until;
  ingested_ = ingested;
  epoch_ingested_ = epoch_ingested;
  resident_ = resident;
  compacted_ = compacted;
  if (cache_) cache_->clear();
  applied_wm_ = std::move(session_wm);
  if (store_) {
    // Store groups committed after this snapshot carry newer watermarks;
    // merging keeps the dedup floor at the true applied maximum.
    for (const auto& [session, seq] : store_->session_watermarks()) {
      auto& wm = applied_wm_[session];
      wm = std::max(wm, seq);
    }
  }
  durable_wm_ = applied_wm_;
  in_batch_ = false;
  deferred_checkpoint_ = false;
  if (store_) {
    // Older generations on disk may reference rows below this snapshot's
    // watermarks. Seed the queue with empty (no-op) watermarks so store
    // compaction stays paused until checkpoint_keep fresh generations
    // have replaced them.
    pending_watermarks_.assign(config_.checkpoint_keep,
                               std::map<ProductId, std::uint64_t>{});
  }
}

std::size_t OnlineMonitor::checkpoint_now() {
  RAB_EXPECTS(!config_.checkpoint_dir.empty());
  std::error_code ec;
  fs::create_directories(config_.checkpoint_dir, ec);
  if (ec) {
    throw IoError("checkpoint: cannot create directory " +
                  config_.checkpoint_dir + ": " + ec.message());
  }

  const std::size_t gen = epoch_stats_.size();
  save_checkpoint(config_.checkpoint_dir + "/" +
                  checkpoint::generation_filename(gen));
  // The published snapshot carries the applied watermark table (and the
  // store, when attached, was synced on the way) — everything applied so
  // far is now crash-durable.
  durable_wm_ = applied_wm_;

  // Prune old generations beyond checkpoint_keep. Best-effort per file
  // (a remove that loses a race is not a durability problem), but the
  // failpoint lets the chaos harness crash between publish and prune.
  RAB_FAILPOINT("checkpoint.prune");
  const std::vector<std::size_t> gens =
      checkpoint::list_generations(config_.checkpoint_dir);
  if (gens.size() > config_.checkpoint_keep) {
    for (std::size_t i = 0; i + config_.checkpoint_keep < gens.size(); ++i) {
      fs::remove(config_.checkpoint_dir + "/" +
                     checkpoint::generation_filename(gens[i]),
                 ec);
    }
  }
  return gen;
}

std::optional<std::size_t> OnlineMonitor::restore_latest(
    const std::string& dir) {
  const std::vector<std::size_t> gens = checkpoint::list_generations(dir);
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    try {
      restore_checkpoint(dir + "/" + checkpoint::generation_filename(*it));
      return *it;
    } catch (const IoError&) {
      // Truncated, corrupt, or unreadable (CorruptData derives IoError):
      // fall back to the previous generation. A config mismatch is not
      // recoverable-by-fallback and propagates.
      continue;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> OnlineMonitor::restore_from_store() {
  RAB_EXPECTS(store_ != nullptr);
  std::optional<std::size_t> gen;
  if (!config_.checkpoint_dir.empty()) {
    gen = restore_latest(config_.checkpoint_dir);
  }
  // Binary replay of the store tail: rows appended after the restored
  // snapshot (or the whole durable history when no snapshot was
  // readable). Re-ingesting them runs the same epoch analyses the
  // original process ran, so the result is bit-identical to a monitor
  // that never crashed.
  std::map<ProductId, std::uint64_t> from;
  for (const auto& [product, stream] : streams_) {
    from[product] = stream.dropped_rows + stream.ratings.size();
  }
  const std::vector<rating::Rating> tail = store_->tail(from);
  replaying_ = true;
  try {
    for (const rating::Rating& r : tail) ingest(r);
  } catch (...) {
    replaying_ = false;
    throw;
  }
  replaying_ = false;
  return gen;
}

}  // namespace rab::detectors
