#include "detectors/me_detector.hpp"

#include <span>

#include "detectors/instrumentation.hpp"
#include "signal/ar.hpp"
#include "util/error.hpp"

namespace rab::detectors {

ModelErrorDetector::ModelErrorDetector(MeConfig config) : config_(config) {
  RAB_EXPECTS(config_.ar_order >= 1);
  RAB_EXPECTS(config_.threshold > 0.0 && config_.threshold <= 1.0);
}

signal::Curve ModelErrorDetector::indicator_curve(
    const rating::ProductRatings& stream) const {
  const std::span<const double> times = stream.times();
  const std::span<const double> values = stream.values();
  signal::Curve curve;
  curve.reserve(times.size());

  for (std::size_t k = 0; k < times.size(); ++k) {
    const signal::IndexRange window =
        signal::window_around(times, k, config_.window);
    const std::span<const double> slice =
        values.subspan(window.first, window.size());
    curve.push_back(signal::CurvePoint{
        times[k], signal::ar_model_error(slice, config_.ar_order)});
  }
  return curve;
}

DetectionResult ModelErrorDetector::detect(
    const rating::ProductRatings& stream) const {
  static const detail::DetectorInstruments instruments =
      detail::DetectorInstruments::make("detector.me");
  return instruments.run("detector.me", [&] { return detect_impl(stream); });
}

DetectionResult ModelErrorDetector::detect_impl(
    const rating::ProductRatings& stream) const {
  DetectionResult result;
  result.curve = indicator_curve(stream);
  result.suspicious =
      signal::intervals_below(result.curve, config_.threshold);
  return result;
}

}  // namespace rab::detectors
