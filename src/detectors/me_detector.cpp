#include "detectors/me_detector.hpp"

#include <span>
#include <vector>

#include "detectors/instrumentation.hpp"
#include "signal/kernels.hpp"
#include "util/error.hpp"

namespace rab::detectors {

ModelErrorDetector::ModelErrorDetector(MeConfig config) : config_(config) {
  RAB_EXPECTS(config_.ar_order >= 1);
  RAB_EXPECTS(config_.threshold > 0.0 && config_.threshold <= 1.0);
}

signal::Curve ModelErrorDetector::indicator_curve(
    const rating::ProductRatings& stream) const {
  const std::span<const double> times = stream.times();
  // Fused AR-fit kernel: Gram/RHS/predict+residual accumulate straight off
  // the centered window (no per-center design matrix), bit-identical to
  // the historic window_around + ar_model_error loop (signal/kernels.hpp).
  const std::vector<double> errors = signal::ar_error_curve(
      times, stream.values(), config_.window, config_.ar_order);
  signal::Curve curve;
  curve.reserve(times.size());
  for (std::size_t k = 0; k < times.size(); ++k) {
    curve.push_back(signal::CurvePoint{times[k], errors[k]});
  }
  return curve;
}

DetectionResult ModelErrorDetector::detect(
    const rating::ProductRatings& stream) const {
  static const detail::DetectorInstruments instruments =
      detail::DetectorInstruments::make("detector.me");
  return instruments.run("detector.me", [&] { return detect_impl(stream); });
}

DetectionResult ModelErrorDetector::detect_impl(
    const rating::ProductRatings& stream) const {
  DetectionResult result;
  result.curve = indicator_curve(stream);
  result.suspicious =
      signal::intervals_below(result.curve, config_.threshold);
  return result;
}

}  // namespace rab::detectors
