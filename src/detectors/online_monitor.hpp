// Online (streaming) unfair-rating monitoring.
//
// The paper's pipeline is offline: it sees the whole history at once. A
// deployed rating site instead ingests ratings as they arrive and wants
// alarms promptly. OnlineMonitor wraps the detector bank in an
// epoch-driven incremental loop: ratings are appended in time order, and
// at every epoch boundary the integrator re-analyzes each product over
// the data so far with the causally maintained trust state — exactly the
// information an operator would have had at that moment.
//
// Incremental engine (vs naive full reanalysis):
//  - Per-epoch analysis routes through DetectorIntegrator::analyze_cached
//    with a shared IntegrationCache: a product untouched since its last
//    analysis whose raters' trust is also unchanged is a full cache hit;
//    an untouched product under new trust is a partial hit (only the MC
//    detector and the Figure-1 marking re-run). Results are bit-identical
//    to the uncached path (see result_cache.hpp).
//  - Products fan out over util::parallel_for with per-index result slots
//    and a serial reduction in product order, so alarms and trust are
//    bit-identical at any RAB_THREADS (the PR-1 determinism contract).
//  - A configurable retention window bounds resident history: after each
//    epoch, rating prefixes older than the window are compacted away. The
//    dropped ratings' trust evidence was already folded at the epochs
//    that saw them, and a per-product summary keeps the fresh-marks alarm
//    accounting consistent, so a year of feed does not pin a year of
//    ratings. Detection then sees only the retained window — an explicit,
//    documented approximation; retention off (the default) keeps the
//    full-history semantics.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "detectors/integrator.hpp"
#include "rating/product_ratings.hpp"
#include "store/rating_store.hpp"
#include "trust/trust_manager.hpp"

namespace rab::detectors {

/// One alarm: a product interval freshly marked suspicious at some epoch.
struct Alarm {
  ProductId product;
  Interval interval;
  Day raised_at = 0.0;          ///< epoch boundary that raised it
  std::size_t marked_ratings = 0;  ///< ratings newly marked in the epoch

  friend bool operator==(const Alarm&, const Alarm&) = default;
};

/// Observability counters for one completed analysis epoch.
struct OnlineEpochStats {
  Day epoch_end = 0.0;            ///< boundary that closed the epoch
  std::size_t ratings = 0;        ///< ratings ingested during the epoch
  std::size_t products_analyzed = 0;  ///< non-empty streams analyzed
  std::size_t marked_ratings = 0;     ///< suspicion marks across streams
  std::size_t alarms = 0;             ///< alarms raised at this boundary
  std::size_t cache_hits = 0;         ///< full (stream, trust) reuses
  std::size_t cache_partial_hits = 0; ///< trust-free fields reused
  std::size_t cache_misses = 0;       ///< full detector bank runs
  std::size_t resident_ratings = 0;   ///< ratings retained after compaction
  std::size_t compacted_ratings = 0;  ///< ratings dropped at this boundary

  friend bool operator==(const OnlineEpochStats&,
                         const OnlineEpochStats&) = default;
};

struct OnlineConfig {
  DetectorConfig detectors;
  DetectorToggles toggles;
  double epoch_days = 30.0;  ///< re-analysis cadence (Procedure 1's t_hat)
  double trust_forgetting = 1.0;
  /// An epoch raises an alarm only when it marks at least this many fresh
  /// ratings on a product — re-analysis jitter on clean data marks a few
  /// ratings differently every epoch and must not page anyone.
  std::size_t min_alarm_marks = 10;
  /// Sliding history window in days (0 = keep everything). When set, it
  /// must be >= epoch_days; after each epoch, ratings older than
  /// epoch_end - retention_days are compacted away (their trust evidence
  /// is already folded) and later analyses see only the retained tail.
  double retention_days = 0.0;
  /// Detector-result cache bounds (see detectors::IntegrationCache).
  /// Caching never changes alarms or trust — these are perf knobs only.
  /// cache_streams = 0 disables caching: every epoch re-runs the full
  /// detector bank per product, the naive full-reanalysis baseline.
  std::size_t cache_streams = 256;
  std::size_t cache_variants = 4;
  /// Crash safety (see detectors/checkpoint.hpp): when non-empty, every
  /// `checkpoint_every_epochs` completed analyses the full monitor state
  /// is snapshotted atomically into this directory, keeping the newest
  /// `checkpoint_keep` generations. Recovery = restore_latest + replaying
  /// the feed from ingested() — bit-identical to an uninterrupted run.
  std::string checkpoint_dir;
  std::size_t checkpoint_every_epochs = 1;
  std::size_t checkpoint_keep = 3;
  /// Persistent columnar rating store (store/rating_store.hpp). When
  /// non-empty, every ingested rating is also appended to the segment log
  /// under this directory, checkpoints record per-stream *row ranges*
  /// instead of raw rating rows, and restore_from_store() resumes
  /// zero-copy over the mapped segments — restart is O(open + mmap)
  /// instead of O(re-parse + re-ingest). Store knobs (like the checkpoint
  /// knobs) never affect results, only durability/perf, so they are not
  /// part of the config-compatibility check.
  std::string store_dir;
  std::size_t store_segment_bytes = 8ull << 20;
  std::size_t store_group_ratings = 4096;
  bool store_fsync = true;  ///< RAB_STORE_SYNC=0 turns batched fsync off
  /// Batch-aligned store commits for the serving path: append() never
  /// splits an ingest batch across group commits; end_atomic_batch()
  /// triggers the flush instead (store::StoreConfig::marker_commits).
  /// Like the other store knobs this never affects analysis results.
  bool store_marker_commits = false;
};

/// Streaming front end over the detector bank. Not thread-safe to call
/// into concurrently; internally fans the per-product analysis out over
/// the global thread pool.
class OnlineMonitor {
 public:
  explicit OnlineMonitor(OnlineConfig config = {});

  /// Appends one rating. Ratings must be finite (time and value) with
  /// non-negative ids and arrive in non-decreasing time order (throws
  /// InvalidArgument otherwise). If the rating's time crosses one or more
  /// epoch boundaries, the monitor first analyzes the completed epochs
  /// and collects any alarms.
  void ingest(const rating::Rating& r);

  /// Batch ingest: equivalent to calling ingest on each rating in order.
  void ingest(std::span<const rating::Rating> batch);

  /// Marks the start of an atomic ingest batch — one sequenced wire
  /// frame's worth of ratings for this shard. Periodic checkpoints are
  /// deferred to end_atomic_batch(): a snapshot taken mid-batch would
  /// cover a partially applied batch whose session watermark has not yet
  /// advanced, and replaying that batch after a restore would then
  /// double-apply its already-covered rows (DESIGN.md §5i).
  void begin_atomic_batch();

  /// Ends the current atomic batch: records `seq` as applied for
  /// `session` (0 = sessionless; no watermark recorded), persists the
  /// watermark marker inside the same store group as the batch's rows,
  /// runs any checkpoint deferred by begin_atomic_batch(), and advances
  /// the durable watermark table when a group commit or checkpoint just
  /// made the batch crash-durable.
  void end_atomic_batch(std::uint64_t session, std::uint64_t seq);

  /// Highest sequence applied for a session (0 when unknown). A frame at
  /// or below this is a duplicate and must not be re-applied.
  [[nodiscard]] std::uint64_t applied_watermark(std::uint64_t session) const;

  /// Highest sequence crash-durable for a session (0 when unknown):
  /// covered by a committed store group or the newest checkpoint. Only
  /// durable sequences may be acked — an acked frame is never resent.
  [[nodiscard]] std::uint64_t durable_watermark(std::uint64_t session) const;

  /// The full durable watermark table (session → max durable sequence).
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>&
  durable_watermarks() const {
    return durable_wm_;
  }

  /// Forces analysis of everything ingested so far (e.g. at shutdown)
  /// without advancing the epoch clock. Idempotent: a second flush with
  /// no new ratings is a no-op, and evidence folded by a flush is never
  /// folded again by later epochs or flushes.
  void flush();

  /// Graceful drain for signal-initiated or admin-initiated shutdown:
  /// checkpoints the *pre-flush* state (when checkpoint_dir is set), then
  /// analyzes the final partial epoch like flush(), then syncs the store.
  /// The order matters for restart bit-identity: flush() folds the
  /// partial epoch's evidence, so a post-flush snapshot restored and then
  /// fed more ratings would have seen one extra analysis (an extra trust
  /// decay) that an uninterrupted run never had. Draining therefore
  /// snapshots first — a restart replays from the snapshot exactly as if
  /// the process had never stopped — and still emits the final partial
  /// epoch's alarms for the operator on the way out.
  void drain();

  /// Alarms raised so far, in raise order.
  [[nodiscard]] const std::vector<Alarm>& alarms() const { return alarms_; }

  /// Per-epoch counters, one entry per completed analysis (flush included).
  [[nodiscard]] const std::vector<OnlineEpochStats>& epoch_stats() const {
    return epoch_stats_;
  }

  /// Current trust state (live view).
  [[nodiscard]] const trust::TrustManager& trust() const { return trust_; }

  /// Ratings ingested so far.
  [[nodiscard]] std::size_t ingested() const { return ingested_; }

  /// Ratings currently retained across all product streams.
  [[nodiscard]] std::size_t resident_ratings() const { return resident_; }

  /// Ratings compacted away by the retention window so far.
  [[nodiscard]] std::size_t compacted_ratings() const { return compacted_; }

  /// Detector-result cache counters (zeros when caching is disabled).
  [[nodiscard]] IntegrationCache::Stats cache_stats() const;

  /// Live per-product summary for the serving query path.
  struct ProductSummary {
    std::size_t resident = 0;        ///< ratings currently retained
    std::uint64_t dropped_rows = 0;  ///< compacted off the front
    std::size_t marks = 0;           ///< suspicious marks, last analysis
    Interval span{};                 ///< retained time span (empty if none)
  };

  /// Summary of one product stream, or nullopt when the product has never
  /// been rated here.
  [[nodiscard]] std::optional<ProductSummary> product_summary(
      ProductId product) const;

  /// Products with a live stream, in id order.
  [[nodiscard]] std::vector<ProductId> products() const;

  [[nodiscard]] const OnlineConfig& config() const { return config_; }

  /// Writes a complete snapshot of the monitor state — streams, trust
  /// evidence, alarms, epoch stats, epoch clocks — to `path` atomically
  /// (temp file + fsync + rename), versioned and CRC-checksummed per
  /// section and whole-file. Throws IoError on environment failure.
  /// Defined in detectors/checkpoint.cpp.
  void save_checkpoint(const std::string& path) const;

  /// Replaces all monitor state with the snapshot at `path`. The
  /// snapshot's semantic configuration (epoch cadence, retention,
  /// forgetting, alarm threshold, detector toggles, detector parameters)
  /// must match this monitor's — restoring under a different config would
  /// silently change results, so a mismatch throws InvalidArgument.
  /// Throws IoError when the file cannot be read and CorruptData when it
  /// is truncated or fails a checksum. The detector-result cache is not
  /// part of the snapshot (it never affects results); it restarts cold.
  void restore_checkpoint(const std::string& path);

  /// Writes the next checkpoint generation into config().checkpoint_dir
  /// (creating it if needed) and prunes generations beyond
  /// checkpoint_keep. Returns the generation id (the number of completed
  /// analyses). Requires checkpoint_dir to be set.
  std::size_t checkpoint_now();

  /// Restores the newest valid generation under `dir`: truncated or
  /// corrupt snapshots are detected via their checksums and skipped in
  /// favor of the previous generation. Returns the generation restored,
  /// or nullopt when the directory holds no readable valid snapshot.
  /// Config-mismatch (InvalidArgument) still propagates — falling back
  /// across a config change would be silent corruption, not recovery.
  std::optional<std::size_t> restore_latest(const std::string& dir);

  /// Store-backed recovery (requires config().store_dir): restores the
  /// newest valid checkpoint generation — streams load zero-copy from the
  /// mapped store — then re-ingests the store's binary tail (rows
  /// appended after that snapshot), leaving the monitor bit-identical to
  /// one that replayed the whole feed. Returns the generation restored,
  /// or nullopt when no checkpoint was readable (then the entire stored
  /// history was replayed). Defined in detectors/checkpoint.cpp.
  std::optional<std::size_t> restore_from_store();

  /// The attached rating store (null unless config().store_dir is set).
  [[nodiscard]] const store::RatingStore* rating_store() const {
    return store_.get();
  }

 private:
  /// Per-product stream plus the incremental-analysis bookkeeping.
  struct Stream {
    explicit Stream(ProductId product) : ratings(product) {}

    rating::ProductRatings ratings;
    /// Marks reported by the previous analysis (alarm = fresh marks only);
    /// compaction subtracts marks that left the retained window.
    std::size_t previous_marks = 0;
    /// Suspicion flags of the most recent analysis, kept for compaction
    /// mark accounting (empty = no analysis since the last compaction).
    std::vector<bool> last_suspicious;
    /// Ratings compacted off the front of this stream — the absolute
    /// store row index of ratings[0]. Store-attached checkpoints persist
    /// it so restore can load exactly the retained range.
    std::uint64_t dropped_rows = 0;
    /// Content fingerprint of `ratings`, recomputed only after a change.
    Fingerprint fingerprint{};
    bool fingerprint_valid = false;
  };

  void analyze_epoch(Day epoch_end);
  void compact(Day epoch_end, OnlineEpochStats& stats);
  /// Periodic checkpoint per OnlineConfig; called at consistent points
  /// (after the epoch clock has advanced past the analyzed boundary).
  /// Deferred to end_atomic_batch() while a batch is open.
  void maybe_checkpoint();
  /// Unconditionally checkpoints and queues/releases store compaction
  /// watermarks — the body maybe_checkpoint() gates on cadence + batch.
  void do_checkpoint();

  OnlineConfig config_;
  DetectorIntegrator integrator_;
  std::unique_ptr<IntegrationCache> cache_;  ///< null when caching disabled
  /// Declared before streams_: borrowed streams point into the store's
  /// mappings, so the store must be destroyed after them.
  std::unique_ptr<store::RatingStore> store_;
  std::map<ProductId, Stream> streams_;
  trust::TrustManager trust_;
  std::vector<Alarm> alarms_;
  std::vector<OnlineEpochStats> epoch_stats_;
  Day next_epoch_ = 0.0;
  bool started_ = false;
  Day last_time_ = 0.0;
  /// Trust evidence has been folded for all ratings with time strictly
  /// below this; every fold interval starts here, so no rating's evidence
  /// is ever counted twice (the old flush double-fold bug).
  Day folded_until_ = 0.0;
  /// True when ratings ingested since the last analysis still carry
  /// unfolded evidence — makes flush() idempotent.
  bool pending_ = false;
  std::size_t ingested_ = 0;
  std::size_t epoch_ingested_ = 0;  ///< ingested since the last analysis
  std::size_t resident_ = 0;
  std::size_t compacted_ = 0;
  /// True while restore_from_store() re-ingests the stored tail; the
  /// rows are already durable, so ingest() skips the store append.
  bool replaying_ = false;
  /// Per-checkpoint compaction watermarks (dropped_rows per product), one
  /// entry per generation written this run, newest last. A watermark is
  /// handed to the store only once checkpoint_keep newer generations
  /// exist — every snapshot restore_latest may fall back to can still
  /// load its row ranges.
  std::deque<std::map<ProductId, std::uint64_t>> pending_watermarks_;
  /// Exactly-once resume state (DESIGN.md §5i): applied_wm_ advances as
  /// sequenced batches are ingested; durable_wm_ copies applied_wm_ at
  /// every durability event (store group commit, checkpoint, drain).
  std::map<std::uint64_t, std::uint64_t> applied_wm_;
  std::map<std::uint64_t, std::uint64_t> durable_wm_;
  bool in_batch_ = false;
  bool deferred_checkpoint_ = false;
};

}  // namespace rab::detectors
