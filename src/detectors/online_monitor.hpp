// Online (streaming) unfair-rating monitoring.
//
// The paper's pipeline is offline: it sees the whole history at once. A
// deployed rating site instead ingests ratings as they arrive and wants
// alarms promptly. OnlineMonitor wraps the detector bank in an
// epoch-driven incremental loop: ratings are appended in time order, and
// at every epoch boundary the integrator re-analyzes each touched product
// over the data so far with the causally maintained trust state — exactly
// the information an operator would have had at that moment.
#pragma once

#include <map>
#include <vector>

#include "detectors/integrator.hpp"
#include "rating/product_ratings.hpp"
#include "trust/trust_manager.hpp"

namespace rab::detectors {

/// One alarm: a product interval freshly marked suspicious at some epoch.
struct Alarm {
  ProductId product;
  Interval interval;
  Day raised_at = 0.0;          ///< epoch boundary that raised it
  std::size_t marked_ratings = 0;  ///< ratings newly marked in the epoch
};

struct OnlineConfig {
  DetectorConfig detectors;
  DetectorToggles toggles;
  double epoch_days = 30.0;  ///< re-analysis cadence (Procedure 1's t_hat)
  double trust_forgetting = 1.0;
  /// An epoch raises an alarm only when it marks at least this many fresh
  /// ratings on a product — re-analysis jitter on clean data marks a few
  /// ratings differently every epoch and must not page anyone.
  std::size_t min_alarm_marks = 10;
};

/// Streaming front end over the detector bank. Not thread-safe.
class OnlineMonitor {
 public:
  explicit OnlineMonitor(OnlineConfig config = {});

  /// Appends one rating. Ratings must arrive in non-decreasing time order
  /// (throws InvalidArgument otherwise). If the rating's time crosses one
  /// or more epoch boundaries, the monitor first analyzes the completed
  /// epochs and collects any alarms.
  void ingest(const rating::Rating& r);

  /// Forces analysis of everything ingested so far (e.g. at shutdown);
  /// advances the epoch clock to the last rating.
  void flush();

  /// Alarms raised so far, in raise order.
  [[nodiscard]] const std::vector<Alarm>& alarms() const { return alarms_; }

  /// Current trust state (live view).
  [[nodiscard]] const trust::TrustManager& trust() const { return trust_; }

  /// Ratings ingested so far.
  [[nodiscard]] std::size_t ingested() const { return ingested_; }

  [[nodiscard]] const OnlineConfig& config() const { return config_; }

 private:
  void analyze_epoch(Day epoch_end);

  OnlineConfig config_;
  std::map<ProductId, rating::ProductRatings> streams_;
  /// Per product: how many ratings were marked suspicious at the previous
  /// analysis — used to report only fresh marks.
  std::map<ProductId, std::size_t> previous_marks_;
  trust::TrustManager trust_;
  std::vector<Alarm> alarms_;
  Day next_epoch_ = 0.0;
  bool started_ = false;
  Day last_time_ = 0.0;
  std::size_t ingested_ = 0;
};

}  // namespace rab::detectors
