#include "detectors/mc_detector.hpp"

#include <cmath>
#include <vector>

#include "detectors/instrumentation.hpp"
#include "signal/kernels.hpp"
#include "stats/descriptive.hpp"
#include "stats/glrt.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace rab::detectors {

MeanChangeDetector::MeanChangeDetector(McConfig config) : config_(config) {
  RAB_EXPECTS(config_.glrt_threshold >= 0.0);
  RAB_EXPECTS(config_.threshold1 >= config_.threshold2);
  RAB_EXPECTS(config_.trust_ratio > 0.0);
}

signal::Curve MeanChangeDetector::indicator_curve(
    const rating::ProductRatings& stream) const {
  const std::span<const double> times = stream.times();
  // Batch kernel: prefix moments + one window-bound sweep + one
  // vectorizable statistic loop over the columns, replacing the per-sample
  // window_around / split_at / statistic calls.
  const std::vector<double> stats = signal::mean_glrt_curve(
      times, stream.values(), config_.window, stats::kDefaultGlrtMinSigma);
  signal::Curve curve;
  curve.reserve(times.size());
  for (std::size_t k = 0; k < times.size(); ++k) {
    curve.push_back(signal::CurvePoint{times[k], stats[k]});
  }
  return curve;
}

DetectionResult MeanChangeDetector::detect(
    const rating::ProductRatings& stream, const TrustLookup& trust) const {
  static const detail::DetectorInstruments instruments =
      detail::DetectorInstruments::make("detector.mc");
  return instruments.run("detector.mc",
                         [&] { return detect_impl(stream, trust); });
}

DetectionResult MeanChangeDetector::detect_impl(
    const rating::ProductRatings& stream, const TrustLookup& trust) const {
  DetectionResult result;
  result.curve = indicator_curve(stream);
  if (stream.empty()) return result;

  // Segment the stream at the significant peaks of the indicator curve.
  signal::PeakOptions peak_opts;
  peak_opts.min_height = config_.glrt_threshold;
  peak_opts.min_separation = config_.peak_separation;
  const std::vector<std::size_t> peaks =
      signal::find_peaks(result.curve, peak_opts);
  const std::vector<Interval> segments =
      signal::segments_between_peaks(result.curve, peaks);
  if (segments.size() < 2) return result;  // no change points at all

  // Overall value baseline (median when robust_baseline: a long attack
  // drags the mean but not the median) and trust baseline.
  const std::span<const double> values = stream.values();
  const double b_avg =
      config_.robust_baseline
          ? stats::median(std::vector<double>(values.begin(), values.end()))
          : stats::mean(values);

  // Trust is consulted lazily: a segment needs it only when its deviation
  // falls between threshold2 and threshold1 (the moderate-change rule).
  // Fair streams almost never cross threshold2, so the 2n TrustLookup
  // indirections — the dominant non-kernel cost here — usually vanish.
  const std::span<const RaterId> raters = stream.raters();
  double t_avg = 0.0;
  bool t_avg_ready = false;

  for (const Interval& segment : segments) {
    const signal::IndexRange members = stream.index_range(segment);
    if (members.empty()) continue;

    // The segment mean feeds the threshold1/threshold2 comparisons — a
    // discrete classification, not a curve value — and the attack search
    // (Procedure 2) deliberately tunes attacks onto these boundaries, so
    // the decisions must match the reference Welford accumulation exactly
    // (a reassociated sum once flipped a borderline segment and sent
    // fig5's region search into a different basin). Fast path: interleaved
    // plain sums whose mean differs from Welford's by at most kSumSlack
    // (n*eps*max|value| with generous headroom); when the resulting
    // deviation is at least kSumSlack away from both thresholds the
    // Welford decision is already determined, otherwise — and always in
    // strict mode — recompute in the reference order.
    constexpr double kSumSlack = 1e-9;
    double seg_mean;
    {
      double acc[4] = {0.0, 0.0, 0.0, 0.0};
      std::size_t i = members.first;
      for (; i + 4 <= members.last; i += 4) {
        acc[0] += values[i];
        acc[1] += values[i + 1];
        acc[2] += values[i + 2];
        acc[3] += values[i + 3];
      }
      for (; i < members.last; ++i) acc[0] += values[i];
      seg_mean = ((acc[0] + acc[1]) + (acc[2] + acc[3])) /
                 static_cast<double>(members.last - members.first);
    }
    const double fast_dev = std::fabs(seg_mean - b_avg);
    if (simd::strict_fp() ||
        std::fabs(fast_dev - config_.threshold1) <= kSumSlack ||
        std::fabs(fast_dev - config_.threshold2) <= kSumSlack) {
      stats::Welford value_acc;
      for (std::size_t i = members.first; i < members.last; ++i) {
        value_acc.add(values[i]);
      }
      seg_mean = value_acc.mean();
    }
    const double deviation = std::fabs(seg_mean - b_avg);

    if (deviation > config_.threshold1) {  // very large mean change
      result.suspicious.push_back(segment);
      continue;
    }
    if (deviation <= config_.threshold2) continue;

    if (!t_avg_ready) {
      double trust_sum = 0.0;
      for (RaterId rater : raters) trust_sum += trust(rater);
      t_avg = trust_sum / static_cast<double>(stream.size());
      t_avg_ready = true;
    }
    stats::Welford trust_acc;
    for (std::size_t i = members.first; i < members.last; ++i) {
      trust_acc.add(trust(raters[i]));
    }
    if (t_avg > 0.0 && trust_acc.mean() / t_avg < config_.trust_ratio) {
      result.suspicious.push_back(segment);
    }
  }
  return result;
}

}  // namespace rab::detectors
