#include "detectors/mc_detector.hpp"

#include <cmath>

#include "detectors/instrumentation.hpp"
#include "signal/rolling.hpp"
#include "stats/descriptive.hpp"
#include "stats/glrt.hpp"
#include "util/error.hpp"

namespace rab::detectors {

MeanChangeDetector::MeanChangeDetector(McConfig config) : config_(config) {
  RAB_EXPECTS(config_.glrt_threshold >= 0.0);
  RAB_EXPECTS(config_.threshold1 >= config_.threshold2);
  RAB_EXPECTS(config_.trust_ratio > 0.0);
}

signal::Curve MeanChangeDetector::indicator_curve(
    const rating::ProductRatings& stream) const {
  const std::vector<signal::Sample> samples = stream.samples();
  signal::Curve curve;
  curve.reserve(samples.size());
  const stats::GaussianMeanGlrt glrt(config_.glrt_threshold);

  // Rolling fast path: prefix statistics answer each half-window's moments
  // in O(1) instead of copying the window's values per sample.
  const signal::RollingStats rolling(samples);
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const signal::IndexRange window =
        signal::window_around(samples, k, config_.window);
    const auto [left, right] = signal::split_at(window, k);
    curve.push_back(signal::CurvePoint{
        samples[k].time,
        glrt.statistic(rolling.moments(left), rolling.moments(right))});
  }
  return curve;
}

DetectionResult MeanChangeDetector::detect(
    const rating::ProductRatings& stream, const TrustLookup& trust) const {
  static const detail::DetectorInstruments instruments =
      detail::DetectorInstruments::make("detector.mc");
  return instruments.run("detector.mc",
                         [&] { return detect_impl(stream, trust); });
}

DetectionResult MeanChangeDetector::detect_impl(
    const rating::ProductRatings& stream, const TrustLookup& trust) const {
  DetectionResult result;
  result.curve = indicator_curve(stream);
  if (stream.empty()) return result;

  // Segment the stream at the significant peaks of the indicator curve.
  signal::PeakOptions peak_opts;
  peak_opts.min_height = config_.glrt_threshold;
  peak_opts.min_separation = config_.peak_separation;
  const std::vector<std::size_t> peaks =
      signal::find_peaks(result.curve, peak_opts);
  const std::vector<Interval> segments =
      signal::segments_between_peaks(result.curve, peaks);
  if (segments.size() < 2) return result;  // no change points at all

  // Overall value baseline (median when robust_baseline: a long attack
  // drags the mean but not the median) and trust baseline.
  const std::vector<double> all_values = stream.values();
  const double b_avg = config_.robust_baseline
                           ? stats::median(all_values)
                           : stats::mean(all_values);

  double trust_sum = 0.0;
  for (const rating::Rating& r : stream.ratings()) trust_sum += trust(r.rater);
  const double t_avg =
      trust_sum / static_cast<double>(stream.size());

  for (const Interval& segment : segments) {
    const std::vector<rating::Rating> members = stream.in_interval(segment);
    if (members.empty()) continue;

    stats::Welford value_acc;
    stats::Welford trust_acc;
    for (const rating::Rating& r : members) {
      value_acc.add(r.value);
      trust_acc.add(trust(r.rater));
    }
    const double deviation = std::fabs(value_acc.mean() - b_avg);

    const bool large_change = deviation > config_.threshold1;
    const bool moderate_low_trust =
        deviation > config_.threshold2 &&
        t_avg > 0.0 && trust_acc.mean() / t_avg < config_.trust_ratio;
    if (large_change || moderate_low_trust) {
      result.suspicious.push_back(segment);
    }
  }
  return result;
}

}  // namespace rab::detectors
