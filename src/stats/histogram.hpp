// Fixed-range histogram over rating values.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rab::stats {

/// Equal-width histogram over [lo, hi]; values outside are clamped into the
/// first/last bin so that every rating counts.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Fraction of mass in `bin`; 0 if the histogram is empty.
  [[nodiscard]] double frequency(std::size_t bin) const;

  /// Center of `bin` on the value axis.
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Index of the bin `x` falls into (after clamping).
  [[nodiscard]] std::size_t bin_of(double x) const;

  /// L1 distance between the frequency vectors of two same-shape histograms.
  [[nodiscard]] double l1_distance(const Histogram& other) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rab::stats
