// Generalized likelihood ratio tests used by the change detectors.
//
// Two tests from the paper (Section IV-B/IV-C, following Kay, "Fundamentals
// of Statistical Signal Processing, Vol. 2"):
//
//  * GaussianMeanGlrt — mean change in an i.i.d. Gaussian sequence split into
//    two halves X1, X2 of W samples each. Statistic (paper Eq. 1):
//        2 ln L = W (A1_hat - A2_hat)^2 / (2 sigma^2)
//  * PoissonRateGlrt — arrival-rate change in a Poisson count sequence split
//    at k'. Statistic (paper Eq. 5, normalized by the window length 2D):
//        (a/2D) Y1bar ln Y1bar + (b/2D) Y2bar ln Y2bar - Ybar ln Ybar
#pragma once

#include <span>

#include "stats/descriptive.hpp"

namespace rab::stats {

/// Result of a two-sample GLRT evaluation.
struct GlrtResult {
  double statistic = 0.0;  ///< test statistic (compare against a threshold)
  bool change = false;     ///< statistic >= threshold
};

/// Default floor on the pooled standard deviation estimate, shared with the
/// batch curve kernel (signal/kernels.hpp) so both paths agree.
inline constexpr double kDefaultGlrtMinSigma = 1e-3;

/// Mean-change GLRT for Gaussian data with (assumed) common variance.
class GaussianMeanGlrt {
 public:
  /// @param threshold decision threshold gamma for the statistic.
  /// @param min_sigma floor on the pooled standard deviation estimate, which
  ///        keeps the statistic finite on (near-)constant windows.
  explicit GaussianMeanGlrt(double threshold,
                            double min_sigma = kDefaultGlrtMinSigma);

  /// Evaluates the statistic for halves `x1`, `x2` (equal length preferred;
  /// unequal lengths use the harmonic-mean effective window). Empty halves
  /// yield statistic 0.
  [[nodiscard]] GlrtResult test(std::span<const double> x1,
                                std::span<const double> x2) const;

  /// The raw statistic W*(A1-A2)^2 / (2 sigma^2) with sigma estimated from
  /// the pooled, mean-centered halves.
  [[nodiscard]] double statistic(std::span<const double> x1,
                                 std::span<const double> x2) const;

  /// Same statistic from precomputed per-half moments — the O(1) rolling
  /// fast path used by the windowed detectors, where the moments come from
  /// prefix-sum differences instead of a per-window pass over the values.
  [[nodiscard]] double statistic(const Moments& m1, const Moments& m2) const;

  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  double threshold_;
  double min_sigma_;
};

/// Arrival-rate-change GLRT for Poisson daily counts.
class PoissonRateGlrt {
 public:
  /// @param threshold decision threshold, i.e. (1/2D) ln gamma in Eq. (5).
  explicit PoissonRateGlrt(double threshold);

  /// Evaluates the normalized statistic for count halves `y1`, `y2`.
  [[nodiscard]] GlrtResult test(std::span<const double> y1,
                                std::span<const double> y2) const;

  /// The normalized statistic from Eq. (5); 0 when either half is empty.
  [[nodiscard]] static double statistic(std::span<const double> y1,
                                        std::span<const double> y2);

  /// Same statistic from half lengths and count sums — the O(1) rolling
  /// fast path (the Poisson GLRT only needs per-half totals). Returns 0
  /// when either half has zero length.
  [[nodiscard]] static double statistic_from_sums(double days1, double sum1,
                                                  double days2, double sum2);

  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  double threshold_;
};

}  // namespace rab::stats
