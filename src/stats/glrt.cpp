#include "stats/glrt.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::stats {

namespace {

// x ln x extended continuously by 0 at x = 0.
double xlogx(double x) { return x > 0.0 ? x * std::log(x) : 0.0; }

}  // namespace

GaussianMeanGlrt::GaussianMeanGlrt(double threshold, double min_sigma)
    : threshold_(threshold), min_sigma_(min_sigma) {
  RAB_EXPECTS(threshold >= 0.0);
  RAB_EXPECTS(min_sigma > 0.0);
}

double GaussianMeanGlrt::statistic(std::span<const double> x1,
                                   std::span<const double> x2) const {
  if (x1.empty() || x2.empty()) return 0.0;
  Welford w1;
  Welford w2;
  for (double x : x1) w1.add(x);
  for (double x : x2) w2.add(x);

  // Pooled variance around the per-half means (the H1 variance estimate).
  const double n1 = static_cast<double>(w1.count());
  const double n2 = static_cast<double>(w2.count());
  const double pooled_var =
      (w1.variance() * n1 + w2.variance() * n2) / (n1 + n2);
  const double sigma = std::max(std::sqrt(pooled_var), min_sigma_);

  // Effective W for unequal halves: harmonic mean keeps the statistic's
  // chi-square scaling (W = n for the paper's equal-half case of 2W samples).
  const double w_eff = 2.0 * n1 * n2 / (n1 + n2);
  const double delta = w1.mean() - w2.mean();
  return w_eff * delta * delta / (2.0 * sigma * sigma);
}

GlrtResult GaussianMeanGlrt::test(std::span<const double> x1,
                                  std::span<const double> x2) const {
  GlrtResult r;
  r.statistic = statistic(x1, x2);
  r.change = r.statistic >= threshold_;
  return r;
}

PoissonRateGlrt::PoissonRateGlrt(double threshold) : threshold_(threshold) {
  RAB_EXPECTS(threshold >= 0.0);
}

double PoissonRateGlrt::statistic(std::span<const double> y1,
                                  std::span<const double> y2) {
  if (y1.empty() || y2.empty()) return 0.0;
  const double a = static_cast<double>(y1.size());
  const double b = static_cast<double>(y2.size());
  const double total_days = a + b;

  double sum1 = 0.0;
  double sum2 = 0.0;
  for (double y : y1) sum1 += y;
  for (double y : y2) sum2 += y;

  const double y1bar = sum1 / a;
  const double y2bar = sum2 / b;
  const double ybar = (sum1 + sum2) / total_days;

  // Eq. (5) with 2D = total_days; xlogx handles empty-rate halves.
  return (a / total_days) * xlogx(y1bar) + (b / total_days) * xlogx(y2bar) -
         xlogx(ybar);
}

GlrtResult PoissonRateGlrt::test(std::span<const double> y1,
                                 std::span<const double> y2) const {
  GlrtResult r;
  r.statistic = statistic(y1, y2);
  r.change = r.statistic >= threshold_;
  return r;
}

}  // namespace rab::stats
