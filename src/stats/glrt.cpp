#include "stats/glrt.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::stats {

namespace {

// x ln x extended continuously by 0 at x = 0.
double xlogx(double x) { return x > 0.0 ? x * std::log(x) : 0.0; }

}  // namespace

GaussianMeanGlrt::GaussianMeanGlrt(double threshold, double min_sigma)
    : threshold_(threshold), min_sigma_(min_sigma) {
  RAB_EXPECTS(threshold >= 0.0);
  RAB_EXPECTS(min_sigma > 0.0);
}

double GaussianMeanGlrt::statistic(std::span<const double> x1,
                                   std::span<const double> x2) const {
  Welford w1;
  Welford w2;
  for (double x : x1) w1.add(x);
  for (double x : x2) w2.add(x);
  return statistic(Moments{w1.count(), w1.mean(), w1.variance()},
                   Moments{w2.count(), w2.mean(), w2.variance()});
}

double GaussianMeanGlrt::statistic(const Moments& m1,
                                   const Moments& m2) const {
  if (m1.count == 0 || m2.count == 0) return 0.0;

  // Pooled variance around the per-half means (the H1 variance estimate).
  const double n1 = static_cast<double>(m1.count);
  const double n2 = static_cast<double>(m2.count);
  const double pooled_var =
      (m1.variance * n1 + m2.variance * n2) / (n1 + n2);
  const double sigma = std::max(std::sqrt(pooled_var), min_sigma_);

  // Effective W for unequal halves: harmonic mean keeps the statistic's
  // chi-square scaling (W = n for the paper's equal-half case of 2W samples).
  const double w_eff = 2.0 * n1 * n2 / (n1 + n2);
  const double delta = m1.mean - m2.mean;
  return w_eff * delta * delta / (2.0 * sigma * sigma);
}

GlrtResult GaussianMeanGlrt::test(std::span<const double> x1,
                                  std::span<const double> x2) const {
  GlrtResult r;
  r.statistic = statistic(x1, x2);
  r.change = r.statistic >= threshold_;
  return r;
}

PoissonRateGlrt::PoissonRateGlrt(double threshold) : threshold_(threshold) {
  RAB_EXPECTS(threshold >= 0.0);
}

double PoissonRateGlrt::statistic(std::span<const double> y1,
                                  std::span<const double> y2) {
  double sum1 = 0.0;
  double sum2 = 0.0;
  for (double y : y1) sum1 += y;
  for (double y : y2) sum2 += y;
  return statistic_from_sums(static_cast<double>(y1.size()), sum1,
                             static_cast<double>(y2.size()), sum2);
}

double PoissonRateGlrt::statistic_from_sums(double days1, double sum1,
                                            double days2, double sum2) {
  if (days1 <= 0.0 || days2 <= 0.0) return 0.0;
  const double total_days = days1 + days2;

  const double y1bar = sum1 / days1;
  const double y2bar = sum2 / days2;
  const double ybar = (sum1 + sum2) / total_days;

  // Eq. (5) with 2D = total_days; xlogx handles empty-rate halves.
  return (days1 / total_days) * xlogx(y1bar) +
         (days2 / total_days) * xlogx(y2bar) - xlogx(ybar);
}

GlrtResult PoissonRateGlrt::test(std::span<const double> y1,
                                 std::span<const double> y2) const {
  GlrtResult r;
  r.statistic = statistic(y1, y2);
  r.change = r.statistic >= threshold_;
  return r;
}

}  // namespace rab::stats
