// Percentile-bootstrap confidence intervals.
//
// The synthetic experiments report point estimates over a population of
// attacks; bootstrap CIs quantify how much of a reported gap is noise.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace rab::stats {

/// A two-sided confidence interval with its point estimate.
struct BootstrapCi {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Statistic evaluated on a (re)sample.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap of `statistic` over `xs`: resamples with
/// replacement `resamples` times and reports the [alpha/2, 1-alpha/2]
/// percentile interval. Requires a non-empty sample, resamples >= 10 and
/// alpha in (0, 1).
BootstrapCi bootstrap_ci(std::span<const double> xs,
                         const Statistic& statistic, Rng& rng,
                         std::size_t resamples = 1000, double alpha = 0.05);

/// Convenience: bootstrap CI of the mean.
BootstrapCi bootstrap_mean_ci(std::span<const double> xs, Rng& rng,
                              std::size_t resamples = 1000,
                              double alpha = 0.05);

}  // namespace rab::stats
