#include "stats/linalg.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rab::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  RAB_EXPECTS(rows > 0 && cols > 0);
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  RAB_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  RAB_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < rows_; ++k) {
        sum += (*this)(k, i) * (*this)(k, j);
      }
      g(i, j) = sum;
      g(j, i) = sum;
    }
  }
  return g;
}

std::vector<double> Matrix::transpose_times(const std::vector<double>& v) const {
  RAB_EXPECTS(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (std::size_t k = 0; k < rows_; ++k) {
    for (std::size_t i = 0; i < cols_; ++i) {
      out[i] += (*this)(k, i) * v[k];
    }
  }
  return out;
}

std::vector<double> solve(Matrix a, std::vector<double> b) {
  RAB_EXPECTS(a.rows() == a.cols());
  RAB_EXPECTS(b.size() == a.rows());
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in this column at or below `col`.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-12) {
      throw Error("linalg::solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
    x[i] = sum / a(i, i);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b,
                                  double ridge) {
  RAB_EXPECTS(ridge >= 0.0);
  RAB_EXPECTS(b.size() == a.rows());
  Matrix gram = a.gram();
  for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += ridge;
  return solve(std::move(gram), a.transpose_times(b));
}

}  // namespace rab::stats
