// Descriptive statistics over rating value sequences.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rab::stats {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class Welford {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Population variance (divides by n). Zero for n < 2.
  [[nodiscard]] double variance() const;
  /// Sample variance (divides by n-1). Zero for n < 2.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const Welford& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// First two moments of a sequence, as produced by an accumulator or by
/// prefix-sum differences (signal::RollingStats). The variance is the
/// population variance, clamped at zero.
struct Moments {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;
};

/// One-shot summary of a sequence.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< population variance
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes Summary over `xs`. All fields zero when `xs` is empty.
Summary summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Median (average of middle two for even length). Throws on empty input.
double median(std::vector<double> xs);

/// Linear-interpolated quantile, q in [0,1]. Throws on empty input.
double quantile(std::vector<double> xs, double q);

}  // namespace rab::stats
