// Beta-distribution machinery.
//
// Used by two parts of the system:
//  * the beta-function trust model [Jøsang & Ismail]: trust = (S+1)/(S+F+2),
//  * the BF-scheme majority-rule filter [Whitby, Jøsang, Indulska], which
//    needs beta CDF quantiles to decide whether a rater's opinion lies
//    outside the majority's q / (1-q) band.
#pragma once

namespace rab::stats {

/// Beta(alpha, beta) distribution with alpha, beta > 0.
class Beta {
 public:
  Beta(double alpha, double beta);

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double beta() const { return beta_; }

  /// E[X] = alpha / (alpha + beta).
  [[nodiscard]] double mean() const;

  /// Probability density at x in [0, 1].
  [[nodiscard]] double pdf(double x) const;

  /// Regularized incomplete beta I_x(alpha, beta); the CDF at x in [0, 1].
  [[nodiscard]] double cdf(double x) const;

  /// Inverse CDF for p in [0, 1] (bisection on the CDF, |err| < 1e-10).
  [[nodiscard]] double quantile(double p) const;

 private:
  double alpha_;
  double beta_;
};

/// Regularized incomplete beta function I_x(a, b) via the Lentz continued
/// fraction (Numerical Recipes style). a, b > 0; x in [0, 1].
double regularized_incomplete_beta(double a, double b, double x);

/// Beta-function trust value from success/failure counts (Procedure 1 /
/// BF-scheme): (S + 1) / (S + F + 2). S, F >= 0.
double beta_trust(double successes, double failures);

}  // namespace rab::stats
