#include "stats/beta.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace rab::stats {

namespace {

// Continued-fraction evaluation for the incomplete beta (modified Lentz).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 10.0 * kEps) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  RAB_EXPECTS(a > 0.0 && b > 0.0);
  RAB_EXPECTS(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;

  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly when it converges fast, otherwise
  // the symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

Beta::Beta(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  RAB_EXPECTS(alpha > 0.0 && beta > 0.0);
}

double Beta::mean() const { return alpha_ / (alpha_ + beta_); }

double Beta::pdf(double x) const {
  RAB_EXPECTS(x >= 0.0 && x <= 1.0);
  if (x == 0.0) {
    if (alpha_ < 1.0) return std::numeric_limits<double>::infinity();
    if (alpha_ > 1.0) return 0.0;
    return beta_;  // alpha == 1: density b*(1-x)^(b-1) at 0
  }
  if (x == 1.0) {
    if (beta_ < 1.0) return std::numeric_limits<double>::infinity();
    if (beta_ > 1.0) return 0.0;
    return alpha_;
  }
  const double ln = std::lgamma(alpha_ + beta_) - std::lgamma(alpha_) -
                    std::lgamma(beta_) + (alpha_ - 1.0) * std::log(x) +
                    (beta_ - 1.0) * std::log1p(-x);
  return std::exp(ln);
}

double Beta::cdf(double x) const {
  return regularized_incomplete_beta(alpha_, beta_, x);
}

double Beta::quantile(double p) const {
  RAB_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  double lo = 0.0;
  double hi = 1.0;
  // Bisection: the CDF is continuous and strictly increasing on (0,1).
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  return 0.5 * (lo + hi);
}

double beta_trust(double successes, double failures) {
  RAB_EXPECTS(successes >= 0.0 && failures >= 0.0);
  return (successes + 1.0) / (successes + failures + 2.0);
}

}  // namespace rab::stats
