#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rab::stats {

void Welford::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Welford::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  Welford w;
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    w.add(x);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.count = w.count();
  s.mean = w.mean();
  s.variance = w.variance();
  s.stddev = w.stddev();
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  Welford w;
  for (double x : xs) w.add(x);
  return w.mean();
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  RAB_EXPECTS(!xs.empty());
  RAB_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace rab::stats
