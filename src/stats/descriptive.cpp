#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace rab::stats {

void Welford::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Welford::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  Welford w;
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    w.add(x);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.count = w.count();
  s.mean = w.mean();
  s.variance = w.variance();
  s.stddev = w.stddev();
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  if (simd::strict_fp()) {
    // Reference operation order: the running Welford update. Detector
    // outputs derived from this mean are bit-stable against the history.
    Welford w;
    for (double x : xs) w.add(x);
    return w.mean();
  }
  // Fast mode: four interleaved partial sums break the add-latency chain
  // a single accumulator serializes on; for same-scale rating data the
  // result agrees with Welford to ~1 ulp while running an order of
  // magnitude faster on long streams.
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n = xs.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[0] += xs[i];
    acc[1] += xs[i + 1];
    acc[2] += xs[i + 2];
    acc[3] += xs[i + 3];
  }
  for (; i < n; ++i) acc[0] += xs[i];
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) /
         static_cast<double>(n);
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  RAB_EXPECTS(!xs.empty());
  RAB_EXPECTS(q >= 0.0 && q <= 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  // Selection instead of a full sort: nth_element yields the identical
  // order statistics, so results (and every threshold decision derived
  // from them) are bit-for-bit the same in O(n). The hi-th statistic is
  // the minimum of the partitioned tail.
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(lo), xs.end());
  const double x_lo = xs[lo];
  const double x_hi =
      hi == lo ? x_lo
               : *std::min_element(
                     xs.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                     xs.end());
  return x_lo * (1.0 - frac) + x_hi * frac;
}

}  // namespace rab::stats
