#include "stats/bootstrap.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::stats {

BootstrapCi bootstrap_ci(std::span<const double> xs,
                         const Statistic& statistic, Rng& rng,
                         std::size_t resamples, double alpha) {
  RAB_EXPECTS(!xs.empty());
  RAB_EXPECTS(statistic != nullptr);
  RAB_EXPECTS(resamples >= 10);
  RAB_EXPECTS(alpha > 0.0 && alpha < 1.0);

  BootstrapCi ci;
  ci.estimate = statistic(xs);

  std::vector<double> resampled(xs.size());
  std::vector<double> estimates;
  estimates.reserve(resamples);
  const auto n = static_cast<std::int64_t>(xs.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& value : resampled) {
      value = xs[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    estimates.push_back(statistic(resampled));
  }
  ci.lo = quantile(estimates, alpha / 2.0);
  ci.hi = quantile(std::move(estimates), 1.0 - alpha / 2.0);
  return ci;
}

BootstrapCi bootstrap_mean_ci(std::span<const double> xs, Rng& rng,
                              std::size_t resamples, double alpha) {
  return bootstrap_ci(
      xs, [](std::span<const double> sample) { return mean(sample); }, rng,
      resamples, alpha);
}

}  // namespace rab::stats
