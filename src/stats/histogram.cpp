#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rab::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RAB_EXPECTS(hi > lo);
  RAB_EXPECTS(bins > 0);
}

void Histogram::add(double x) {
  ++counts_[bin_of(x)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  RAB_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::frequency(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::bin_center(std::size_t bin) const {
  RAB_EXPECTS(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(bin) + 0.5);
}

std::size_t Histogram::bin_of(double x) const {
  const double clamped = std::clamp(x, lo_, hi_);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((clamped - lo_) / width);
  return std::min(bin, counts_.size() - 1);
}

double Histogram::l1_distance(const Histogram& other) const {
  RAB_EXPECTS(other.counts_.size() == counts_.size());
  double d = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    d += std::fabs(frequency(i) - other.frequency(i));
  }
  return d;
}

}  // namespace rab::stats
