// Small dense linear algebra for AR model fitting.
//
// The AR covariance method reduces to a p x p normal-equation solve with
// p ~ 4, so a simple row-major matrix with partial-pivot Gaussian
// elimination is all the library needs.
#pragma once

#include <cstddef>
#include <vector>

namespace rab::stats {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// A^T * A (cols x cols).
  [[nodiscard]] Matrix gram() const;

  /// A^T * v for v of length rows().
  [[nodiscard]] std::vector<double> transpose_times(
      const std::vector<double>& v) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// A must be square with rows() == b.size(). Throws rab::Error when the
/// system is singular to working precision.
std::vector<double> solve(Matrix a, std::vector<double> b);

/// Least-squares solution of min ||A x - b||_2 via the normal equations,
/// with Tikhonov ridge `ridge` (>= 0) added to the diagonal for stability.
std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b,
                                  double ridge = 0.0);

}  // namespace rab::stats
