#include "net/wire.hpp"

#include <bit>
#include <cctype>
#include <cmath>
#include <cstring>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"

namespace rab::net {

namespace {

// Little-endian scalar append/read. The serving hosts are little-endian;
// the explicit byte order is a contract for the wire, not a hot path.
template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    for (std::size_t i = sizeof(T); i > 0; --i) out.push_back(bytes[i - 1]);
  } else {
    out.append(bytes, sizeof(T));
  }
}

template <typename T>
T get(std::string_view payload, std::size_t offset) {
  if (offset + sizeof(T) > payload.size()) {
    throw InvalidArgument("wire: truncated payload (wanted " +
                          std::to_string(offset + sizeof(T)) +
                          " bytes, have " +
                          std::to_string(payload.size()) + ")");
  }
  char bytes[sizeof(T)];
  std::memcpy(bytes, payload.data() + offset, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    for (std::size_t i = 0; i < sizeof(T) / 2; ++i) {
      std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
    }
  }
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

template <typename T>
T take_all(std::string_view payload) {
  if (payload.size() != sizeof(T)) {
    throw InvalidArgument("wire: payload must be exactly " +
                          std::to_string(sizeof(T)) + " bytes, got " +
                          std::to_string(payload.size()));
  }
  return get<T>(payload, 0);
}

constexpr std::size_t kRateRecordBytes = 8 + 8 + 8 + 8 + 1;

}  // namespace

bool is_request_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kRate) &&
         type <= static_cast<std::uint8_t>(FrameType::kRateSeq);
}

bool is_reply_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kOk) &&
         type <= static_cast<std::uint8_t>(FrameType::kSessionAck);
}

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw InvalidArgument("wire: payload of " +
                          std::to_string(frame.payload.size()) +
                          " bytes exceeds the frame limit");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  put<std::uint8_t>(out, static_cast<std::uint8_t>(frame.type));
  put<std::uint8_t>(out, 0);   // flags
  put<std::uint16_t>(out, 0);  // reserved
  put<std::uint32_t>(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

FrameHeader decode_frame_header(
    std::span<const char, kFrameHeaderBytes> header, bool expect_request) {
  const std::string_view view(header.data(), header.size());
  FrameHeader h;
  h.type = static_cast<std::uint8_t>(get<std::uint8_t>(view, 0));
  const auto flags = get<std::uint8_t>(view, 1);
  const auto reserved = get<std::uint16_t>(view, 2);
  h.length = get<std::uint32_t>(view, 4);
  const bool known =
      expect_request ? is_request_type(h.type) : is_reply_type(h.type);
  if (!known) {
    throw InvalidArgument("wire: unknown frame type " +
                          std::to_string(h.type));
  }
  if (flags != 0 || reserved != 0) {
    throw InvalidArgument("wire: nonzero flags/reserved header bytes");
  }
  if (h.length > kMaxFramePayload) {
    throw InvalidArgument("wire: advertised payload of " +
                          std::to_string(h.length) +
                          " bytes exceeds the frame limit");
  }
  return h;
}

std::string encode_rate_payload(std::span<const rating::Rating> batch) {
  if (batch.size() > kMaxBatchRatings) {
    throw InvalidArgument("wire: batch of " +
                          std::to_string(batch.size()) +
                          " ratings exceeds the per-frame limit of " +
                          std::to_string(kMaxBatchRatings));
  }
  std::string out;
  out.reserve(4 + batch.size() * kRateRecordBytes);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(batch.size()));
  for (const rating::Rating& r : batch) {
    put<std::uint64_t>(out, std::bit_cast<std::uint64_t>(r.time));
    put<std::uint64_t>(out, std::bit_cast<std::uint64_t>(r.value));
    put<std::int64_t>(out, r.rater.value());
    put<std::int64_t>(out, r.product.value());
    put<std::uint8_t>(out, r.unfair ? 1 : 0);
  }
  return out;
}

std::vector<rating::Rating> decode_rate_payload(std::string_view payload) {
  const auto count = get<std::uint32_t>(payload, 0);
  if (count > kMaxBatchRatings) {
    throw InvalidArgument("wire: batch count " + std::to_string(count) +
                          " exceeds the per-frame limit");
  }
  if (payload.size() != 4 + count * kRateRecordBytes) {
    throw InvalidArgument(
        "wire: rate payload size " + std::to_string(payload.size()) +
        " disagrees with its count of " + std::to_string(count));
  }
  std::vector<rating::Rating> batch;
  batch.reserve(count);
  std::size_t at = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = std::bit_cast<double>(get<std::uint64_t>(payload, at));
    r.value = std::bit_cast<double>(get<std::uint64_t>(payload, at + 8));
    r.rater = RaterId(get<std::int64_t>(payload, at + 16));
    r.product = ProductId(get<std::int64_t>(payload, at + 24));
    r.unfair = get<std::uint8_t>(payload, at + 32) != 0;
    at += kRateRecordBytes;
    batch.push_back(r);
  }
  return batch;
}

namespace {

// The v2 session payloads carry a CRC-32 trailer over the bytes before
// it. Plain TCP checksums are too weak for the exactly-once contract: a
// damaged rating batch silently ingests wrong values, and a damaged ack
// can report a bogus durable floor, trimming frames whose rows never
// landed. With the trailer both sides detect damage, drop the
// connection, and resume — dedup makes the retry safe.
void put_crc_trailer(std::string& out) {
  put<std::uint32_t>(out, util::crc32(out.data(), out.size()));
}

std::string_view check_crc_trailer(std::string_view payload,
                                   const char* what) {
  if (payload.size() < 4) {
    throw InvalidArgument(std::string("wire: ") + what +
                          " payload too short for its checksum");
  }
  const std::string_view body = payload.substr(0, payload.size() - 4);
  if (get<std::uint32_t>(payload, body.size()) !=
      util::crc32(body.data(), body.size())) {
    throw InvalidArgument(std::string("wire: ") + what +
                          " payload checksum mismatch");
  }
  return body;
}

}  // namespace

std::string encode_rate_seq_payload(std::uint64_t seq,
                                    std::span<const rating::Rating> batch) {
  std::string out;
  put<std::uint64_t>(out, seq);
  out += encode_rate_payload(batch);
  put_crc_trailer(out);
  return out;
}

SeqBatch decode_rate_seq_payload(std::string_view payload) {
  const std::string_view body = check_crc_trailer(payload, "rate-seq");
  SeqBatch sb;
  sb.seq = get<std::uint64_t>(body, 0);
  sb.ratings = decode_rate_payload(body.substr(8));
  return sb;
}

std::string encode_rate_ack_payload(const RateAck& ack) {
  std::string out;
  put<std::uint64_t>(out, ack.accepted);
  put<std::uint64_t>(out, ack.durable_seq);
  put_crc_trailer(out);
  return out;
}

RateAck decode_rate_ack_payload(std::string_view payload) {
  const std::string_view body = check_crc_trailer(payload, "rate ack");
  if (body.size() != 16) {
    throw InvalidArgument("wire: rate ack payload must be 16 bytes, got " +
                          std::to_string(body.size()));
  }
  RateAck ack;
  ack.accepted = get<std::uint64_t>(body, 0);
  ack.durable_seq = get<std::uint64_t>(body, 8);
  return ack;
}

std::string encode_session_ack_payload(const SessionAck& ack) {
  std::string out;
  put<std::uint64_t>(out, ack.session_id);
  put<std::uint64_t>(out, ack.durable_seq);
  put_crc_trailer(out);
  return out;
}

SessionAck decode_session_ack_payload(std::string_view payload) {
  const std::string_view body = check_crc_trailer(payload, "session ack");
  if (body.size() != 16) {
    throw InvalidArgument(
        "wire: session ack payload must be 16 bytes, got " +
        std::to_string(body.size()));
  }
  SessionAck ack;
  ack.session_id = get<std::uint64_t>(body, 0);
  ack.durable_seq = get<std::uint64_t>(body, 8);
  return ack;
}

std::string encode_u64_payload(std::uint64_t value) {
  std::string out;
  put<std::uint64_t>(out, value);
  return out;
}

std::uint64_t decode_u64_payload(std::string_view payload) {
  return take_all<std::uint64_t>(payload);
}

std::string encode_i64_payload(std::int64_t value) {
  std::string out;
  put<std::int64_t>(out, value);
  return out;
}

std::int64_t decode_i64_payload(std::string_view payload) {
  return take_all<std::int64_t>(payload);
}

std::string encode_f64_payload(double value) {
  std::string out;
  put<std::uint64_t>(out, std::bit_cast<std::uint64_t>(value));
  return out;
}

double decode_f64_payload(std::string_view payload) {
  return std::bit_cast<double>(take_all<std::uint64_t>(payload));
}

// --- JSONL fallback --------------------------------------------------------

namespace {

/// Tiny recursive-descent parser for the restricted JSONL request
/// grammar (flat object, string values without escapes, numbers, and
/// number-array-of-arrays). Anything outside it is InvalidArgument.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void ws() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }

  bool eat(char c) {
    ws();
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) {
      throw InvalidArgument(std::string("wire: expected '") + c +
                            "' in JSONL request at offset " +
                            std::to_string(at_));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (at_ < text_.size() && text_[at_] != '"') {
      const char c = text_[at_++];
      if (c == '\\') {
        throw InvalidArgument(
            "wire: escape sequences are not part of the JSONL request "
            "grammar");
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  double number() {
    ws();
    std::size_t end = at_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    const double value = util::parse_double(
        text_.substr(at_, end - at_), "JSONL number");
    at_ = end;
    return value;
  }

  [[nodiscard]] bool done() {
    ws();
    return at_ >= text_.size();
  }

 private:
  std::string_view text_;
  std::size_t at_ = 0;
};

std::int64_t as_id(double value, const char* what) {
  if (value < 0 || value != std::floor(value) ||
      value > 9.2e18) {
    throw InvalidArgument(std::string("wire: ") + what +
                          " must be a non-negative integer");
  }
  return static_cast<std::int64_t>(value);
}

}  // namespace

JsonRequest parse_json_request(std::string_view line) {
  JsonCursor c(line);
  JsonRequest request;
  c.expect('{');
  if (!c.eat('}')) {
    do {
      const std::string key = c.string();
      c.expect(':');
      if (key == "type") {
        request.type = c.string();
      } else if (key == "rater") {
        request.rater = as_id(c.number(), "rater");
      } else if (key == "product") {
        request.product = as_id(c.number(), "product");
      } else if (key == "since") {
        request.since = static_cast<std::uint64_t>(as_id(c.number(),
                                                         "since"));
      } else if (key == "ratings") {
        c.expect('[');
        if (!c.eat(']')) {
          do {
            c.expect('[');
            rating::Rating r;
            r.time = c.number();
            c.expect(',');
            r.value = c.number();
            c.expect(',');
            r.rater = RaterId(as_id(c.number(), "rater"));
            c.expect(',');
            r.product = ProductId(as_id(c.number(), "product"));
            if (c.eat(',')) r.unfair = c.number() != 0.0;
            c.expect(']');
            if (request.ratings.size() >= kMaxBatchRatings) {
              throw InvalidArgument(
                  "wire: JSONL batch exceeds the per-frame rating limit");
            }
            request.ratings.push_back(r);
          } while (c.eat(','));
          c.expect(']');
        }
      } else {
        throw InvalidArgument("wire: unknown JSONL request key '" + key +
                              "'");
      }
    } while (c.eat(','));
    c.expect('}');
  }
  if (!c.done()) {
    throw InvalidArgument("wire: trailing bytes after JSONL request");
  }
  if (request.type.empty()) {
    throw InvalidArgument("wire: JSONL request is missing \"type\"");
  }
  return request;
}

Frame to_frame(const JsonRequest& request) {
  Frame frame;
  if (request.type == "rate") {
    frame.type = FrameType::kRate;
    frame.payload = encode_rate_payload(request.ratings);
  } else if (request.type == "trust") {
    frame.type = FrameType::kTrust;
    frame.payload = encode_i64_payload(request.rater);
  } else if (request.type == "alarms") {
    frame.type = FrameType::kAlarms;
    frame.payload = encode_u64_payload(request.since);
  } else if (request.type == "stats") {
    frame.type = FrameType::kStats;
  } else if (request.type == "series") {
    frame.type = FrameType::kSeries;
    frame.payload = encode_i64_payload(request.product);
  } else if (request.type == "metrics") {
    frame.type = FrameType::kMetrics;
  } else if (request.type == "drain") {
    frame.type = FrameType::kDrain;
  } else if (request.type == "ping") {
    frame.type = FrameType::kPing;
  } else {
    throw InvalidArgument("wire: unknown JSONL request type '" +
                          request.type + "'");
  }
  return frame;
}

}  // namespace rab::net
