// Wire protocol for `rab serve`: length-prefixed binary frames with a
// JSONL fallback.
//
// Binary frame layout (all integers little-endian):
//
//   u8  type        FrameType below
//   u8  flags       0 (reserved)
//   u16 reserved    0
//   u32 length      payload byte count, <= kMaxFramePayload
//   ... payload
//
// A connection speaks binary unless its first byte is '{', in which case
// every request is one JSON object per line (the debuggable fallback:
// `echo '{"type":"ping"}' | nc`). Responses mirror the request mode.
//
// Rating payload (kRate): u32 count, then count records of
// {f64 time, f64 value, i64 rater, i64 product, u8 unfair}. Query
// replies are JSON text (kJson) so the two modes share one formatter;
// the metrics scrape replies Prometheus text exposition (kText).
//
// Protocol v2 — sessions and exactly-once resume (DESIGN.md §5i):
// kHello establishes a session (reply kSessionAck carrying a
// server-issued session id), kRateSeq prefixes a rate batch with a
// client-assigned monotone sequence number (reply kOk carrying
// {accepted, durable_seq}), and kResume re-attaches a reconnecting
// client to its session (reply kSessionAck whose durable_seq tells the
// client where to replay from). The server dedups any sequence at or
// below its applied watermark, so replaying an unacked window is safe.
// Sessionless kRate keeps working unchanged (at-most-once only).
//
// Robustness contract (fuzzed in tests/test_net.cpp): a malformed frame
// — unknown type, nonzero flags/reserved, oversized length, truncated
// payload, malformed rating batch — must never crash or wedge the
// server; it answers kError (where a reply is still possible) and closes
// only that connection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rating/rating.hpp"

namespace rab::net {

enum class FrameType : std::uint8_t {
  // client -> server
  kRate = 0x01,     ///< rating batch; reply kOk or kRetry
  kTrust = 0x02,    ///< payload i64 rater; reply kJson
  kAlarms = 0x03,   ///< payload u64 per-shard since-index; reply kJson
  kStats = 0x04,    ///< empty; reply kJson per-shard summaries
  kSeries = 0x05,   ///< payload i64 product; reply kJson live series
  kMetrics = 0x06,  ///< empty; reply kText (Prometheus exposition)
  kDrain = 0x07,    ///< empty; flush+checkpoint all shards, reply kJson
  kPing = 0x08,     ///< empty; reply kJson
  kHello = 0x09,    ///< empty; open a session, reply kSessionAck
  kResume = 0x0A,   ///< payload u64 session id; reply kSessionAck
  kRateSeq = 0x0B,  ///< u64 seq + rate payload; reply kOk(RateAck)/kRetry
  // server -> client
  kOk = 0x80,     ///< u64 accepted count; +u64 durable seq for kRateSeq
  kRetry = 0x81,  ///< payload f64 suggested retry delay (backpressure)
  kError = 0x82,  ///< payload utf-8 message
  kJson = 0x83,   ///< payload one JSON object
  kText = 0x84,   ///< payload plain text
  kSessionAck = 0x85,  ///< payload {u64 session id, u64 durable seq}
};

/// Hard ceiling on a frame payload; an advertised length beyond this is
/// rejected before any allocation (the oversized-length-prefix fuzz leg).
inline constexpr std::size_t kMaxFramePayload = 4u << 20;

/// Ceiling on ratings per kRate frame (also bounds decode allocation).
inline constexpr std::size_t kMaxBatchRatings = 65536;

inline constexpr std::size_t kFrameHeaderBytes = 8;

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// True for the types a client may send.
[[nodiscard]] bool is_request_type(std::uint8_t type);
/// True for the types a server may send.
[[nodiscard]] bool is_reply_type(std::uint8_t type);

/// Serializes header + payload. Throws InvalidArgument when the payload
/// exceeds kMaxFramePayload.
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Header fields decoded from the leading kFrameHeaderBytes bytes.
struct FrameHeader {
  std::uint8_t type = 0;
  std::uint32_t length = 0;
};

/// Decodes and validates a frame header against `expect_request`
/// (server side) or replies (client side). Throws InvalidArgument on an
/// unknown type, nonzero flags/reserved bytes, or oversized length.
[[nodiscard]] FrameHeader decode_frame_header(
    std::span<const char, kFrameHeaderBytes> header, bool expect_request);

// --- kRate payload ---------------------------------------------------------

[[nodiscard]] std::string encode_rate_payload(
    std::span<const rating::Rating> batch);

/// Decodes a kRate payload. Throws InvalidArgument on a count above
/// kMaxBatchRatings or a payload whose size disagrees with its count.
[[nodiscard]] std::vector<rating::Rating> decode_rate_payload(
    std::string_view payload);

// --- session / resume payloads (protocol v2) -------------------------------
//
// All three v2 payloads end in a CRC-32 trailer over the preceding
// payload bytes; decoders throw InvalidArgument on a mismatch. TCP's
// checksum is too weak for exactly-once: an undetected damaged batch
// ingests wrong values, and a damaged ack can report a bogus durable
// floor that trims frames whose rows never landed. Detection turns both
// into a dropped connection + resume, which dedup makes safe.

/// Sequenced rate batch: the client-assigned sequence number followed by
/// the standard rate payload.
struct SeqBatch {
  std::uint64_t seq = 0;
  std::vector<rating::Rating> ratings;
};

[[nodiscard]] std::string encode_rate_seq_payload(
    std::uint64_t seq, std::span<const rating::Rating> batch);
[[nodiscard]] SeqBatch decode_rate_seq_payload(std::string_view payload);

/// kOk reply to a kRateSeq frame: ratings applied (dedup'd duplicates
/// count as accepted — the client's work is done either way) plus the
/// session's highest durably-applied sequence. Frames at or below
/// durable_seq may be dropped from the client's replay window.
struct RateAck {
  std::uint64_t accepted = 0;
  std::uint64_t durable_seq = 0;
};

[[nodiscard]] std::string encode_rate_ack_payload(const RateAck& ack);
[[nodiscard]] RateAck decode_rate_ack_payload(std::string_view payload);

/// kSessionAck reply to kHello (fresh id, durable_seq 0) and kResume
/// (the session's durable watermark; the client replays everything
/// after max(its own acked floor, durable_seq)).
struct SessionAck {
  std::uint64_t session_id = 0;
  std::uint64_t durable_seq = 0;
};

[[nodiscard]] std::string encode_session_ack_payload(const SessionAck& ack);
[[nodiscard]] SessionAck decode_session_ack_payload(std::string_view payload);

// --- scalar payloads -------------------------------------------------------

[[nodiscard]] std::string encode_u64_payload(std::uint64_t value);
[[nodiscard]] std::uint64_t decode_u64_payload(std::string_view payload);
[[nodiscard]] std::string encode_i64_payload(std::int64_t value);
[[nodiscard]] std::int64_t decode_i64_payload(std::string_view payload);
[[nodiscard]] std::string encode_f64_payload(double value);
[[nodiscard]] double decode_f64_payload(std::string_view payload);

// --- JSONL fallback --------------------------------------------------------

/// One parsed JSONL request. `type` mirrors the frame-type names
/// ("rate", "trust", "alarms", "stats", "series", "metrics", "drain",
/// "ping"); scalar arguments default to the same values the binary
/// protocol uses for "absent".
struct JsonRequest {
  std::string type;
  std::vector<rating::Rating> ratings;  ///< "rate"
  std::int64_t rater = -1;              ///< "trust"
  std::int64_t product = -1;            ///< "series"
  std::uint64_t since = 0;              ///< "alarms"
};

/// Parses one JSONL request line. The accepted grammar is deliberately
/// small: one flat object, string "type", integer arguments, and
/// "ratings" as an array of [time,value,rater,product] or
/// [time,value,rater,product,unfair] number arrays. Throws
/// InvalidArgument with context on anything else.
[[nodiscard]] JsonRequest parse_json_request(std::string_view line);

/// Converts a JSONL request to its binary frame (shared server path).
[[nodiscard]] Frame to_frame(const JsonRequest& request);

}  // namespace rab::net
