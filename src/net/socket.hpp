// Minimal POSIX socket layer for the serving subsystem.
//
// Blocking sockets with EINTR-aware exact reads/writes are all the wire
// protocol needs; scalability comes from sharding the analysis work, not
// from an async reactor. Listeners are polled with a timeout so the
// accept loop can observe the shutdown flag (the handlers are installed
// without SA_RESTART, see util/shutdown.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rab::net {

/// Endpoint address: "host:port" for TCP or "unix:/path" for a local
/// stream socket.
struct Addr {
  bool is_unix = false;
  std::string host;  ///< TCP host, or the socket path for unix
  std::uint16_t port = 0;

  /// Parses "host:port" or "unix:/path". Throws InvalidArgument on a
  /// malformed address (missing port, port out of range, empty path).
  static Addr parse(const std::string& text);

  [[nodiscard]] std::string to_string() const;
};

/// Owning file descriptor; closes on destruction. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release();
  void reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on `addr` (unlinking a stale unix-socket path
/// first). Throws IoError on failure. `backlog` caps the pending-accept
/// queue (the RAB_SERVE_BACKLOG env knob at the CLI).
Fd listen_on(const Addr& addr, int backlog);

/// Connects to `addr`. Throws IoError when the endpoint is unreachable.
Fd connect_to(const Addr& addr);

/// Accepts one connection; returns an invalid Fd on EINTR/timeout-free
/// transient errors so the caller can re-check its stop flag.
Fd accept_on(int listener);

/// Polls `fd` for readability. Returns true when readable, false on
/// timeout or EINTR (callers re-check their stop flag).
bool poll_readable(int fd, int timeout_ms);

/// Outcome of read_exact: a clean EOF before the first byte is a normal
/// peer close; an EOF mid-buffer is a truncated frame; kTimeout is only
/// produced by the deadline variant when the peer stalls mid-buffer.
enum class ReadStatus { kOk, kEof, kShort, kTimeout };

/// Reads exactly `size` bytes, retrying on EINTR and short reads.
/// Throws IoError on a socket error. The 'net.read.short' failpoint
/// injects a kShort return here (a peer vanishing mid-frame).
ReadStatus read_exact(int fd, void* buf, std::size_t size);

/// read_exact with a per-call deadline: each chunk is poll-gated, so a
/// peer that stops sending mid-buffer yields kTimeout within
/// `timeout_ms` instead of blocking the handler thread forever.
/// timeout_ms <= 0 means no deadline (plain read_exact).
ReadStatus read_exact_deadline(int fd, void* buf, std::size_t size,
                               int timeout_ms);

/// Writes all `size` bytes, retrying on EINTR. Throws IoError on error
/// (EPIPE included — install ignore_sigpipe() so it surfaces here).
/// Failpoints: 'net.write.fail' throws before writing anything;
/// 'net.write.short' writes half the buffer then throws; arm
/// 'net.frame.corrupt:corrupt' to flip one bit in the outgoing bytes
/// (the frame still "succeeds" locally — the peer sees the damage).
void write_all(int fd, const void* buf, std::size_t size);

/// Arms a kernel-level send deadline (SO_SNDTIMEO): a write that cannot
/// make progress within `seconds` fails with IoError instead of
/// blocking forever on a stalled peer. seconds <= 0 clears the deadline.
void set_write_deadline(int fd, double seconds);

/// shutdown(2) both directions; wakes a peer thread blocked in read.
void shutdown_fd(int fd);

/// Local TCP port of a bound socket (resolves port 0 after bind).
[[nodiscard]] std::uint16_t local_port(int fd);

}  // namespace rab::net
