// `rab loadgen`: replay a synthetic (or CSV) rating feed against a
// running `rab serve` and measure ingest latency.
//
// Per-shard ordering: the server's monitors require each shard's subfeed
// in non-decreasing time order, so with C connections the generator
// partitions products by their server shard — connection j owns every
// shard s with s % C == j — and each connection streams its own
// time-ordered subfeed. The union over connections is exactly the input
// feed, so N-shard serving stays bit-identical to the offline sharded
// reference regardless of connection interleaving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "rating/rating.hpp"

namespace rab::net {

struct LoadgenConfig {
  Addr addr;
  /// CSV feed to replay; empty = generate a synthetic feed.
  std::string data_csv;
  // Synthetic feed shape (ignored when data_csv is set).
  std::uint64_t ratings = 100000;
  std::size_t products = 64;
  std::size_t raters = 10000;
  double days = 365.0;
  double mean = 4.0;   ///< gaussian rating value mean
  double sigma = 0.8;  ///< gaussian rating value sigma
  std::uint64_t seed = 1;
  // Replay shape.
  double rate = 0.0;  ///< target ratings/second; 0 = as fast as possible
  std::size_t batch = 512;
  std::size_t connections = 1;
  /// Shard count of the target server (for the product partitioning
  /// above; must match the server's --shards for >1 connections).
  std::size_t server_shards = 1;
  std::size_t max_retries = 1000;
  bool drain_at_end = false;  ///< send kDrain once every rating is acked
  /// Protocol-v2 sessions (ResilientClient): sequenced frames with
  /// automatic reconnect + kResume + unacked-window replay. The stream
  /// survives server restarts mid-feed with exactly-once ingest.
  bool resume = false;
  double backoff_base = 0.02;  ///< reconnect backoff base (seconds)
  double backoff_cap = 1.0;    ///< reconnect backoff cap (seconds)
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t accepted = 0;
  std::uint64_t frames = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;  ///< re-establishments (resume mode)
  std::uint64_t replays = 0;     ///< frames re-sent after a resume
  /// True when SIGINT/SIGTERM stopped the run early; the report then
  /// covers only the ratings sent before the signal.
  bool interrupted = false;
  double seconds = 0.0;
  double ratings_per_second = 0.0;
  // Frame round-trip latency (send to kOk, retries included).
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  std::vector<double> bounds;          ///< histogram upper bounds (seconds)
  std::vector<std::uint64_t> buckets;  ///< size bounds+1; last = overflow
};

/// Deterministic synthetic feed (time-ordered) for the given shape.
[[nodiscard]] std::vector<rating::Rating> synthetic_feed(
    const LoadgenConfig& config);

/// Runs the load against `config.addr` and reports. Throws IoError when
/// the server is unreachable or rejects the feed.
LoadgenReport run_loadgen(const LoadgenConfig& config);

/// One-line JSON report (the BENCH_serve.json payload).
[[nodiscard]] std::string report_json(const LoadgenReport& report);

}  // namespace rab::net
