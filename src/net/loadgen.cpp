#include "net/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "rating/io.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/shutdown.hpp"

namespace rab::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<rating::Rating> load_feed(const LoadgenConfig& config) {
  if (config.data_csv.empty()) return synthetic_feed(config);
  const rating::Dataset data = rating::read_csv_file(config.data_csv);
  std::vector<rating::Rating> feed;
  feed.reserve(data.total_ratings());
  for (ProductId id : data.product_ids()) {
    const auto& rows = data.product(id).rows();
    feed.insert(feed.end(), rows.begin(), rows.end());
  }
  std::sort(feed.begin(), feed.end(), rating::ByTime{});
  return feed;
}

struct ConnResult {
  std::uint64_t sent = 0;
  std::uint64_t accepted = 0;
  std::uint64_t frames = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t replays = 0;
  bool interrupted = false;
  std::vector<double> latencies;  ///< per-frame round-trip seconds
  std::string error;
};

/// Streams one connection's shard-partitioned subfeed. `pace` is the
/// target seconds per rating for this connection (0 = unthrottled).
/// Polls the shutdown flag between frames so SIGINT/SIGTERM yields a
/// partial (interrupted) result instead of a dead process.
void run_connection(const LoadgenConfig& config,
                    const std::vector<rating::Rating>& subfeed, double pace,
                    std::size_t index, ConnResult& out) {
  std::unique_ptr<Client> plain;
  std::unique_ptr<ResilientClient> resilient;
  try {
    if (config.resume) {
      ResilientConfig rc;
      rc.addr = config.addr;
      rc.backoff_base = config.backoff_base;
      rc.backoff_cap = config.backoff_cap;
      rc.max_retries = config.max_retries;
      // Distinct jitter per connection: a restart kicks every connection
      // loose at once, and identical backoff would re-stampede the
      // server in lockstep.
      rc.jitter_seed = config.seed * 0x9e3779b97f4a7c15ull + index + 1;
      rc.should_abort = [] { return util::shutdown_requested(); };
      resilient = std::make_unique<ResilientClient>(std::move(rc));
    } else {
      plain = std::make_unique<Client>(config.addr);
    }
    out.latencies.reserve(subfeed.size() / std::max<std::size_t>(
                                               config.batch, 1) +
                          1);
    const Clock::time_point start = Clock::now();
    std::size_t at = 0;
    std::uint64_t seq = 0;
    while (at < subfeed.size()) {
      if (util::shutdown_requested()) {
        out.interrupted = true;
        break;
      }
      const std::size_t n =
          std::min(config.batch, subfeed.size() - at);
      if (pace > 0.0) {
        // Open-loop pacing: rating `at` is due at start + at*pace; sleep
        // off any lead so a fast server cannot drag the rate up.
        const double due = static_cast<double>(at) * pace;
        const double lead = due - seconds_since(start);
        if (lead > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(lead));
        }
      }
      const Clock::time_point sent_at = Clock::now();
      const std::span<const rating::Rating> batch(subfeed.data() + at, n);
      std::uint64_t accepted = 0;
      std::size_t retries = 0;
      if (resilient) {
        const ResilientClient::SeqResult r =
            resilient->rate_seq(++seq, batch);
        accepted = r.accepted;
        retries = r.retries;
      } else {
        const Client::RateResult r = plain->rate(batch, config.max_retries);
        accepted = r.accepted;
        retries = r.retries;
      }
      out.latencies.push_back(seconds_since(sent_at));
      out.sent += n;
      out.accepted += accepted;
      out.retries += retries;
      ++out.frames;
      at += n;
    }
  } catch (const std::exception& e) {
    // An abort raised inside the resilient client is the signal path,
    // not a failure: the partial tallies above still stand.
    if (util::shutdown_requested()) {
      out.interrupted = true;
    } else {
      out.error = e.what();
    }
  }
  if (resilient) {
    out.reconnects = resilient->reconnects();
    out.replays = resilient->replayed_frames();
  }
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

}  // namespace

std::vector<rating::Rating> synthetic_feed(const LoadgenConfig& config) {
  RAB_EXPECTS(config.products > 0 && config.raters > 0);
  Rng rng(config.seed);
  std::vector<rating::Rating> feed;
  feed.reserve(config.ratings);
  for (std::uint64_t i = 0; i < config.ratings; ++i) {
    rating::Rating r;
    r.time = config.days * static_cast<double>(i) /
             static_cast<double>(std::max<std::uint64_t>(config.ratings, 1));
    r.value = std::clamp(rng.gaussian(config.mean, config.sigma), 0.0, 5.0);
    r.rater = RaterId(
        rng.uniform_int(0, static_cast<std::int64_t>(config.raters) - 1));
    r.product = ProductId(
        rng.uniform_int(0, static_cast<std::int64_t>(config.products) - 1));
    feed.push_back(r);
  }
  return feed;
}

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  RAB_EXPECTS(config.batch > 0 && config.connections > 0);
  RAB_EXPECTS(config.server_shards > 0);
  const std::vector<rating::Rating> feed = load_feed(config);

  // Partition by server shard so every connection's subfeed — and hence
  // every shard's arrival order — stays time-ordered (see file comment).
  const std::size_t conns =
      std::min<std::size_t>(config.connections,
                            std::max<std::size_t>(config.server_shards, 1));
  std::vector<std::vector<rating::Rating>> subfeeds(conns);
  for (const rating::Rating& r : feed) {
    const std::size_t shard =
        shard_of(r.product.value(), config.server_shards);
    subfeeds[shard % conns].push_back(r);
  }

  std::vector<ConnResult> results(conns);
  const double pace =
      config.rate > 0.0
          ? static_cast<double>(conns) / config.rate
          : 0.0;  // per-connection seconds per rating
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      run_connection(config, subfeeds[c], pace, c, results[c]);
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = seconds_since(start);

  LoadgenReport report;
  std::vector<double> latencies;
  for (ConnResult& r : results) {
    if (!r.error.empty()) {
      throw IoError("loadgen: " + r.error);
    }
    report.sent += r.sent;
    report.accepted += r.accepted;
    report.frames += r.frames;
    report.retries += r.retries;
    report.reconnects += r.reconnects;
    report.replays += r.replays;
    report.interrupted = report.interrupted || r.interrupted;
    latencies.insert(latencies.end(), r.latencies.begin(),
                     r.latencies.end());
  }
  report.seconds = elapsed;
  report.ratings_per_second =
      elapsed > 0.0 ? static_cast<double>(report.sent) / elapsed : 0.0;

  std::sort(latencies.begin(), latencies.end());
  report.p50 = quantile(latencies, 0.50);
  report.p90 = quantile(latencies, 0.90);
  report.p99 = quantile(latencies, 0.99);
  report.max = latencies.empty() ? 0.0 : latencies.back();
  const std::span<const double> bounds =
      util::metrics::latency_bounds_seconds();
  report.bounds.assign(bounds.begin(), bounds.end());
  report.buckets.assign(bounds.size() + 1, 0);
  for (const double v : latencies) {
    std::size_t b = 0;
    while (b < report.bounds.size() && v > report.bounds[b]) ++b;
    ++report.buckets[b];
  }

  if (config.drain_at_end && !report.interrupted) {
    // Every rating above was acked before its connection closed, so the
    // drain job lands behind all of them in every shard queue. Skipped
    // on interrupt: the operator signalled "stop now", not "wind down".
    Client client(config.addr);
    (void)client.drain();
  }
  return report;
}

std::string report_json(const LoadgenReport& report) {
  std::string out = "{\"benchmark\":\"rab_loadgen\"";
  out += ",\"ratings\":" + std::to_string(report.sent);
  out += ",\"accepted\":" + std::to_string(report.accepted);
  out += ",\"frames\":" + std::to_string(report.frames);
  out += ",\"retries\":" + std::to_string(report.retries);
  out += ",\"reconnects\":" + std::to_string(report.reconnects);
  out += ",\"replays\":" + std::to_string(report.replays);
  out += std::string(",\"interrupted\":") +
         (report.interrupted ? "true" : "false");
  out += ",\"seconds\":" + fmt(report.seconds);
  out += ",\"ratings_per_second\":" + fmt(report.ratings_per_second);
  out += ",\"latency_seconds\":{\"p50\":" + fmt(report.p50) +
         ",\"p90\":" + fmt(report.p90) + ",\"p99\":" + fmt(report.p99) +
         ",\"max\":" + fmt(report.max) + ",\"le\":[";
  for (std::size_t i = 0; i < report.bounds.size(); ++i) {
    if (i > 0) out += ',';
    out += fmt(report.bounds[i]);
  }
  out += "],\"counts\":[";
  for (std::size_t i = 0; i < report.buckets.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(report.buckets[i]);
  }
  out += "]}}";
  return out;
}

}  // namespace rab::net
