// Blocking binary-protocol client for `rab serve` — the shared substrate
// of the load generator, the `rab query` subcommand, and the protocol
// tests. ResilientClient layers protocol-v2 sessions on top: sequenced
// frames, automatic reconnect with capped exponential backoff, kResume
// re-attachment, and replay of the unacked window (DESIGN.md §5i).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <random>
#include <span>
#include <string>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "rating/rating.hpp"

namespace rab::net {

class Client {
 public:
  /// Connects immediately; throws IoError when the server is unreachable.
  explicit Client(const Addr& addr);

  /// Sends one request frame and reads its reply. Throws IoError when
  /// the connection drops, InvalidArgument when the reply frame is
  /// malformed.
  Frame roundtrip(const Frame& request);

  struct RateResult {
    std::uint64_t accepted = 0;  ///< ratings the server queued
    std::size_t retries = 0;     ///< kRetry backpressure rounds
  };

  /// Sends a rating batch, honoring kRetry backpressure (sleeping the
  /// server-suggested delay) up to `max_retries` resends of the same
  /// frame. Throws IoError when the server still has no room after that
  /// or answers kError.
  RateResult rate(std::span<const rating::Rating> batch,
                  std::size_t max_retries = 100);

  // Query wrappers; each returns the reply's JSON (kJson) or text
  // (kMetrics) payload, throwing IoError on a kError reply.
  std::string trust(std::int64_t rater);
  std::string alarms(std::uint64_t since);
  std::string stats();
  std::string series(std::int64_t product);
  std::string metrics();
  std::string drain();
  std::string ping();

  /// Raw byte injection for the protocol-robustness tests (malformed
  /// headers, truncated frames, garbage).
  void send_raw(std::string_view bytes);

  /// Reads one reply frame (after send_raw). Throws IoError on EOF.
  Frame read_reply();

  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  std::string expect_payload(const Frame& request);

  Fd fd_;
};

struct ResilientConfig {
  Addr addr;
  /// Reconnect backoff: attempt k sleeps min(cap, base * 2^k) scaled by
  /// a uniform jitter in [0.5, 1), drawn from `jitter_seed`.
  double backoff_base = 0.02;
  double backoff_cap = 1.0;
  std::uint64_t jitter_seed = 1;
  /// Consecutive failed reconnect attempts before giving up with
  /// IoError. 0 = retry forever (callers abort via `should_abort`).
  std::size_t max_reconnects = 0;
  /// kRetry backpressure rounds per frame before giving up.
  std::size_t max_retries = 1000;
  /// Polled between attempts and before every send; returning true
  /// aborts the operation with IoError (e.g. util::shutdown_requested
  /// so SIGINT still produces a partial loadgen report).
  std::function<bool()> should_abort;
};

/// Exactly-once sequenced ingest over an unreliable connection. The
/// caller assigns strictly increasing sequence numbers; the client keeps
/// every frame in a replay window until the server acks it durable, and
/// on any connection failure reconnects (capped exponential backoff +
/// jitter), re-attaches via kResume, and replays the window above the
/// server's durable floor. The server dedups replays, so every rating
/// is applied exactly once no matter where the connection — or the
/// server — died. Not thread-safe; one instance per connection thread.
class ResilientClient {
 public:
  explicit ResilientClient(ResilientConfig config);
  ~ResilientClient();

  struct SeqResult {
    std::uint64_t accepted = 0;     ///< ratings the server queued
    std::uint64_t durable_seq = 0;  ///< session's durable floor at ack
    std::size_t retries = 0;        ///< kRetry rounds for this frame
  };

  /// Sends the sequenced batch, transparently riding out connection
  /// failures. `seq` must be strictly greater than any previous call's.
  /// Throws IoError only when reconnects are exhausted or should_abort
  /// fires.
  SeqResult rate_seq(std::uint64_t seq,
                     std::span<const rating::Rating> batch);

  /// Empty sequenced frame: advances no data but returns the current
  /// durable floor (an ack probe for end-of-stream settling).
  SeqResult probe(std::uint64_t seq);

  /// Session id (0 until the first successful hello).
  [[nodiscard]] std::uint64_t session() const { return session_; }
  /// Successful re-establishments after the first connection.
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }
  /// Window frames re-sent during resume replays.
  [[nodiscard]] std::uint64_t replayed_frames() const { return replayed_; }
  /// Frames still in the replay window (sent but not yet durable).
  [[nodiscard]] std::size_t window_size() const { return window_.size(); }

  /// Borrow the underlying connection (connecting if needed) for query
  /// frames (stats, drain). Throws IoError when unreachable.
  Client& raw();

 private:
  struct Pending {
    std::uint64_t seq = 0;
    std::string bytes;  ///< encoded kRateSeq frame, replayed verbatim
    std::uint64_t ratings = 0;
    bool sent_once = false;  ///< a later send of this frame is a replay
  };

  void check_abort() const;
  void ensure_session();  ///< connect + hello/resume; no replay
  void drop_connection();
  void backoff_sleep(std::size_t attempt);
  void trim_window(std::uint64_t durable_seq);
  SeqResult pump_window();  ///< send every unsent window frame, read acks
  SeqResult send_pending(const Pending& pending);

  ResilientConfig config_;
  std::unique_ptr<Client> client_;
  std::mt19937_64 jitter_;
  std::uint64_t session_ = 0;
  std::uint64_t sent_seq_ = 0;   ///< highest seq sent on THIS connection
  std::uint64_t acked_floor_ = 0;  ///< highest durable_seq ever acked
  std::uint64_t reconnects_ = 0;
  std::uint64_t replayed_ = 0;
  std::deque<Pending> window_;
};

}  // namespace rab::net
