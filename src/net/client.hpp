// Blocking binary-protocol client for `rab serve` — the shared substrate
// of the load generator, the `rab query` subcommand, and the protocol
// tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "rating/rating.hpp"

namespace rab::net {

class Client {
 public:
  /// Connects immediately; throws IoError when the server is unreachable.
  explicit Client(const Addr& addr);

  /// Sends one request frame and reads its reply. Throws IoError when
  /// the connection drops, InvalidArgument when the reply frame is
  /// malformed.
  Frame roundtrip(const Frame& request);

  struct RateResult {
    std::uint64_t accepted = 0;  ///< ratings the server queued
    std::size_t retries = 0;     ///< kRetry backpressure rounds
  };

  /// Sends a rating batch, honoring kRetry backpressure (sleeping the
  /// server-suggested delay) up to `max_retries` resends of the same
  /// frame. Throws IoError when the server still has no room after that
  /// or answers kError.
  RateResult rate(std::span<const rating::Rating> batch,
                  std::size_t max_retries = 100);

  // Query wrappers; each returns the reply's JSON (kJson) or text
  // (kMetrics) payload, throwing IoError on a kError reply.
  std::string trust(std::int64_t rater);
  std::string alarms(std::uint64_t since);
  std::string stats();
  std::string series(std::int64_t product);
  std::string metrics();
  std::string drain();
  std::string ping();

  /// Raw byte injection for the protocol-robustness tests (malformed
  /// headers, truncated frames, garbage).
  void send_raw(std::string_view bytes);

  /// Reads one reply frame (after send_raw). Throws IoError on EOF.
  Frame read_reply();

  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  std::string expect_payload(const Frame& request);

  Fd fd_;
};

}  // namespace rab::net
