#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace rab::net {

Client::Client(const Addr& addr) : fd_(connect_to(addr)) {}

void Client::send_raw(std::string_view bytes) {
  write_all(fd_.get(), bytes.data(), bytes.size());
}

Frame Client::read_reply() {
  char header[kFrameHeaderBytes];
  const ReadStatus hs = read_exact(fd_.get(), header, sizeof header);
  if (hs != ReadStatus::kOk) {
    throw IoError("client: server closed the connection");
  }
  const FrameHeader h = decode_frame_header(
      std::span<const char, kFrameHeaderBytes>(header), false);
  Frame reply;
  reply.type = static_cast<FrameType>(h.type);
  reply.payload.resize(h.length);
  if (h.length > 0 &&
      read_exact(fd_.get(), reply.payload.data(), h.length) !=
          ReadStatus::kOk) {
    throw IoError("client: server closed the connection mid-reply");
  }
  return reply;
}

Frame Client::roundtrip(const Frame& request) {
  send_raw(encode_frame(request));
  return read_reply();
}

Client::RateResult Client::rate(std::span<const rating::Rating> batch,
                                std::size_t max_retries) {
  const std::string bytes =
      encode_frame({FrameType::kRate, encode_rate_payload(batch)});
  RateResult result;
  for (;;) {
    send_raw(bytes);
    const Frame reply = read_reply();
    if (reply.type == FrameType::kOk) {
      result.accepted = decode_u64_payload(reply.payload);
      return result;
    }
    if (reply.type == FrameType::kRetry) {
      if (result.retries >= max_retries) {
        throw IoError("client: server backpressure persisted after " +
                      std::to_string(result.retries) + " retries");
      }
      ++result.retries;
      const double after = decode_f64_payload(reply.payload);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(after > 0.0 ? after : 0.001));
      continue;
    }
    throw IoError("client: rate rejected: " + reply.payload);
  }
}

std::string Client::expect_payload(const Frame& request) {
  const Frame reply = roundtrip(request);
  if (reply.type == FrameType::kError) {
    throw IoError("client: server error: " + reply.payload);
  }
  return reply.payload;
}

std::string Client::trust(std::int64_t rater) {
  return expect_payload({FrameType::kTrust, encode_i64_payload(rater)});
}

std::string Client::alarms(std::uint64_t since) {
  return expect_payload({FrameType::kAlarms, encode_u64_payload(since)});
}

std::string Client::stats() { return expect_payload({FrameType::kStats, ""}); }

std::string Client::series(std::int64_t product) {
  return expect_payload({FrameType::kSeries, encode_i64_payload(product)});
}

std::string Client::metrics() {
  return expect_payload({FrameType::kMetrics, ""});
}

std::string Client::drain() { return expect_payload({FrameType::kDrain, ""}); }

std::string Client::ping() { return expect_payload({FrameType::kPing, ""}); }

// --- ResilientClient -------------------------------------------------------

namespace {

// A reply that frames correctly but fails its payload checksum is wire
// damage, not a protocol bug: surface it as the transient IoError the
// reconnect loop handles instead of the fatal InvalidArgument.
SessionAck checked_session_ack(std::string_view payload) {
  try {
    return decode_session_ack_payload(payload);
  } catch (const InvalidArgument& e) {
    throw IoError(std::string("resilient client: damaged session ack: ") +
                  e.what());
  }
}

RateAck checked_rate_ack(std::string_view payload) {
  try {
    return decode_rate_ack_payload(payload);
  } catch (const InvalidArgument& e) {
    throw IoError(std::string("resilient client: damaged rate ack: ") +
                  e.what());
  }
}

// kRetry's suggested delay rides the wire unchecksummed; clamp it so a
// damaged byte cannot park the client in a year-long sleep.
constexpr double kMaxRetryAfter = 5.0;

}  // namespace

ResilientClient::ResilientClient(ResilientConfig config)
    : config_(std::move(config)), jitter_(config_.jitter_seed) {}

ResilientClient::~ResilientClient() = default;

void ResilientClient::check_abort() const {
  if (config_.should_abort && config_.should_abort()) {
    throw IoError("resilient client: aborted by caller");
  }
}

void ResilientClient::drop_connection() { client_.reset(); }

void ResilientClient::backoff_sleep(std::size_t attempt) {
  if (config_.max_reconnects != 0 && attempt >= config_.max_reconnects) {
    throw IoError("resilient client: gave up after " +
                  std::to_string(attempt) + " reconnect attempts");
  }
  double delay = config_.backoff_base;
  for (std::size_t k = 0; k < attempt && delay < config_.backoff_cap; ++k) {
    delay *= 2.0;
  }
  delay = std::min(delay, config_.backoff_cap);
  // Jitter in [0.5, 1): desynchronizes a reconnect storm of N clients
  // all kicked loose by the same server restart.
  const double u = std::uniform_real_distribution<double>(0.5, 1.0)(jitter_);
  std::this_thread::sleep_for(std::chrono::duration<double>(delay * u));
}

void ResilientClient::trim_window(std::uint64_t durable_seq) {
  acked_floor_ = std::max(acked_floor_, durable_seq);
  while (!window_.empty() && window_.front().seq <= acked_floor_) {
    window_.pop_front();
  }
}

void ResilientClient::ensure_session() {
  if (client_) return;
  client_ = std::make_unique<Client>(config_.addr);
  if (session_ == 0) {
    const Frame reply = client_->roundtrip({FrameType::kHello, ""});
    if (reply.type != FrameType::kSessionAck) {
      throw IoError("resilient client: hello rejected: " + reply.payload);
    }
    session_ = checked_session_ack(reply.payload).session_id;
    sent_seq_ = 0;
    return;
  }
  const Frame reply = client_->roundtrip(
      {FrameType::kResume, encode_u64_payload(session_)});
  if (reply.type != FrameType::kSessionAck) {
    throw IoError("resilient client: resume rejected: " + reply.payload);
  }
  const SessionAck ack = checked_session_ack(reply.payload);
  if (ack.session_id != session_) {
    throw IoError("resilient client: resume answered a different session");
  }
  ++reconnects_;
  // Replay floor: the larger of the server's durable watermark and every
  // durable ack we have already seen. Everything above it is re-sent by
  // pump_window(); the server's dedup absorbs any overlap.
  trim_window(ack.durable_seq);
  sent_seq_ = acked_floor_;
}

ResilientClient::SeqResult ResilientClient::send_pending(
    const Pending& pending) {
  SeqResult out;
  for (;;) {
    check_abort();
    client_->send_raw(pending.bytes);
    const Frame reply = client_->read_reply();
    if (reply.type == FrameType::kOk) {
      const RateAck ack = checked_rate_ack(reply.payload);
      out.accepted = ack.accepted;
      out.durable_seq = ack.durable_seq;
      return out;
    }
    if (reply.type == FrameType::kRetry) {
      if (out.retries >= config_.max_retries) {
        throw IoError("resilient client: backpressure persisted after " +
                      std::to_string(out.retries) + " retries");
      }
      ++out.retries;
      const double after =
          std::min(decode_f64_payload(reply.payload), kMaxRetryAfter);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(after > 0.0 ? after : 0.001));
      continue;
    }
    throw IoError("resilient client: rate-seq rejected: " + reply.payload);
  }
}

ResilientClient::SeqResult ResilientClient::pump_window() {
  SeqResult last;
  bool any = false;
  std::uint64_t tail_durable = acked_floor_;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    Pending& pending = window_[i];
    if (pending.seq <= sent_seq_) continue;
    if (pending.sent_once) ++replayed_;  // resume replay, not first send
    pending.sent_once = true;
    const SeqResult r = send_pending(pending);
    sent_seq_ = pending.seq;
    last = r;
    any = true;
    tail_durable = std::max(tail_durable, r.durable_seq);
  }
  trim_window(tail_durable);
  if (!any) last.durable_seq = acked_floor_;
  return last;
}

ResilientClient::SeqResult ResilientClient::rate_seq(
    std::uint64_t seq, std::span<const rating::Rating> batch) {
  if (seq == 0 || (!window_.empty() && seq <= window_.back().seq) ||
      seq <= acked_floor_) {
    throw InvalidArgument(
        "resilient client: sequence numbers must be strictly increasing");
  }
  Pending pending;
  pending.seq = seq;
  pending.ratings = batch.size();
  pending.bytes = encode_frame(
      {FrameType::kRateSeq, encode_rate_seq_payload(seq, batch)});
  window_.push_back(std::move(pending));
  for (std::size_t attempt = 0;; ++attempt) {
    check_abort();
    try {
      ensure_session();
      SeqResult result = pump_window();
      if (result.accepted == 0 && acked_floor_ >= seq) {
        // The frame's ack was lost with its connection, but a resume
        // reported the frame durable — it was applied; report it so.
        result.accepted = batch.size();
      }
      return result;
    } catch (const InvalidArgument&) {
      throw;  // protocol bug, not a transient fault
    } catch (const Error&) {
      drop_connection();
      backoff_sleep(attempt);
    }
  }
}

ResilientClient::SeqResult ResilientClient::probe(std::uint64_t seq) {
  return rate_seq(seq, {});
}

Client& ResilientClient::raw() {
  for (std::size_t attempt = 0;; ++attempt) {
    check_abort();
    try {
      ensure_session();
      return *client_;
    } catch (const Error&) {
      drop_connection();
      backoff_sleep(attempt);
    }
  }
}

}  // namespace rab::net
