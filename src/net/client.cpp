#include "net/client.hpp"

#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace rab::net {

Client::Client(const Addr& addr) : fd_(connect_to(addr)) {}

void Client::send_raw(std::string_view bytes) {
  write_all(fd_.get(), bytes.data(), bytes.size());
}

Frame Client::read_reply() {
  char header[kFrameHeaderBytes];
  const ReadStatus hs = read_exact(fd_.get(), header, sizeof header);
  if (hs != ReadStatus::kOk) {
    throw IoError("client: server closed the connection");
  }
  const FrameHeader h = decode_frame_header(
      std::span<const char, kFrameHeaderBytes>(header), false);
  Frame reply;
  reply.type = static_cast<FrameType>(h.type);
  reply.payload.resize(h.length);
  if (h.length > 0 &&
      read_exact(fd_.get(), reply.payload.data(), h.length) !=
          ReadStatus::kOk) {
    throw IoError("client: server closed the connection mid-reply");
  }
  return reply;
}

Frame Client::roundtrip(const Frame& request) {
  send_raw(encode_frame(request));
  return read_reply();
}

Client::RateResult Client::rate(std::span<const rating::Rating> batch,
                                std::size_t max_retries) {
  const std::string bytes =
      encode_frame({FrameType::kRate, encode_rate_payload(batch)});
  RateResult result;
  for (;;) {
    send_raw(bytes);
    const Frame reply = read_reply();
    if (reply.type == FrameType::kOk) {
      result.accepted = decode_u64_payload(reply.payload);
      return result;
    }
    if (reply.type == FrameType::kRetry) {
      if (result.retries >= max_retries) {
        throw IoError("client: server backpressure persisted after " +
                      std::to_string(result.retries) + " retries");
      }
      ++result.retries;
      const double after = decode_f64_payload(reply.payload);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(after > 0.0 ? after : 0.001));
      continue;
    }
    throw IoError("client: rate rejected: " + reply.payload);
  }
}

std::string Client::expect_payload(const Frame& request) {
  const Frame reply = roundtrip(request);
  if (reply.type == FrameType::kError) {
    throw IoError("client: server error: " + reply.payload);
  }
  return reply.payload;
}

std::string Client::trust(std::int64_t rater) {
  return expect_payload({FrameType::kTrust, encode_i64_payload(rater)});
}

std::string Client::alarms(std::uint64_t since) {
  return expect_payload({FrameType::kAlarms, encode_u64_payload(since)});
}

std::string Client::stats() { return expect_payload({FrameType::kStats, ""}); }

std::string Client::series(std::int64_t product) {
  return expect_payload({FrameType::kSeries, encode_i64_payload(product)});
}

std::string Client::metrics() {
  return expect_payload({FrameType::kMetrics, ""});
}

std::string Client::drain() { return expect_payload({FrameType::kDrain, ""}); }

std::string Client::ping() { return expect_payload({FrameType::kPing, ""}); }

}  // namespace rab::net
