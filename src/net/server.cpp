#include "net/server.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <limits>
#include <list>
#include <map>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "net/queue.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/shutdown.hpp"

namespace rab::net {

namespace {

/// Serving metrics (catalog: docs/METRICS.md).
struct ServeMetrics {
  util::metrics::Counter& connections =
      util::metrics::counter("serve.connections");
  util::metrics::Counter& frames = util::metrics::counter("serve.frames");
  util::metrics::Counter& ratings = util::metrics::counter("serve.ratings");
  util::metrics::Counter& rejected =
      util::metrics::counter("serve.rejected");
  util::metrics::Counter& retries = util::metrics::counter("serve.retries");
  util::metrics::Counter& errors = util::metrics::counter("serve.errors");
  util::metrics::Counter& drains = util::metrics::counter("serve.drains");
  util::metrics::Counter& reconnects =
      util::metrics::counter("serve.reconnects");
  util::metrics::Counter& dup_frames =
      util::metrics::counter("serve.dup_frames");
  util::metrics::Counter& idle_reaped =
      util::metrics::counter("serve.idle_reaped");
  util::metrics::Counter& read_timeouts =
      util::metrics::counter("net.read.timeouts");
  util::metrics::Gauge& queue_depth =
      util::metrics::gauge("serve.queue.depth");
  util::metrics::Histogram& ingest_seconds = util::metrics::histogram(
      "serve.ingest.seconds", util::metrics::latency_bounds_seconds());

  static ServeMetrics& get() {
    static ServeMetrics m;
    return m;
  }
};

std::string fmt_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

void json_escape_into(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

/// Buffered line reader for the JSONL fallback; lines are capped at the
/// frame-payload limit so a newline-free firehose cannot balloon memory.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False on EOF (or an over-long line, which is a protocol error the
  /// caller treats as a disconnect). The returned line excludes '\n'.
  bool next(std::string& line) {
    line.clear();
    for (;;) {
      while (at_ < buf_.size()) {
        const char c = buf_[at_++];
        if (c == '\n') return true;
        if (line.size() >= kMaxFramePayload) return false;
        line.push_back(c);
      }
      char chunk[4096];
      ssize_t n;
      do {
        n = ::read(fd_, chunk, sizeof chunk);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return false;  // EOF or dead peer: drop the connection
      buf_.assign(chunk, static_cast<std::size_t>(n));
      at_ = 0;
    }
  }

 private:
  int fd_;
  std::string buf_;
  std::size_t at_ = 0;
};

}  // namespace

std::size_t shard_of(std::int64_t product, std::size_t shards) {
  // splitmix64 finalizer: cheap, stable across platforms, and mixes the
  // small dense product ids a real feed uses into all 64 bits.
  auto x = static_cast<std::uint64_t>(product);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards);
}

std::string shard_dir(const std::string& root, std::size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "/shard-%04zu", shard);
  return root + buf;
}

struct Server::Impl {
  struct Shard {
    explicit Shard(std::size_t queue_capacity) : queue(queue_capacity) {}

    std::unique_ptr<detectors::OnlineMonitor> monitor;
    BoundedTaskQueue queue;
    std::thread thread;
    // Worker-thread-owned tallies; read by queries *on* the worker.
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;   ///< InvalidArgument (order, ids, NaN)
    std::uint64_t io_errors = 0;  ///< store/checkpoint environment failures
    /// Published copy of the monitor's durable watermark table (session →
    /// highest crash-durable sequence), refreshed by the worker after
    /// every sequenced batch so connection threads can compute acks
    /// without touching the monitor.
    std::mutex durable_mu;
    std::map<std::uint64_t, std::uint64_t> durable;
  };

  struct Conn {
    Fd fd;
    std::thread thread;
    std::atomic<bool> done{false};
    /// Session attached via kHello/kResume (0 = sessionless), plus the
    /// owner serial fencing this connection against a successor that
    /// resumed the same session (the zombie-writer guard).
    std::uint64_t session = 0;
    std::uint64_t serial = 0;
  };

  /// One enqueued-but-not-yet-durable sequenced frame: its sequence and
  /// the shards that received a part of it. The frame is durable once
  /// every involved shard's durable watermark has reached `seq`.
  struct Outstanding {
    std::uint64_t seq = 0;
    std::vector<std::size_t> involved;
  };

  struct SessionState {
    std::uint64_t owner_serial = 0;   ///< fences stale connections
    std::uint64_t last_seq = 0;       ///< highest sequence ever enqueued
    std::uint64_t acked_durable = 0;  ///< largest fully-durable prefix
    std::deque<Outstanding> outstanding;
  };

  explicit Impl(ServeConfig config) : config(std::move(config)) {}

  ServeConfig config;
  Fd listener;
  std::vector<std::unique_ptr<Shard>> shards;
  std::mutex conns_mu;
  std::list<std::unique_ptr<Conn>> conns;
  std::atomic<bool> stop{false};
  std::atomic<bool> drain_requested{false};
  std::atomic<bool> draining{false};
  std::atomic<bool> stopped{false};
  std::once_flag drain_once;
  std::string drain_error;  ///< first shard drain failure, for the exit code

  /// Session registry (lock order: sessions_mu before any durable_mu).
  /// Ids are random nonzero u64s — a restarted server adopts whatever id
  /// a resuming client presents, so ids need no cross-boot coordination.
  std::mutex sessions_mu;
  std::unordered_map<std::uint64_t, SessionState> sessions;
  std::mt19937_64 session_rng{std::random_device{}()};
  std::uint64_t next_conn_serial = 0;

  void start();
  void run();
  void drain_all();

  void worker_main(std::size_t index);
  void connection_main(Conn& conn);
  void binary_loop(Conn& conn);
  void jsonl_loop(Conn& conn);
  void reap_connections();
  std::size_t live_connections();

  [[nodiscard]] std::uint64_t shard_durable(std::size_t index,
                                            std::uint64_t session);
  void trim_acked(SessionState& state, std::uint64_t session);
  bool enqueue_batch(std::vector<rating::Rating> batch,
                     std::uint64_t session, std::uint64_t seq,
                     std::vector<std::size_t>& involved);

  Frame dispatch(Conn& conn, FrameType type, std::string_view payload);
  Frame handle_rate(std::string_view payload);
  Frame handle_hello(Conn& conn);
  Frame handle_resume(Conn& conn, std::string_view payload);
  Frame handle_rate_seq(Conn& conn, std::string_view payload);
  Frame handle_trust(std::int64_t rater);
  Frame handle_alarms(std::uint64_t since);
  Frame handle_stats();
  Frame handle_series(std::int64_t product);
  Frame handle_metrics();
  Frame handle_drain();
  Frame handle_ping();

  /// Runs `fn` on shard `index`'s worker thread and waits for it; the
  /// worker has exclusive monitor access, so this is the only correct
  /// way to read shard state while the server is live. False when the
  /// queue is already closed (server stopping).
  bool run_on_shard(std::size_t index, const std::function<void()>& fn);
};

void Server::Impl::start() {
  shards.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    detectors::OnlineConfig mc = config.monitor;
    if (!mc.checkpoint_dir.empty()) {
      mc.checkpoint_dir = shard_dir(mc.checkpoint_dir, i);
    }
    if (!mc.store_dir.empty()) {
      mc.store_dir = shard_dir(mc.store_dir, i);
      // The serving path always uses batch-aligned commits: a store
      // group must never split a sequenced frame's rows from its session
      // marker, or a crash between the halves would lose the dedup
      // watermark for rows that survived (DESIGN.md §5i).
      mc.store_marker_commits = true;
    }
    auto shard = std::make_unique<Shard>(config.queue_capacity);
    shard->monitor = std::make_unique<detectors::OnlineMonitor>(mc);
    if (!mc.store_dir.empty()) {
      (void)shard->monitor->restore_from_store();
    } else if (!mc.checkpoint_dir.empty()) {
      (void)shard->monitor->restore_latest(mc.checkpoint_dir);
    }
    // Seed the published durable table from the restored state so a
    // client resuming right after a restart gets an honest floor.
    shard->durable = shard->monitor->durable_watermarks();
    shards.push_back(std::move(shard));
  }
  listener = listen_on(config.listen, config.backlog);
  if (!config.listen.is_unix && config.listen.port == 0) {
    config.listen.port = local_port(listener.get());
  }
  for (std::size_t i = 0; i < config.shards; ++i) {
    shards[i]->thread = std::thread([this, i] { worker_main(i); });
  }
}

void Server::Impl::run() {
  while (!stop.load(std::memory_order_acquire)) {
    if (util::shutdown_requested() || drain_requested.load()) break;
    reap_connections();
    if (!poll_readable(listener.get(), 100)) continue;
    Fd fd = accept_on(listener.get());
    if (!fd.valid()) continue;
    if (util::failpoints_armed() &&
        util::failpoint_poll("net.accept")) [[unlikely]] {
      continue;  // injected accept failure: drop the connection unserved
    }
    ServeMetrics::get().connections.add();
    if (live_connections() >= config.max_connections) {
      try {
        const std::string bytes = encode_frame(
            {FrameType::kError, "busy: connection limit reached"});
        write_all(fd.get(), bytes.data(), bytes.size());
      } catch (const std::exception&) {
        // The rejected peer vanished first; nothing to do.
      }
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = std::move(fd);
    Conn* raw = conn.get();
    {
      const std::lock_guard<std::mutex> lock(conns_mu);
      conns.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { connection_main(*raw); });
  }
  drain_all();  // idempotent: a kDrain frame may already have drained
  listener.reset();
  {
    const std::lock_guard<std::mutex> lock(conns_mu);
    for (auto& c : conns) shutdown_fd(c->fd.get());
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  conns.clear();
  for (auto& s : shards) s->queue.close();
  for (auto& s : shards) {
    if (s->thread.joinable()) s->thread.join();
  }
  stopped.store(true, std::memory_order_release);
  if (!drain_error.empty()) {
    throw IoError("serve: drain failed: " + drain_error);
  }
}

void Server::Impl::drain_all() {
  std::call_once(drain_once, [&] {
    draining.store(true);
    ServeMetrics::get().drains.add();
    // One drain job per shard, queued *behind* every rating batch already
    // accepted — the queues run dry, then each monitor checkpoints its
    // pre-flush state and analyzes its final partial epoch.
    std::vector<std::future<void>> done;
    done.reserve(shards.size());
    for (auto& shard : shards) {
      auto promise = std::make_shared<std::promise<void>>();
      done.push_back(promise->get_future());
      ShardTask task;
      task.job = [&monitor = *shard->monitor, promise] {
        try {
          monitor.drain();
          promise->set_value();
        } catch (...) {
          promise->set_exception(std::current_exception());
        }
      };
      if (!shard->queue.push_admin(std::move(task))) promise->set_value();
    }
    for (auto& f : done) {
      try {
        f.get();
      } catch (const std::exception& e) {
        if (drain_error.empty()) drain_error = e.what();
      }
    }
  });
}

void Server::Impl::worker_main(std::size_t index) {
  Shard& shard = *shards[index];
  ServeMetrics& metrics = ServeMetrics::get();
  ShardTask task;
  while (shard.queue.pop(task)) {
    if (task.job) {
      task.job();
      continue;
    }
    // Replay dedup: a sequenced sub-batch at or below this shard's
    // applied watermark has already been ingested here (the client is
    // replaying an unacked window after a reconnect). Skipping it is
    // what makes at-least-once delivery exactly-once.
    if (task.session != 0 &&
        shard.monitor->applied_watermark(task.session) >= task.seq) {
      metrics.dup_frames.add();
      metrics.queue_depth.add(-1.0);
      continue;
    }
    const util::metrics::ScopedTimer timer(metrics.ingest_seconds);
    shard.monitor->begin_atomic_batch();
    std::uint64_t accepted = 0;
    for (const rating::Rating& r : task.ratings) {
      try {
        shard.monitor->ingest(r);
        ++accepted;
      } catch (const InvalidArgument&) {
        // Out-of-order or malformed rating: reject it, keep the shard
        // serving. The count is visible via kStats and serve.rejected.
        ++shard.rejected;
        metrics.rejected.add();
      } catch (const Error& e) {
        // Store/checkpoint environment failure: degraded durability
        // beats a dead daemon. Reported once, counted always.
        ++shard.io_errors;
        if (shard.io_errors == 1) {
          std::fprintf(stderr, "rab serve: shard %zu: %s\n", index,
                       e.what());
        }
      }
    }
    try {
      shard.monitor->end_atomic_batch(task.session, task.seq);
    } catch (const Error& e) {
      ++shard.io_errors;
      if (shard.io_errors == 1) {
        std::fprintf(stderr, "rab serve: shard %zu: %s\n", index, e.what());
      }
    }
    {
      // Publish the refreshed durable table for the ack path. A group
      // commit can advance *other* sessions' watermarks too, so copy
      // the whole (small) table rather than one entry.
      const std::lock_guard<std::mutex> lock(shard.durable_mu);
      shard.durable = shard.monitor->durable_watermarks();
    }
    shard.accepted += accepted;
    metrics.ratings.add(accepted);
    metrics.queue_depth.add(-1.0);
  }
}

void Server::Impl::reap_connections() {
  const std::lock_guard<std::mutex> lock(conns_mu);
  for (auto it = conns.begin(); it != conns.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t Server::Impl::live_connections() {
  const std::lock_guard<std::mutex> lock(conns_mu);
  return conns.size();
}

void Server::Impl::connection_main(Conn& conn) {
  try {
    if (config.io_timeout > 0) {
      // Kernel-level send deadline: a peer that stops reading its
      // replies cannot pin this handler thread forever.
      set_write_deadline(conn.fd.get(), config.io_timeout);
    }
    // Sniff the protocol without consuming: a '{' first byte selects the
    // JSONL fallback, anything else the binary framing.
    char first = 0;
    ssize_t n;
    do {
      n = ::recv(conn.fd.get(), &first, 1, MSG_PEEK);
    } while (n < 0 && errno == EINTR);
    if (n > 0) {
      if (first == '{') {
        jsonl_loop(conn);
      } else {
        binary_loop(conn);
      }
    }
  } catch (const std::exception&) {
    // A dead peer (EPIPE on reply, reset mid-read) only costs its own
    // connection; the daemon keeps serving.
    ServeMetrics::get().errors.add();
  }
  conn.done.store(true, std::memory_order_release);
}

void Server::Impl::binary_loop(Conn& conn) {
  ServeMetrics& metrics = ServeMetrics::get();
  const int fd = conn.fd.get();
  const int idle_ms = config.idle_timeout > 0
                          ? static_cast<int>(config.idle_timeout * 1000.0)
                          : -1;
  const int io_ms = config.io_timeout > 0
                        ? static_cast<int>(config.io_timeout * 1000.0)
                        : 0;
  for (;;) {
    // Idle reaping happens at frame boundaries only: a connection may
    // sit quietly between requests for idle_timeout, but once a header
    // byte arrives the whole frame must follow within io_timeout.
    if (idle_ms > 0 && !poll_readable(fd, idle_ms)) {
      metrics.idle_reaped.add();
      return;
    }
    char header[kFrameHeaderBytes];
    const ReadStatus hs =
        read_exact_deadline(fd, header, sizeof header, io_ms);
    if (hs == ReadStatus::kEof) return;  // clean close
    if (hs != ReadStatus::kOk) {
      if (hs == ReadStatus::kTimeout) metrics.read_timeouts.add();
      metrics.errors.add();  // disconnect or stall inside a header
      return;
    }
    FrameHeader h;
    try {
      h = decode_frame_header(
          std::span<const char, kFrameHeaderBytes>(header), true);
    } catch (const InvalidArgument& e) {
      // Unknown type / bad flags / oversized length: the stream offset
      // can no longer be trusted, so answer and close this connection.
      metrics.errors.add();
      const std::string bytes =
          encode_frame({FrameType::kError, e.what()});
      write_all(fd, bytes.data(), bytes.size());
      return;
    }
    std::string payload(h.length, '\0');
    if (h.length > 0) {
      const ReadStatus ps =
          read_exact_deadline(fd, payload.data(), h.length, io_ms);
      if (ps != ReadStatus::kOk) {
        if (ps == ReadStatus::kTimeout) metrics.read_timeouts.add();
        metrics.errors.add();  // mid-frame disconnect or stall
        return;
      }
    }
    metrics.frames.add();
    const auto type = static_cast<FrameType>(h.type);
    const Frame reply = dispatch(conn, type, payload);
    const std::string bytes = encode_frame(reply);
    write_all(fd, bytes.data(), bytes.size());
    if (type == FrameType::kDrain && reply.type != FrameType::kError) {
      // Drained and acknowledged: stop the accept loop, close this
      // connection from our side.
      stop.store(true, std::memory_order_release);
      return;
    }
  }
}

void Server::Impl::jsonl_loop(Conn& conn) {
  ServeMetrics& metrics = ServeMetrics::get();
  const int fd = conn.fd.get();
  LineReader reader(fd);
  std::string line;
  while (reader.next(line)) {
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    Frame reply;
    FrameType requested = FrameType::kPing;
    try {
      const JsonRequest request = parse_json_request(line);
      const Frame frame = to_frame(request);
      requested = frame.type;
      metrics.frames.add();
      reply = dispatch(conn, frame.type, frame.payload);
    } catch (const InvalidArgument& e) {
      metrics.errors.add();
      reply = {FrameType::kError, e.what()};
    }
    // Render the reply as one JSON line, mirroring the request mode.
    std::string out;
    switch (reply.type) {
      case FrameType::kOk:
        out = "{\"type\":\"ok\",\"accepted\":" +
              std::to_string(decode_u64_payload(reply.payload)) + "}";
        break;
      case FrameType::kRetry:
        out = "{\"type\":\"retry\",\"after\":" +
              fmt_double(decode_f64_payload(reply.payload)) + "}";
        break;
      case FrameType::kError:
        out = "{\"type\":\"error\",\"message\":\"";
        json_escape_into(out, reply.payload);
        out += "\"}";
        break;
      case FrameType::kText:
        out = "{\"type\":\"text\",\"body\":\"";
        json_escape_into(out, reply.payload);
        out += "\"}";
        break;
      default:
        out = reply.payload;  // kJson is already one JSON object
    }
    out.push_back('\n');
    write_all(fd, out.data(), out.size());
    if (requested == FrameType::kDrain && reply.type != FrameType::kError) {
      stop.store(true, std::memory_order_release);
      return;
    }
  }
}

Frame Server::Impl::dispatch(Conn& conn, FrameType type,
                             std::string_view payload) {
  try {
    switch (type) {
      case FrameType::kRate:
        return handle_rate(payload);
      case FrameType::kHello:
        return handle_hello(conn);
      case FrameType::kResume:
        return handle_resume(conn, payload);
      case FrameType::kRateSeq:
        return handle_rate_seq(conn, payload);
      case FrameType::kTrust:
        return handle_trust(decode_i64_payload(payload));
      case FrameType::kAlarms:
        return handle_alarms(decode_u64_payload(payload));
      case FrameType::kStats:
        return handle_stats();
      case FrameType::kSeries:
        return handle_series(decode_i64_payload(payload));
      case FrameType::kMetrics:
        return handle_metrics();
      case FrameType::kDrain:
        return handle_drain();
      case FrameType::kPing:
        return handle_ping();
      default:
        break;
    }
  } catch (const InvalidArgument& e) {
    ServeMetrics::get().errors.add();
    return {FrameType::kError, e.what()};
  }
  ServeMetrics::get().errors.add();
  return {FrameType::kError, "unhandled frame type"};
}

/// Splits `batch` by owning shard and enqueues it all-or-nothing with
/// the given session/seq tags: either every involved shard has room and
/// the whole frame is queued, or no shard gets any of it and the caller
/// answers kRetry (the client resends the frame verbatim — a partial
/// enqueue plus a retry would ingest the queued shards' ratings twice).
/// Fills `involved` with the shards that received a part.
bool Server::Impl::enqueue_batch(std::vector<rating::Rating> batch,
                                 std::uint64_t session, std::uint64_t seq,
                                 std::vector<std::size_t>& involved) {
  std::vector<std::vector<rating::Rating>> parts(shards.size());
  for (rating::Rating& r : batch) {
    parts[shard_of(r.product.value(), shards.size())].push_back(r);
  }
  involved.clear();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (!parts[i].empty()) involved.push_back(i);
  }
  std::size_t reserved = 0;
  for (const std::size_t idx : involved) {
    if (!shards[idx]->queue.try_reserve()) break;
    ++reserved;
  }
  if (reserved < involved.size()) {
    for (std::size_t j = 0; j < reserved; ++j) {
      shards[involved[j]]->queue.cancel_reserved();
    }
    return false;
  }
  for (const std::size_t idx : involved) {
    ShardTask task;
    task.ratings = std::move(parts[idx]);
    task.session = session;
    task.seq = seq;
    shards[idx]->queue.push_reserved(std::move(task));
    ServeMetrics::get().queue_depth.add(1.0);
  }
  return true;
}

Frame Server::Impl::handle_rate(std::string_view payload) {
  ServeMetrics& metrics = ServeMetrics::get();
  std::vector<rating::Rating> batch = decode_rate_payload(payload);
  if (draining.load()) {
    metrics.errors.add();
    return {FrameType::kError, "draining: no longer accepting ratings"};
  }
  if (batch.empty()) return {FrameType::kOk, encode_u64_payload(0)};
  const std::size_t count = batch.size();
  std::vector<std::size_t> involved;
  if (!enqueue_batch(std::move(batch), 0, 0, involved)) {
    metrics.retries.add();
    return {FrameType::kRetry, encode_f64_payload(config.retry_after)};
  }
  return {FrameType::kOk, encode_u64_payload(count)};
}

std::uint64_t Server::Impl::shard_durable(std::size_t index,
                                          std::uint64_t session) {
  Shard& shard = *shards[index];
  const std::lock_guard<std::mutex> lock(shard.durable_mu);
  const auto it = shard.durable.find(session);
  return it == shard.durable.end() ? 0 : it->second;
}

/// Pops every outstanding frame whose sequence is durable on all of its
/// involved shards and advances the session's acked floor to the largest
/// fully-durable prefix. Caller holds sessions_mu.
void Server::Impl::trim_acked(SessionState& state, std::uint64_t session) {
  while (!state.outstanding.empty()) {
    const Outstanding& front = state.outstanding.front();
    bool durable_everywhere = true;
    for (const std::size_t idx : front.involved) {
      if (shard_durable(idx, session) < front.seq) {
        durable_everywhere = false;
        break;
      }
    }
    if (!durable_everywhere) break;
    state.acked_durable = std::max(state.acked_durable, front.seq);
    state.outstanding.pop_front();
  }
}

Frame Server::Impl::handle_hello(Conn& conn) {
  const std::lock_guard<std::mutex> lock(sessions_mu);
  std::uint64_t id;
  do {
    id = session_rng();
  } while (id == 0 || sessions.contains(id));
  SessionState& state = sessions[id];
  state.owner_serial = ++next_conn_serial;
  conn.session = id;
  conn.serial = state.owner_serial;
  return {FrameType::kSessionAck, encode_session_ack_payload({id, 0})};
}

Frame Server::Impl::handle_resume(Conn& conn, std::string_view payload) {
  const std::uint64_t id = decode_u64_payload(payload);
  if (id == 0) {
    ServeMetrics::get().errors.add();
    return {FrameType::kError, "resume: session id must be nonzero"};
  }
  ServeMetrics::get().reconnects.add();
  const std::lock_guard<std::mutex> lock(sessions_mu);
  if (util::failpoints_armed() &&
      util::failpoint_poll("net.session.drop")) [[unlikely]] {
    sessions.erase(id);  // injected amnesia: test the unknown-id path
  }
  const auto [it, fresh] = sessions.try_emplace(id);
  SessionState& state = it->second;
  if (fresh) {
    // Unknown id: a restarted server (or an injected session drop).
    // Adopt the client's id and recover the durable floor from the
    // shard watermarks. A shard with no entry must count as 0, not be
    // skipped: it may have applied (but not yet persisted) frames it
    // now knows nothing about, so any higher floor could ack a frame
    // whose rows died with the crash.
    std::uint64_t floor = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      floor = std::min(floor, shard_durable(s, id));
    }
    state.acked_durable = floor;
    state.last_seq = floor;
  } else {
    trim_acked(state, id);
  }
  // Fence any zombie owner: a half-dead predecessor connection that
  // still tries to write into this session gets kError, not a racing
  // interleave with our replays.
  state.owner_serial = ++next_conn_serial;
  conn.session = id;
  conn.serial = state.owner_serial;
  return {FrameType::kSessionAck,
          encode_session_ack_payload({id, state.acked_durable})};
}

Frame Server::Impl::handle_rate_seq(Conn& conn, std::string_view payload) {
  ServeMetrics& metrics = ServeMetrics::get();
  SeqBatch batch = decode_rate_seq_payload(payload);
  if (conn.session == 0) {
    metrics.errors.add();
    return {FrameType::kError,
            "rate-seq: no session (send hello or resume first)"};
  }
  if (batch.seq == 0) {
    metrics.errors.add();
    return {FrameType::kError, "rate-seq: sequence must be nonzero"};
  }
  if (draining.load()) {
    metrics.errors.add();
    return {FrameType::kError, "draining: no longer accepting ratings"};
  }
  const std::uint64_t count = batch.ratings.size();
  {
    const std::lock_guard<std::mutex> lock(sessions_mu);
    const auto it = sessions.find(conn.session);
    if (it == sessions.end() || it->second.owner_serial != conn.serial) {
      metrics.errors.add();
      return {FrameType::kError,
              "rate-seq: session superseded by a newer connection"};
    }
    if (batch.seq <= it->second.last_seq) {
      // Duplicate (or regressed) sequence: this frame — or a later one —
      // was already enqueued, so a replay after a reconnect must not be
      // enqueued again. It still gets a normal ack: the client's work
      // for this sequence is done either way.
      metrics.dup_frames.add();
      trim_acked(it->second, conn.session);
      return {FrameType::kOk,
              encode_rate_ack_payload(
                  {count, it->second.acked_durable})};
    }
  }
  std::vector<std::size_t> involved;
  if (count > 0 &&
      !enqueue_batch(std::move(batch.ratings), conn.session, batch.seq,
                     involved)) {
    metrics.retries.add();
    return {FrameType::kRetry, encode_f64_payload(config.retry_after)};
  }
  const std::lock_guard<std::mutex> lock(sessions_mu);
  const auto it = sessions.find(conn.session);
  if (it == sessions.end()) {
    return {FrameType::kOk, encode_rate_ack_payload({count, 0})};
  }
  SessionState& state = it->second;
  state.last_seq = std::max(state.last_seq, batch.seq);
  // An empty frame has an empty involved set and is trivially durable —
  // which makes a zero-rating kRateSeq a durable-floor probe.
  state.outstanding.push_back({batch.seq, std::move(involved)});
  trim_acked(state, conn.session);
  return {FrameType::kOk,
          encode_rate_ack_payload({count, state.acked_durable})};
}

bool Server::Impl::run_on_shard(std::size_t index,
                                const std::function<void()>& fn) {
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> future = promise->get_future();
  ShardTask task;
  task.job = [promise, fn] {
    try {
      fn();
      promise->set_value();
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  };
  if (!shards[index]->queue.push_admin(std::move(task))) return false;
  future.get();
  return true;
}

Frame Server::Impl::handle_trust(std::int64_t rater) {
  if (rater < 0) {
    return {FrameType::kError, "trust: rater id must be non-negative"};
  }
  std::string out = "{\"type\":\"trust\",\"rater\":" + std::to_string(rater) +
                    ",\"shards\":[";
  double min_trust = 1.0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    double value = 0.5;
    bool known = false;
    const bool ok = run_on_shard(s, [&] {
      const trust::TrustManager& trust = shards[s]->monitor->trust();
      value = trust.trust(RaterId(rater));
      known = trust.successes(RaterId(rater)) > 0.0 ||
              trust.failures(RaterId(rater)) > 0.0;
    });
    if (!ok) return {FrameType::kError, "server is stopping"};
    if (s > 0) out += ',';
    out += "{\"shard\":" + std::to_string(s) +
           ",\"trust\":" + fmt_double(value) +
           ",\"known\":" + (known ? "true" : "false") + "}";
    if (value < min_trust) min_trust = value;
  }
  // The conservative cross-shard view: an attacker flagged by any shard
  // is flagged here.
  out += "],\"min\":" + fmt_double(min_trust) + "}";
  return {FrameType::kJson, out};
}

Frame Server::Impl::handle_alarms(std::uint64_t since) {
  std::string items;
  std::string next = "[";
  std::size_t emitted = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    std::vector<detectors::Alarm> alarms;
    std::size_t total = 0;
    const bool ok = run_on_shard(s, [&] {
      const auto& all = shards[s]->monitor->alarms();
      total = all.size();
      for (std::size_t i = since; i < all.size(); ++i) {
        alarms.push_back(all[i]);
      }
    });
    if (!ok) return {FrameType::kError, "server is stopping"};
    for (const detectors::Alarm& a : alarms) {
      if (emitted++ > 0) items += ',';
      items += "{\"shard\":" + std::to_string(s) +
               ",\"product\":" + std::to_string(a.product.value()) +
               ",\"begin\":" + fmt_double(a.interval.begin) +
               ",\"end\":" + fmt_double(a.interval.end) +
               ",\"raised_at\":" + fmt_double(a.raised_at) +
               ",\"marked\":" + std::to_string(a.marked_ratings) + "}";
    }
    next += (s > 0 ? "," : "") + std::to_string(total);
  }
  next += ']';
  return {FrameType::kJson, "{\"type\":\"alarms\",\"since\":" +
                                std::to_string(since) + ",\"alarms\":[" +
                                items + "],\"next_since\":" + next + "}"};
}

Frame Server::Impl::handle_stats() {
  std::string out = "{\"type\":\"stats\",\"shards\":[";
  std::uint64_t total_ingested = 0;
  std::uint64_t total_alarms = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    std::size_t ingested = 0;
    std::size_t resident = 0;
    std::size_t compacted = 0;
    std::size_t epochs = 0;
    std::size_t alarms = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t io_errors = 0;
    const bool ok = run_on_shard(s, [&] {
      const detectors::OnlineMonitor& m = *shards[s]->monitor;
      ingested = m.ingested();
      resident = m.resident_ratings();
      compacted = m.compacted_ratings();
      epochs = m.epoch_stats().size();
      alarms = m.alarms().size();
      accepted = shards[s]->accepted;
      rejected = shards[s]->rejected;
      io_errors = shards[s]->io_errors;
    });
    if (!ok) return {FrameType::kError, "server is stopping"};
    if (s > 0) out += ',';
    out += "{\"shard\":" + std::to_string(s) +
           ",\"ingested\":" + std::to_string(ingested) +
           ",\"resident\":" + std::to_string(resident) +
           ",\"compacted\":" + std::to_string(compacted) +
           ",\"epochs\":" + std::to_string(epochs) +
           ",\"alarms\":" + std::to_string(alarms) +
           ",\"accepted\":" + std::to_string(accepted) +
           ",\"rejected\":" + std::to_string(rejected) +
           ",\"io_errors\":" + std::to_string(io_errors) +
           ",\"queue\":" + std::to_string(shards[s]->queue.depth()) + "}";
    total_ingested += ingested;
    total_alarms += alarms;
  }
  out += "],\"ingested\":" + std::to_string(total_ingested) +
         ",\"alarms\":" + std::to_string(total_alarms) + "}";
  return {FrameType::kJson, out};
}

Frame Server::Impl::handle_series(std::int64_t product) {
  if (product < 0) {
    return {FrameType::kError, "series: product id must be non-negative"};
  }
  const std::size_t s = shard_of(product, shards.size());
  std::optional<detectors::OnlineMonitor::ProductSummary> summary;
  std::vector<detectors::Alarm> alarms;
  const bool ok = run_on_shard(s, [&] {
    const detectors::OnlineMonitor& m = *shards[s]->monitor;
    summary = m.product_summary(ProductId(product));
    for (const detectors::Alarm& a : m.alarms()) {
      if (a.product.value() == product) alarms.push_back(a);
    }
  });
  if (!ok) return {FrameType::kError, "server is stopping"};
  std::string out = "{\"type\":\"series\",\"product\":" +
                    std::to_string(product) +
                    ",\"shard\":" + std::to_string(s) + ",\"found\":" +
                    (summary.has_value() ? "true" : "false");
  if (summary) {
    out += ",\"resident\":" + std::to_string(summary->resident) +
           ",\"dropped\":" + std::to_string(summary->dropped_rows) +
           ",\"marks\":" + std::to_string(summary->marks) +
           ",\"begin\":" + fmt_double(summary->span.begin) +
           ",\"end\":" + fmt_double(summary->span.end);
  }
  out += ",\"alarms\":[";
  for (std::size_t i = 0; i < alarms.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"begin\":" + fmt_double(alarms[i].interval.begin) +
           ",\"end\":" + fmt_double(alarms[i].interval.end) +
           ",\"raised_at\":" + fmt_double(alarms[i].raised_at) +
           ",\"marked\":" + std::to_string(alarms[i].marked_ratings) + "}";
  }
  out += "]}";
  return {FrameType::kJson, out};
}

Frame Server::Impl::handle_metrics() {
  std::ostringstream out;
  util::metrics::write_prometheus(out, util::metrics::scrape());
  return {FrameType::kText, out.str()};
}

Frame Server::Impl::handle_drain() {
  drain_all();
  if (!drain_error.empty()) {
    return {FrameType::kError, "drain failed: " + drain_error};
  }
  std::uint64_t ingested = 0;
  std::uint64_t alarms = 0;
  for (auto& shard : shards) {
    // Workers are idle after the drain barrier; these reads race with
    // nothing.
    ingested += shard->monitor->ingested();
    alarms += shard->monitor->alarms().size();
  }
  return {FrameType::kJson,
          "{\"type\":\"drained\",\"shards\":" +
              std::to_string(shards.size()) +
              ",\"ingested\":" + std::to_string(ingested) +
              ",\"alarms\":" + std::to_string(alarms) + "}"};
}

Frame Server::Impl::handle_ping() {
  return {FrameType::kJson, "{\"type\":\"pong\",\"shards\":" +
                                std::to_string(shards.size()) + "}"};
}

Server::Server(ServeConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {
  if (impl_->config.shards == 0) {
    throw InvalidArgument("serve: shard count must be at least 1");
  }
  if (impl_->config.queue_capacity == 0) {
    throw InvalidArgument("serve: queue capacity must be at least 1");
  }
}

Server::~Server() {
  // A server destroyed without run() (or whose start() threw) still owns
  // live worker threads; shut them down without draining monitors.
  if (!impl_) return;
  for (auto& s : impl_->shards) s->queue.close();
  for (auto& s : impl_->shards) {
    if (s->thread.joinable()) s->thread.join();
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->conns_mu);
    for (auto& c : impl_->conns) shutdown_fd(c->fd.get());
  }
  for (auto& c : impl_->conns) {
    if (c->thread.joinable()) c->thread.join();
  }
}

void Server::start() { impl_->start(); }
void Server::run() { impl_->run(); }
void Server::request_drain() { impl_->drain_requested.store(true); }
const Addr& Server::addr() const { return impl_->config.listen; }
std::size_t Server::shards() const { return impl_->shards.size(); }

const detectors::OnlineMonitor& Server::monitor(std::size_t shard) const {
  RAB_EXPECTS(impl_->stopped.load(std::memory_order_acquire));
  RAB_EXPECTS(shard < impl_->shards.size());
  return *impl_->shards[shard]->monitor;
}

}  // namespace rab::net
