// `rab serve`: sharded streaming ingest daemon over the online monitor.
//
// Architecture: products are hash-sharded across N worker threads, each
// owning a private OnlineMonitor (detector bank + IntegrationCache +
// optional per-shard checkpoint/store directories under the configured
// roots). Connection threads parse frames and enqueue rating batches on
// bounded per-shard queues — a full shard answers kRetry (explicit
// backpressure) instead of buffering unboundedly. Queries run as admin
// jobs on the owning worker thread, so the monitor is only ever touched
// from one thread and needs no locks.
//
// Sharding semantics: trust and alarms are shard-local. A 1-shard server
// is bit-identical to the offline `rab monitor` over the same feed; an
// N-shard server is bit-identical to N offline monitors over the
// hash-partitioned subfeeds (tests/test_net.cpp asserts both). Each
// shard requires its subfeed in non-decreasing time order; out-of-order
// ratings are rejected and counted, never ingested.
//
// Exactly-once ingest (DESIGN.md §5i): a client opens a session
// (kHello), tags each rate frame with a monotone sequence (kRateSeq),
// and on reconnect re-attaches (kResume) and replays its unacked
// window. Connection threads fence stale session owners and skip
// already-enqueued sequences; workers skip sub-batches at or below the
// shard's applied watermark, which is persisted in the same store group
// commit as the batch's rows — so a SIGKILL'd and restarted server
// never loses or double-applies a rating.
//
// Drain (SIGINT/SIGTERM, kDrain frame, or request_drain()): stop
// accepting rating work, let every queue run dry, then run
// OnlineMonitor::drain() on each shard — pre-flush checkpoint, final
// partial-epoch analysis, store sync — so a restart from the checkpoints
// is bit-identical to a run that never stopped.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "detectors/online_monitor.hpp"
#include "net/socket.hpp"

namespace rab::net {

struct ServeConfig {
  Addr listen;
  std::size_t shards = 1;
  /// Rating batches a shard queue holds before kRetry backpressure.
  std::size_t queue_capacity = 128;
  std::size_t max_connections = 64;
  int backlog = 64;  ///< listen(2) backlog (RAB_SERVE_BACKLOG at the CLI)
  /// Suggested client delay (seconds) carried by kRetry replies.
  double retry_after = 0.05;
  /// Per-connection I/O deadline (seconds): a peer stalling mid-frame —
  /// read or write — is disconnected after this long. 0 disables.
  double io_timeout = 30.0;
  /// Idle deadline (seconds): a connection that sends no request for
  /// this long is reaped (counted in serve.idle_reaped). 0 disables.
  double idle_timeout = 300.0;
  /// Per-shard monitor template. checkpoint_dir and store_dir are
  /// treated as *roots*: shard i uses "<root>/shard-NNNN".
  detectors::OnlineConfig monitor;
};

/// Stable product-to-shard hash (splitmix64 finalizer). Shared by the
/// server, the load generator's connection partitioning, and the
/// offline sharded reference in tests.
[[nodiscard]] std::size_t shard_of(std::int64_t product, std::size_t shards);

/// Per-shard directory under a checkpoint/store root ("<root>/shard-0007").
[[nodiscard]] std::string shard_dir(const std::string& root,
                                    std::size_t shard);

class Server {
 public:
  explicit Server(ServeConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener, builds the per-shard monitors (restoring from
  /// their store/checkpoint directories when configured), and spawns the
  /// shard workers. Throws IoError when the address cannot be bound.
  void start();

  /// Accept loop; blocks until a drain completes (signal, kDrain frame,
  /// or request_drain()), then joins every connection and worker. After
  /// run() returns the shard monitors are quiescent and inspectable.
  /// Rethrows a shard's drain-time environment failure as IoError after
  /// cleanup finishes.
  void run();

  /// Asynchronously asks the accept loop to drain and stop (test/API
  /// equivalent of SIGTERM). Safe from any thread.
  void request_drain();

  /// Listen address; for TCP port 0 the actual bound port after start().
  [[nodiscard]] const Addr& addr() const;

  [[nodiscard]] std::size_t shards() const;

  /// Shard monitor inspection; only valid after run() has returned.
  [[nodiscard]] const detectors::OnlineMonitor& monitor(
      std::size_t shard) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rab::net
