#include "net/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <string>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/parse.hpp"

namespace rab::net {

namespace {

[[noreturn]] void io_fail(const std::string& what) {
  throw IoError("net: " + what + ": " + std::strerror(errno));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(sa.sun_path)) {
    throw InvalidArgument("net: unix socket path empty or longer than " +
                          std::to_string(sizeof(sa.sun_path) - 1) +
                          " bytes: '" + path + "'");
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

sockaddr_in tcp_addr(const Addr& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (addr.host.empty() || addr.host == "*") {
    sa.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    // Resolve a hostname (e.g. "localhost") via getaddrinfo.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (getaddrinfo(addr.host.c_str(), nullptr, &hints, &res) != 0 ||
        res == nullptr) {
      throw IoError("net: cannot resolve host '" + addr.host + "'");
    }
    sa.sin_addr =
        reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
    freeaddrinfo(res);
  }
  return sa;
}

}  // namespace

Addr Addr::parse(const std::string& text) {
  Addr addr;
  if (text.rfind("unix:", 0) == 0) {
    addr.is_unix = true;
    addr.host = text.substr(5);
    if (addr.host.empty()) {
      throw InvalidArgument("net: empty unix socket path in '" + text +
                            "'");
    }
    return addr;
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 == text.size()) {
    throw InvalidArgument(
        "net: address must be host:port or unix:/path, got '" + text +
        "'");
  }
  addr.host = text.substr(0, colon);
  addr.port = static_cast<std::uint16_t>(
      util::parse_u64_in(text.substr(colon + 1), "port", 1, 65535));
  return addr;
}

std::string Addr::to_string() const {
  return is_unix ? "unix:" + host : host + ":" + std::to_string(port);
}

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.release();
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_on(const Addr& addr, int backlog) {
  Fd fd(::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) io_fail("socket");
  if (addr.is_unix) {
    ::unlink(addr.host.c_str());  // stale path from a previous run
    const sockaddr_un sa = unix_addr(addr.host);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
               sizeof(sa)) != 0) {
      io_fail("bind " + addr.to_string());
    }
  } else {
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in sa = tcp_addr(addr);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
               sizeof(sa)) != 0) {
      io_fail("bind " + addr.to_string());
    }
  }
  if (::listen(fd.get(), backlog) != 0) {
    io_fail("listen " + addr.to_string());
  }
  return fd;
}

Fd connect_to(const Addr& addr) {
  Fd fd(::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) io_fail("socket");
  int rc;
  if (addr.is_unix) {
    const sockaddr_un sa = unix_addr(addr.host);
    do {
      rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
                     sizeof(sa));
    } while (rc != 0 && errno == EINTR);
  } else {
    const sockaddr_in sa = tcp_addr(addr);
    do {
      rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
                     sizeof(sa));
    } while (rc != 0 && errno == EINTR);
  }
  if (rc != 0) io_fail("connect " + addr.to_string());
  if (!addr.is_unix) {
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Fd accept_on(int listener) {
  const int fd = ::accept(listener, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return Fd();
    }
    io_fail("accept");
  }
  return Fd(fd);
}

bool poll_readable(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  const int rc = ::poll(&p, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return false;
    io_fail("poll");
  }
  return rc > 0;
}

ReadStatus read_exact(int fd, void* buf, std::size_t size) {
  return read_exact_deadline(fd, buf, size, 0);
}

ReadStatus read_exact_deadline(int fd, void* buf, std::size_t size,
                               int timeout_ms) {
  if (util::failpoints_armed() &&
      util::failpoint_poll("net.read.short")) [[unlikely]] {
    // Injected peer-vanished-mid-frame: report truncation without
    // consuming the stream; the caller closes the connection either way.
    return size == 0 ? ReadStatus::kOk : ReadStatus::kShort;
  }
  auto* out = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < size) {
    if (timeout_ms > 0 && !poll_readable(fd, timeout_ms)) {
      return ReadStatus::kTimeout;
    }
    const ssize_t n = ::read(fd, out + got, size - got);
    if (n == 0) return got == 0 ? ReadStatus::kEof : ReadStatus::kShort;
    if (n < 0) {
      if (errno == EINTR) continue;
      // A peer that vanished mid-frame is a truncated frame, not a
      // server-side environment failure.
      if (errno == ECONNRESET) {
        return got == 0 ? ReadStatus::kEof : ReadStatus::kShort;
      }
      io_fail("read");
    }
    got += static_cast<std::size_t>(n);
  }
  return ReadStatus::kOk;
}

namespace {

void write_loop(int fd, const char* in, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, in + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      // SO_SNDTIMEO expiry surfaces as EAGAIN on a blocking socket.
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        io_fail("write deadline expired");
      }
      io_fail("write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

void write_all(int fd, const void* buf, std::size_t size) {
  const auto* in = static_cast<const char*>(buf);
  if (util::failpoints_armed()) [[unlikely]] {
    if (util::failpoint_poll("net.write.fail")) {
      throw IoError("net: write: injected failure");
    }
    if (util::failpoint_poll("net.write.short")) {
      write_loop(fd, in, size / 2);
      throw IoError("net: write: injected short write");
    }
    const util::FaultOutcome fault =
        util::failpoint_io("net.frame.corrupt", size);
    if (fault.corrupt) {
      std::string damaged(in, size);
      util::apply_fault(fault, damaged.data(), size);
      write_loop(fd, damaged.data(), size);
      return;
    }
  }
  write_loop(fd, in, size);
}

void set_write_deadline(int fd, double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    io_fail("setsockopt SO_SNDTIMEO");
  }
}

void shutdown_fd(int fd) { ::shutdown(fd, SHUT_RDWR); }

std::uint16_t local_port(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    io_fail("getsockname");
  }
  return ntohs(sa.sin_port);
}

}  // namespace rab::net
