// Bounded MPSC ingest queue for the shard workers.
//
// Producers are connection threads; the single consumer is the shard's
// worker thread, which owns the shard's OnlineMonitor. Backpressure is
// explicit and all-or-nothing per frame: a connection reserves one slot
// on every shard a rating frame touches before pushing to any of them,
// so a full shard rejects the whole frame (the client retries it
// verbatim) and no shard ever sees a duplicate or a half-frame.
//
// Admin tasks (queries, drain) bypass the capacity check: they are
// bounded by the connection limit, must not deadlock behind a full
// ingest queue, and are processed in order behind the batches already
// queued — which is exactly what a drain wants.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "rating/rating.hpp"

namespace rab::net {

/// One unit of shard work: either a rating batch or an admin job that
/// runs on the worker thread with exclusive access to the shard state.
/// Sequenced batches (kRateSeq) carry their session and sequence so the
/// worker can dedup replays against the shard's applied watermark and
/// record the watermark atomically with the batch (DESIGN.md §5i).
struct ShardTask {
  std::vector<rating::Rating> ratings;
  std::function<void()> job;   ///< null for rating tasks
  std::uint64_t session = 0;   ///< ingest session (0 = sessionless kRate)
  std::uint64_t seq = 0;       ///< client-assigned frame sequence
};

class BoundedTaskQueue {
 public:
  explicit BoundedTaskQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Reserves one rating-batch slot. False when the queue (queued +
  /// reserved) is at capacity or closed — the caller cancels its other
  /// reservations and answers the frame with kRetry.
  [[nodiscard]] bool try_reserve() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || tasks_.size() + reserved_ >= capacity_) return false;
    ++reserved_;
    return true;
  }

  void cancel_reserved() {
    const std::lock_guard<std::mutex> lock(mu_);
    --reserved_;
  }

  /// Converts a reservation into a queued batch.
  void push_reserved(ShardTask task) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --reserved_;
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Enqueues an admin job regardless of capacity. False when the queue
  /// is closed (server stopping); the job will never run.
  [[nodiscard]] bool push_admin(ShardTask task) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
  }

  /// Consumer side: blocks for the next task. False once the queue is
  /// closed AND fully drained — tasks pushed before close() still run.
  [[nodiscard]] bool pop(ShardTask& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !tasks_.empty(); });
    if (tasks_.empty()) return false;
    out = std::move(tasks_.front());
    tasks_.pop_front();
    return true;
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ShardTask> tasks_;
  std::size_t reserved_ = 0;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace rab::net
