// Umbrella header: everything a downstream user of the library needs.
//
// Fine-grained headers remain available (and are what the library itself
// uses); include this one to get the whole public API at once.
#pragma once

// Utilities
#include "util/csv.hpp"
#include "util/day.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

// Statistics / signal / clustering substrates
#include "cluster/single_linkage.hpp"
#include "signal/ar.hpp"
#include "signal/autocorrelation.hpp"
#include "signal/curve.hpp"
#include "signal/windowing.hpp"
#include "stats/beta.hpp"
#include "stats/descriptive.hpp"
#include "stats/glrt.hpp"
#include "stats/histogram.hpp"
#include "stats/linalg.hpp"

// Rating domain
#include "rating/dataset.hpp"
#include "rating/fair_generator.hpp"
#include "rating/io.hpp"
#include "rating/product_ratings.hpp"
#include "rating/rating.hpp"

// Detection, trust, aggregation
#include "aggregation/bf_scheme.hpp"
#include "aggregation/entropy_scheme.hpp"
#include "aggregation/median_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "aggregation/scheme.hpp"
#include "aggregation/series_io.hpp"
#include "detectors/arc_detector.hpp"
#include "detectors/config.hpp"
#include "detectors/hc_detector.hpp"
#include "detectors/integrator.hpp"
#include "detectors/mc_detector.hpp"
#include "detectors/me_detector.hpp"
#include "detectors/online_monitor.hpp"
#include "trust/trust_manager.hpp"

// Challenge harness and analysis
#include "challenge/analysis.hpp"
#include "challenge/challenge.hpp"
#include "challenge/collusion.hpp"
#include "challenge/detection_quality.hpp"
#include "challenge/mp.hpp"
#include "challenge/participants.hpp"
#include "challenge/submission.hpp"
#include "challenge/submission_io.hpp"

// The attack generator (the paper's contribution)
#include "core/attack_generator.hpp"
#include "core/attack_profile.hpp"
#include "core/region_search.hpp"
#include "core/time_set_generator.hpp"
#include "core/value_set_generator.hpp"
#include "core/value_time_mapper.hpp"
