#include "signal/ar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "stats/linalg.hpp"
#include "util/error.hpp"

namespace rab::signal {

ArFit fit_ar(std::span<const double> x, std::size_t order) {
  RAB_EXPECTS(order >= 1);
  ArFit fit;
  fit.coefficients.assign(order, 0.0);

  const std::size_t n = x.size();
  if (n < order + 2) return fit;  // not enough equations; no structure

  // Remove the mean: the detectors care about structure around the mean,
  // and an un-centered AR fit would mostly model the DC offset.
  const double mu = stats::mean(x);
  std::vector<double> xc(n);
  for (std::size_t i = 0; i < n; ++i) xc[i] = x[i] - mu;

  double signal_power = 0.0;
  for (double v : xc) signal_power += v * v;
  signal_power /= static_cast<double>(n);
  fit.signal_power = signal_power;
  if (signal_power < 1e-12) {
    // Flat window: residual is zero but so is the signal; report "white".
    fit.residual_power = 0.0;
    fit.normalized_error = 1.0;
    return fit;
  }

  // Covariance method: rows n = order..N-1, predict xc[n] from the previous
  // `order` samples.
  const std::size_t rows = n - order;
  stats::Matrix a(rows, order);
  std::vector<double> b(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t t = r + order;
    for (std::size_t k = 0; k < order; ++k) {
      a(r, k) = xc[t - 1 - k];
    }
    b[r] = xc[t];
  }

  // b = A w with w_k = -a_k in the AR convention; ridge stabilizes windows
  // with nearly collinear lags (e.g. long runs of identical ratings).
  const std::vector<double> w = stats::least_squares(a, b, 1e-9);
  for (std::size_t k = 0; k < order; ++k) fit.coefficients[k] = -w[k];

  double rss = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    double pred = 0.0;
    for (std::size_t k = 0; k < order; ++k) pred += a(r, k) * w[k];
    const double e = b[r] - pred;
    rss += e * e;
  }
  fit.residual_power = rss / static_cast<double>(rows);
  fit.normalized_error =
      std::clamp(fit.residual_power / signal_power, 0.0, 1.0);
  return fit;
}

double ar_model_error(std::span<const double> x, std::size_t order) {
  return fit_ar(x, order).normalized_error;
}

std::size_t select_ar_order(std::span<const double> x,
                            std::size_t max_order) {
  RAB_EXPECTS(max_order >= 1);
  std::size_t best_order = 1;
  double best_aic = std::numeric_limits<double>::infinity();
  for (std::size_t p = 1; p <= max_order; ++p) {
    if (x.size() < p + 2) break;  // no equations left at this order
    const ArFit fit = fit_ar(x, p);
    const double n = static_cast<double>(x.size() - p);
    // Floor the residual so a perfect fit doesn't send ln() to -inf and
    // trivially win at every order.
    const double residual = std::max(fit.residual_power, 1e-12);
    const double aic = n * std::log(residual) + 2.0 * static_cast<double>(p);
    if (aic < best_aic) {
      best_aic = aic;
      best_order = p;
    }
  }
  return best_order;
}

}  // namespace rab::signal
