#include "signal/rolling.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rab::signal {

template <typename Get, typename Seq>
void RollingStats::build(const Seq& seq, Get get) {
  prefix_.resize(seq.size() + 1);
  prefix_sq_.resize(seq.size() + 1);
  prefix_[0] = 0.0;
  prefix_sq_[0] = 0.0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const double v = get(seq[i]);
    prefix_[i + 1] = prefix_[i] + v;
    prefix_sq_[i + 1] = prefix_sq_[i] + v * v;
  }
}

RollingStats::RollingStats(std::span<const Sample> samples) {
  build(samples, [](const Sample& s) { return s.value; });
}

RollingStats::RollingStats(std::span<const double> values) {
  build(values, [](double v) { return v; });
}

double RollingStats::sum(const IndexRange& range) const {
  RAB_EXPECTS(range.last <= size() && range.first <= range.last);
  return prefix_[range.last] - prefix_[range.first];
}

stats::Moments RollingStats::moments(const IndexRange& range) const {
  RAB_EXPECTS(range.last <= size() && range.first <= range.last);
  stats::Moments m;
  m.count = range.size();
  if (m.count == 0) return m;
  const double n = static_cast<double>(m.count);
  const double s = prefix_[range.last] - prefix_[range.first];
  const double sq = prefix_sq_[range.last] - prefix_sq_[range.first];
  m.mean = s / n;
  m.variance = std::max(sq / n - m.mean * m.mean, 0.0);
  return m;
}

}  // namespace rab::signal
