#include "signal/rolling.hpp"

#include <algorithm>

#include "signal/kernels.hpp"
#include "util/error.hpp"

namespace rab::signal {

RollingStats::RollingStats(std::span<const Sample> samples) {
  // Extract the value column into thread-local scratch, then share the
  // prefix kernel with the span ctor — same accumulation, same bits.
  struct RollingSampleValuesTag {};
  auto& values = util::scratch_vector<double, RollingSampleValuesTag>();
  values.reserve(samples.size());
  for (const Sample& s : samples) values.push_back(s.value);
  prefix_.resize(samples.size() + 1);
  prefix_sq_.resize(samples.size() + 1);
  prefix_moments(values, prefix_, prefix_sq_);
}

RollingStats::RollingStats(std::span<const double> values) {
  prefix_.resize(values.size() + 1);
  prefix_sq_.resize(values.size() + 1);
  prefix_moments(values, prefix_, prefix_sq_);
}

double RollingStats::sum(const IndexRange& range) const {
  RAB_EXPECTS(range.last <= size() && range.first <= range.last);
  return prefix_[range.last] - prefix_[range.first];
}

stats::Moments RollingStats::moments(const IndexRange& range) const {
  RAB_EXPECTS(range.last <= size() && range.first <= range.last);
  stats::Moments m;
  m.count = range.size();
  if (m.count == 0) return m;
  const double n = static_cast<double>(m.count);
  const double s = prefix_[range.last] - prefix_[range.first];
  const double sq = prefix_sq_[range.last] - prefix_sq_[range.first];
  m.mean = s / n;
  m.variance = std::max(sq / n - m.mean * m.mean, 0.0);
  return m;
}

}  // namespace rab::signal
