// O(1) window statistics from prefix arrays.
//
// The windowed detectors slide a window across the whole stream and need
// the mean/variance (MC) or the count sum (ARC) of each half-window. The
// naive path copies every window's values into fresh vectors — O(n * W)
// per curve. RollingStats builds prefix sums and sums-of-squares once —
// O(n) — and answers any [first, last) range query with two subtractions.
//
// Numerical note: range moments come from the sum / sum-of-squares
// identity rather than a Welford pass, so they can differ from Welford in
// the last few ulps. Rating values are small (0..5) and windows are short
// (tens to hundreds of samples), which keeps the identity well
// conditioned; the variance is clamped at zero either way.
#pragma once

#include <span>

#include "signal/windowing.hpp"
#include "stats/descriptive.hpp"
#include "util/scratch.hpp"

namespace rab::signal {

/// Prefix sum / sum-of-squares over a fixed sequence of values.
class RollingStats {
 public:
  RollingStats() = default;
  /// Indexes the `value` field of `samples`.
  explicit RollingStats(std::span<const Sample> samples);
  /// Indexes `values` directly (e.g. the ARC daily-count sequence).
  explicit RollingStats(std::span<const double> values);

  [[nodiscard]] std::size_t size() const {
    return prefix_.empty() ? 0 : prefix_.size() - 1;
  }

  /// Sum of the values in [range.first, range.last).
  [[nodiscard]] double sum(const IndexRange& range) const;

  /// Count, mean, and population variance of [range.first, range.last).
  /// All zero for an empty range.
  [[nodiscard]] stats::Moments moments(const IndexRange& range) const;

 private:
  // Both ctors route through signal::prefix_moments (kernels.hpp), so a
  // Sample sequence and its bare value column produce identical prefixes.
  util::aligned_vector<double> prefix_;     // prefix_[i] = sum of first i
  util::aligned_vector<double> prefix_sq_;  // prefix_sq_[i] = sum of squares
};

}  // namespace rab::signal
