#include "signal/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/glrt.hpp"
#include "stats/linalg.hpp"
#include "util/error.hpp"
#include "util/scratch.hpp"
#include "util/simd.hpp"

namespace rab::signal {

namespace {

struct MeanPrefixTag {};
struct MeanPrefixSqTag {};
struct FastCountLeftTag {};
struct FastCountRightTag {};
struct FastSumLeftTag {};
struct FastSumRightTag {};
struct FastSqLeftTag {};
struct FastSqRightTag {};
struct BoundsLoTag {};
struct BoundsHiTag {};
struct PoissonPrefixTag {};
struct BalanceSortTag {};
struct ArCenteredTag {};

/// Ridge used by fit_ar's least-squares call; the kernel must add the same
/// constant to the Gram diagonal to stay bit-identical.
constexpr double kArRidge = 1e-9;

/// Normalized AR model error of the `n` values at `x`, replaying fit_ar's
/// exact operation order with the design matrix left implicit: row r of A
/// is xc[r + order - 1 - c] over columns c, so Gram entries, the RHS, and
/// the predict+residual pass all read shifted subranges of the centered
/// buffer directly.
double ar_error_window(const double* x, std::size_t n, std::size_t order,
                       std::vector<double>& xc_buf) {
  if (n < order + 2) return 1.0;  // not enough equations; no structure

  const double mu = stats::mean(std::span<const double>(x, n));
  xc_buf.resize(n);
  double* __restrict xc = xc_buf.data();
  for (std::size_t i = 0; i < n; ++i) xc[i] = x[i] - mu;

  double signal_power = 0.0;
  for (std::size_t i = 0; i < n; ++i) signal_power += xc[i] * xc[i];
  signal_power /= static_cast<double>(n);
  if (signal_power < 1e-12) return 1.0;  // flat window: report "white"

  const std::size_t rows = n - order;
  stats::Matrix gram(order, order);
  for (std::size_t i = 0; i < order; ++i) {
    const double* __restrict ai = xc + (order - 1 - i);
    for (std::size_t j = i; j < order; ++j) {
      const double* __restrict aj = xc + (order - 1 - j);
      double sum = 0.0;
      for (std::size_t r = 0; r < rows; ++r) sum += ai[r] * aj[r];
      gram(i, j) = sum;
      gram(j, i) = sum;
    }
  }
  for (std::size_t i = 0; i < order; ++i) gram(i, i) += kArRidge;

  // A^T b in transpose_times' row-outer order.
  const double* __restrict b = xc + order;
  std::vector<double> rhs(order, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < order; ++i) {
      rhs[i] += xc[r + order - 1 - i] * b[r];
    }
  }
  const std::vector<double> w = stats::solve(std::move(gram), std::move(rhs));

  double rss = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    double pred = 0.0;
    for (std::size_t k = 0; k < order; ++k) {
      pred += xc[r + order - 1 - k] * w[k];
    }
    const double e = b[r] - pred;
    rss += e * e;
  }
  const double residual_power = rss / static_cast<double>(rows);
  return std::clamp(residual_power / signal_power, 0.0, 1.0);
}

// Fast-mode Poisson path: xlogx of a rational s/d becomes
// (s/d) * (log s - log d) with the logs read from this table of ln(i).
// Daily counts are integral, so the table covers nearly every call; sums
// beyond the table (or non-integral counts from a direct kernel caller)
// fall back to the scalar statistic.
constexpr std::size_t kLogTableSize = 4096;

std::span<const double> log_table() {
  static const std::vector<double> table = [] {
    std::vector<double> t(kLogTableSize, 0.0);
    for (std::size_t i = 1; i < t.size(); ++i) {
      t[i] = std::log(static_cast<double>(i));
    }
    return t;
  }();
  return table;
}

}  // namespace

void prefix_moments(std::span<const double> values, std::span<double> prefix,
                    std::span<double> prefix_sq) {
  RAB_EXPECTS(prefix.size() == values.size() + 1);
  RAB_EXPECTS(prefix_sq.size() == values.size() + 1);
  prefix[0] = 0.0;
  prefix_sq[0] = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    prefix[i + 1] = prefix[i] + v;
    prefix_sq[i + 1] = prefix_sq[i] + v * v;
  }
}

void window_bounds(std::span<const double> times, const WindowSpec& spec,
                   std::span<std::size_t> lo, std::span<std::size_t> hi) {
  const std::size_t n = times.size();
  RAB_EXPECTS(lo.size() == n && hi.size() == n);
  if (spec.is_count()) {
    const std::size_t count = spec.count();
    if (n <= count) {
      std::fill(lo.begin(), lo.end(), std::size_t{0});
      std::fill(hi.begin(), hi.end(), n);
      return;
    }
    const std::size_t half = count / 2;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t first = k >= half ? k - half : 0;
      const std::size_t last = std::min(first + count, n);
      // Re-expand left if the right edge clipped the window.
      lo[k] = last - first < count && last == n ? n - count : first;
      hi[k] = last;
    }
    return;
  }
  // By-duration: both window edges move monotonically with the center of a
  // time-sorted sequence, so two advancing cursors replace the per-center
  // lower_bound/upper_bound pair. The comparison predicates are identical
  // to the binary searches', so the resulting indices are too.
  const double half = spec.duration() / 2.0;
  std::size_t cur_lo = 0;
  std::size_t cur_hi = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double t_lo = times[k] - half;
    const double t_hi = times[k] + half;
    while (cur_lo < n && times[cur_lo] < t_lo) ++cur_lo;
    while (cur_hi < n && !(t_hi < times[cur_hi])) ++cur_hi;
    lo[k] = cur_lo;
    hi[k] = cur_hi;
  }
}

std::vector<double> mean_glrt_curve(std::span<const double> times,
                                    std::span<const double> values,
                                    const WindowSpec& spec, double min_sigma) {
  RAB_EXPECTS(times.size() == values.size());
  RAB_EXPECTS(min_sigma > 0.0);
  const std::size_t n = times.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;

  auto& prefix = util::scratch_aligned_vector<double, MeanPrefixTag>();
  auto& prefix_sq = util::scratch_aligned_vector<double, MeanPrefixSqTag>();
  prefix.resize(n + 1);
  prefix_sq.resize(n + 1);
  prefix_moments(values, prefix, prefix_sq);

  // Window sweep fused with dense extraction: the per-center window edges
  // come from two advancing cursors (by-duration) or index arithmetic
  // (by-count), and the halves' count/sum/sum-of-squares land in
  // unit-stride arrays so the statistic loops below see no indexed loads.
  // The cursor predicates match lower_bound/upper_bound exactly, so the
  // window indices — and every difference of prefix values derived from
  // them — are bit-identical to the per-point binary-search history.
  auto& c1 = util::scratch_aligned_vector<double, FastCountLeftTag>();
  auto& c2 = util::scratch_aligned_vector<double, FastCountRightTag>();
  auto& sum1 = util::scratch_aligned_vector<double, FastSumLeftTag>();
  auto& sum2 = util::scratch_aligned_vector<double, FastSumRightTag>();
  auto& sqs1 = util::scratch_aligned_vector<double, FastSqLeftTag>();
  auto& sqs2 = util::scratch_aligned_vector<double, FastSqRightTag>();
  for (auto* v : {&c1, &c2, &sum1, &sum2, &sqs1, &sqs2}) v->resize(n);
  {
    double* __restrict c1p = c1.data();
    double* __restrict c2p = c2.data();
    double* __restrict sum1p = sum1.data();
    double* __restrict sum2p = sum2.data();
    double* __restrict sqs1p = sqs1.data();
    double* __restrict sqs2p = sqs2.data();
    const double* __restrict pre = prefix.data();
    const double* __restrict pre_sq = prefix_sq.data();
    auto extract = [&](std::size_t k, std::size_t l, std::size_t h) {
      c1p[k] = static_cast<double>(k - l);
      c2p[k] = static_cast<double>(h - k);
      sum1p[k] = pre[k] - pre[l];
      sum2p[k] = pre[h] - pre[k];
      sqs1p[k] = pre_sq[k] - pre_sq[l];
      sqs2p[k] = pre_sq[h] - pre_sq[k];
    };
    if (spec.is_count()) {
      const std::size_t count = spec.count();
      if (n <= count) {
        for (std::size_t k = 0; k < n; ++k) extract(k, 0, n);
      } else {
        const std::size_t half = count / 2;
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t first = k >= half ? k - half : 0;
          const std::size_t last = std::min(first + count, n);
          const std::size_t l =
              last - first < count && last == n ? n - count : first;
          extract(k, l, last);
        }
      }
    } else {
      const double half = spec.duration() / 2.0;
      std::size_t cur_lo = 0;
      std::size_t cur_hi = 0;
      for (std::size_t k = 0; k < n; ++k) {
        const double t_lo = times[k] - half;
        const double t_hi = times[k] + half;
        while (cur_lo < n && times[cur_lo] < t_lo) ++cur_lo;
        while (cur_hi < n && !(t_hi < times[cur_hi])) ++cur_hi;
        extract(k, cur_lo, cur_hi);
      }
    }
  }

  const bool strict = simd::strict_fp();
  const double min_var = min_sigma * min_sigma;
  if (strict) {
    // Reference operation order, point by point: the bit pattern of every
    // statistic matches the scalar history (max(sqrt(pooled), min_sigma),
    // then 2*sigma*sigma).
    for (std::size_t k = 0; k < n; ++k) {
      const double n1 = c1[k];
      const double n2 = c2[k];
      if (n1 == 0.0 || n2 == 0.0) continue;  // an empty half scores 0
      const double s1 = sum1[k];
      const double s2 = sum2[k];
      const double sq1 = sqs1[k];
      const double sq2 = sqs2[k];
      const double mean1 = s1 / n1;
      const double mean2 = s2 / n2;
      const double var1 = std::max(sq1 / n1 - mean1 * mean1, 0.0);
      const double var2 = std::max(sq2 / n2 - mean2 * mean2, 0.0);
      const double pooled = (var1 * n1 + var2 * n2) / (n1 + n2);
      const double w_eff = 2.0 * n1 * n2 / (n1 + n2);
      const double delta = mean1 - mean2;
      const double sigma = std::max(std::sqrt(pooled), min_sigma);
      out[k] = w_eff * delta * delta / (2.0 * sigma * sigma);
    }
    return out;
  }

  // Fast mode: branchless elementwise arithmetic the compiler vectorizes.
  // The empty-half guard becomes algebra (w_eff = 0 zeroes the statistic),
  // and the three divisions by n1, n2, n1+n2 collapse into one reciprocal
  // of their (clamped) product.
  {
    const double* __restrict c1p = c1.data();
    const double* __restrict c2p = c2.data();
    const double* __restrict sum1p = sum1.data();
    const double* __restrict sum2p = sum2.data();
    const double* __restrict sqs1p = sqs1.data();
    const double* __restrict sqs2p = sqs2.data();
    double* __restrict outp = out.data();
    for (std::size_t k = 0; k < n; ++k) {
      const double n1 = c1p[k];
      const double n2 = c2p[k];
      // Clamp empty halves to 1 so the shared reciprocal stays finite; the
      // zero w_eff below erases their contribution exactly.
      const double m1 = std::max(n1, 1.0);
      const double m2 = std::max(n2, 1.0);
      const double m12 = std::max(n1 + n2, 1.0);
      const double inv = 1.0 / (m1 * m2 * m12);
      const double r1 = m2 * m12 * inv;   // == 1/m1
      const double r2 = m1 * m12 * inv;   // == 1/m2
      const double r12 = m1 * m2 * inv;   // == 1/m12
      const double mean1 = sum1p[k] * r1;
      const double mean2 = sum2p[k] * r2;
      const double var1 = std::max(sqs1p[k] * r1 - mean1 * mean1, 0.0);
      const double var2 = std::max(sqs2p[k] * r2 - mean2 * mean2, 0.0);
      const double pooled = (var1 * n1 + var2 * n2) * r12;
      const double w_eff = 2.0 * n1 * n2 * r12;
      const double delta = mean1 - mean2;
      const double var = std::max(pooled, min_var);
      outp[k] = w_eff * delta * delta / (2.0 * var);
    }
  }
  return out;
}

std::vector<double> poisson_glrt_curve(std::span<const double> counts,
                                       std::size_t half_days) {
  RAB_EXPECTS(half_days >= 1);
  const std::size_t m = counts.size();
  std::vector<double> out(m, 0.0);
  if (m < 2) return out;

  auto& prefix = util::scratch_aligned_vector<double, PoissonPrefixTag>();
  prefix.resize(m + 1);
  prefix[0] = 0.0;
  for (std::size_t i = 0; i < m; ++i) prefix[i + 1] = prefix[i] + counts[i];

  // The table fast path applies when every count is a small nonnegative
  // integer (daily arrival counts always are): every windowed sum is then
  // an exact integer index into the log table. Checking the whole array
  // once hoists the per-point floor/range tests out of the hot loop.
  const bool strict = simd::strict_fp();
  bool table_path = !strict && prefix[m] < static_cast<double>(kLogTableSize) &&
                    2 * half_days < kLogTableSize && 2 * m < kLogTableSize;
  if (table_path) {
    for (std::size_t i = 0; i < m; ++i) {
      if (!(counts[i] >= 0.0 && counts[i] == std::floor(counts[i]))) {
        table_path = false;
        break;
      }
    }
  }

  const std::span<const double> logs = log_table();
  if (table_path) {
    for (std::size_t k = 1; k + 1 <= m; ++k) {
      // Shrink the window symmetrically near the edges (Section IV-C.2).
      const std::size_t d = std::min({half_days, k, m - k});
      const double days = static_cast<double>(d);
      const double s1 = prefix[k] - prefix[k - d];
      const double s2 = prefix[k + d] - prefix[k];
      const auto i1 = static_cast<std::size_t>(s1);
      const auto i2 = static_cast<std::size_t>(s2);
      const std::size_t it = i1 + i2;
      const double t1 = i1 > 0 ? (s1 / days) * (logs[i1] - logs[d]) : 0.0;
      const double t2 = i2 > 0 ? (s2 / days) * (logs[i2] - logs[d]) : 0.0;
      const double tt =
          it > 0 ? ((s1 + s2) / (2.0 * days)) * (logs[it] - logs[2 * d]) : 0.0;
      // The statistic is a KL divergence, >= 0 exactly; the table path's
      // different rounding can dip a few ulp below zero, so clamp. The
      // scalar path below reproduces the reference bit pattern instead.
      out[k] = std::max(0.0, 0.5 * t1 + 0.5 * t2 - tt);
    }
    return out;
  }

  for (std::size_t k = 1; k + 1 <= m; ++k) {
    const std::size_t d = std::min({half_days, k, m - k});
    const double days = static_cast<double>(d);
    const double s1 = prefix[k] - prefix[k - d];
    const double s2 = prefix[k + d] - prefix[k];
    out[k] = stats::PoissonRateGlrt::statistic_from_sums(days, s1, days, s2);
  }
  return out;
}

std::vector<double> balance_curve(std::span<const double> values,
                                  std::size_t window_ratings,
                                  double min_cluster_gap) {
  RAB_EXPECTS(window_ratings >= 2);
  RAB_EXPECTS(min_cluster_gap >= 0.0);
  const std::size_t n = values.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;

  auto& sorted = util::scratch_vector<double, BalanceSortTag>();

  // The single-linkage two-cluster cut of 1-D data is the first maximal
  // adjacent gap of the sorted window (two_cluster_split's contract).
  const auto balance = [&]() -> double {
    const std::size_t w = sorted.size();
    if (w < 4) return 0.0;
    std::size_t best = 0;
    double best_gap = sorted[1] - sorted[0];
    for (std::size_t i = 1; i + 1 < w; ++i) {
      const double gap = sorted[i + 1] - sorted[i];
      if (gap > best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    // Without a real value gap between the clusters the "split" is just
    // adjacent rating levels of one noisy blob — not a second mode.
    if (best_gap < min_cluster_gap) return 0.0;
    const double n1 = static_cast<double>(best + 1);
    const double n2 = static_cast<double>(w - best - 1);
    return std::min(n1 / n2, n2 / n1);  // Eq. (6)
  };

  if (n <= window_ratings) {
    // Every by-count window is the whole sequence; one split serves all.
    sorted.assign(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    std::fill(out.begin(), out.end(), balance());
    return out;
  }

  // n > count: every window holds exactly `count` values and both edges
  // advance monotonically with the center, so the sorted window updates by
  // one ordered erase + insert per step (and not at all while the window
  // is pinned at a sequence edge, where the previous value is reused).
  sorted.clear();
  const std::size_t half = window_ratings / 2;
  std::size_t cur_lo = 0;
  std::size_t cur_hi = 0;
  std::size_t prev_lo = n;  // sentinel: never matches the first window
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t first = k >= half ? k - half : 0;
    const std::size_t last = std::min(first + window_ratings, n);
    const std::size_t lo =
        last - first < window_ratings && last == n ? n - window_ratings : first;
    while (cur_hi < last) {
      const double v = values[cur_hi++];
      sorted.insert(std::upper_bound(sorted.begin(), sorted.end(), v), v);
    }
    while (cur_lo < lo) {
      const double v = values[cur_lo++];
      sorted.erase(std::lower_bound(sorted.begin(), sorted.end(), v));
    }
    out[k] = k > 0 && lo == prev_lo ? out[k - 1] : balance();
    prev_lo = lo;
  }
  return out;
}

std::vector<double> ar_error_curve(std::span<const double> times,
                                   std::span<const double> values,
                                   const WindowSpec& spec, std::size_t order) {
  RAB_EXPECTS(times.size() == values.size());
  RAB_EXPECTS(order >= 1);
  const std::size_t n = times.size();
  std::vector<double> out(n, 1.0);
  if (n == 0) return out;

  auto& lo = util::scratch_vector<std::size_t, BoundsLoTag>();
  auto& hi = util::scratch_vector<std::size_t, BoundsHiTag>();
  lo.resize(n);
  hi.resize(n);
  window_bounds(times, spec, lo, hi);

  auto& xc = util::scratch_vector<double, ArCenteredTag>();
  for (std::size_t k = 0; k < n; ++k) {
    // The error depends only on the window contents; windows pinned at a
    // sequence edge (or spanning the whole short sequence) repeat.
    if (k > 0 && lo[k] == lo[k - 1] && hi[k] == hi[k - 1]) {
      out[k] = out[k - 1];
      continue;
    }
    out[k] = ar_error_window(values.data() + lo[k], hi[k] - lo[k], order, xc);
  }
  return out;
}

}  // namespace rab::signal
