// Sliding-window construction over time-stamped samples.
//
// The paper's detectors window their input two ways (Section IV-E): windows
// containing a fixed number of ratings, or windows spanning a fixed time
// duration. WindowSpec captures that choice; the helpers slice a
// time-sorted sample sequence accordingly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/day.hpp"

namespace rab::signal {

/// One time-stamped sample.
struct Sample {
  Day time = 0.0;
  double value = 0.0;
};

/// How to size a sliding window.
class WindowSpec {
 public:
  /// Window holds exactly `n` samples (n >= 2).
  static WindowSpec by_count(std::size_t n);
  /// Window spans `days` of time (days > 0).
  static WindowSpec by_duration(double days);

  [[nodiscard]] bool is_count() const { return is_count_; }
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] double duration() const;

 private:
  WindowSpec() = default;
  bool is_count_ = true;
  std::size_t count_ = 0;
  double duration_ = 0.0;
};

/// Half-open index range [first, last) into a sample sequence.
struct IndexRange {
  std::size_t first = 0;
  std::size_t last = 0;
  [[nodiscard]] std::size_t size() const { return last - first; }
  [[nodiscard]] bool empty() const { return last <= first; }
  friend bool operator==(const IndexRange&, const IndexRange&) = default;
};

/// Indices of samples centered on `center` under `spec`.
///
/// By-count: the window is [center - n/2, center + n/2) clamped to the
/// sequence (shrinking near the edges as the paper does for curve
/// endpoints). When the sequence holds fewer than `spec.count()` samples
/// the window is the full range [0, samples.size()) for every center.
/// By-duration: samples with |time - samples[center].time| <= days / 2.
/// `samples` must be sorted by time.
IndexRange window_around(std::span<const Sample> samples, std::size_t center,
                         const WindowSpec& spec);

/// Same, over a bare (sorted) time column — the SoA-layout path that skips
/// materializing Sample records.
IndexRange window_around(std::span<const double> times, std::size_t center,
                         const WindowSpec& spec);

/// Splits `range` at index `split` into the two half-windows
/// [first, split) and [split, last). `split` must lie within the range.
std::pair<IndexRange, IndexRange> split_at(const IndexRange& range,
                                           std::size_t split);

/// Extracts values of `range` into a contiguous vector.
std::vector<double> values_in(std::span<const Sample> samples,
                              const IndexRange& range);

/// Daily counts: number of samples on each integer day of [day_begin,
/// day_end). `samples` must be sorted by time. An empty span
/// (day_end == day_begin) yields an empty vector.
std::vector<double> daily_counts(std::span<const Sample> samples,
                                 Day day_begin, Day day_end);

}  // namespace rab::signal
