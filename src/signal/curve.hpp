// Indicator curves and peak detection.
//
// Every detector in the paper reduces its windowed statistic to a curve over
// time (MC curve, ARC curve, HC curve, ME curve); suspicious intervals are
// then read off the curve's peaks or threshold crossings.
#pragma once

#include <cstddef>
#include <vector>

#include "util/day.hpp"

namespace rab::signal {

/// One point of an indicator curve.
struct CurvePoint {
  Day time = 0.0;
  double value = 0.0;
};

/// A statistic sampled over time (sorted by time).
using Curve = std::vector<CurvePoint>;

/// Options for peak detection on an indicator curve.
struct PeakOptions {
  double min_height = 0.0;      ///< ignore local maxima below this value
  double min_separation = 0.0;  ///< merge peaks closer than this (days);
                                ///< the higher peak wins
};

/// Indices of local maxima of `curve` subject to `options`. A plateau
/// reports its first index. Endpoints count as peaks if they dominate their
/// single neighbor.
std::vector<std::size_t> find_peaks(const Curve& curve,
                                    const PeakOptions& options);

/// Time intervals between consecutive peak positions, covering the full
/// curve span: [t0, p1), [p1, p2), ..., [pm, tN]. With no peaks, the single
/// interval spanning the whole curve is returned. Empty curve -> empty.
std::vector<Interval> segments_between_peaks(
    const Curve& curve, const std::vector<std::size_t>& peaks);

/// Maximum curve value inside [interval.begin, interval.end); 0 if no curve
/// points fall inside.
double max_in_interval(const Curve& curve, const Interval& interval);

/// Intervals where the curve is (strictly) below `threshold`, merged over
/// consecutive points. Used for the ME detector's low-error intervals.
std::vector<Interval> intervals_below(const Curve& curve, double threshold);

/// Intervals where the curve is at or above `threshold`.
std::vector<Interval> intervals_above(const Curve& curve, double threshold);

}  // namespace rab::signal
