#include "signal/windowing.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rab::signal {

WindowSpec WindowSpec::by_count(std::size_t n) {
  RAB_EXPECTS(n >= 2);
  WindowSpec spec;
  spec.is_count_ = true;
  spec.count_ = n;
  return spec;
}

WindowSpec WindowSpec::by_duration(double days) {
  RAB_EXPECTS(days > 0.0);
  WindowSpec spec;
  spec.is_count_ = false;
  spec.duration_ = days;
  return spec;
}

std::size_t WindowSpec::count() const {
  RAB_EXPECTS(is_count_);
  return count_;
}

double WindowSpec::duration() const {
  RAB_EXPECTS(!is_count_);
  return duration_;
}

IndexRange window_around(std::span<const Sample> samples, std::size_t center,
                         const WindowSpec& spec) {
  RAB_EXPECTS(center < samples.size());
  const std::size_t n = samples.size();
  if (spec.is_count()) {
    // Fewer samples than the window asks for: the window is the whole
    // sequence, stated explicitly rather than via the re-expansion clamp.
    if (n <= spec.count()) return IndexRange{0, n};
    const std::size_t half = spec.count() / 2;
    const std::size_t first = center >= half ? center - half : 0;
    const std::size_t last = std::min(first + spec.count(), n);
    // Re-expand left if the right edge clipped the window.
    const std::size_t refirst =
        last - first < spec.count() && last == n ? n - spec.count() : first;
    return IndexRange{refirst, last};
  }
  const double half = spec.duration() / 2.0;
  const Day t = samples[center].time;
  const auto lo = std::lower_bound(
      samples.begin(), samples.end(), t - half,
      [](const Sample& s, Day d) { return s.time < d; });
  const auto hi = std::upper_bound(
      samples.begin(), samples.end(), t + half,
      [](Day d, const Sample& s) { return d < s.time; });
  return IndexRange{static_cast<std::size_t>(lo - samples.begin()),
                    static_cast<std::size_t>(hi - samples.begin())};
}

IndexRange window_around(std::span<const double> times, std::size_t center,
                         const WindowSpec& spec) {
  RAB_EXPECTS(center < times.size());
  const std::size_t n = times.size();
  if (spec.is_count()) {
    if (n <= spec.count()) return IndexRange{0, n};
    const std::size_t half = spec.count() / 2;
    const std::size_t first = center >= half ? center - half : 0;
    const std::size_t last = std::min(first + spec.count(), n);
    const std::size_t refirst =
        last - first < spec.count() && last == n ? n - spec.count() : first;
    return IndexRange{refirst, last};
  }
  const double half = spec.duration() / 2.0;
  const Day t = times[center];
  const auto lo = std::lower_bound(times.begin(), times.end(), t - half);
  const auto hi = std::upper_bound(times.begin(), times.end(), t + half);
  return IndexRange{static_cast<std::size_t>(lo - times.begin()),
                    static_cast<std::size_t>(hi - times.begin())};
}

std::pair<IndexRange, IndexRange> split_at(const IndexRange& range,
                                           std::size_t split) {
  RAB_EXPECTS(split >= range.first && split <= range.last);
  return {IndexRange{range.first, split}, IndexRange{split, range.last}};
}

std::vector<double> values_in(std::span<const Sample> samples,
                              const IndexRange& range) {
  RAB_EXPECTS(range.last <= samples.size());
  std::vector<double> out;
  out.reserve(range.size());
  for (std::size_t i = range.first; i < range.last; ++i) {
    out.push_back(samples[i].value);
  }
  return out;
}

std::vector<double> daily_counts(std::span<const Sample> samples,
                                 Day day_begin, Day day_end) {
  RAB_EXPECTS(day_end >= day_begin);
  // Empty span (e.g. a single rating stamped on an integer day, where
  // floor(span) == ceil(span)): no days, no counts.
  if (day_end == day_begin) return {};
  const auto days = static_cast<std::size_t>(std::ceil(day_end - day_begin));
  std::vector<double> counts(days, 0.0);
  for (const Sample& s : samples) {
    if (s.time < day_begin || s.time >= day_end) continue;
    const auto idx = static_cast<std::size_t>(s.time - day_begin);
    if (idx < counts.size()) counts[idx] += 1.0;
  }
  return counts;
}

}  // namespace rab::signal
