#include "signal/autocorrelation.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::signal {

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (xs.size() < lag + 2) return 0.0;
  const double m = stats::mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom < 1e-12) return 0.0;
  double num = 0.0;
  for (std::size_t t = 0; t + lag < xs.size(); ++t) {
    num += (xs[t] - m) * (xs[t + lag] - m);
  }
  return num / denom;
}

std::vector<double> autocorrelations(std::span<const double> xs,
                                     std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t lag = 1; lag <= count; ++lag) {
    out.push_back(autocorrelation(xs, lag));
  }
  return out;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  RAB_EXPECTS(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = stats::mean(xs);
  const double my = stats::mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx < 1e-12 || syy < 1e-12) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace rab::signal
