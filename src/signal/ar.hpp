// Autoregressive signal modeling via the covariance method.
//
// The model-error detector (paper Section IV-E, following Hayes,
// "Statistical Digital Signal Processing and Modeling") fits
//     x(n) = -sum_{k=1..p} a_k x(n-k) + e(n)
// to the ratings in a window by least squares over n = p..N-1 (the
// covariance method: no windowing/zero-padding of the data). The normalized
// residual power is the "model error": high for white-noise-like honest
// ratings, low when a deterministic signal (a coordinated attack) is present.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rab::signal {

/// Result of fitting an AR(p) model.
struct ArFit {
  std::vector<double> coefficients;  ///< a_1..a_p in the convention above
  double residual_power = 0.0;       ///< mean squared prediction error
  double signal_power = 0.0;         ///< mean squared (centered) signal
  /// residual_power / signal_power, clamped to [0, 1]; 1 when the window is
  /// too short or the signal is flat (no evidence of structure).
  double normalized_error = 1.0;
};

/// Fits AR(`order`) to `x` (mean removed first) with the covariance method.
///
/// Requires x.size() >= order + 1 to form any equation; shorter inputs yield
/// normalized_error = 1 (no structure detectable). A tiny ridge keeps the
/// normal equations well-posed on degenerate windows.
ArFit fit_ar(std::span<const double> x, std::size_t order);

/// Convenience: normalized model error of AR(`order`) on `x`.
double ar_model_error(std::span<const double> x, std::size_t order);

/// Picks the AR order in [1, max_order] minimizing the Akaike information
/// criterion AIC(p) = N ln(residual_power) + 2p over the usable sample
/// count N. Returns 1 when the window is too short to compare orders.
std::size_t select_ar_order(std::span<const double> x,
                            std::size_t max_order);

}  // namespace rab::signal
