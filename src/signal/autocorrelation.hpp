// Sample autocorrelation and cross-correlation of rating sequences.
//
// Used to quantify ordering effects (Section V-D): Procedure 3 pairs unfair
// values against the preceding fair ratings, which changes the combined
// stream's lag correlations even though the value and time multisets stay
// fixed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rab::signal {

/// Sample autocorrelation of `xs` at `lag` (biased estimator, mean
/// removed): r(lag) = sum (x_t - m)(x_{t+lag} - m) / sum (x_t - m)^2.
/// Returns 0 when the sequence is shorter than lag + 2 or has no variance.
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// First `count` autocorrelations r(1)..r(count).
std::vector<double> autocorrelations(std::span<const double> xs,
                                     std::size_t count);

/// Pearson correlation of two equal-length sequences; 0 when degenerate.
double correlation(std::span<const double> xs, std::span<const double> ys);

}  // namespace rab::signal
