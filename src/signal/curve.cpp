#include "signal/curve.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rab::signal {

std::vector<std::size_t> find_peaks(const Curve& curve,
                                    const PeakOptions& options) {
  std::vector<std::size_t> peaks;
  const std::size_t n = curve.size();
  if (n == 0) return peaks;
  if (n == 1) {
    if (curve[0].value >= options.min_height) peaks.push_back(0);
    return peaks;
  }

  auto is_peak = [&](std::size_t i) {
    const double v = curve[i].value;
    if (v < options.min_height) return false;
    if (i == 0) return v > curve[1].value;
    if (i == n - 1) return v > curve[n - 2].value;
    // Plateau handling: strictly greater than the previous point, and at
    // least as large as the next (the first plateau index reports).
    return v > curve[i - 1].value && v >= curve[i + 1].value;
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (!is_peak(i)) continue;
    if (!peaks.empty() &&
        curve[i].time - curve[peaks.back()].time < options.min_separation) {
      // Too close to the previous peak: keep the taller of the two.
      if (curve[i].value > curve[peaks.back()].value) peaks.back() = i;
      continue;
    }
    peaks.push_back(i);
  }
  return peaks;
}

std::vector<Interval> segments_between_peaks(
    const Curve& curve, const std::vector<std::size_t>& peaks) {
  std::vector<Interval> segments;
  if (curve.empty()) return segments;
  const Day t0 = curve.front().time;
  const Day tn = curve.back().time;

  Day cursor = t0;
  for (std::size_t p : peaks) {
    RAB_EXPECTS(p < curve.size());
    const Day tp = curve[p].time;
    if (tp > cursor) {
      segments.push_back(Interval{cursor, tp});
      cursor = tp;
    }
  }
  // Close the final segment; use a right-inclusive end so the last rating
  // (at time tn exactly) belongs to the last segment.
  const Day end = std::nextafter(tn, tn + 1.0);
  if (end > cursor) segments.push_back(Interval{cursor, end});
  return segments;
}

double max_in_interval(const Curve& curve, const Interval& interval) {
  double best = 0.0;
  for (const CurvePoint& p : curve) {
    if (interval.contains(p.time)) best = std::max(best, p.value);
  }
  return best;
}

namespace {

template <typename Pred>
std::vector<Interval> intervals_where(const Curve& curve, Pred pred) {
  std::vector<Interval> out;
  bool open = false;
  Day begin = 0.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const bool hit = pred(curve[i].value);
    if (hit && !open) {
      open = true;
      begin = curve[i].time;
    } else if (!hit && open) {
      open = false;
      out.push_back(Interval{begin, curve[i].time});
    }
  }
  if (open) {
    const Day tn = curve.back().time;
    out.push_back(Interval{begin, std::nextafter(tn, tn + 1.0)});
  }
  return out;
}

}  // namespace

std::vector<Interval> intervals_below(const Curve& curve, double threshold) {
  return intervals_where(curve,
                         [threshold](double v) { return v < threshold; });
}

std::vector<Interval> intervals_above(const Curve& curve, double threshold) {
  return intervals_where(curve,
                         [threshold](double v) { return v >= threshold; });
}

}  // namespace rab::signal
