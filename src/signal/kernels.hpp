// Batch curve kernels over contiguous rating columns.
//
// The windowed detectors used to evaluate their GLRT point by point —
// window_around (two binary searches), split_at, and a statistic call per
// sample, each guarded by contract checks. These kernels compute the whole
// indicator curve in a few passes over the SoA columns instead:
//
//  1. one sequential prefix-moment pass (shared by every GLRT variant —
//     MC's Gaussian test and the ARC family's Poisson test both read
//     half-window totals out of it),
//  2. one window-bound pass — an O(n) two-pointer sweep for by-duration
//     windows (both bounds are monotone in the center index, so the
//     per-point binary searches collapse to two advancing cursors) and
//     closed-form index arithmetic for by-count windows,
//  3. one elementwise statistic loop, where every point is independent and
//     the compiler can vectorize (see util/simd.hpp).
//
// Strict-FP contract: with rab::simd::strict_fp() the statistic loop
// replays the exact operation order of the scalar path
// (RollingStats::moments + GaussianMeanGlrt::statistic /
// PoissonRateGlrt::statistic_from_sums), so results are bit-identical to
// the pre-kernel implementation. Fast mode substitutes algebraic rewrites —
// a sqrt-free sigma floor for the Gaussian test and an integer log table
// for the Poisson test — that agree to ~1 ulp (tests pin relative 1e-12).
// Window bounds and prefix sums are index/sequential arithmetic and
// identical in both modes.
#pragma once

#include <span>
#include <vector>

#include "signal/windowing.hpp"

namespace rab::signal {

/// Fills prefix[i+1] = prefix[i] + values[i] and prefix_sq[i+1] =
/// prefix_sq[i] + values[i]^2 with prefix[0] = prefix_sq[0] = 0. Both
/// output spans must have size values.size() + 1. The accumulation is
/// sequential in both FP modes — prefix sums feed threshold decisions all
/// over the detectors, and reassociating them would flip bits everywhere.
void prefix_moments(std::span<const double> values, std::span<double> prefix,
                    std::span<double> prefix_sq);

/// Window bounds [lo[k], hi[k]) around every center k under `spec`, for a
/// time-sorted `times` column — the batch equivalent of window_around.
/// Output spans must have size times.size().
void window_bounds(std::span<const double> times, const WindowSpec& spec,
                   std::span<std::size_t> lo, std::span<std::size_t> hi);

/// Gaussian mean-change GLRT statistic at every sample: out[k] is the
/// statistic of the half-windows [lo[k], k) and [k, hi[k]) under `spec`,
/// exactly what window_around + split_at + RollingStats::moments +
/// GaussianMeanGlrt::statistic produce per point. `times` must be sorted
/// and the same length as `values`.
[[nodiscard]] std::vector<double> mean_glrt_curve(
    std::span<const double> times, std::span<const double> values,
    const WindowSpec& spec, double min_sigma);

/// Poisson rate-change GLRT statistic at every split point of a daily-count
/// sequence: out[k] for k in [1, counts.size()) is the statistic of the
/// halves [k-d, k) and [k, k+d) with d = min(half_days, k, n-k), matching
/// the ARC curve loop; out[0] is 0. `half_days` must be >= 1.
[[nodiscard]] std::vector<double> poisson_glrt_curve(
    std::span<const double> counts, std::size_t half_days);

/// Histogram-balance indicator at every sample (HC detector, Eq. (6)):
/// out[k] is min(n1/n2, n2/n1) of the single-linkage two-cluster split of
/// the by-count window of `window_ratings` values around k, or 0 when the
/// window holds fewer than 4 samples or the separating gap is below
/// `min_cluster_gap` — exactly what window_around + two_cluster_split
/// produce per point. Instead of re-sorting every window this maintains
/// one incrementally sorted sliding window (adjacent by-count windows
/// differ by at most one value on each side), dropping the per-center
/// O(W log W) sort to an O(W) ordered insert/erase. The indicator depends
/// only on the sorted value sequence and the first maximal adjacent gap,
/// both of which are sort-algorithm-independent, so the curve is
/// bit-identical to the scalar path in both FP modes.
[[nodiscard]] std::vector<double> balance_curve(std::span<const double> values,
                                                std::size_t window_ratings,
                                                double min_cluster_gap);

/// Normalized AR(`order`) model error at every sample (ME detector):
/// out[k] is ar_model_error of the window of `values` around k under
/// `spec`. The covariance-method fit is fused: the normal-equation Gram
/// matrix, right-hand side, and the predict+residual accumulation all read
/// the centered window directly through raw shifted pointers instead of
/// materializing the rows-by-order design matrix behind contract-checked
/// Matrix accesses, and the window/centering scratch is reused across
/// centers. Every accumulation replays fit_ar's exact operation order
/// (stats::mean already switches on the FP mode internally), so the curve
/// is bit-identical to the scalar path in both FP modes. `times` must be
/// sorted and the same length as `values`; `order` must be >= 1.
[[nodiscard]] std::vector<double> ar_error_curve(
    std::span<const double> times, std::span<const double> values,
    const WindowSpec& spec, std::size_t order);

}  // namespace rab::signal
