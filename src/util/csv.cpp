#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace rab::csv {

Row parse_line(const std::string& line) {
  Row fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::vector<Row> read(std::istream& in) {
  std::vector<Row> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    RAB_FAILPOINT("csv.read.line");
    rows.push_back(parse_line(line));
  }
  return rows;
}

std::vector<Row> read_file(const std::string& path) {
  RAB_FAILPOINT("csv.read_file.open");
  std::ifstream in(path);
  if (!in) throw IoError("csv: cannot open file: " + path);
  return read(in);
}

void write_row(std::ostream& out, const Row& row) {
  RAB_FAILPOINT("csv.write.row");
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out << ',';
    out << row[i];
  }
  out << '\n';
  if (!out) throw IoError("csv: row write failed");
}

double to_double(const std::string& field) {
  try {
    std::size_t consumed = 0;
    double value = std::stod(field, &consumed);
    if (consumed != field.size()) throw std::invalid_argument(field);
    return value;
  } catch (const std::exception&) {
    throw InvalidArgument("csv: not a number: '" + field + "'");
  }
}

long long to_int(const std::string& field) {
  long long value = 0;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw InvalidArgument("csv: not an integer: '" + field + "'");
  }
  return value;
}

long long to_int_in(const std::string& field, long long lo, long long hi) {
  const long long value = to_int(field);
  if (value < lo || value > hi) {
    throw InvalidArgument("csv: value " + field + " outside [" +
                          std::to_string(lo) + ", " + std::to_string(hi) +
                          "]");
  }
  return value;
}

}  // namespace rab::csv
