// Error handling primitives for the rab library.
//
// Library code throws exceptions derived from rab::Error for contract
// violations and unrecoverable conditions (Core Guidelines I.10, E.2).
// RAB_EXPECTS / RAB_ENSURES express pre/postconditions; they are always on
// (the checks here are cheap relative to the statistical work they guard).
#pragma once

#include <stdexcept>
#include <string>

namespace rab {

/// Base class for all errors thrown by the rab library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates a stated precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when internal state violates an invariant (a library bug).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// Thrown when the environment fails the library: a file that cannot be
/// opened, a write the OS cut short, a full disk. Distinct from
/// InvalidArgument (the caller's fault) and LogicError (our fault) so
/// callers can retry or fall back without masking real bugs.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when persisted data is present but fails an integrity check — a
/// truncated snapshot, a checksum mismatch, an impossible section size.
/// Derives from IoError: corrupt storage is an environment failure, and a
/// recovery path that catches IoError handles both.
class CorruptData : public IoError {
 public:
  explicit CorruptData(const std::string& what) : IoError(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  throw LogicError(std::string(kind) + " failed: " + expr + " at " + file +
                   ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace rab

#define RAB_EXPECTS(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::rab::detail::contract_failure("precondition", #cond, __FILE__,   \
                                      __LINE__);                         \
  } while (false)

#define RAB_ENSURES(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::rab::detail::contract_failure("postcondition", #cond, __FILE__,  \
                                      __LINE__);                         \
  } while (false)
