// Portable-SIMD support for the column kernels.
//
// The detector hot loops (signal/kernels.cpp, cluster/single_linkage.cpp)
// are written as plain width-N inner loops over contiguous double columns so
// the compiler auto-vectorizes them — no intrinsics, no ISA dependency. This
// header holds the two pieces those kernels share:
//
//  - kWidth, the unroll width the kernels shape their inner loops around
//    (4 doubles = one AVX2 register; narrower ISAs just get an unrolled
//    scalar loop, which is still correct).
//  - strict_fp(), the runtime switch between the fast kernels (FP
//    reassociation and algebraic rewrites allowed; results can differ from
//    the scalar reference in the last bits) and the strict kernels that
//    replay the exact scalar operation order, bit for bit.
//
// Strict mode resolution: the CMake option RAB_STRICT_FP bakes in the
// compiled default; the RAB_STRICT_FP environment variable (1/0, on/off,
// true/false) overrides it at process start. The flag is process-wide and
// latched on first use, mirroring how RAB_THREADS is handled.
#pragma once

#include <cstddef>

namespace rab::simd {

/// Inner-loop width of the vectorized kernels, in doubles.
inline constexpr std::size_t kWidth = 4;

/// True when FP-sensitive kernels must replay the exact scalar operation
/// order (bit-identical to the pre-SoA implementation). Latched on first
/// call; see the header comment for how the value is resolved.
[[nodiscard]] bool strict_fp();

namespace detail {
/// Reads compiled default + environment, uncached (exposed for tests).
[[nodiscard]] bool resolve_strict_fp();
}  // namespace detail

}  // namespace rab::simd
