#include "util/failpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <random>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace rab::util {

namespace {

enum class Action { kThrow, kShortWrite, kCorrupt };
enum class Trigger { kOnce, kEveryN, kProbability };

struct Policy {
  Action action = Action::kThrow;
  Trigger trigger = Trigger::kOnce;
  std::uint64_t every = 1;
  double probability = 1.0;
  std::uint64_t seed = 1;

  std::mt19937_64 rng;
  std::uint64_t passes = 0;
  std::uint64_t fires = 0;
  bool exhausted = false;  ///< a kOnce policy that already fired
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Policy> policies;
  /// Fire counts survive disarm so tests can assert after recovery.
  std::unordered_map<std::string, std::size_t> fires;
};

Registry& registry() {
  static Registry r;
  return r;
}

// The compiled-in failpoint sites. Kept in one place (rather than
// self-registering macros) so the disarmed fast path stays a single
// branch; arm_failpoints validates against it and the chaos harness
// iterates it. Grep for the string to find the site.
constexpr std::string_view kCatalog[] = {
    "csv.read_file.open",       // util/csv.cpp: ifstream open
    "csv.read.line",            // util/csv.cpp: per parsed line
    "csv.write.row",            // util/csv.cpp: per written row
    "rating.read_csv.row",      // rating/io.cpp: per dataset row
    "rating.write_csv.open",    // rating/io.cpp: ofstream open
    "rating.write_csv.flush",   // rating/io.cpp: final flush
    "monitor.analyze",          // detectors/online_monitor.cpp: epoch entry
    "monitor.compact",          // detectors/online_monitor.cpp: retention
    "cache.insert",             // detectors/result_cache.cpp: memo insert
    "checkpoint.write.open",    // detectors/checkpoint.cpp: temp create
    "checkpoint.write.body",    // detectors/checkpoint.cpp: payload write
    "checkpoint.write.fsync",   // detectors/checkpoint.cpp: fsync
    "checkpoint.write.rename",  // detectors/checkpoint.cpp: publish rename
    "checkpoint.read.open",     // detectors/checkpoint.cpp: snapshot open
    "checkpoint.read.body",     // detectors/checkpoint.cpp: payload read
    "checkpoint.prune",         // detectors/checkpoint.cpp: generation gc
    "store.open",               // store/rating_store.cpp: directory open
    "store.read.map",           // store/rating_store.cpp: segment mmap
    "store.append.open",        // store/rating_store.cpp: segment create
    "store.append.frame",       // store/rating_store.cpp: group write
    "store.append.fsync",       // store/rating_store.cpp: batched fsync
    "store.seal",               // store/rating_store.cpp: segment rollover
    "store.compact.write",      // store/rating_store.cpp: consolidated write
    "store.compact.rename",     // store/rating_store.cpp: publish rename
    "store.compact.unlink",     // store/rating_store.cpp: input removal
    "net.accept",               // net/server.cpp: drop an accepted conn
    "net.read.short",           // net/socket.cpp: truncate a frame read
    "net.write.short",          // net/socket.cpp: cut a frame write short
    "net.write.fail",           // net/socket.cpp: fail a frame write
    "net.frame.corrupt",        // net/socket.cpp: flip a bit in a frame
    "net.session.drop",         // net/server.cpp: forget a session id
};

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw InvalidArgument("failpoint: bad RAB_FAULTS spec '" + spec +
                        "': " + why);
}

bool known_failpoint(std::string_view name) {
  return std::find(std::begin(kCatalog), std::end(kCatalog), name) !=
         std::end(kCatalog);
}

/// True when this pass of the policy should inject its fault.
bool triggered(Policy& p) {
  ++p.passes;
  switch (p.trigger) {
    case Trigger::kOnce:
      if (p.exhausted) return false;
      p.exhausted = true;
      return true;
    case Trigger::kEveryN:
      return p.passes % p.every == 0;
    case Trigger::kProbability:
      return std::uniform_real_distribution<double>(0.0, 1.0)(p.rng) <
             p.probability;
  }
  return false;
}

/// Looks up the armed policy for `name` and rolls its trigger. Returns
/// nullptr when the name has no armed policy or the policy does not fire
/// this pass. Caller holds the registry mutex.
Policy* fire(Registry& r, std::string_view name) {
  const auto it = r.policies.find(std::string(name));
  if (it == r.policies.end()) return nullptr;
  if (!triggered(it->second)) return nullptr;
  ++it->second.fires;
  ++r.fires[it->first];
  return &it->second;
}

}  // namespace

namespace detail {

std::atomic<bool> g_failpoints_armed{false};

void failpoint_slow(std::string_view name) {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  if (fire(r, name) != nullptr) {
    // A control-flow site cannot express a short or corrupt write; every
    // triggered action degrades to the one failure it can inject.
    throw IoError("failpoint '" + std::string(name) + "' injected failure");
  }
}

bool failpoint_poll_slow(std::string_view name) {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  return fire(r, name) != nullptr;
}

FaultOutcome failpoint_io_slow(std::string_view name, std::size_t size) {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  Policy* p = fire(r, name);
  if (p == nullptr) return FaultOutcome{size};
  switch (p->action) {
    case Action::kThrow:
      throw IoError("failpoint '" + std::string(name) + "' injected failure");
    case Action::kShortWrite:
      return FaultOutcome{size / 2};
    case Action::kCorrupt: {
      FaultOutcome out{size};
      out.corrupt = size > 0;
      if (out.corrupt) {
        out.corrupt_offset = p->rng() % size;
        out.corrupt_mask =
            static_cast<std::uint8_t>(1u << (p->rng() % 8));
      }
      return out;
    }
  }
  return FaultOutcome{size};
}

}  // namespace detail

std::size_t apply_fault(const FaultOutcome& outcome, char* data,
                        std::size_t size) {
  if (outcome.corrupt && outcome.corrupt_offset < size) {
    data[outcome.corrupt_offset] =
        static_cast<char>(static_cast<unsigned char>(
                              data[outcome.corrupt_offset]) ^
                          outcome.corrupt_mask);
  }
  return std::min(outcome.write_bytes, size);
}

void arm_failpoints(const std::string& spec) {
  std::unordered_map<std::string, Policy> parsed;

  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t end = std::min(spec.find(';', begin), spec.size());
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      bad_spec(spec, "expected name:action in '" + entry + "'");
    }
    const std::string name = entry.substr(0, colon);
    if (!known_failpoint(name)) {
      bad_spec(spec, "unknown failpoint '" + name + "'");
    }

    Policy policy;
    std::size_t part_begin = colon + 1;
    bool first = true;
    while (part_begin <= entry.size()) {
      const std::size_t part_end =
          std::min(entry.find(',', part_begin), entry.size());
      const std::string part = entry.substr(part_begin, part_end - part_begin);
      part_begin = part_end + 1;
      if (part.empty()) bad_spec(spec, "empty clause in '" + entry + "'");

      const std::size_t eq = part.find('=');
      const std::string key = part.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? "" : part.substr(eq + 1);
      try {
        if (first) {
          first = false;
          if (key == "throw") policy.action = Action::kThrow;
          else if (key == "short") policy.action = Action::kShortWrite;
          else if (key == "corrupt") policy.action = Action::kCorrupt;
          else bad_spec(spec, "unknown action '" + part + "'");
        } else if (key == "once") {
          policy.trigger = Trigger::kOnce;
        } else if (key == "every") {
          policy.trigger = Trigger::kEveryN;
          policy.every = std::stoull(value);
          if (policy.every == 0) bad_spec(spec, "every=0 in '" + entry + "'");
        } else if (key == "p") {
          policy.trigger = Trigger::kProbability;
          policy.probability = std::stod(value);
          if (policy.probability < 0.0 || policy.probability > 1.0) {
            bad_spec(spec, "p outside [0,1] in '" + entry + "'");
          }
        } else if (key == "seed") {
          policy.seed = std::stoull(value);
        } else {
          bad_spec(spec, "unknown trigger '" + part + "'");
        }
      } catch (const InvalidArgument&) {
        throw;
      } catch (const std::exception&) {
        bad_spec(spec, "bad number in '" + part + "'");
      }
    }
    policy.rng.seed(policy.seed);
    parsed[name] = std::move(policy);
  }

  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  // Fire counts are "since armed": arming a name restarts its count, but
  // counts of names not in this spec survive (they may still be asserted
  // on after a disarm).
  for (const auto& [name, policy] : parsed) r.fires.erase(name);
  r.policies = std::move(parsed);
  detail::g_failpoints_armed.store(!r.policies.empty(),
                                   std::memory_order_relaxed);
}

void disarm_failpoints() {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  r.policies.clear();
  detail::g_failpoints_armed.store(false, std::memory_order_relaxed);
}

void arm_failpoints_from_env() {
  const char* spec = std::getenv("RAB_FAULTS");
  if (spec == nullptr || *spec == '\0') return;
  arm_failpoints(spec);
}

std::size_t failpoint_fires(std::string_view name) {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  const auto it = r.fires.find(std::string(name));
  return it == r.fires.end() ? 0 : it->second;
}

std::span<const std::string_view> failpoint_catalog() {
  return std::span<const std::string_view>(kCatalog);
}

}  // namespace rab::util
