#include "util/simd.hpp"

#include <cstdlib>
#include <string_view>

namespace rab::simd {

namespace detail {

bool resolve_strict_fp() {
#ifdef RAB_STRICT_FP_DEFAULT
  bool strict = RAB_STRICT_FP_DEFAULT != 0;
#else
  bool strict = false;
#endif
  if (const char* env = std::getenv("RAB_STRICT_FP")) {
    const std::string_view v(env);
    if (v == "1" || v == "on" || v == "ON" || v == "true" || v == "TRUE") {
      strict = true;
    } else if (v == "0" || v == "off" || v == "OFF" || v == "false" ||
               v == "FALSE") {
      strict = false;
    }
    // Unrecognized values keep the compiled default rather than guessing.
  }
  return strict;
}

}  // namespace detail

bool strict_fp() {
  static const bool latched = detail::resolve_strict_fp();
  return latched;
}

}  // namespace rab::simd
