#include "util/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>

namespace rab::util::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// Spans kept per thread before further spans are counted as dropped —
/// bounds memory on pathological always-on sessions.
constexpr std::size_t kMaxSpansPerThread = 1u << 20;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct TraceBuffer {
  std::mutex mutex;  ///< guards records (owner push vs collect copy)
  std::vector<SpanRecord> records;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;   ///< owner-thread only
  std::uint64_t dropped = 0;  ///< guarded by mutex
};

/// Leaked singleton (thread_local destructors may outlive statics).
struct TraceState {
  std::mutex mutex;
  std::vector<TraceBuffer*> live;
  std::vector<SpanRecord> retired;
  std::uint64_t retired_dropped = 0;
  std::uint32_t next_tid = 0;
  std::atomic<std::uint64_t> epoch_ns{0};

  static TraceState& instance() {
    static TraceState* leaked = new TraceState();
    return *leaked;
  }
};

struct TlsBuffer {
  TraceBuffer* buffer = nullptr;

  ~TlsBuffer() {
    if (buffer == nullptr) return;
    TraceState& state = TraceState::instance();
    const std::lock_guard lock(state.mutex);
    std::erase(state.live, buffer);
    state.retired.insert(state.retired.end(), buffer->records.begin(),
                         buffer->records.end());
    state.retired_dropped += buffer->dropped;
    delete buffer;
  }
};
thread_local TlsBuffer tls_buffer;

TraceBuffer& local_buffer() {
  if (tls_buffer.buffer == nullptr) {
    auto owned = std::make_unique<TraceBuffer>();
    TraceState& state = TraceState::instance();
    const std::lock_guard lock(state.mutex);
    owned->tid = state.next_tid++;
    state.live.push_back(owned.get());
    tls_buffer.buffer = owned.release();
  }
  return *tls_buffer.buffer;
}

}  // namespace

namespace detail {

std::uint64_t span_begin() {
  TraceBuffer& buffer = local_buffer();
  ++buffer.depth;
  const std::uint64_t now = now_ns();
  // Pin the trace epoch to the first span ever recorded.
  std::uint64_t expected = 0;
  TraceState::instance().epoch_ns.compare_exchange_strong(
      expected, now, std::memory_order_relaxed);
  return now;
}

void span_end(std::string_view name, std::uint64_t start_ns) {
  const std::uint64_t end = now_ns();
  TraceBuffer& buffer = local_buffer();
  const std::uint32_t depth = --buffer.depth;
  const std::uint64_t epoch =
      TraceState::instance().epoch_ns.load(std::memory_order_relaxed);
  SpanRecord record;
  record.name = name;
  record.tid = buffer.tid;
  record.depth = depth;
  record.start_ns = start_ns >= epoch ? start_ns - epoch : 0;
  record.duration_ns = end - start_ns;
  const std::lock_guard lock(buffer.mutex);
  if (buffer.records.size() >= kMaxSpansPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.records.push_back(record);
}

}  // namespace detail

void set_enabled(bool on) {
#if defined(RAB_NO_METRICS)
  (void)on;
#else
  detail::g_enabled.store(on, std::memory_order_relaxed);
#endif
}

std::vector<SpanRecord> collect() {
  TraceState& state = TraceState::instance();
  const std::lock_guard lock(state.mutex);
  std::vector<SpanRecord> all = state.retired;
  for (TraceBuffer* buffer : state.live) {
    const std::lock_guard buffer_lock(buffer->mutex);
    all.insert(all.end(), buffer->records.begin(), buffer->records.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return all;
}

std::uint64_t dropped_spans() {
  TraceState& state = TraceState::instance();
  const std::lock_guard lock(state.mutex);
  std::uint64_t total = state.retired_dropped;
  for (TraceBuffer* buffer : state.live) {
    const std::lock_guard buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void clear() {
  TraceState& state = TraceState::instance();
  const std::lock_guard lock(state.mutex);
  state.retired.clear();
  state.retired_dropped = 0;
  state.epoch_ns.store(0, std::memory_order_relaxed);
  for (TraceBuffer* buffer : state.live) {
    const std::lock_guard buffer_lock(buffer->mutex);
    buffer->records.clear();
    buffer->dropped = 0;
  }
}

void write_chrome_trace(std::ostream& out) {
  const std::vector<SpanRecord> spans = collect();
  out << "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const SpanRecord& span : spans) {
    if (!first) out << ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%.*s\",\"cat\":\"rab\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                  "\"args\":{\"depth\":%u}}",
                  static_cast<int>(span.name.size()), span.name.data(),
                  static_cast<double>(span.start_ns) / 1000.0,
                  static_cast<double>(span.duration_ns) / 1000.0, span.tid,
                  span.depth);
    out << buf;
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace rab::util::trace
