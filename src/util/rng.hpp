// Deterministic random number generation.
//
// Every stochastic component in the library draws through Rng so that
// datasets, attack populations, and experiments are reproducible from a
// single seed. Rng also supports cheap forking: independent deterministic
// substreams for per-product / per-submission generation, so adding draws in
// one component does not perturb another.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/error.hpp"

namespace rab {

/// Seeded pseudo-random source with the distribution helpers the library
/// needs. Copyable; a copy replays the same stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  /// Independent substream derived from this generator's seed and `stream`.
  /// Forking with distinct stream ids yields decorrelated generators.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    std::seed_seq seq{seed_lo(), stream};
    std::mt19937_64 e(seq);
    Rng out;
    out.engine_ = e;
    return out;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    RAB_EXPECTS(hi >= lo);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    RAB_EXPECTS(hi >= lo);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation (sigma >= 0).
  double gaussian(double mean, double sigma) {
    RAB_EXPECTS(sigma >= 0.0);
    if (sigma == 0.0) return mean;
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Poisson-distributed count with the given mean (mean >= 0).
  std::int64_t poisson(double mean) {
    RAB_EXPECTS(mean >= 0.0);
    if (mean == 0.0) return 0;
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  /// Exponential inter-arrival time with the given rate (rate > 0).
  double exponential(double rate) {
    RAB_EXPECTS(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial with probability p in [0, 1].
  bool bernoulli(double p) {
    RAB_EXPECTS(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Index drawn from the discrete distribution given by `weights`
  /// (non-negative, not all zero).
  std::size_t discrete(const std::vector<double>& weights) {
    RAB_EXPECTS(!weights.empty());
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    std::shuffle(c.begin(), c.end(), engine_);
  }

  /// Raw engine access for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  [[nodiscard]] std::uint64_t seed_lo() const {
    // The engine state is opaque; reuse the first output of a copy as a
    // stable per-instance key for fork().
    std::mt19937_64 copy = engine_;
    return copy();
  }

  std::mt19937_64 engine_;
};

}  // namespace rab
