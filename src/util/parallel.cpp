#include "util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "util/metrics.hpp"

namespace rab::util {

namespace {

/// Pool observability (docs/METRICS.md). queue_depth tracks the submit
/// queue under the pool lock, so gauge updates cost two relaxed stores on
/// already-serialized paths.
struct PoolMetrics {
  metrics::Counter& tasks = metrics::counter("pool.tasks");
  metrics::Counter& parallel_fors =
      metrics::counter("pool.parallel_for.calls");
  metrics::Gauge& queue_depth = metrics::gauge("pool.queue_depth");
  metrics::Gauge& threads = metrics::gauge("pool.threads");

  static const PoolMetrics& get() {
    static const PoolMetrics instance;
    return instance;
  }
};

thread_local bool tls_on_worker = false;

std::size_t env_thread_count() {
  const char* env = std::getenv("RAB_THREADS");
  if (env != nullptr) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::unique_ptr<ThreadPool>& pool_slot() {
  static std::unique_ptr<ThreadPool> pool =
      std::make_unique<ThreadPool>(env_thread_count());
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    PoolMetrics::get().tasks.add();
    PoolMetrics::get().queue_depth.set(
        static_cast<double>(queue_.size()));
  }
  ready_.notify_one();
}

bool ThreadPool::on_worker_thread() { return tls_on_worker; }

void ThreadPool::worker_loop() {
  tls_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      PoolMetrics::get().queue_depth.set(
          static_cast<double>(queue_.size()));
    }
    task();
  }
}

ThreadPool& global_pool() { return *pool_slot(); }

std::size_t thread_count() { return global_pool().thread_count(); }

void set_thread_count(std::size_t threads) {
  pool_slot() = std::make_unique<ThreadPool>(threads == 0 ? 1 : threads);
}

namespace detail {

void parallel_for_impl(std::size_t n, std::size_t grain,
                       const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  ThreadPool& pool = global_pool();
  PoolMetrics::get().parallel_fors.add();
  PoolMetrics::get().threads.set(
      static_cast<double>(pool.thread_count()));

  // Serial fast path: a 1-thread pool, a tiny loop, or a nested call from
  // inside a worker (parallelism applies to the outermost loop only).
  if (pool.thread_count() <= 1 || n <= grain ||
      ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> pending{0};
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;
  };
  const auto state = std::make_shared<State>();

  auto drain = [state, n, grain, &body] {
    for (;;) {
      const std::size_t first =
          state->next.fetch_add(grain, std::memory_order_relaxed);
      if (first >= n) return;
      const std::size_t last = std::min(first + grain, n);
      try {
        for (std::size_t i = first; i < last; ++i) body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
        // Abandon the remaining indices so the loop fails fast.
        state->next.store(n, std::memory_order_relaxed);
        return;
      }
    }
  };

  // One helper task per extra worker; the caller drains alongside them.
  const std::size_t helpers =
      std::min(pool.thread_count(), (n + grain - 1) / grain) - 1;
  state->pending.store(helpers, std::memory_order_relaxed);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([state, drain] {
      drain();
      if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        state->done.notify_all();
      }
    });
  }
  drain();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] {
      return state->pending.load(std::memory_order_acquire) == 0;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

}  // namespace detail

}  // namespace rab::util
