#include "util/shutdown.hpp"

#include <atomic>
#include <csignal>

namespace rab::util {

namespace {

// Lock-free atomics are async-signal-safe to store from a handler
// (C++20 [support.signal]); a plain sig_atomic_t would not be safely
// observable from the other threads that poll the flag.
std::atomic<int> g_signal{0};
static_assert(std::atomic<int>::is_always_lock_free);

extern "C" void on_shutdown_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handlers() {
  struct sigaction action {};
  action.sa_handler = on_shutdown_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking accept/poll must EINTR
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

bool shutdown_requested() {
  return g_signal.load(std::memory_order_relaxed) != 0;
}

int shutdown_signal() { return g_signal.load(std::memory_order_relaxed); }

void reset_shutdown_flag() {
  g_signal.store(0, std::memory_order_relaxed);
}

}  // namespace rab::util
