#include "util/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace rab::util {

namespace {

// Slice-by-8 tables. Table 0 is the classic byte-at-a-time table; table
// k[i] is the CRC of byte i followed by k zero bytes, so eight table
// lookups fold one 8-byte word into the running CRC per iteration.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t t = 1; t < 8; ++t) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[t - 1][i];
      tables[t][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables =
    make_tables();

}  // namespace

std::uint32_t crc32_update_bytewise(std::uint32_t crc, const void* data,
                                    std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTables[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  // Byte-align to 8 so the word loads below are always aligned.
  while (size > 0 && (reinterpret_cast<std::uintptr_t>(bytes) & 7u) != 0) {
    crc = kTables[0][(crc ^ *bytes++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes, 8);
    if constexpr (std::endian::native == std::endian::big) {
      word = __builtin_bswap64(word);
    }
    const std::uint32_t low = static_cast<std::uint32_t>(word) ^ crc;
    const auto high = static_cast<std::uint32_t>(word >> 32);
    crc = kTables[7][low & 0xFFu] ^ kTables[6][(low >> 8) & 0xFFu] ^
          kTables[5][(low >> 16) & 0xFFu] ^ kTables[4][(low >> 24) & 0xFFu] ^
          kTables[3][high & 0xFFu] ^ kTables[2][(high >> 8) & 0xFFu] ^
          kTables[1][(high >> 16) & 0xFFu] ^ kTables[0][(high >> 24) & 0xFFu];
    bytes += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTables[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace rab::util
