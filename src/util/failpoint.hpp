// Deterministic fault injection: named failpoints at I/O, allocation-heavy,
// and cache boundaries.
//
// A failpoint is a named site — RAB_FAILPOINT("checkpoint.write.body") —
// that normally does nothing. Arming a policy for the name (from the
// RAB_FAULTS environment variable or programmatically) makes the site
// inject a failure: throw IoError, cut a write short, or flip bits in an
// outgoing buffer. Policies fire once, every Nth pass, or probabilistically
// from a seeded RNG, so every injected failure is reproducible.
//
// Cost when disarmed: failpoints_armed() is one relaxed atomic load and one
// predictable branch; no policy lookup, no string hashing, no allocation.
// The chaos harness (tools/chaos.cpp, tests/test_chaos.cpp) arms each
// catalogued failpoint in turn and proves the checkpoint/restore path
// recovers bit-identically from every one.
//
// Spec grammar (RAB_FAULTS or arm_failpoints):
//   spec     := policy (';' policy)*
//   policy   := name ':' action (',' trigger)*
//   action   := 'throw' | 'short' | 'corrupt'
//   trigger  := 'once' | 'every=N' | 'p=P' | 'seed=S'
// Default trigger is 'once' (fire on the first pass, then disarm that
// name). 'every=N' fires on every Nth pass; 'p=P' fires each pass with
// probability P drawn from a seeded RNG ('seed=S', default 1). 'short' and
// 'corrupt' only act at buffer sites (failpoint_io); at control-flow sites
// they degrade to 'throw' — the only failure a plain site can express.
//
//   RAB_FAULTS='checkpoint.write.body:corrupt' rab monitor --data feed.csv
//   RAB_FAULTS='csv.read.line:throw,p=0.01,seed=7;cache.insert:throw,every=100'
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace rab::util {

/// What a triggered buffer-site failpoint does to the pending write.
struct FaultOutcome {
  std::size_t write_bytes = 0;  ///< bytes to actually write (size = clean)
  bool corrupt = false;         ///< XOR corrupt_mask into the buffer
  std::size_t corrupt_offset = 0;
  std::uint8_t corrupt_mask = 0;  ///< never zero when corrupt is set
};

namespace detail {
extern std::atomic<bool> g_failpoints_armed;
void failpoint_slow(std::string_view name);
[[nodiscard]] bool failpoint_poll_slow(std::string_view name);
[[nodiscard]] FaultOutcome failpoint_io_slow(std::string_view name,
                                             std::size_t size);
}  // namespace detail

/// True when any failpoint policy is armed. One relaxed load.
[[nodiscard]] inline bool failpoints_armed() {
  return detail::g_failpoints_armed.load(std::memory_order_relaxed);
}

/// Control-flow failpoint: throws IoError when an armed policy for `name`
/// triggers; otherwise (and always when disarmed) does nothing.
inline void failpoint(std::string_view name) {
  if (failpoints_armed()) [[unlikely]] {
    detail::failpoint_slow(name);
  }
}

/// Non-throwing failpoint: returns true when an armed policy for `name`
/// triggers this pass, false otherwise (and always when disarmed). For
/// sites whose injected failure is a behavior rather than an exception —
/// dropping an accepted connection, forgetting a session, truncating a
/// read. Any action ('throw'/'short'/'corrupt') degrades to "fired".
[[nodiscard]] inline bool failpoint_poll(std::string_view name) {
  if (!failpoints_armed()) [[likely]] {
    return false;
  }
  return detail::failpoint_poll_slow(name);
}

/// Buffer-site failpoint guarding a write of `size` bytes. A triggered
/// 'throw' policy throws IoError; 'short' returns write_bytes < size;
/// 'corrupt' returns a byte offset and XOR mask to apply to the buffer
/// before writing. Disarmed (or not triggered) returns a clean outcome.
[[nodiscard]] inline FaultOutcome failpoint_io(std::string_view name,
                                               std::size_t size) {
  if (!failpoints_armed()) [[likely]] {
    return FaultOutcome{size};
  }
  return detail::failpoint_io_slow(name, size);
}

/// Applies `outcome` to a byte buffer: corrupts in place when requested and
/// returns the number of bytes the caller should write. Shared by every
/// buffer-site failpoint so the corruption rule lives in one place.
std::size_t apply_fault(const FaultOutcome& outcome, char* data,
                        std::size_t size);

/// Parses `spec` (see grammar above) and arms it, replacing any armed set.
/// Unknown failpoint names and malformed policies throw InvalidArgument —
/// a typo in RAB_FAULTS must not silently test nothing.
void arm_failpoints(const std::string& spec);

/// Disarms everything; failpoints return to the single-branch fast path.
void disarm_failpoints();

/// Arms from the RAB_FAULTS environment variable; no-op when unset or
/// empty. Entry points that opt into fault injection (rab CLI, chaos
/// harness) call this once at startup — library code never reads the
/// environment on its own.
void arm_failpoints_from_env();

/// Times the named failpoint's policy has triggered since it was armed
/// (0 when never armed). Lets tests assert an injected fault actually
/// fired rather than silently passing.
[[nodiscard]] std::size_t failpoint_fires(std::string_view name);

/// Every failpoint name compiled into the library, for harnesses that
/// iterate "kill at every failpoint". arm_failpoints validates names
/// against this list.
[[nodiscard]] std::span<const std::string_view> failpoint_catalog();

}  // namespace rab::util

/// Marks a control-flow failpoint site. A macro (not a bare function call)
/// so sites read as annotations and grep as a catalog.
#define RAB_FAILPOINT(name) ::rab::util::failpoint(name)
