// Signal-safe shutdown flag for the long-running front ends.
//
// `rab monitor` and `rab serve` used to install no handlers at all: a
// Ctrl-C or service-manager SIGTERM killed the process mid-epoch, losing
// the final partial epoch and skipping the shutdown checkpoint, and a
// downstream `| head` delivered SIGPIPE mid-JSONL-line. This module is
// the fix: a lock-free stop flag set from an async-signal-safe handler,
// polled by the ingest loops, which then drain — checkpoint the partial
// epoch, flush, emit the summary — and exit cleanly.
//
// The handlers are installed without SA_RESTART so blocking accept/poll
// calls return EINTR and their loops observe the flag promptly.
#pragma once

namespace rab::util {

/// Installs SIGINT and SIGTERM handlers that set the process-wide stop
/// flag. Idempotent; call once at CLI entry before the ingest loop.
void install_shutdown_handlers();

/// Redirects SIGPIPE to SIG_IGN so a closed downstream pipe surfaces as
/// an EPIPE write error (mapped to IoError by the write paths) instead of
/// killing the process mid-record.
void ignore_sigpipe();

/// True once a shutdown signal has been delivered. One relaxed atomic
/// load — cheap enough for per-chunk polling.
[[nodiscard]] bool shutdown_requested();

/// The signal that requested shutdown (SIGINT/SIGTERM), or 0.
[[nodiscard]] int shutdown_signal();

/// Clears the flag — for tests and the chaos harness, which replay
/// several drain scenarios in one process.
void reset_shutdown_flag();

}  // namespace rab::util
