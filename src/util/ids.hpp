// Strongly typed identifiers for raters and products.
//
// Plain integers invite mixing a rater id with a product id at a call site
// (Core Guidelines I.4: make interfaces precisely and strongly typed), so
// each id is a distinct wrapper with value semantics, ordering, and hashing.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace rab {

namespace detail {

/// CRTP-free tagged integer id. `Tag` makes distinct instantiations
/// non-interconvertible.
template <typename Tag>
class TaggedId {
 public:
  using value_type = std::int64_t;

  TaggedId() = default;
  constexpr explicit TaggedId(value_type value) : value_(value) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }

  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    return os << id.value_;
  }

 private:
  value_type value_ = -1;
};

}  // namespace detail

struct RaterTag {};
struct ProductTag {};

/// Identifies one rater (honest or dishonest) across the whole dataset.
using RaterId = detail::TaggedId<RaterTag>;
/// Identifies one product (object being rated).
using ProductId = detail::TaggedId<ProductTag>;

}  // namespace rab

namespace std {
template <typename Tag>
struct hash<rab::detail::TaggedId<Tag>> {
  size_t operator()(rab::detail::TaggedId<Tag> id) const noexcept {
    return std::hash<std::int64_t>{}(id.value());
  }
};
}  // namespace std
