// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.
//
// Used by the checkpoint format (detectors/checkpoint.*) to detect torn
// writes and bit rot: one checksum per snapshot section plus one over the
// whole file. Incremental: feed chunks through crc32_update to checksum a
// file while streaming it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rab::util {

/// Continues a CRC-32 over `size` bytes at `data`. Start from
/// `kCrc32Init`; finalize with crc32_final. Chaining update calls over
/// consecutive chunks equals one call over the concatenation.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                         std::size_t size);

[[nodiscard]] inline std::uint32_t crc32_final(std::uint32_t crc) {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte range.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_final(crc32_update(kCrc32Init, data, size));
}

[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace rab::util
