// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.
//
// Used by the checkpoint format (detectors/checkpoint.*) and the segment
// store (store/segment.*) to detect torn writes and bit rot: one checksum
// per section/frame plus one over the whole file. Incremental: feed chunks
// through crc32_update to checksum a file while streaming it.
//
// The hot path is slice-by-8: eight derived lookup tables let the update
// loop fold eight input bytes per iteration instead of one, which is what
// makes open-time verification of multi-megabyte store segments cheap on
// restart. crc32_update_bytewise is the one-table reference the sliced
// tables are derived from; tests cross-check the two on random chunkings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rab::util {

/// Continues a CRC-32 over `size` bytes at `data`. Start from
/// `kCrc32Init`; finalize with crc32_final. Chaining update calls over
/// consecutive chunks equals one call over the concatenation.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                         std::size_t size);

/// Reference implementation: single-table, one byte per iteration. Same
/// contract as crc32_update; exists so tests can cross-check the sliced
/// path against the textbook loop.
[[nodiscard]] std::uint32_t crc32_update_bytewise(std::uint32_t crc,
                                                  const void* data,
                                                  std::size_t size);

[[nodiscard]] inline std::uint32_t crc32_final(std::uint32_t crc) {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte range.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_final(crc32_update(kCrc32Init, data, size));
}

[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace rab::util
