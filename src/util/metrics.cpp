#include "util/metrics.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "util/error.hpp"

namespace rab::util::metrics {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

namespace {

/// Capacity of the shared cell address space. Every counter takes one
/// cell; a histogram takes bounds+1 (buckets plus overflow) plus one sum
/// cell. Fixed capacity keeps shards allocation-free and growth-free, so
/// writers never race a reallocation.
constexpr std::size_t kMaxCells = 4096;
constexpr std::size_t kMaxSumCells = 256;
constexpr std::size_t kMaxGauges = 256;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One thread's private accumulation. Writers touch only their own shard
/// with relaxed atomic RMWs; scrape reads every shard with relaxed loads.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCells> cells{};
  std::array<std::atomic<double>, kMaxSumCells> sums{};
};

/// Process-wide metric registry. Leaked singleton: thread_local shard
/// destructors run at thread exit (possibly after static destruction
/// starts), so the registry must outlive everything.
class Registry {
 public:
  static Registry& instance() {
    static Registry* leaked = new Registry();
    return *leaked;
  }

  Counter& counter(std::string_view name) {
    const std::lock_guard lock(mutex_);
    if (Def* def = find(name, MetricType::kCounter)) return *def->counter;
    Def& def = add_def(name, MetricType::kCounter);
    def.cell = take_cells(1);
    def.counter.reset(new Counter(def.cell));
    return *def.counter;
  }

  Gauge& gauge(std::string_view name) {
    const std::lock_guard lock(mutex_);
    if (Def* def = find(name, MetricType::kGauge)) return *def->gauge;
    Def& def = add_def(name, MetricType::kGauge);
    if (next_gauge_ >= kMaxGauges) {
      throw LogicError("metrics: gauge capacity exhausted");
    }
    def.cell = next_gauge_++;
    def.gauge.reset(new Gauge(&gauges_[def.cell]));
    return *def.gauge;
  }

  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds) {
    if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end())) {
      throw LogicError("metrics: histogram bounds must be sorted, non-empty");
    }
    const std::lock_guard lock(mutex_);
    if (Def* def = find(name, MetricType::kHistogram)) {
      if (!std::equal(bounds.begin(), bounds.end(), def->bounds.begin(),
                      def->bounds.end())) {
        throw LogicError("metrics: histogram '" + std::string(name) +
                         "' re-registered with different bounds");
      }
      return *def->histogram;
    }
    Def& def = add_def(name, MetricType::kHistogram);
    def.bounds.assign(bounds.begin(), bounds.end());
    def.cell = take_cells(def.bounds.size() + 1);
    if (next_sum_ >= kMaxSumCells) {
      throw LogicError("metrics: histogram capacity exhausted");
    }
    def.sum_cell = next_sum_++;
    def.histogram.reset(new Histogram(def.cell, def.sum_cell, def.bounds));
    return *def.histogram;
  }

  Shard* acquire_shard() {
    auto shard = std::make_unique<Shard>();
    const std::lock_guard lock(mutex_);
    shards_.push_back(shard.get());
    return shard.release();
  }

  /// Folds an exiting thread's shard into the residue so its counts
  /// survive the thread, then frees it.
  void retire_shard(Shard* shard) {
    const std::lock_guard lock(mutex_);
    std::erase(shards_, shard);
    for (std::size_t i = 0; i < kMaxCells; ++i) {
      const std::uint64_t v =
          shard->cells[i].load(std::memory_order_relaxed);
      if (v != 0) {
        residue_.cells[i].fetch_add(v, std::memory_order_relaxed);
      }
    }
    for (std::size_t i = 0; i < kMaxSumCells; ++i) {
      const double v = shard->sums[i].load(std::memory_order_relaxed);
      if (v != 0.0) {
        residue_.sums[i].fetch_add(v, std::memory_order_relaxed);
      }
    }
    delete shard;
  }

  Snapshot scrape() {
    const std::lock_guard lock(mutex_);
    Snapshot snapshot;
    snapshot.metrics.reserve(defs_.size());
    for (const Def& def : defs_) {
      MetricSnapshot m;
      m.name = def.name;
      m.type = def.type;
      switch (def.type) {
        case MetricType::kCounter:
          m.counter = sum_cell(def.cell);
          break;
        case MetricType::kGauge:
          m.gauge = gauges_[def.cell].load(std::memory_order_relaxed);
          break;
        case MetricType::kHistogram: {
          m.hist.bounds = def.bounds;
          m.hist.buckets.resize(def.bounds.size() + 1);
          for (std::size_t b = 0; b < m.hist.buckets.size(); ++b) {
            m.hist.buckets[b] = sum_cell(def.cell + b);
            m.hist.count += m.hist.buckets[b];
          }
          m.hist.sum = sum_sums(def.sum_cell);
          break;
        }
      }
      snapshot.metrics.push_back(std::move(m));
    }
    std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
              [](const MetricSnapshot& a, const MetricSnapshot& b) {
                return a.name < b.name;
              });
    return snapshot;
  }

  void reset() {
    const std::lock_guard lock(mutex_);
    for (Shard* shard : shards_) zero(*shard);
    zero(residue_);
    for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
  }

 private:
  struct Def {
    std::string name;
    MetricType type = MetricType::kCounter;
    std::uint32_t cell = 0;      ///< counter / histogram base / gauge index
    std::uint32_t sum_cell = 0;  ///< histogram sum slot
    std::vector<double> bounds;  ///< histogram: stable storage for the span
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Registry() = default;

  Def* find(std::string_view name, MetricType type) {
    const auto it = by_name_.find(std::string(name));
    if (it == by_name_.end()) return nullptr;
    if (it->second->type != type) {
      throw LogicError("metrics: '" + std::string(name) +
                       "' already registered as a different type");
    }
    return it->second;
  }

  Def& add_def(std::string_view name, MetricType type) {
    Def& def = defs_.emplace_back();
    def.name = std::string(name);
    def.type = type;
    by_name_.emplace(def.name, &def);
    return def;
  }

  std::uint32_t take_cells(std::size_t n) {
    if (next_cell_ + n > kMaxCells) {
      throw LogicError("metrics: cell capacity exhausted");
    }
    const std::uint32_t base = next_cell_;
    next_cell_ += static_cast<std::uint32_t>(n);
    return base;
  }

  [[nodiscard]] std::uint64_t sum_cell(std::uint32_t cell) const {
    std::uint64_t total =
        residue_.cells[cell].load(std::memory_order_relaxed);
    for (const Shard* shard : shards_) {
      total += shard->cells[cell].load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] double sum_sums(std::uint32_t cell) const {
    double total = residue_.sums[cell].load(std::memory_order_relaxed);
    for (const Shard* shard : shards_) {
      total += shard->sums[cell].load(std::memory_order_relaxed);
    }
    return total;
  }

  static void zero(Shard& shard) {
    for (auto& c : shard.cells) c.store(0, std::memory_order_relaxed);
    for (auto& s : shard.sums) s.store(0.0, std::memory_order_relaxed);
  }

  mutable std::mutex mutex_;
  std::deque<Def> defs_;  ///< deque: handles keep stable addresses
  std::unordered_map<std::string, Def*> by_name_;
  std::uint32_t next_cell_ = 0;
  std::uint32_t next_sum_ = 0;
  std::uint32_t next_gauge_ = 0;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  std::vector<Shard*> shards_;  ///< live per-thread shards
  Shard residue_;               ///< merged counts of exited threads
};

namespace {

/// Owns the calling thread's shard; the destructor folds it back into the
/// registry at thread exit so no count is ever lost.
struct TlsShard {
  Shard* shard = nullptr;
  ~TlsShard() {
    if (shard != nullptr) Registry::instance().retire_shard(shard);
  }
};
thread_local TlsShard tls_shard;

Shard& local_shard() {
  if (tls_shard.shard == nullptr) {
    tls_shard.shard = Registry::instance().acquire_shard();
  }
  return *tls_shard.shard;
}

}  // namespace

namespace detail {

void shard_add(std::uint32_t cell, std::uint64_t n) {
  local_shard().cells[cell].fetch_add(n, std::memory_order_relaxed);
}

void shard_observe(std::uint32_t base_cell, std::uint32_t sum_cell,
                   std::span<const double> bounds, double value) {
  // First bucket whose upper bound is >= value; past-the-end = overflow.
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) -
      bounds.begin());
  Shard& shard = local_shard();
  shard.cells[base_cell + idx].fetch_add(1, std::memory_order_relaxed);
  shard.sums[sum_cell].fetch_add(value, std::memory_order_relaxed);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_enabled_from_env() {
  const char* env = std::getenv("RAB_METRICS");
  if (env == nullptr) return;
  const std::string v(env);
  if (v == "0" || v == "off" || v == "false") set_enabled(false);
  if (v == "1" || v == "on" || v == "true") set_enabled(true);
}

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(std::string_view name, std::span<const double> bounds) {
  return Registry::instance().histogram(name, bounds);
}

std::span<const double> latency_bounds_seconds() {
  static constexpr std::array<double, 22> kBounds = {
      1e-6,   2.5e-6, 5e-6,   1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
      5e-4,   1e-3,   2.5e-3, 5e-3, 1e-2,   2.5e-2, 5e-2, 1e-1,
      2.5e-1, 5e-1,   1.0,    2.5,  5.0,    10.0};
  return kBounds;
}

std::span<const double> unit_bounds() {
  static constexpr std::array<double, 10> kBounds = {
      0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  return kBounds;
}

ScopedTimer::ScopedTimer(Histogram& hist) : hist_(hist) {
  if (enabled()) start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (start_ns_ != 0) {
    hist_.observe(static_cast<double>(now_ns() - start_ns_) * 1e-9);
  }
}

std::uint64_t Snapshot::counter_value(std::string_view name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.type == MetricType::kCounter) return m.counter;
  }
  return 0;
}

double Snapshot::gauge_value(std::string_view name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.type == MetricType::kGauge) return m.gauge;
  }
  return 0.0;
}

const HistogramSnapshot* Snapshot::histogram_of(
    std::string_view name) const& {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.type == MetricType::kHistogram) return &m.hist;
  }
  return nullptr;
}

Snapshot scrape() { return Registry::instance().scrape(); }

void reset() { Registry::instance().reset(); }

namespace {

std::string sanitize(std::string_view name) {
  std::string out = "rab_";
  for (const char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c))
               ? static_cast<char>(
                     std::tolower(static_cast<unsigned char>(c)))
               : '_';
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

void write_prometheus(std::ostream& out, const Snapshot& snapshot) {
  for (const MetricSnapshot& m : snapshot.metrics) {
    const std::string name = sanitize(m.name);
    switch (m.type) {
      case MetricType::kCounter:
        out << "# TYPE " << name << "_total counter\n";
        out << name << "_total " << m.counter << "\n";
        break;
      case MetricType::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << format_double(m.gauge) << "\n";
        break;
      case MetricType::kHistogram: {
        out << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.hist.bounds.size(); ++b) {
          cumulative += m.hist.buckets[b];
          out << name << "_bucket{le=\"" << format_double(m.hist.bounds[b])
              << "\"} " << cumulative << "\n";
        }
        out << name << "_bucket{le=\"+Inf\"} " << m.hist.count << "\n";
        out << name << "_sum " << format_double(m.hist.sum) << "\n";
        out << name << "_count " << m.hist.count << "\n";
        break;
      }
    }
  }
}

void write_json(std::ostream& out, const Snapshot& snapshot) {
  out << "{";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first) out << ",";
    first = false;
    out << "\"" << m.name << "\":";
    switch (m.type) {
      case MetricType::kCounter:
        out << m.counter;
        break;
      case MetricType::kGauge:
        out << format_double(m.gauge);
        break;
      case MetricType::kHistogram: {
        out << "{\"count\":" << m.hist.count
            << ",\"sum\":" << format_double(m.hist.sum) << ",\"le\":[";
        for (std::size_t b = 0; b < m.hist.bounds.size(); ++b) {
          if (b != 0) out << ",";
          out << format_double(m.hist.bounds[b]);
        }
        out << "],\"counts\":[";
        for (std::size_t b = 0; b < m.hist.buckets.size(); ++b) {
          if (b != 0) out << ",";
          out << m.hist.buckets[b];
        }
        out << "]}";
        break;
      }
    }
  }
  out << "}";
}

}  // namespace rab::util::metrics
