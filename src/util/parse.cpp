#include "util/parse.hpp"

#include <charconv>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace rab::util {

namespace {

[[noreturn]] void bad(std::string_view what, std::string_view text,
                      const char* kind) {
  throw InvalidArgument(std::string(what) + ": expected " + kind +
                        ", got '" + std::string(text) + "'");
}

template <typename T>
T from_chars_all(std::string_view text, std::string_view what,
                 const char* kind) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    bad(what, text, kind);
  }
  return value;
}

}  // namespace

double parse_double(std::string_view text, std::string_view what) {
  // std::from_chars(double) accepts "inf"/"nan"; flags and wire fields
  // never legitimately carry them, so reject non-finite values here.
  const double value = from_chars_all<double>(text, what, "a number");
  if (!std::isfinite(value)) bad(what, text, "a finite number");
  return value;
}

double parse_double_in(std::string_view text, std::string_view what,
                       double lo, double hi) {
  const double value = parse_double(text, what);
  if (value < lo || value > hi) {
    throw InvalidArgument(std::string(what) + ": value " +
                          std::string(text) + " outside [" +
                          std::to_string(lo) + ", " + std::to_string(hi) +
                          "]");
  }
  return value;
}

std::int64_t parse_i64(std::string_view text, std::string_view what) {
  return from_chars_all<std::int64_t>(text, what, "an integer");
}

std::int64_t parse_i64_in(std::string_view text, std::string_view what,
                          std::int64_t lo, std::int64_t hi) {
  const std::int64_t value = parse_i64(text, what);
  if (value < lo || value > hi) {
    throw InvalidArgument(std::string(what) + ": value " +
                          std::string(text) + " outside [" +
                          std::to_string(lo) + ", " + std::to_string(hi) +
                          "]");
  }
  return value;
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  // from_chars<unsigned> already rejects '-', so "-1" errors instead of
  // wrapping — the exact bug this replaces in the stoull call sites.
  return from_chars_all<std::uint64_t>(text, what,
                                       "a non-negative integer");
}

std::uint64_t parse_u64_in(std::string_view text, std::string_view what,
                           std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t value = parse_u64(text, what);
  if (value < lo || value > hi) {
    throw InvalidArgument(std::string(what) + ": value " +
                          std::string(text) + " outside [" +
                          std::to_string(lo) + ", " + std::to_string(hi) +
                          "]");
  }
  return value;
}

}  // namespace rab::util
