// Time handling for rating streams.
//
// All timestamps in the library are measured in fractional days since the
// dataset epoch (day 0 = first day of the fair-rating history). A thin
// Interval type expresses half-open time ranges [begin, end).
#pragma once

#include <algorithm>
#include <ostream>
#include <vector>

#include "util/error.hpp"

namespace rab {

/// Fractional days since the dataset epoch.
using Day = double;

/// Half-open time interval [begin, end) in days.
struct Interval {
  Day begin = 0.0;
  Day end = 0.0;

  [[nodiscard]] double length() const { return end - begin; }
  [[nodiscard]] bool empty() const { return end <= begin; }
  [[nodiscard]] bool contains(Day t) const { return t >= begin && t < end; }

  /// True if the two intervals share any time span.
  [[nodiscard]] bool overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }

  /// The overlapping part of two intervals (empty if disjoint).
  [[nodiscard]] Interval intersect(const Interval& other) const {
    return Interval{std::max(begin, other.begin), std::min(end, other.end)};
  }

  friend bool operator==(const Interval&, const Interval&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Interval& iv) {
    return os << '[' << iv.begin << ", " << iv.end << ')';
  }
};

/// Splits [begin, end) into consecutive bins of `bin_days`; the last bin is
/// truncated at `end`. Used for the monthly (30-day) MP windows.
inline std::vector<Interval> make_bins(Day begin, Day end, double bin_days) {
  RAB_EXPECTS(bin_days > 0.0);
  RAB_EXPECTS(end >= begin);
  std::vector<Interval> bins;
  for (Day t = begin; t < end; t += bin_days) {
    bins.push_back(Interval{t, std::min(t + bin_days, end)});
  }
  return bins;
}

}  // namespace rab
