// Lock-cheap metrics registry: counters, gauges, fixed-bucket histograms.
//
// Observability only — nothing in here ever feeds back into a result, so
// metrics cannot perturb the determinism contract (alarms, trust, and
// aggregates are bit-identical whether metrics are enabled, disabled, or
// compiled out entirely).
//
// Hot-path cost model (the failpoint fast-path budget):
//  - Disabled at runtime: one relaxed atomic load and one predictable
//    branch per Counter::add / Histogram::observe — same shape as
//    failpoints_armed().
//  - Enabled: one thread-local shard lookup plus a relaxed fetch_add on a
//    cacheline only this thread writes. No locks, no string hashing.
//  - Compiled out (-DRAB_NO_METRICS=ON): every instrumentation call inlines
//    to nothing; handles still exist so call sites compile unchanged.
//
// Aggregation model: counter and histogram increments land in per-thread
// shards; scrape() walks the live shards (plus the merged residue of
// exited threads) under a registry lock and sums with relaxed atomic
// loads — scraping concurrently with writers is race-free (and exercised
// under TSan in tests/test_metrics.cpp). Gauges are a single process-wide
// atomic (last write wins; add() is atomic read-modify-write).
//
// Naming: dot-separated lowercase ("detector.mc.runs"); the Prometheus
// writer sanitizes dots to underscores and prefixes "rab_". The full
// catalog of metric names lives in docs/METRICS.md.
//
// Handles are acquired once (function-local static at the call site) and
// are valid for the process lifetime:
//
//   static auto& runs = util::metrics::counter("detector.mc.runs");
//   runs.add();
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rab::util::metrics {

/// False when instrumentation was compiled out with RAB_NO_METRICS=ON —
/// tests use this to skip assertions that need live counters.
#if defined(RAB_NO_METRICS)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
extern std::atomic<bool> g_enabled;
void shard_add(std::uint32_t cell, std::uint64_t n);
void shard_observe(std::uint32_t base_cell, std::uint32_t sum_cell,
                   std::span<const double> bounds, double value);
}  // namespace detail

/// True when metrics are compiled in and runtime-enabled (the default).
/// One relaxed load.
[[nodiscard]] inline bool enabled() {
#if defined(RAB_NO_METRICS)
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Runtime toggle. Disabling stops collection but keeps every value
/// already recorded (scrape still works). Compiled-out builds ignore it.
void set_enabled(bool on);

/// Reads the RAB_METRICS environment variable ("0"/"off" disables) once.
/// Entry points opt in, like arm_failpoints_from_env — library code never
/// reads the environment on its own.
void set_enabled_from_env();

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
#if !defined(RAB_NO_METRICS)
    if (enabled()) detail::shard_add(cell_, n);
#else
    (void)n;
#endif
  }

 private:
  friend class Registry;
  explicit Counter(std::uint32_t cell) : cell_(cell) {}
  std::uint32_t cell_;
};

/// Instantaneous value (queue depth, resident ratings). Process-wide: the
/// last set() wins; add() is an atomic increment.
class Gauge {
 public:
  void set(double value) {
#if !defined(RAB_NO_METRICS)
    if (enabled()) value_->store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }
  void add(double delta) {
#if !defined(RAB_NO_METRICS)
    if (enabled()) value_->fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<double>* value) : value_(value) {}
  std::atomic<double>* value_;
};

/// Fixed-bucket histogram. A value lands in the first bucket whose upper
/// bound is >= value; values above every bound land in the implicit +Inf
/// overflow bucket. Bucket bounds are fixed at registration.
class Histogram {
 public:
  void observe(double value) {
#if !defined(RAB_NO_METRICS)
    if (enabled()) {
      detail::shard_observe(base_cell_, sum_cell_, bounds_, value);
    }
#else
    (void)value;
#endif
  }

 private:
  friend class Registry;
  Histogram(std::uint32_t base_cell, std::uint32_t sum_cell,
            std::span<const double> bounds)
      : base_cell_(base_cell), sum_cell_(sum_cell), bounds_(bounds) {}
  std::uint32_t base_cell_;
  std::uint32_t sum_cell_;
  std::span<const double> bounds_;
};

/// Registers (or finds) the named metric. Names must be stable for the
/// process lifetime; re-registering an existing name returns the same
/// handle. Registering a name as two different types — or a histogram
/// with different bounds — throws LogicError. Thread-safe.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name,
                                   std::span<const double> bounds);

/// Default exponential latency bounds in seconds (1us .. 10s), for the
/// per-detector and checkpoint timing histograms.
[[nodiscard]] std::span<const double> latency_bounds_seconds();

/// Uniform [0, 1] bounds at 0.1 steps, for trust-value distributions.
[[nodiscard]] std::span<const double> unit_bounds();

/// RAII wall-clock timer: observes elapsed seconds into `hist` on
/// destruction. Free (no clock read) when metrics are disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& hist_;
  std::uint64_t start_ns_ = 0;  ///< 0 = disabled at construction
};

enum class MetricType { kCounter, kGauge, kHistogram };

struct HistogramSnapshot {
  std::vector<double> bounds;           ///< upper bounds (le), size B
  std::vector<std::uint64_t> buckets;   ///< size B+1; last = +Inf overflow
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::uint64_t counter = 0;  ///< kCounter
  double gauge = 0.0;         ///< kGauge
  HistogramSnapshot hist;     ///< kHistogram
};

/// Point-in-time view of every registered metric, sorted by name.
struct Snapshot {
  std::vector<MetricSnapshot> metrics;

  /// Convenience lookups for tests and the CLI (0 / null when absent).
  /// histogram_of returns a pointer into this snapshot, so it refuses
  /// rvalues — `scrape().histogram_of(...)` would dangle.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* histogram_of(
      std::string_view name) const&;
  const HistogramSnapshot* histogram_of(std::string_view name) && = delete;
};

/// Sums the per-thread shards into a consistent-enough view: each cell is
/// read atomically; concurrent writers may or may not be included, but a
/// scrape after all writers finish is exact. Safe to call concurrently
/// with instrumentation from any thread.
[[nodiscard]] Snapshot scrape();

/// Zeroes every counter, gauge, and histogram (registrations survive).
/// For tests and bench harnesses that want a clean slate.
void reset();

/// Prometheus text exposition (version 0.0.4): names sanitized to
/// [a-z0-9_] with a "rab_" prefix, counters suffixed "_total", histograms
/// emitted as cumulative le-buckets plus _sum/_count.
void write_prometheus(std::ostream& out, const Snapshot& snapshot);

/// One-line JSON object: {"name":value,...}; histograms become
/// {"count":N,"sum":S,"le":[bounds...],"counts":[per-bucket + overflow]}.
/// The monitor's --metrics-out JSONL records wrap this object.
void write_json(std::ostream& out, const Snapshot& snapshot);

}  // namespace rab::util::metrics
