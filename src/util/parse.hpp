// Checked numeric parsing for untrusted command-line and wire input.
//
// The raw std::stod/std::stoull family is the wrong tool at a trust
// boundary: "10x" parses as 10, "-1" silently wraps to a huge unsigned,
// and a plain garbage string escapes as std::invalid_argument — which a
// CLI then misreports as an internal error instead of a usage error.
// These parsers require full consumption of the input, check ranges, and
// throw rab::InvalidArgument naming the offending field, so CLI front
// ends map every malformed value to the documented usage exit code.
#pragma once

#include <cstdint>
#include <string_view>

namespace rab::util {

/// Parses a finite double. `what` names the field in the error message
/// (e.g. "--epoch"). Throws InvalidArgument on empty input, trailing
/// junk, overflow, or a non-finite value (inf/nan).
double parse_double(std::string_view text, std::string_view what);

/// parse_double plus an inclusive range check.
double parse_double_in(std::string_view text, std::string_view what,
                       double lo, double hi);

/// Parses a signed 64-bit integer (full consumption, range-checked).
std::int64_t parse_i64(std::string_view text, std::string_view what);

/// parse_i64 plus an inclusive range check.
std::int64_t parse_i64_in(std::string_view text, std::string_view what,
                          std::int64_t lo, std::int64_t hi);

/// Parses an unsigned 64-bit integer. A leading '-' is rejected, not
/// wrapped: "-1" is an error, never 18446744073709551615.
std::uint64_t parse_u64(std::string_view text, std::string_view what);

/// parse_u64 plus an inclusive range check.
std::uint64_t parse_u64_in(std::string_view text, std::string_view what,
                           std::uint64_t lo, std::uint64_t hi);

}  // namespace rab::util
