// Scoped-span tracing with monotonic timestamps and parent/child nesting.
//
// A span is an RAII region — RAB_TRACE_SPAN("monitor.epoch") — that
// records its wall-clock extent on the steady (monotonic) clock when
// tracing is enabled. Spans nest: a span opened while another span is
// live on the same thread is its child, and the per-thread depth is
// recorded so tools can reconstruct the tree (the Chrome trace viewer
// also infers nesting from containment of [ts, ts+dur) on one tid).
//
// Cost model mirrors the metrics registry: disabled, a span is one
// relaxed atomic load and a predictable branch (no clock read); enabled,
// two clock reads and a push into a thread-local buffer (no locks);
// compiled out with RAB_NO_METRICS=ON, nothing at all.
//
// Tracing is observation-only and never alters results. Buffers are
// bounded (spans past the cap are counted as dropped, not stored), and
// collection merges the per-thread buffers under a lock.
//
// Export: write_chrome_trace() emits the Chrome/catapult trace-event JSON
// ("X" complete events, microsecond timestamps) loadable in
// chrome://tracing or https://ui.perfetto.dev. The span-name catalog
// lives in docs/METRICS.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace rab::util::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
std::uint64_t span_begin();
void span_end(std::string_view name, std::uint64_t start_ns);
}  // namespace detail

/// True when tracing is compiled in and runtime-enabled (default: off —
/// tracing buffers spans, so it is an explicit opt-in, unlike metrics).
[[nodiscard]] inline bool enabled() {
#if defined(RAB_NO_METRICS)
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Runtime toggle. Enabling does not clear previously collected spans;
/// call clear() for a fresh session. Compiled-out builds ignore it.
void set_enabled(bool on);

/// One completed span. Timestamps are nanoseconds on the steady clock,
/// relative to the process-wide trace epoch (first span ever recorded).
struct SpanRecord {
  std::string_view name;  ///< static-storage name passed to the span
  std::uint32_t tid = 0;  ///< small per-thread id (first-span order)
  std::uint32_t depth = 0;  ///< nesting depth on its thread (0 = root)
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// RAII scoped span. Names must have static storage duration (string
/// literals at the call sites). Prefer the RAB_TRACE_SPAN macro.
class Span {
 public:
  explicit Span(std::string_view name) {
#if !defined(RAB_NO_METRICS)
    if (enabled()) {
      name_ = name;
      start_ns_ = detail::span_begin();
    }
#else
    (void)name;
#endif
  }
  ~Span() {
#if !defined(RAB_NO_METRICS)
    if (start_ns_ != 0) detail::span_end(name_, start_ns_);
#endif
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#if !defined(RAB_NO_METRICS)
  std::string_view name_;
  std::uint64_t start_ns_ = 0;  ///< 0 = tracing was off at construction
#endif
};

/// All spans completed so far, merged across threads and sorted by start
/// time. Safe to call while spans are being recorded (in-flight spans are
/// simply not included yet).
[[nodiscard]] std::vector<SpanRecord> collect();

/// Spans discarded because a thread's buffer hit its cap.
[[nodiscard]] std::uint64_t dropped_spans();

/// Discards every collected span (a fresh trace session).
void clear();

/// Writes the collected spans as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& out);

}  // namespace rab::util::trace

#define RAB_TRACE_CONCAT_INNER(a, b) a##b
#define RAB_TRACE_CONCAT(a, b) RAB_TRACE_CONCAT_INNER(a, b)

/// Opens a scoped span covering the rest of the enclosing block.
#define RAB_TRACE_SPAN(name) \
  ::rab::util::trace::Span RAB_TRACE_CONCAT(rab_trace_span_, __LINE__)(name)
