// Minimal CSV reading/writing used by dataset io and the bench harnesses.
//
// Only the subset the library needs: comma separation, no quoting of commas
// inside fields (ids and numbers only), '#'-prefixed comment lines skipped.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rab::csv {

/// One parsed row: the raw string fields.
using Row = std::vector<std::string>;

/// Parses a single CSV line into fields. Empty input yields one empty field.
Row parse_line(const std::string& line);

/// Reads all non-comment, non-blank rows from a stream.
std::vector<Row> read(std::istream& in);

/// Reads all non-comment, non-blank rows from a file.
/// Throws rab::IoError if the file cannot be opened.
std::vector<Row> read_file(const std::string& path);

/// Writes one row; fields must not contain commas or newlines. Throws
/// rab::IoError when the stream reports a write failure.
void write_row(std::ostream& out, const Row& row);

/// Converts a field to double. Throws rab::InvalidArgument with context on
/// malformed input (environment failures are IoError; parse failures mean
/// the caller fed bad data).
double to_double(const std::string& field);

/// Converts a field to int64. Throws rab::InvalidArgument with context on
/// malformed input.
long long to_int(const std::string& field);

/// to_int plus an inclusive range check — use before narrowing into a
/// domain type (ids must be non-negative: negative values collide with the
/// library's "unset id" sentinel). Throws rab::InvalidArgument when out of
/// range.
long long to_int_in(const std::string& field, long long lo, long long hi);

}  // namespace rab::csv
