// Reusable per-thread scratch buffers for allocation-free hot loops.
//
// scratch_vector<T, Tag>() hands back a reference to a thread_local vector
// that is cleared on every borrow but keeps its capacity, so steady-state
// loops (the region-search MP evaluations, the trust epoch folds) stop
// hitting the allocator once warmed up. The Tag type distinguishes call
// sites: two live borrows of the same (T, Tag) instantiation alias the same
// buffer, so every call site that can be active at the same time on one
// thread must declare its own tag type.
#pragma once

#include <unordered_map>
#include <vector>

namespace rab::util {

/// Borrows the calling thread's reusable vector for (T, Tag). The buffer
/// comes back empty but with its previous capacity intact. The reference
/// stays valid for the thread's lifetime; it must not be handed to another
/// thread or borrowed again (same T and Tag) while still in use.
template <typename T, typename Tag = void>
[[nodiscard]] std::vector<T>& scratch_vector() {
  thread_local std::vector<T> buffer;
  buffer.clear();
  return buffer;
}

/// Borrows the calling thread's reusable hash map for (Key, Value, Tag).
/// Cleared on borrow, bucket storage retained; same aliasing rules as
/// scratch_vector.
template <typename Key, typename Value, typename Tag = void>
[[nodiscard]] std::unordered_map<Key, Value>& scratch_map() {
  thread_local std::unordered_map<Key, Value> buffer;
  buffer.clear();
  return buffer;
}

}  // namespace rab::util
