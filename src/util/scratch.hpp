// Reusable per-thread scratch buffers for allocation-free hot loops.
//
// scratch_vector<T, Tag>() hands back a reference to a thread_local vector
// that is cleared on every borrow but keeps its capacity, so steady-state
// loops (the region-search MP evaluations, the trust epoch folds) stop
// hitting the allocator once warmed up. The Tag type distinguishes call
// sites: two live borrows of the same (T, Tag) instantiation alias the same
// buffer, so every call site that can be active at the same time on one
// thread must declare its own tag type.
//
// The aligned variants back the SoA rating columns and the SIMD kernels:
// AlignedAllocator over-aligns vector storage to a cache-line/vector-width
// boundary so the compiler-vectorized column walks (util/simd.hpp) start
// from aligned addresses.
#pragma once

#include <cstddef>
#include <new>
#include <unordered_map>
#include <vector>

namespace rab::util {

/// Minimal std::allocator drop-in whose allocations are aligned to
/// `Alignment` bytes (a power of two, at least alignof(T)). Used for the
/// rating column arrays and kernel scratch so vectorized loops run over
/// aligned storage.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Default alignment for SoA columns and kernel scratch: one cache line,
/// which also covers every vector width the portable kernels use.
inline constexpr std::size_t kColumnAlignment = 64;

/// Contiguous array whose storage is aligned to `Alignment` bytes.
template <typename T, std::size_t Alignment = kColumnAlignment>
using aligned_vector = std::vector<T, AlignedAllocator<T, Alignment>>;

/// Borrows the calling thread's reusable vector for (T, Tag). The buffer
/// comes back empty but with its previous capacity intact. The reference
/// stays valid for the thread's lifetime; it must not be handed to another
/// thread or borrowed again (same T and Tag) while still in use.
template <typename T, typename Tag = void>
[[nodiscard]] std::vector<T>& scratch_vector() {
  thread_local std::vector<T> buffer;
  buffer.clear();
  return buffer;
}

/// Aligned flavor of scratch_vector: the borrowed buffer's storage is
/// aligned to `Alignment` bytes (configurable per call site). Same clearing
/// and aliasing rules as scratch_vector; distinct (T, Tag, Alignment)
/// triples borrow distinct buffers.
template <typename T, typename Tag = void,
          std::size_t Alignment = kColumnAlignment>
[[nodiscard]] aligned_vector<T, Alignment>& scratch_aligned_vector() {
  thread_local aligned_vector<T, Alignment> buffer;
  buffer.clear();
  return buffer;
}

/// Borrows the calling thread's reusable hash map for (Key, Value, Tag).
/// Cleared on borrow, bucket storage retained; same aliasing rules as
/// scratch_vector.
template <typename Key, typename Value, typename Tag = void>
[[nodiscard]] std::unordered_map<Key, Value>& scratch_map() {
  thread_local std::unordered_map<Key, Value> buffer;
  buffer.clear();
  return buffer;
}

}  // namespace rab::util
