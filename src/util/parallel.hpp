// Deterministic parallel execution engine.
//
// A single process-wide ThreadPool runs indexed loops via parallel_for.
// Determinism contract: callers index their work items, derive any RNG
// stream from the item index alone, and write results into per-index
// slots; reductions happen serially afterward. Under that contract the
// output is bit-identical for every thread count, so `RAB_THREADS=1`
// reproduces exactly what `RAB_THREADS=8` computes.
//
// Sizing: the pool reads the RAB_THREADS environment variable once at
// first use (falling back to std::thread::hardware_concurrency()); tests
// and benches can override it at runtime with set_thread_count(). A
// nested parallel_for issued from inside a worker runs inline on that
// worker — parallelism is applied at the outermost loop only, which keeps
// the pool deadlock-free without a re-entrant scheduler.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rab::util {

/// Fixed-size worker pool. Most code should not touch this directly —
/// use parallel_for, which schedules onto the shared global pool.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is clamped to 1). A pool of 1 thread
  /// still spawns its worker, but parallel_for bypasses the queue then.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for any free worker.
  void submit(std::function<void()> task);

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// True when called from one of this pool's worker threads.
  [[nodiscard]] static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stop_ = false;
};

/// The process-wide pool used by parallel_for. Created on first use with
/// the thread count from RAB_THREADS (or hardware concurrency).
ThreadPool& global_pool();

/// Threads the global pool runs with (>= 1). Reads RAB_THREADS lazily.
std::size_t thread_count();

/// Rebuilds the global pool with `threads` workers (clamped to >= 1).
/// Intended for tests and benches comparing serial vs parallel runs; not
/// safe to call concurrently with an in-flight parallel_for.
void set_thread_count(std::size_t threads);

namespace detail {
void parallel_for_impl(std::size_t n, std::size_t grain,
                       const std::function<void(std::size_t)>& body);
}  // namespace detail

/// Runs body(i) for every i in [0, n), distributing chunks of ~`grain`
/// consecutive indices over the global pool. Blocks until all indices are
/// done; the calling thread participates in the work. The first exception
/// thrown by any invocation is rethrown after the loop drains. `body`
/// must be safe to invoke concurrently from several threads; per-index
/// work must not depend on execution order (see the determinism contract
/// above).
template <typename Body>
void parallel_for(std::size_t n, Body&& body, std::size_t grain = 1) {
  detail::parallel_for_impl(n, grain,
                            std::function<void(std::size_t)>(body));
}

}  // namespace rab::util
