#include "trust/collusion.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "cluster/single_linkage.hpp"
#include "util/error.hpp"

namespace rab::trust {

namespace {

/// One rater's footprint: per product, their ratings' (time, value) pairs.
struct Footprint {
  std::map<ProductId, std::vector<std::pair<Day, double>>> by_product;
  std::size_t products() const { return by_product.size(); }
};

/// True if the two raters "agree" on a product: some pair of their ratings
/// is close in both time and value.
bool agree(const std::vector<std::pair<Day, double>>& a,
           const std::vector<std::pair<Day, double>>& b,
           const CollusionConfig& config) {
  for (const auto& [ta, va] : a) {
    for (const auto& [tb, vb] : b) {
      if (std::fabs(ta - tb) <= config.time_window &&
          std::fabs(va - vb) <= config.value_tolerance) {
        return true;
      }
    }
  }
  return false;
}

/// Jaccard-style co-incidence score of two raters.
double pair_score(const Footprint& a, const Footprint& b,
                  const CollusionConfig& config, std::size_t* overlap) {
  std::size_t agreements = 0;
  for (const auto& [product, ratings_a] : a.by_product) {
    const auto it = b.by_product.find(product);
    if (it == b.by_product.end()) continue;
    if (agree(ratings_a, it->second, config)) ++agreements;
  }
  *overlap = agreements;
  const std::size_t union_size =
      a.products() + b.products() > agreements
          ? a.products() + b.products() - agreements
          : 1;
  return static_cast<double>(agreements) /
         static_cast<double>(union_size);
}

void check_config(const CollusionConfig& config) {
  RAB_EXPECTS(config.time_window > 0.0);
  RAB_EXPECTS(config.link_score > 0.0 && config.link_score <= 1.0);
  RAB_EXPECTS(config.min_group >= 2);
}

/// The shared back half: link pairs, take connected components, keep the
/// big ones. Both front ends (Dataset and DatasetOverlay) hand over the
/// same raters-ascending footprint table for the same merged ratings, so
/// the groups are bit-identical between the two paths.
std::vector<CollusionGroup> groups_from_footprints(
    const std::vector<RaterId>& raters,
    const std::vector<Footprint>& footprints,
    const CollusionConfig& config) {
  // Link strongly co-incident pairs. Raters with a single product can't
  // clear min_overlap >= 2, so skip them up front.
  std::vector<cluster::Edge> edges;
  std::vector<double> edge_scores;
  for (std::size_t i = 0; i < raters.size(); ++i) {
    if (footprints[i].products() < config.min_overlap) continue;
    for (std::size_t j = i + 1; j < raters.size(); ++j) {
      if (footprints[j].products() < config.min_overlap) continue;
      std::size_t overlap = 0;
      const double score =
          pair_score(footprints[i], footprints[j], config, &overlap);
      if (overlap >= config.min_overlap && score >= config.link_score) {
        edges.push_back(cluster::Edge{i, j});
        edge_scores.push_back(score);
      }
    }
  }
  if (raters.empty()) return {};

  const cluster::Clustering components =
      cluster::connected_components(edges, raters.size());

  // Collect components of sufficient size.
  std::vector<CollusionGroup> groups(components.cluster_count);
  for (std::size_t i = 0; i < raters.size(); ++i) {
    groups[components.labels[i]].raters.push_back(raters[i]);
  }
  // Mean pairwise link score per group (over the linked pairs only).
  std::vector<double> score_sum(components.cluster_count, 0.0);
  std::vector<std::size_t> score_n(components.cluster_count, 0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const std::size_t label = components.labels[edges[e].a];
    score_sum[label] += edge_scores[e];
    ++score_n[label];
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (score_n[g] > 0) {
      groups[g].mean_pair_score =
          score_sum[g] / static_cast<double>(score_n[g]);
    }
  }

  std::erase_if(groups, [&](const CollusionGroup& g) {
    return g.raters.size() < config.min_group;
  });
  std::sort(groups.begin(), groups.end(),
            [](const CollusionGroup& a, const CollusionGroup& b) {
              return a.raters.size() > b.raters.size();
            });
  return groups;
}

}  // namespace

std::vector<CollusionGroup> find_collusion_groups(
    const rating::Dataset& data, const CollusionConfig& config) {
  check_config(config);

  std::vector<RaterId> raters = data.rater_ids();
  std::unordered_map<RaterId, std::size_t> index;
  for (std::size_t i = 0; i < raters.size(); ++i) index[raters[i]] = i;
  std::vector<Footprint> footprints(raters.size());
  for (ProductId id : data.product_ids()) {
    for (const rating::Rating& r : data.product(id).rows()) {
      footprints[index[r.rater]].by_product[id].emplace_back(r.time,
                                                             r.value);
    }
  }
  return groups_from_footprints(raters, footprints, config);
}

std::vector<CollusionGroup> find_collusion_groups(
    const rating::DatasetOverlay& data, const CollusionConfig& config) {
  check_config(config);

  // Same raters-ascending order as Dataset::rater_ids() on the
  // materialized union, so the footprint table (and with it every edge,
  // component, and group) matches the Dataset path exactly.
  std::set<RaterId> seen;
  for (ProductId id : data.product_ids()) {
    data.product(id).for_each(
        [&](const rating::Rating& r) { seen.insert(r.rater); });
  }
  const std::vector<RaterId> raters(seen.begin(), seen.end());
  std::unordered_map<RaterId, std::size_t> index;
  for (std::size_t i = 0; i < raters.size(); ++i) index[raters[i]] = i;
  std::vector<Footprint> footprints(raters.size());
  for (ProductId id : data.product_ids()) {
    data.product(id).for_each([&](const rating::Rating& r) {
      footprints[index[r.rater]].by_product[id].emplace_back(r.time,
                                                             r.value);
    });
  }
  return groups_from_footprints(raters, footprints, config);
}

void apply_collusion_discount(TrustManager& manager,
                              const std::vector<CollusionGroup>& groups) {
  for (const CollusionGroup& group : groups) {
    EpochCounts counts;
    counts.ratings = group.raters.size();
    counts.suspicious = group.raters.size();
    for (RaterId rater : group.raters) manager.record(rater, counts);
  }
}

}  // namespace rab::trust
