#include "trust/trust_manager.hpp"

#include <algorithm>
#include <cmath>

#include "stats/beta.hpp"
#include "util/error.hpp"

namespace rab::trust {

TrustManager::TrustManager(double forgetting) : forgetting_(forgetting) {
  RAB_EXPECTS(forgetting > 0.0 && forgetting <= 1.0);
}

void TrustManager::decay() {
  if (forgetting_ >= 1.0) return;
  for (auto& [rater, counts] : counts_) {
    counts.s *= forgetting_;
    counts.f *= forgetting_;
  }
}

void TrustManager::record(RaterId rater, const EpochCounts& counts) {
  RAB_EXPECTS(counts.suspicious <= counts.ratings);
  Counts& c = counts_[rater];
  c.f += static_cast<double>(counts.suspicious);
  c.s += static_cast<double>(counts.ratings - counts.suspicious);
}

double TrustManager::trust(RaterId rater) const {
  const auto it = counts_.find(rater);
  if (it == counts_.end()) return 0.5;
  return stats::beta_trust(it->second.s, it->second.f);
}

double TrustManager::successes(RaterId rater) const {
  const auto it = counts_.find(rater);
  return it == counts_.end() ? 0.0 : it->second.s;
}

double TrustManager::failures(RaterId rater) const {
  const auto it = counts_.find(rater);
  return it == counts_.end() ? 0.0 : it->second.f;
}

void TrustManager::visit(
    const std::function<void(RaterId, double)>& fn) const {
  for (const auto& [rater, c] : counts_) {
    fn(rater, stats::beta_trust(c.s, c.f));
  }
}

std::function<double(RaterId)> TrustManager::lookup() const {
  return [this](RaterId rater) { return trust(rater); };
}

std::vector<RaterCounts> TrustManager::export_counts() const {
  std::vector<RaterCounts> out;
  out.reserve(counts_.size());
  for (const auto& [rater, c] : counts_) {
    out.push_back(RaterCounts{rater, c.s, c.f});
  }
  std::sort(out.begin(), out.end(),
            [](const RaterCounts& a, const RaterCounts& b) {
              return a.rater < b.rater;
            });
  return out;
}

void TrustManager::import_counts(std::span<const RaterCounts> counts) {
  std::unordered_map<RaterId, Counts> imported;
  imported.reserve(counts.size());
  for (const RaterCounts& c : counts) {
    RAB_EXPECTS(std::isfinite(c.s) && c.s >= 0.0);
    RAB_EXPECTS(std::isfinite(c.f) && c.f >= 0.0);
    imported[c.rater] = Counts{c.s, c.f};
  }
  counts_ = std::move(imported);
}

void TrustManager::reset() { counts_.clear(); }

}  // namespace rab::trust
