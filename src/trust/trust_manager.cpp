#include "trust/trust_manager.hpp"

#include <algorithm>
#include <cmath>

#include "stats/beta.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace rab::trust {

namespace {

/// Trust observability (docs/METRICS.md): record/decay counters, the
/// known-rater gauge, and a distribution of trust values as they are
/// re-scored at each record() — a streaming view of where the population's
/// trust mass sits without walking the whole table.
struct TrustMetrics {
  util::metrics::Counter& records =
      util::metrics::counter("trust.records");
  util::metrics::Counter& decays = util::metrics::counter("trust.decays");
  util::metrics::Gauge& known_raters =
      util::metrics::gauge("trust.known_raters");
  util::metrics::Histogram& value = util::metrics::histogram(
      "trust.value", util::metrics::unit_bounds());

  static const TrustMetrics& get() {
    static const TrustMetrics instance;
    return instance;
  }
};

}  // namespace

TrustManager::TrustManager(double forgetting) : forgetting_(forgetting) {
  RAB_EXPECTS(forgetting > 0.0 && forgetting <= 1.0);
}

void TrustManager::decay() {
  if (forgetting_ >= 1.0) return;
  TrustMetrics::get().decays.add();
  for (auto& [rater, counts] : counts_) {
    counts.s *= forgetting_;
    counts.f *= forgetting_;
  }
}

void TrustManager::record(RaterId rater, const EpochCounts& counts) {
  RAB_EXPECTS(counts.suspicious <= counts.ratings);
  Counts& c = counts_[rater];
  c.f += static_cast<double>(counts.suspicious);
  c.s += static_cast<double>(counts.ratings - counts.suspicious);
  if (util::metrics::enabled()) {
    const TrustMetrics& m = TrustMetrics::get();
    m.records.add();
    m.value.observe(stats::beta_trust(c.s, c.f));
    m.known_raters.set(static_cast<double>(counts_.size()));
  }
}

double TrustManager::trust(RaterId rater) const {
  const auto it = counts_.find(rater);
  if (it == counts_.end()) return 0.5;
  return stats::beta_trust(it->second.s, it->second.f);
}

double TrustManager::successes(RaterId rater) const {
  const auto it = counts_.find(rater);
  return it == counts_.end() ? 0.0 : it->second.s;
}

double TrustManager::failures(RaterId rater) const {
  const auto it = counts_.find(rater);
  return it == counts_.end() ? 0.0 : it->second.f;
}

void TrustManager::visit(
    const std::function<void(RaterId, double)>& fn) const {
  for (const auto& [rater, c] : counts_) {
    fn(rater, stats::beta_trust(c.s, c.f));
  }
}

std::function<double(RaterId)> TrustManager::lookup() const {
  return [this](RaterId rater) { return trust(rater); };
}

std::vector<RaterCounts> TrustManager::export_counts() const {
  std::vector<RaterCounts> out;
  out.reserve(counts_.size());
  for (const auto& [rater, c] : counts_) {
    out.push_back(RaterCounts{rater, c.s, c.f});
  }
  std::sort(out.begin(), out.end(),
            [](const RaterCounts& a, const RaterCounts& b) {
              return a.rater < b.rater;
            });
  return out;
}

void TrustManager::import_counts(std::span<const RaterCounts> counts) {
  std::unordered_map<RaterId, Counts> imported;
  imported.reserve(counts.size());
  for (const RaterCounts& c : counts) {
    RAB_EXPECTS(std::isfinite(c.s) && c.s >= 0.0);
    RAB_EXPECTS(std::isfinite(c.f) && c.f >= 0.0);
    imported[c.rater] = Counts{c.s, c.f};
  }
  counts_ = std::move(imported);
}

void TrustManager::reset() { counts_.clear(); }

}  // namespace rab::trust
