// Collusion-group discovery.
//
// The paper's threat model is *collaborative* unfair rating: a squad of
// raters coordinates on the same products in the same time span with
// similar values. This module makes the coordination itself observable:
// it scores every pair of raters by how often they co-rate (same product,
// close in time, close in value) and connects pairs whose co-incidence is
// too high to be chance; large connected components are collusion-group
// candidates. It complements the per-rating detectors: even ratings that
// individually evade the signal tests still betray the squad structure.
//
// Lives in the trust layer so aggregation schemes can consume the groups
// as a trust discount (see aggregation/collusion_guard.hpp) without a
// dependency cycle through the challenge layer; challenge/collusion.hpp
// re-exports the names for attack-side callers.
#pragma once

#include <vector>

#include "rating/dataset.hpp"
#include "rating/overlay.hpp"
#include "trust/trust_manager.hpp"

namespace rab::trust {

struct CollusionConfig {
  double time_window = 3.0;      ///< co-rating proximity in days
  double value_tolerance = 0.5;  ///< "similar value" band in stars
  /// Pairs are linked when (co-rated products with time+value agreement) /
  /// (products either rated) reaches this fraction, over at least
  /// min_overlap co-rated products. Defaults are deliberately strict: with
  /// hundreds of honest raters, loose criteria percolate coincidental
  /// agreements into one giant component.
  double link_score = 0.6;
  std::size_t min_overlap = 3;
  std::size_t min_group = 5;     ///< smallest reported group
};

/// One suspected collusion group, strongest (largest) first.
struct CollusionGroup {
  std::vector<RaterId> raters;
  double mean_pair_score = 0.0;  ///< average link score inside the group
};

/// Finds collusion-group candidates in `data`. Runtime is
/// O(raters^2 * products-per-rater) — fine for challenge-scale data.
std::vector<CollusionGroup> find_collusion_groups(
    const rating::Dataset& data, const CollusionConfig& config = {});

/// Overlay overload: identical groups to
/// find_collusion_groups(data.materialize(), config) without materializing
/// the combined dataset — the zero-copy path Monte-Carlo squads and the
/// collusion-guard scheme's aggregate_overlay ride on.
std::vector<CollusionGroup> find_collusion_groups(
    const rating::DatasetOverlay& data, const CollusionConfig& config = {});

/// Folds detected groups into `manager` as beta-model evidence: every
/// member of a group of n raters is charged n suspicious observations, so
/// their trust drops to roughly 1/(n+2) — the "trust discount on detected
/// squads" that aggregation applies. Deterministic; groups are processed
/// in order.
void apply_collusion_discount(TrustManager& manager,
                              const std::vector<CollusionGroup>& groups);

}  // namespace rab::trust
