// Trust in raters (paper Section IV-G, Procedure 1).
//
// The trust manager accumulates, per rater, how many of their ratings were
// marked suspicious (F) versus clean (S) at each trust-update epoch, and
// scores trust with the beta-function model [Jøsang & Ismail]:
//     T_i = (S_i + 1) / (S_i + F_i + 2)
// A rater with no history scores (0+1)/(0+0+2) = 0.5 — the paper's initial
// trust value falls out of the model.
#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"

namespace rab::trust {

/// Per-epoch observation for one rater.
struct EpochCounts {
  std::size_t ratings = 0;     ///< n_i: ratings provided in the epoch
  std::size_t suspicious = 0;  ///< f_i: of those, marked suspicious
};

/// One rater's accumulated raw beta-model evidence — the checkpointable
/// unit of trust state (trust values are derived, S/F are the state).
struct RaterCounts {
  RaterId rater;
  double s = 0.0;  ///< accumulated clean evidence
  double f = 0.0;  ///< accumulated suspicious evidence

  friend bool operator==(const RaterCounts&, const RaterCounts&) = default;
};

class TrustManager {
 public:
  TrustManager() = default;

  /// @param forgetting lambda in (0, 1]: at each decay() call every S/F
  /// count is multiplied by lambda, the forgetting factor of Jøsang's beta
  /// reputation system. 1.0 (default) never forgets — plain Procedure 1.
  explicit TrustManager(double forgetting);

  /// Folds one epoch's observation for `rater` into the running S/F counts
  /// (Procedure 1 lines 7-9). suspicious must not exceed ratings.
  void record(RaterId rater, const EpochCounts& counts);

  /// Applies one step of forgetting (call once per epoch boundary). A
  /// no-op when the forgetting factor is 1.
  void decay();

  [[nodiscard]] double forgetting() const { return forgetting_; }

  /// Current trust value of `rater`; 0.5 when the rater has no history.
  [[nodiscard]] double trust(RaterId rater) const;

  /// Accumulated S (clean) count; 0 when unseen.
  [[nodiscard]] double successes(RaterId rater) const;
  /// Accumulated F (suspicious) count; 0 when unseen.
  [[nodiscard]] double failures(RaterId rater) const;

  [[nodiscard]] std::size_t known_raters() const { return counts_.size(); }

  /// Calls `fn(rater, trust)` for every rater with history, in unspecified
  /// order — for order-independent summaries (distributions, exports).
  void visit(const std::function<void(RaterId, double)>& fn) const;

  /// Callable adapter for the detectors' TrustLookup parameter (the same
  /// std::function type; spelled out here so trust does not depend on the
  /// detectors layer).
  [[nodiscard]] std::function<double(RaterId)> lookup() const;

  /// Raw S/F evidence for every known rater, sorted by rater id — a
  /// deterministic, exact (bit-for-bit) serialization of the trust state
  /// for checkpointing and state comparison.
  [[nodiscard]] std::vector<RaterCounts> export_counts() const;

  /// Replaces all history with previously exported counts (the restore
  /// half of export_counts). Counts must be finite and non-negative.
  void import_counts(std::span<const RaterCounts> counts);

  /// Forgets all history (new experiment).
  void reset();

 private:
  struct Counts {
    double s = 0.0;
    double f = 0.0;
  };
  std::unordered_map<RaterId, Counts> counts_;
  double forgetting_ = 1.0;
};

}  // namespace rab::trust
