#include "challenge/detection_quality.hpp"

namespace rab::challenge {

namespace {

double safe_ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

double DetectionCounts::precision() const {
  return safe_ratio(true_positives, true_positives + false_positives);
}

double DetectionCounts::recall() const {
  return safe_ratio(true_positives, true_positives + false_negatives);
}

double DetectionCounts::false_positive_rate() const {
  return safe_ratio(false_positives, false_positives + true_negatives);
}

double DetectionCounts::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

DetectionCounts& DetectionCounts::operator+=(const DetectionCounts& other) {
  true_positives += other.true_positives;
  false_negatives += other.false_negatives;
  false_positives += other.false_positives;
  true_negatives += other.true_negatives;
  return *this;
}

DetectionQuality evaluate_detection(const Challenge& challenge,
                                    const Submission& submission,
                                    const aggregation::PScheme& scheme) {
  const rating::Dataset attacked = challenge.apply(submission);
  aggregation::PDiagnostics diagnostics;
  (void)scheme.aggregate_detailed(attacked, challenge.config().bin_days,
                                  &diagnostics);

  DetectionQuality quality;
  for (ProductId id : attacked.product_ids()) {
    const rating::ProductRatings& stream = attacked.product(id);
    const detectors::IntegrationResult& result =
        diagnostics.integration.at(id);

    DetectionCounts counts;
    const std::span<const std::uint8_t> unfair_flags = stream.unfair_flags();
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const bool unfair = unfair_flags[i] != 0;
      const bool flagged = result.suspicious[i];
      if (unfair && flagged) {
        ++counts.true_positives;
      } else if (unfair) {
        ++counts.false_negatives;
      } else if (flagged) {
        ++counts.false_positives;
      } else {
        ++counts.true_negatives;
      }
    }
    quality.overall += counts;
    quality.per_product.emplace(id, counts);
  }
  return quality;
}

}  // namespace rab::challenge
