// An attack submission to the rating challenge (paper Section III).
//
// A participant controls a fixed squad of biased raters and decides, for
// each targeted product, when each rater rates and with what value. Ground
// truth: every rating in a submission is unfair.
#pragma once

#include <string>
#include <vector>

#include "rating/rating.hpp"
#include "util/day.hpp"

namespace rab::challenge {

/// One participant's complete set of unfair ratings.
struct Submission {
  std::string label;                   ///< strategy / participant name
  std::vector<rating::Rating> ratings; ///< all unfair=true

  /// Ratings of this submission that target `product`, in time order.
  [[nodiscard]] std::vector<rating::Rating> for_product(
      ProductId product) const;

  /// Time span covered by the ratings for `product` (the attack duration).
  [[nodiscard]] Interval duration(ProductId product) const;

  /// Attack duration divided by the number of unfair ratings for `product`
  /// (the paper's "average unfair rating interval", Section V-C).
  /// Returns 0 when fewer than 2 ratings target the product.
  [[nodiscard]] double average_interval(ProductId product) const;

  [[nodiscard]] bool empty() const { return ratings.empty(); }
};

/// Bias and spread of a submission's values for one product relative to the
/// fair ratings (Section V-B: bias = mean(unfair) - mean(fair)).
struct ValueStats {
  double bias = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

/// Computes ValueStats given the fair mean of the product.
ValueStats value_stats(const Submission& submission, ProductId product,
                       double fair_mean);

}  // namespace rab::challenge
