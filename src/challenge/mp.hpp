// Manipulation power (MP) — the challenge's attack-strength metric
// (paper Section III).
//
// For each product, every 30-day period contributes
//     Delta_i = | R_ag_with_attack(t_i) - R_ag_fair(t_i) |
// and the product's MP is the sum of the two largest Delta_i. The overall
// MP sums the per-product values over all attacked products.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "aggregation/scheme.hpp"
#include "challenge/submission.hpp"
#include "rating/dataset.hpp"
#include "rating/overlay.hpp"

namespace rab::challenge {

/// MP evaluation output.
struct MpResult {
  double overall = 0.0;                     ///< sum over products
  std::map<ProductId, double> per_product;  ///< top-2 Delta sum per product
  std::map<ProductId, std::vector<double>> deltas;  ///< per-bin |Delta|
};

/// Computes MP values of attacks against a fixed fair dataset under a given
/// aggregation scheme.
///
/// evaluate() / evaluate_overall() never copy the fair dataset: the
/// submission is applied as a zero-copy rating::DatasetOverlay and handed
/// to the scheme's overlay aggregation path, which is bit-identical to
/// aggregating fair.with_added(ratings) (evaluate_dataset remains as that
/// reference path). A metric instance is safe to share across threads —
/// the region search fans evaluations over a pool.
class MpMetric {
 public:
  /// @param fair the pristine dataset (no unfair ratings).
  /// @param bin_days the MP period (30 days in the challenge).
  MpMetric(rating::Dataset fair, double bin_days = 30.0);

  /// Evaluates one submission under `scheme`. The fair baseline series for
  /// the scheme is computed once and cached across calls.
  [[nodiscard]] MpResult evaluate(
      const Submission& submission,
      const aggregation::AggregationScheme& scheme) const;

  /// Overall MP only — the region-search / attack-generator inner loop.
  /// Same value as evaluate(...).overall without building the per-product
  /// result maps or per-bin delta vectors.
  [[nodiscard]] double evaluate_overall(
      const Submission& submission,
      const aggregation::AggregationScheme& scheme) const;

  /// Evaluates a pre-built attacked dataset (advanced use; spans must match
  /// the fair dataset so that bin boundaries align).
  [[nodiscard]] MpResult evaluate_dataset(
      const rating::Dataset& attacked,
      const aggregation::AggregationScheme& scheme) const;

  [[nodiscard]] const rating::Dataset& fair() const { return fair_; }
  [[nodiscard]] double bin_days() const { return bin_days_; }

 private:
  const aggregation::AggregateSeries& fair_series(
      const aggregation::AggregationScheme& scheme) const;

  [[nodiscard]] MpResult compare_series(
      const aggregation::AggregateSeries& baseline,
      const aggregation::AggregateSeries& attacked) const;

  rating::Dataset fair_;
  double bin_days_;
  /// Fair baselines keyed by scheme identity() — name() alone collides for
  /// same-name schemes configured differently. Held behind a shared_ptr so
  /// the metric stays movable (Challenge passes it by value); the mutex
  /// makes concurrent evaluations safe. Entries are never erased, so
  /// returned references stay valid (std::map nodes are stable).
  struct BaselineCache {
    std::mutex mutex;
    std::map<std::string, aggregation::AggregateSeries> series;
  };
  std::shared_ptr<BaselineCache> baselines_;
};

/// Sum of the two largest elements of `deltas`: one element sums alone,
/// empty sums to 0, and with exactly two elements the result is their sum.
/// Inputs are MP deltas, i.e. absolute differences — every element must be
/// >= 0 (enforced), since the scan treats 0 as the identity and would
/// silently ignore all-negative input. Exposed for tests.
double top_two_sum(const std::vector<double>& deltas);

}  // namespace rab::challenge
