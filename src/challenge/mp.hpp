// Manipulation power (MP) — the challenge's attack-strength metric
// (paper Section III).
//
// For each product, every 30-day period contributes
//     Delta_i = | R_ag_with_attack(t_i) - R_ag_fair(t_i) |
// and the product's MP is the sum of the two largest Delta_i. The overall
// MP sums the per-product values over all attacked products.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "aggregation/scheme.hpp"
#include "challenge/submission.hpp"
#include "rating/dataset.hpp"

namespace rab::challenge {

/// MP evaluation output.
struct MpResult {
  double overall = 0.0;                     ///< sum over products
  std::map<ProductId, double> per_product;  ///< top-2 Delta sum per product
  std::map<ProductId, std::vector<double>> deltas;  ///< per-bin |Delta|
};

/// Computes MP values of attacks against a fixed fair dataset under a given
/// aggregation scheme.
class MpMetric {
 public:
  /// @param fair the pristine dataset (no unfair ratings).
  /// @param bin_days the MP period (30 days in the challenge).
  MpMetric(rating::Dataset fair, double bin_days = 30.0);

  /// Evaluates one submission under `scheme`. The fair baseline series for
  /// the scheme is computed once and cached across calls.
  [[nodiscard]] MpResult evaluate(
      const Submission& submission,
      const aggregation::AggregationScheme& scheme) const;

  /// Evaluates a pre-built attacked dataset (advanced use; spans must match
  /// the fair dataset so that bin boundaries align).
  [[nodiscard]] MpResult evaluate_dataset(
      const rating::Dataset& attacked,
      const aggregation::AggregationScheme& scheme) const;

  [[nodiscard]] const rating::Dataset& fair() const { return fair_; }
  [[nodiscard]] double bin_days() const { return bin_days_; }

 private:
  const aggregation::AggregateSeries& fair_series(
      const aggregation::AggregationScheme& scheme) const;

  rating::Dataset fair_;
  double bin_days_;
  /// Cache of fair baselines keyed by scheme name (schemes are stateless).
  mutable std::map<std::string, aggregation::AggregateSeries> fair_cache_;
};

/// Sum of the two largest elements of `deltas` (one element sums alone;
/// empty sums to 0). Exposed for tests.
double top_two_sum(const std::vector<double>& deltas);

}  // namespace rab::challenge
