#include "challenge/participants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace rab::challenge {

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kNaiveExtreme:
      return "naive-extreme";
    case StrategyKind::kNaiveSpread:
      return "naive-spread";
    case StrategyKind::kModerateBias:
      return "moderate-bias";
    case StrategyKind::kHighVariance:
      return "high-variance";
    case StrategyKind::kLowRate:
      return "low-rate";
    case StrategyKind::kBursts:
      return "bursts";
    case StrategyKind::kCamouflage:
      return "camouflage";
    case StrategyKind::kManualJitter:
      return "manual-jitter";
  }
  return "unknown";
}

std::vector<StrategyKind> all_strategies() {
  return {StrategyKind::kNaiveExtreme, StrategyKind::kNaiveSpread,
          StrategyKind::kModerateBias, StrategyKind::kHighVariance,
          StrategyKind::kLowRate,      StrategyKind::kBursts,
          StrategyKind::kCamouflage,   StrategyKind::kManualJitter};
}

ParticipantPopulation::ParticipantPopulation(const Challenge& challenge,
                                             std::uint64_t seed)
    : challenge_(&challenge), seed_(seed) {}

std::vector<Day> ParticipantPopulation::uniform_times(std::size_t count,
                                                      double offset,
                                                      double duration,
                                                      Rng& rng) const {
  const Interval window = challenge_->config().window;
  const Day begin = window.begin + offset;
  std::vector<Day> times;
  times.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Day t = begin + rng.uniform(0.0, duration);
    t = std::clamp(t, window.begin,
                   std::nextafter(window.end, window.begin));
    times.push_back(t);
  }
  std::sort(times.begin(), times.end());
  return times;
}

void ParticipantPopulation::emit_product(const ProductPlan& plan,
                                         const std::vector<Day>& times,
                                         bool round_values, Rng& rng,
                                         Submission& out) const {
  RAB_EXPECTS(times.size() == plan.count);
  for (std::size_t k = 0; k < plan.count; ++k) {
    rating::Rating r;
    r.time = times[k];
    double value = rng.gaussian(plan.target_mean, plan.sigma);
    value = std::clamp(value, rating::kMinRating, rating::kMaxRating);
    if (round_values) value = std::round(value);
    r.value = value;
    r.rater = challenge_->attacker(k);
    r.product = plan.product;
    r.unfair = true;
    out.ratings.push_back(r);
  }
}

Submission ParticipantPopulation::make(StrategyKind kind,
                                       std::uint64_t stream) const {
  // Fork a per-submission generator: one strategy with different streams
  // yields individual (but reproducible) submissions.
  Rng rng = Rng(seed_).fork(
      (static_cast<std::uint64_t>(kind) << 32) ^ stream);

  const ChallengeConfig& config = challenge_->config();
  const double window_days = config.window.length();
  const std::size_t squad = config.attack_raters;

  Submission out;
  std::ostringstream label;
  label << to_string(kind) << '-' << stream;
  out.label = label.str();

  // Per-product plan: boost targets get positive bias, downgrade targets
  // negative. The fair mean sits near 4, so downgrades have far more room
  // (paper Section V-B).
  auto plan_for = [&](ProductId id, bool boost, double bias_lo,
                      double bias_hi, double sigma_lo, double sigma_hi,
                      std::size_t count) {
    const double fair_mean = challenge_->fair_mean(id);
    const double magnitude = rng.uniform(bias_lo, bias_hi);
    const double bias = boost ? magnitude * 0.35 : -magnitude;
    ProductPlan plan;
    plan.product = id;
    plan.target_mean =
        std::clamp(fair_mean + bias, rating::kMinRating, rating::kMaxRating);
    plan.sigma = rng.uniform(sigma_lo, sigma_hi);
    plan.count = count;
    return plan;
  };

  auto each_target = [&](auto&& fn) {
    for (ProductId id : config.boost_targets) fn(id, /*boost=*/true);
    for (ProductId id : config.downgrade_targets) fn(id, /*boost=*/false);
  };

  switch (kind) {
    case StrategyKind::kNaiveExtreme: {
      // Slam min/max values in one short burst somewhere in the window.
      const double duration = rng.uniform(1.0, 10.0);
      const double offset = rng.uniform(0.0, window_days - duration);
      each_target([&](ProductId id, bool boost) {
        ProductPlan plan;
        plan.product = id;
        plan.target_mean = boost ? rating::kMaxRating : rating::kMinRating;
        plan.sigma = 0.0;
        plan.count = squad;
        emit_product(plan, uniform_times(squad, offset, duration, rng),
                     /*round_values=*/true, rng, out);
      });
      break;
    }
    case StrategyKind::kNaiveSpread: {
      // Extreme values, but spread over the entire challenge window.
      each_target([&](ProductId id, bool boost) {
        ProductPlan plan;
        plan.product = id;
        plan.target_mean = boost ? rating::kMaxRating : rating::kMinRating;
        plan.sigma = rng.uniform(0.0, 0.3);
        plan.count = squad;
        emit_product(plan, uniform_times(squad, 0.0, window_days, rng),
                     /*round_values=*/true, rng, out);
      });
      break;
    }
    case StrategyKind::kModerateBias: {
      // Defense-aware: stay closer to the majority, concentrate in roughly
      // one MP month.
      const double duration = rng.uniform(20.0, 45.0);
      const double offset =
          rng.uniform(0.0, std::max(window_days - duration, 1.0));
      each_target([&](ProductId id, bool boost) {
        const ProductPlan plan =
            plan_for(id, boost, 1.2, 3.2, 0.1, 0.5, squad);
        emit_product(plan, uniform_times(squad, offset, duration, rng),
                     /*round_values=*/true, rng, out);
      });
      break;
    }
    case StrategyKind::kHighVariance: {
      // Medium bias with a wide spread to wash out the signal features the
      // P-scheme keys on.
      const double duration = rng.uniform(25.0, 60.0);
      const double offset =
          rng.uniform(0.0, std::max(window_days - duration, 1.0));
      each_target([&](ProductId id, bool boost) {
        const ProductPlan plan =
            plan_for(id, boost, 1.5, 2.8, 0.8, 1.5, squad);
        emit_product(plan, uniform_times(squad, offset, duration, rng),
                     /*round_values=*/true, rng, out);
      });
      break;
    }
    case StrategyKind::kLowRate: {
      // A trickle: fewer raters, whole window, moderate bias.
      const auto count = static_cast<std::size_t>(
          rng.uniform_int(15, static_cast<std::int64_t>(squad)));
      each_target([&](ProductId id, bool boost) {
        const ProductPlan plan =
            plan_for(id, boost, 1.0, 2.2, 0.2, 0.8, count);
        emit_product(plan, uniform_times(count, 0.0, window_days, rng),
                     /*round_values=*/true, rng, out);
      });
      break;
    }
    case StrategyKind::kBursts: {
      // Several short bursts; each burst uses a slice of the squad.
      const auto bursts =
          static_cast<std::size_t>(rng.uniform_int(2, 4));
      each_target([&](ProductId id, bool boost) {
        std::size_t remaining = squad;
        std::size_t next_rater = 0;
        for (std::size_t b = 0; b < bursts; ++b) {
          const std::size_t count =
              b + 1 == bursts ? remaining : remaining / (bursts - b);
          if (count == 0) continue;
          const double duration = rng.uniform(1.0, 5.0);
          const double offset =
              rng.uniform(0.0, std::max(window_days - duration, 1.0));
          ProductPlan plan = plan_for(id, boost, 1.5, 3.2, 0.1, 0.6, count);
          const std::vector<Day> times =
              uniform_times(count, offset, duration, rng);
          for (std::size_t k = 0; k < count; ++k) {
            rating::Rating r;
            r.time = times[k];
            r.value = std::round(std::clamp(
                rng.gaussian(plan.target_mean, plan.sigma),
                rating::kMinRating, rating::kMaxRating));
            r.rater = challenge_->attacker(next_rater + k);
            r.product = id;
            r.unfair = true;
            out.ratings.push_back(r);
          }
          next_rater += count;
          remaining -= count;
        }
      });
      break;
    }
    case StrategyKind::kCamouflage: {
      // A share of the squad rates honestly (at the fair mean) to launder
      // trust; the rest pushes the bias.
      const double honest_share = rng.uniform(0.2, 0.4);
      const double duration = rng.uniform(30.0, window_days);
      const double offset =
          rng.uniform(0.0, std::max(window_days - duration, 1.0));
      each_target([&](ProductId id, bool boost) {
        const auto honest = static_cast<std::size_t>(
            honest_share * static_cast<double>(squad));
        ProductPlan biased = plan_for(id, boost, 1.8, 3.0, 0.3, 0.9,
                                      squad - honest);
        emit_product(biased,
                     uniform_times(squad - honest, offset, duration, rng),
                     /*round_values=*/true, rng, out);
        // Camouflage ratings sit at the fair mean with natural spread; they
        // still come from attacker-controlled raters.
        const std::vector<Day> times =
            uniform_times(honest, 0.0, window_days, rng);
        for (std::size_t k = 0; k < honest; ++k) {
          rating::Rating r;
          r.time = times[k];
          r.value = std::round(std::clamp(
              rng.gaussian(challenge_->fair_mean(id), 0.7),
              rating::kMinRating, rating::kMaxRating));
          r.rater = challenge_->attacker(squad - honest + k);
          r.product = id;
          r.unfair = true;
          out.ratings.push_back(r);
        }
      });
      break;
    }
    case StrategyKind::kManualJitter: {
      // Hand-tuned look (the survey says most winners hand-edited their
      // data): medium bias/variance, times snapped to evening-ish slots,
      // occasional +-1 star tweaks.
      const double duration = rng.uniform(30.0, 60.0);
      const double offset =
          rng.uniform(0.0, std::max(window_days - duration, 1.0));
      each_target([&](ProductId id, bool boost) {
        const ProductPlan plan =
            plan_for(id, boost, 1.4, 2.6, 0.5, 1.2, squad);
        std::vector<Day> times = uniform_times(squad, offset, duration, rng);
        for (Day& t : times) {
          t = std::floor(t) + 0.75 + rng.uniform(0.0, 0.2);  // evenings
          t = std::clamp(t, challenge_->config().window.begin,
                         std::nextafter(challenge_->config().window.end,
                                        challenge_->config().window.begin));
        }
        std::sort(times.begin(), times.end());
        for (std::size_t k = 0; k < plan.count; ++k) {
          rating::Rating r;
          r.time = times[k];
          double value = std::round(std::clamp(
              rng.gaussian(plan.target_mean, plan.sigma),
              rating::kMinRating, rating::kMaxRating));
          if (rng.bernoulli(0.2)) {
            value = std::clamp(value + (rng.bernoulli(0.5) ? 1.0 : -1.0),
                               rating::kMinRating, rating::kMaxRating);
          }
          r.value = value;
          r.rater = challenge_->attacker(k);
          r.product = id;
          r.unfair = true;
          out.ratings.push_back(r);
        }
      });
      break;
    }
  }
  return out;
}

std::vector<Submission> ParticipantPopulation::generate(std::size_t n) const {
  // Mixture per the paper's Section V-A observations: more than half
  // straightforward, the rest spread over defense-aware strategies.
  const std::vector<std::pair<StrategyKind, double>> mix = {
      {StrategyKind::kNaiveExtreme, 0.28},
      {StrategyKind::kNaiveSpread, 0.18},
      {StrategyKind::kModerateBias, 0.14},
      {StrategyKind::kHighVariance, 0.14},
      {StrategyKind::kLowRate, 0.07},
      {StrategyKind::kBursts, 0.07},
      {StrategyKind::kCamouflage, 0.06},
      {StrategyKind::kManualJitter, 0.06},
  };
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const auto& [kind, w] : mix) weights.push_back(w);

  Rng rng(seed_ ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Submission> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const StrategyKind kind = mix[rng.discrete(weights)].first;
    out.push_back(make(kind, i));
  }
  return out;
}

}  // namespace rab::challenge
