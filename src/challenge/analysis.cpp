#include "challenge/analysis.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace rab::challenge {

PointColor color_of(const VarianceBiasPoint& point) {
  if (point.amp && point.lmp) return PointColor::kRed;
  if (point.amp && point.ump) return PointColor::kBlue;
  if (point.amp) return PointColor::kGreen;
  if (point.lmp) return PointColor::kPink;
  if (point.ump) return PointColor::kCyan;
  return PointColor::kGrey;
}

const char* to_string(PointColor color) {
  switch (color) {
    case PointColor::kGrey:
      return "grey";
    case PointColor::kGreen:
      return "green";
    case PointColor::kPink:
      return "pink";
    case PointColor::kCyan:
      return "cyan";
    case PointColor::kRed:
      return "red";
    case PointColor::kBlue:
      return "blue";
  }
  return "unknown";
}

namespace {

/// Marks `flag` on the `top_k` points with the largest `score` among those
/// passing `eligible`.
template <typename Score, typename Eligible, typename Mark>
void mark_top(std::vector<VarianceBiasPoint>& points, std::size_t top_k,
              Score score, Eligible eligible, Mark mark) {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (eligible(points[i])) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return score(points[a]) > score(points[b]);
  });
  for (std::size_t i = 0; i < std::min(top_k, order.size()); ++i) {
    mark(points[order[i]]);
  }
}

}  // namespace

std::vector<VarianceBiasPoint> analyze_population(
    const Challenge& challenge, const std::vector<Submission>& population,
    const aggregation::AggregationScheme& scheme,
    const AnalysisOptions& options) {
  RAB_EXPECTS(challenge.fair().has_product(options.product));
  const double fair_mean = challenge.fair_mean(options.product);

  // Each submission's MP evaluation is independent; sweep the population
  // over the pool, filling per-index slots (deterministic at any thread
  // count — challenge.evaluate is a pure function of the submission).
  std::vector<VarianceBiasPoint> points(population.size());
  util::parallel_for(population.size(), [&](std::size_t i) {
    const Submission& submission = population[i];
    const MpResult mp = challenge.evaluate(submission, scheme);
    const ValueStats stats =
        value_stats(submission, options.product, fair_mean);

    VarianceBiasPoint& point = points[i];
    point.index = i;
    point.label = submission.label;
    point.bias = stats.bias;
    point.stddev = stats.stddev;
    point.overall_mp = mp.overall;
    const auto it = mp.per_product.find(options.product);
    point.product_mp = it == mp.per_product.end() ? 0.0 : it->second;
  });

  mark_top(
      points, options.top_k,
      [](const VarianceBiasPoint& p) { return p.overall_mp; },
      [](const VarianceBiasPoint&) { return true; },
      [](VarianceBiasPoint& p) { p.amp = true; });
  mark_top(
      points, options.top_k,
      [](const VarianceBiasPoint& p) { return p.product_mp; },
      [](const VarianceBiasPoint& p) { return p.bias < 0.0; },
      [](VarianceBiasPoint& p) { p.lmp = true; });
  mark_top(
      points, options.top_k,
      [](const VarianceBiasPoint& p) { return p.product_mp; },
      [](const VarianceBiasPoint& p) { return p.bias > 0.0; },
      [](VarianceBiasPoint& p) { p.ump = true; });
  return points;
}

std::vector<std::size_t> top_overall(
    const std::vector<VarianceBiasPoint>& points, std::size_t top_k) {
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return points[a].overall_mp > points[b].overall_mp;
  });
  order.resize(std::min(top_k, order.size()));
  return order;
}

}  // namespace rab::challenge
