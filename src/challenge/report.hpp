// Markdown analysis report for a rating dataset.
//
// One call produces the summary an operator wants on their desk: per-
// product aggregate trajectories under the P-scheme, how many ratings the
// pipeline flagged, the least trusted raters, and any collusion-group
// candidates. The CLI's `report` command and downstream dashboards render
// this directly.
#pragma once

#include <iosfwd>
#include <string>

#include "aggregation/p_scheme.hpp"
#include "rating/dataset.hpp"

namespace rab::challenge {

struct ReportOptions {
  double bin_days = 30.0;
  std::size_t max_listed_raters = 15;  ///< least-trusted raters listed
  double trust_threshold = 0.5;        ///< list raters below this trust
  aggregation::PConfig scheme;         ///< P-scheme configuration to run
};

/// Analyzes `data` with the P-scheme and writes a markdown report.
void write_markdown_report(std::ostream& out, const rating::Dataset& data,
                           const ReportOptions& options = {});

/// Convenience: report as a string.
std::string markdown_report(const rating::Dataset& data,
                            const ReportOptions& options = {});

}  // namespace rab::challenge
