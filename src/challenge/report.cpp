#include "challenge/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

#include "challenge/collusion.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::challenge {

void write_markdown_report(std::ostream& out, const rating::Dataset& data,
                           const ReportOptions& options) {
  RAB_EXPECTS(options.bin_days > 0.0);
  out << "# Rating dataset analysis\n\n";

  const Interval span = data.span();
  out << "- products: " << data.product_count() << "\n"
      << "- ratings: " << data.total_ratings() << "\n"
      << "- raters: " << data.rater_ids().size() << "\n"
      << "- time span: [" << span.begin << ", " << span.end << ") days\n\n";
  if (data.total_ratings() == 0) {
    out << "_Empty dataset: nothing to analyze._\n";
    return;
  }

  // Run the full P-scheme pipeline once.
  const aggregation::PScheme scheme(options.scheme);
  aggregation::PDiagnostics diagnostics;
  const aggregation::AggregateSeries series =
      scheme.aggregate_detailed(data, options.bin_days, &diagnostics);

  out << "## Aggregates (P-scheme, " << options.bin_days
      << "-day bins)\n\n";
  out << "| product | mean | bins | flagged | removed |\n";
  out << "|---|---|---|---|---|\n";
  for (ProductId id : data.product_ids()) {
    const aggregation::ProductSeries& points = series.of(id);
    stats::Welford mean_acc;
    std::size_t removed = 0;
    for (const aggregation::AggregatePoint& p : points) {
      if (p.used > 0) mean_acc.add(p.value);
      removed += p.removed;
    }
    const auto& integration = diagnostics.integration.at(id);
    out << "| " << id.value() << " | " << mean_acc.mean() << " | "
        << points.size() << " | " << integration.suspicious_count()
        << " | " << removed << " |\n";
  }
  out << "\n";

  // Least trusted raters.
  struct Row {
    RaterId rater;
    double trust;
  };
  std::vector<Row> rows;
  for (RaterId rater : data.rater_ids()) {
    const double trust = diagnostics.trust.trust(rater);
    if (trust < options.trust_threshold) rows.push_back(Row{rater, trust});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.trust < b.trust; });

  out << "## Raters below trust " << options.trust_threshold << "\n\n";
  if (rows.empty()) {
    out << "_None._\n\n";
  } else {
    out << "| rater | trust |\n|---|---|\n";
    for (std::size_t i = 0;
         i < std::min(rows.size(), options.max_listed_raters); ++i) {
      out << "| " << rows[i].rater.value() << " | " << rows[i].trust
          << " |\n";
    }
    if (rows.size() > options.max_listed_raters) {
      out << "\n_(" << rows.size() - options.max_listed_raters
          << " more not listed)_\n";
    }
    out << "\n";
  }

  // Collusion groups.
  const auto groups = find_collusion_groups(data);
  out << "## Collusion-group candidates\n\n";
  if (groups.empty()) {
    out << "_None found._\n";
  } else {
    out << "| size | mean pair score | sample raters |\n|---|---|---|\n";
    for (const CollusionGroup& group : groups) {
      out << "| " << group.raters.size() << " | " << group.mean_pair_score
          << " | ";
      for (std::size_t i = 0;
           i < std::min<std::size_t>(5, group.raters.size()); ++i) {
        out << group.raters[i].value() << ' ';
      }
      if (group.raters.size() > 5) out << "...";
      out << " |\n";
    }
  }
}

std::string markdown_report(const rating::Dataset& data,
                            const ReportOptions& options) {
  std::ostringstream out;
  write_markdown_report(out, data, options);
  return out.str();
}

}  // namespace rab::challenge
