#include "challenge/mp.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace rab::challenge {

double top_two_sum(const std::vector<double>& deltas) {
  double max1 = 0.0;
  double max2 = 0.0;
  for (double d : deltas) {
    RAB_EXPECTS(d >= 0.0);
    if (d > max1) {
      max2 = max1;
      max1 = d;
    } else if (d > max2) {
      max2 = d;
    }
  }
  return max1 + max2;
}

MpMetric::MpMetric(rating::Dataset fair, double bin_days)
    : fair_(std::move(fair)),
      bin_days_(bin_days),
      baselines_(std::make_shared<BaselineCache>()) {
  RAB_EXPECTS(bin_days_ > 0.0);
  RAB_EXPECTS(fair_.total_ratings() > 0);
}

const aggregation::AggregateSeries& MpMetric::fair_series(
    const aggregation::AggregationScheme& scheme) const {
  const std::string key = scheme.identity();
  {
    const std::lock_guard<std::mutex> lock(baselines_->mutex);
    const auto it = baselines_->series.find(key);
    if (it != baselines_->series.end()) return it->second;
  }
  // Aggregate outside the lock: concurrent first evaluations of one scheme
  // may duplicate the work, but never block each other behind it. The first
  // finisher's series wins; later ones are discarded by try_emplace.
  aggregation::AggregateSeries computed = scheme.aggregate(fair_, bin_days_);
  const std::lock_guard<std::mutex> lock(baselines_->mutex);
  return baselines_->series.try_emplace(key, std::move(computed))
      .first->second;
}

MpResult MpMetric::compare_series(
    const aggregation::AggregateSeries& baseline,
    const aggregation::AggregateSeries& attacked) const {
  MpResult result;
  for (ProductId id : fair_.product_ids()) {
    const aggregation::ProductSeries& fair_points = baseline.of(id);
    const aggregation::ProductSeries& attack_points = attacked.of(id);
    RAB_EXPECTS(attack_points.size() == fair_points.size());

    std::vector<double> deltas;
    deltas.reserve(fair_points.size());
    for (std::size_t i = 0; i < fair_points.size(); ++i) {
      if (fair_points[i].used == 0 || attack_points[i].used == 0) {
        deltas.push_back(0.0);
        continue;
      }
      deltas.push_back(
          std::fabs(attack_points[i].value - fair_points[i].value));
    }
    const double mp = top_two_sum(deltas);
    result.per_product.emplace(id, mp);
    result.deltas.emplace(id, std::move(deltas));
    result.overall += mp;
  }
  return result;
}

MpResult MpMetric::evaluate(
    const Submission& submission,
    const aggregation::AggregationScheme& scheme) const {
  const rating::DatasetOverlay overlay(fair_, submission.ratings);
  // Bin boundaries derive from the dataset span; unfair ratings must not
  // extend it or with/without bins would disagree.
  const Interval fair_span = fair_.span();
  const Interval overlay_span = overlay.span();
  RAB_EXPECTS(overlay_span.begin >= fair_span.begin &&
              overlay_span.end <= fair_span.end);

  const aggregation::AggregateSeries& baseline = fair_series(scheme);
  return compare_series(
      baseline, scheme.aggregate_overlay(overlay, bin_days_, &baseline));
}

double MpMetric::evaluate_overall(
    const Submission& submission,
    const aggregation::AggregationScheme& scheme) const {
  const rating::DatasetOverlay overlay(fair_, submission.ratings);
  const Interval fair_span = fair_.span();
  const Interval overlay_span = overlay.span();
  RAB_EXPECTS(overlay_span.begin >= fair_span.begin &&
              overlay_span.end <= fair_span.end);

  const aggregation::AggregateSeries& baseline = fair_series(scheme);
  const aggregation::AggregateSeries series =
      scheme.aggregate_overlay(overlay, bin_days_, &baseline);

  // Track the two largest deltas per product in place — no per-bin delta
  // vectors, no result maps.
  double overall = 0.0;
  for (ProductId id : fair_.product_ids()) {
    const aggregation::ProductSeries& fair_points = baseline.of(id);
    const aggregation::ProductSeries& attack_points = series.of(id);
    RAB_EXPECTS(attack_points.size() == fair_points.size());
    double max1 = 0.0;
    double max2 = 0.0;
    for (std::size_t i = 0; i < fair_points.size(); ++i) {
      if (fair_points[i].used == 0 || attack_points[i].used == 0) continue;
      const double d =
          std::fabs(attack_points[i].value - fair_points[i].value);
      if (d > max1) {
        max2 = max1;
        max1 = d;
      } else if (d > max2) {
        max2 = d;
      }
    }
    overall += max1 + max2;
  }
  return overall;
}

MpResult MpMetric::evaluate_dataset(
    const rating::Dataset& attacked,
    const aggregation::AggregationScheme& scheme) const {
  // Bin boundaries derive from the dataset span; unfair ratings must not
  // extend it or with/without bins would disagree.
  const Interval fair_span = fair_.span();
  const Interval attacked_span = attacked.span();
  RAB_EXPECTS(attacked_span.begin >= fair_span.begin &&
              attacked_span.end <= fair_span.end);

  return compare_series(fair_series(scheme),
                        scheme.aggregate(attacked, bin_days_));
}

}  // namespace rab::challenge
