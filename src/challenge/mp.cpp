#include "challenge/mp.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rab::challenge {

double top_two_sum(const std::vector<double>& deltas) {
  double max1 = 0.0;
  double max2 = 0.0;
  for (double d : deltas) {
    if (d > max1) {
      max2 = max1;
      max1 = d;
    } else if (d > max2) {
      max2 = d;
    }
  }
  return max1 + max2;
}

MpMetric::MpMetric(rating::Dataset fair, double bin_days)
    : fair_(std::move(fair)), bin_days_(bin_days) {
  RAB_EXPECTS(bin_days_ > 0.0);
  RAB_EXPECTS(fair_.total_ratings() > 0);
}

const aggregation::AggregateSeries& MpMetric::fair_series(
    const aggregation::AggregationScheme& scheme) const {
  const auto it = fair_cache_.find(scheme.name());
  if (it != fair_cache_.end()) return it->second;
  return fair_cache_
      .emplace(scheme.name(), scheme.aggregate(fair_, bin_days_))
      .first->second;
}

MpResult MpMetric::evaluate(
    const Submission& submission,
    const aggregation::AggregationScheme& scheme) const {
  return evaluate_dataset(fair_.with_added(submission.ratings), scheme);
}

MpResult MpMetric::evaluate_dataset(
    const rating::Dataset& attacked,
    const aggregation::AggregationScheme& scheme) const {
  // Bin boundaries derive from the dataset span; unfair ratings must not
  // extend it or with/without bins would disagree.
  const Interval fair_span = fair_.span();
  const Interval attacked_span = attacked.span();
  RAB_EXPECTS(attacked_span.begin >= fair_span.begin &&
              attacked_span.end <= fair_span.end);

  const aggregation::AggregateSeries& baseline = fair_series(scheme);
  const aggregation::AggregateSeries series =
      scheme.aggregate(attacked, bin_days_);

  MpResult result;
  for (ProductId id : fair_.product_ids()) {
    const aggregation::ProductSeries& fair_points = baseline.of(id);
    const aggregation::ProductSeries& attack_points = series.of(id);
    RAB_EXPECTS(attack_points.size() == fair_points.size());

    std::vector<double> deltas;
    deltas.reserve(fair_points.size());
    for (std::size_t i = 0; i < fair_points.size(); ++i) {
      if (fair_points[i].used == 0 || attack_points[i].used == 0) {
        deltas.push_back(0.0);
        continue;
      }
      deltas.push_back(
          std::fabs(attack_points[i].value - fair_points[i].value));
    }
    const double mp = top_two_sum(deltas);
    result.per_product.emplace(id, mp);
    result.deltas.emplace(id, std::move(deltas));
    result.overall += mp;
  }
  return result;
}

}  // namespace rab::challenge
