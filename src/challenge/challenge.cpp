#include "challenge/challenge.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::challenge {

const char* to_string(Violation v) {
  switch (v) {
    case Violation::kNone:
      return "none";
    case Violation::kEmptySubmission:
      return "empty submission";
    case Violation::kValueOutOfRange:
      return "rating value out of range";
    case Violation::kTimeOutsideWindow:
      return "rating time outside the challenge window";
    case Violation::kUntargetedProduct:
      return "rating for a product that is not a challenge target";
    case Violation::kTooManyRaters:
      return "more distinct raters than the challenge allows";
    case Violation::kDuplicateProductRating:
      return "a rater rated the same product more than once";
  }
  return "unknown violation";
}

Challenge::Challenge(rating::Dataset fair, ChallengeConfig config)
    : config_(std::move(config)), metric_(std::move(fair), config_.bin_days) {
  RAB_EXPECTS(config_.attack_raters >= 1);
  RAB_EXPECTS(!config_.boost_targets.empty() ||
              !config_.downgrade_targets.empty());
  for (ProductId id : targets()) {
    RAB_EXPECTS(metric_.fair().has_product(id));
  }
  if (config_.window.empty()) {
    const Interval span = metric_.fair().span();
    // Default: the challenge runs over the trailing ~82 days (Apr 25 to
    // Jul 15, 2007, in the original) of the fair history.
    config_.window = Interval{std::max(span.begin, span.end - 82.0),
                              span.end};
  }
}

Challenge Challenge::make_default(std::uint64_t seed) {
  rating::FairDataConfig fair_config;
  fair_config.seed = seed;
  return Challenge(rating::FairDataGenerator(fair_config).generate());
}

std::vector<ProductId> Challenge::targets() const {
  std::vector<ProductId> out = config_.boost_targets;
  out.insert(out.end(), config_.downgrade_targets.begin(),
             config_.downgrade_targets.end());
  return out;
}

double Challenge::fair_mean(ProductId id) const {
  return stats::mean(metric_.fair().product(id).values());
}

Violation Challenge::validate(const Submission& submission) const {
  if (submission.empty()) return Violation::kEmptySubmission;

  const std::vector<ProductId> allowed = targets();
  std::set<RaterId> raters;
  std::set<std::pair<RaterId, ProductId>> rated;
  for (const rating::Rating& r : submission.ratings) {
    if (r.value < rating::kMinRating || r.value > rating::kMaxRating) {
      return Violation::kValueOutOfRange;
    }
    if (!config_.window.contains(r.time)) {
      return Violation::kTimeOutsideWindow;
    }
    if (std::find(allowed.begin(), allowed.end(), r.product) ==
        allowed.end()) {
      return Violation::kUntargetedProduct;
    }
    raters.insert(r.rater);
    if (!rated.emplace(r.rater, r.product).second) {
      return Violation::kDuplicateProductRating;
    }
  }
  if (raters.size() > config_.attack_raters) {
    return Violation::kTooManyRaters;
  }
  return Violation::kNone;
}

MpResult Challenge::evaluate(
    const Submission& submission,
    const aggregation::AggregationScheme& scheme) const {
  const Violation v = validate(submission);
  if (v != Violation::kNone) {
    std::ostringstream msg;
    msg << "Challenge: invalid submission '" << submission.label
        << "': " << to_string(v);
    throw InvalidArgument(msg.str());
  }
  return metric_.evaluate(submission, scheme);
}

double Challenge::evaluate_overall(
    const Submission& submission,
    const aggregation::AggregationScheme& scheme) const {
  const Violation v = validate(submission);
  if (v != Violation::kNone) {
    std::ostringstream msg;
    msg << "Challenge: invalid submission '" << submission.label
        << "': " << to_string(v);
    throw InvalidArgument(msg.str());
  }
  return metric_.evaluate_overall(submission, scheme);
}

rating::Dataset Challenge::apply(const Submission& submission) const {
  return metric_.fair().with_added(submission.ratings);
}

RaterId Challenge::attacker(std::size_t k) const {
  RAB_EXPECTS(k < config_.attack_raters);
  return RaterId(config_.attacker_id_base + static_cast<std::int64_t>(k));
}

}  // namespace rab::challenge
