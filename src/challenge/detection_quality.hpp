// Detection quality of a defense against a ground-truth attack.
//
// The MP metric scores the *attacker*; defense designers also want the
// defender's view: of the unfair ratings, how many were flagged (recall),
// and of the flagged ratings, how many were actually unfair (precision).
// Works for any scheme that exposes per-rating suspicion — here the
// P-scheme's diagnostics.
#pragma once

#include <map>

#include "aggregation/p_scheme.hpp"
#include "challenge/challenge.hpp"
#include "challenge/submission.hpp"

namespace rab::challenge {

/// Confusion counts for one product (or aggregated).
struct DetectionCounts {
  std::size_t true_positives = 0;   ///< unfair and flagged
  std::size_t false_negatives = 0;  ///< unfair, missed
  std::size_t false_positives = 0;  ///< fair but flagged
  std::size_t true_negatives = 0;   ///< fair, untouched

  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double false_positive_rate() const;
  [[nodiscard]] double f1() const;

  DetectionCounts& operator+=(const DetectionCounts& other);
};

/// Per-product and overall confusion counts.
struct DetectionQuality {
  std::map<ProductId, DetectionCounts> per_product;
  DetectionCounts overall;
};

/// Applies `submission` to the challenge's fair data, runs the P-scheme's
/// detection pipeline, and scores the suspicion flags against the ground
/// truth carried by the ratings.
DetectionQuality evaluate_detection(const Challenge& challenge,
                                    const Submission& submission,
                                    const aggregation::PScheme& scheme);

}  // namespace rab::challenge
