// Coordinated attack squads (the collusion scenario's attack side).
//
// Where core/attack_generator.cpp models *independent* unfair raters (the
// paper's Procedure-2 search space), SquadGenerator models the coordinated
// behaviors the paper's threat model anticipates and Zhang's advisor-
// cheating taxonomy catalogs (PAPERS.md): a squad that
//   - builds trust first: an honest pre-rating phase at the fair mean
//     before the strike, so trust-based defenses meet the squad with
//     above-initial trust;
//   - strikes in a window: every member pushes the bias on every target
//     inside [strike_offset, strike_offset + strike_days];
//   - churns Sybil identities: members retire mid-strike and continue
//     under fresh rater ids, splitting their footprint across identities
//     so per-rater evidence (trust, collusion links) dilutes;
//   - oscillates/camouflages: each strike rating pushes the bias only with
//     probability duty_cycle and rates honestly otherwise, trading attack
//     mass for detectability.
//
// Generation is serial and seeded (one Rng fork per member), so a squad is
// bit-identical for a given (seed, config, stream) at any RAB_THREADS.
// Submissions stay inside the challenge window — the DatasetOverlay /
// MpMetric zero-copy path requires attack ratings within the fair span —
// but they deliberately break the *contest* rules (a member rates a target
// in both phases; churn exceeds the rater budget), so score squads with
// Challenge::metric().evaluate_overall, not Challenge::evaluate.
#pragma once

#include <cstdint>

#include "challenge/challenge.hpp"
#include "challenge/submission.hpp"

namespace rab::challenge {

struct SquadConfig {
  std::size_t squad_size = 50;
  /// Honest pre-rating phase: its length from the window start (0 = no
  /// phase) and how many fair-mean ratings each member leaves per target.
  double pre_days = 0.0;
  std::size_t pre_ratings = 1;
  /// Strike window, relative to the challenge window start; clamped to
  /// the window end.
  double strike_offset_days = 40.0;
  double strike_days = 30.0;
  /// Value model of a strike rating, AttackProfile conventions: bias in
  /// downgrade sign (boost targets mirror it into their headroom above
  /// the fair mean), gaussian spread sigma, optional whole-star rounding.
  double bias = -2.0;
  double sigma = 0.5;
  bool discrete_values = true;
  /// Per-member probability of retiring mid-strike and continuing under a
  /// fresh Sybil id (one fresh id per churned member).
  double churn_rate = 0.0;
  /// Probability a strike rating actually pushes the bias; the rest
  /// camouflage at the fair mean (1.0 = always strike).
  double duty_cycle = 1.0;
};

class SquadGenerator {
 public:
  /// Borrows the challenge (must outlive the generator).
  SquadGenerator(const Challenge& challenge, std::uint64_t seed);

  /// Builds one squad submission realizing `config`; `stream`
  /// individualizes the draws so repeated calls give independent squads.
  [[nodiscard]] Submission generate(const SquadConfig& config,
                                    std::uint64_t stream) const;

  [[nodiscard]] const Challenge& challenge() const { return *challenge_; }

 private:
  const Challenge* challenge_;
  std::uint64_t seed_;
};

}  // namespace rab::challenge
