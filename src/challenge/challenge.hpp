// The rating challenge (paper Section III).
//
// Holds the fair dataset and the contest rules: which products to boost,
// which to downgrade, how many biased raters a participant controls, and
// the submission window. Validates submissions against those rules and
// scores them with the MP metric under any aggregation scheme.
#pragma once

#include <vector>

#include "challenge/mp.hpp"
#include "challenge/submission.hpp"
#include "rating/dataset.hpp"
#include "rating/fair_generator.hpp"

namespace rab::challenge {

/// Contest rules. Defaults mirror the paper: 9 products, 50 biased raters,
/// boost two products and downgrade two others, monthly MP bins.
struct ChallengeConfig {
  std::size_t attack_raters = 50;
  std::vector<ProductId> boost_targets{ProductId(2), ProductId(3)};
  std::vector<ProductId> downgrade_targets{ProductId(1), ProductId(4)};
  /// Ratings may only be inserted inside this window (the 2007 challenge ran
  /// ~82 days). Filled from the dataset by Challenge when left empty.
  Interval window{};
  double bin_days = 30.0;
  /// First rater id reserved for attackers (fair raters sit below this).
  std::int64_t attacker_id_base = 1'000'000;
};

/// Why a submission was rejected.
enum class Violation {
  kNone,
  kEmptySubmission,
  kValueOutOfRange,
  kTimeOutsideWindow,
  kUntargetedProduct,
  kTooManyRaters,
  kDuplicateProductRating,  ///< a rater rated the same product twice
};

/// Human-readable name of a violation.
const char* to_string(Violation v);

class Challenge {
 public:
  /// Takes ownership of the fair dataset. If `config.window` is empty it
  /// defaults to the last ~82 days of the fair history.
  Challenge(rating::Dataset fair, ChallengeConfig config = {});

  /// Builds the default challenge: synthetic fair data with `seed`.
  static Challenge make_default(std::uint64_t seed = 20070425);

  [[nodiscard]] const ChallengeConfig& config() const { return config_; }
  [[nodiscard]] const rating::Dataset& fair() const { return metric_.fair(); }
  [[nodiscard]] const MpMetric& metric() const { return metric_; }

  /// All products a submission may rate (boost + downgrade targets).
  [[nodiscard]] std::vector<ProductId> targets() const;

  /// Fair mean value of a product (used by strategies to place bias).
  [[nodiscard]] double fair_mean(ProductId id) const;

  /// Checks a submission against the contest rules.
  [[nodiscard]] Violation validate(const Submission& submission) const;

  /// Scores a submission (validates first; throws InvalidArgument on a rule
  /// violation, naming it).
  [[nodiscard]] MpResult evaluate(
      const Submission& submission,
      const aggregation::AggregationScheme& scheme) const;

  /// Overall MP only (same validation); the fast path for search loops that
  /// compare thousands of submissions and never read the per-product maps.
  [[nodiscard]] double evaluate_overall(
      const Submission& submission,
      const aggregation::AggregationScheme& scheme) const;

  /// The fair dataset with the submission's ratings merged in.
  [[nodiscard]] rating::Dataset apply(const Submission& submission) const;

  /// Rater id of attacker `k` (0-based) — submissions should draw their
  /// rater ids from here so they never collide with fair raters.
  [[nodiscard]] RaterId attacker(std::size_t k) const;

 private:
  ChallengeConfig config_;
  MpMetric metric_;
};

}  // namespace rab::challenge
