// Attack-population analysis (paper Section V-B): scores every submission
// under a scheme and applies the AMP / LMP / UMP top-10 marking used by the
// variance-bias plots (Figures 2-4).
#pragma once

#include <cstddef>
#include <vector>

#include "challenge/challenge.hpp"
#include "challenge/participants.hpp"

namespace rab::challenge {

/// One submission's position on the variance-bias plot plus its marks.
struct VarianceBiasPoint {
  std::size_t index = 0;       ///< into the analyzed population
  std::string label;
  double bias = 0.0;           ///< mean(unfair) - mean(fair), chosen product
  double stddev = 0.0;         ///< std of the unfair values, chosen product
  double overall_mp = 0.0;
  double product_mp = 0.0;     ///< MP gained from the chosen product
  bool amp = false;            ///< top-10 overall MP
  bool lmp = false;            ///< top-10 product MP among negative bias
  bool ump = false;            ///< top-10 product MP among positive bias
};

/// The color code of the paper's scatter plots.
enum class PointColor { kGrey, kGreen, kPink, kCyan, kRed, kBlue };

/// Maps AMP/LMP/UMP flags to the paper's color code (Section V-B).
PointColor color_of(const VarianceBiasPoint& point);
const char* to_string(PointColor color);

struct AnalysisOptions {
  ProductId product{1};   ///< the paper plots product 1
  std::size_t top_k = 10; ///< size of the AMP/LMP/UMP sets
};

/// Scores `population` under `scheme` and computes the marked variance-bias
/// points. Order matches the population.
std::vector<VarianceBiasPoint> analyze_population(
    const Challenge& challenge, const std::vector<Submission>& population,
    const aggregation::AggregationScheme& scheme,
    const AnalysisOptions& options = {});

/// Indices of the `top_k` submissions by overall MP, descending.
std::vector<std::size_t> top_overall(
    const std::vector<VarianceBiasPoint>& points, std::size_t top_k);

}  // namespace rab::challenge
