// Collusion-group discovery — re-exported from the trust layer.
//
// The implementation moved to trust/collusion.hpp so the aggregation
// layer can consume detected groups as a trust discount (see
// aggregation/collusion_guard.hpp) without depending on the challenge
// layer. Attack-side callers keep using rab::challenge::
// find_collusion_groups; the names below are aliases, not copies.
#pragma once

#include "trust/collusion.hpp"

namespace rab::challenge {

using CollusionConfig = trust::CollusionConfig;
using CollusionGroup = trust::CollusionGroup;
using trust::find_collusion_groups;

}  // namespace rab::challenge
