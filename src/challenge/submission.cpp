#include "challenge/submission.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"

namespace rab::challenge {

std::vector<rating::Rating> Submission::for_product(ProductId product) const {
  std::vector<rating::Rating> out;
  for (const rating::Rating& r : ratings) {
    if (r.product == product) out.push_back(r);
  }
  std::sort(out.begin(), out.end(), rating::ByTime{});
  return out;
}

Interval Submission::duration(ProductId product) const {
  const std::vector<rating::Rating> rs = for_product(product);
  if (rs.empty()) return Interval{};
  return Interval{rs.front().time, rs.back().time};
}

double Submission::average_interval(ProductId product) const {
  const std::vector<rating::Rating> rs = for_product(product);
  if (rs.size() < 2) return 0.0;
  const double span = rs.back().time - rs.front().time;
  return span / static_cast<double>(rs.size());
}

ValueStats value_stats(const Submission& submission, ProductId product,
                       double fair_mean) {
  ValueStats out;
  stats::Welford acc;
  for (const rating::Rating& r : submission.for_product(product)) {
    acc.add(r.value);
  }
  out.count = acc.count();
  if (out.count == 0) return out;
  out.bias = acc.mean() - fair_mean;
  out.stddev = acc.stddev();
  return out;
}

}  // namespace rab::challenge
