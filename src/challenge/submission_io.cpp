#include "challenge/submission_io.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace rab::challenge {

namespace {

constexpr const char* kLabelPrefix = "#label ";

void write_ratings(std::ostream& out, const Submission& submission) {
  out << kLabelPrefix << submission.label << '\n';
  for (const rating::Rating& r : submission.ratings) {
    out << r.product.value() << ',' << r.rater.value() << ',' << r.time
        << ',' << r.value << '\n';
  }
  if (!out) throw IoError("submission csv: stream write failed");
}

rating::Rating parse_rating(const csv::Row& row) {
  if (row.size() != 4) {
    std::ostringstream msg;
    msg << "submission csv: expected 4 fields, got " << row.size();
    throw InvalidArgument(msg.str());
  }
  rating::Rating r;
  r.product = ProductId(csv::to_int_in(
      row[0], 0, std::numeric_limits<std::int64_t>::max()));
  r.rater = RaterId(csv::to_int_in(
      row[1], 0, std::numeric_limits<std::int64_t>::max()));
  r.time = csv::to_double(row[2]);
  r.value = csv::to_double(row[3]);
  if (!std::isfinite(r.time) || !std::isfinite(r.value)) {
    throw InvalidArgument(
        "submission csv: non-finite time or value in row for product " +
        row[0]);
  }
  r.unfair = true;
  return r;
}

bool is_label_line(const std::string& line) {
  return line.rfind(kLabelPrefix, 0) == 0;
}

}  // namespace

void write_submission(std::ostream& out, const Submission& submission) {
  write_ratings(out, submission);
}

void write_submission_file(const std::string& path,
                           const Submission& submission) {
  std::ofstream out(path);
  if (!out) throw IoError("write_submission_file: cannot open " + path);
  write_submission(out, submission);
  out.flush();
  if (!out) {
    throw IoError("write_submission_file: write failed (disk full?): " + path);
  }
}

Submission read_submission(std::istream& in) {
  std::vector<Submission> population = read_population(in);
  if (population.size() != 1) {
    throw InvalidArgument(
        "read_submission: expected exactly one submission, got " +
        std::to_string(population.size()));
  }
  return std::move(population.front());
}

Submission read_submission_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("read_submission_file: cannot open " + path);
  return read_submission(in);
}

void write_population(std::ostream& out,
                      const std::vector<Submission>& population) {
  for (const Submission& submission : population) {
    write_ratings(out, submission);
  }
}

std::vector<Submission> read_population(std::istream& in) {
  std::vector<Submission> population;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (is_label_line(line)) {
      Submission s;
      s.label = line.substr(std::string(kLabelPrefix).size());
      population.push_back(std::move(s));
      continue;
    }
    if (line.front() == '#') continue;  // other comments
    if (population.empty()) {
      throw InvalidArgument(
          "submission csv: ratings before any '#label' header");
    }
    population.back().ratings.push_back(
        parse_rating(csv::parse_line(line)));
  }
  return population;
}

}  // namespace rab::challenge
