// Synthetic participant population, standing in for the 251 human
// submissions collected by the 2007 rating challenge (see DESIGN.md).
//
// The paper reports three facts about the humans: more than half submitted
// straightforward attacks that ignore the defense; the rest exploited it in
// varied, sometimes unexpected ways; and most strong submissions were
// hand-made or hand-tuned. The archetypes below span that space — from
// naive extreme-value floods to defense-aware high-variance attacks with
// manual-looking jitter — so the population covers the (bias, variance,
// timing) regions Figures 2-6 analyze.
#pragma once

#include <vector>

#include "challenge/challenge.hpp"
#include "challenge/submission.hpp"
#include "util/rng.hpp"

namespace rab::challenge {

/// Attack strategy archetypes.
enum class StrategyKind {
  kNaiveExtreme,   ///< min/max values, one short burst
  kNaiveSpread,    ///< min/max values spread over the whole window
  kModerateBias,   ///< moderate bias, small spread, ~1 month
  kHighVariance,   ///< medium bias, large spread — the P-scheme beaters
  kLowRate,        ///< few ratings trickled over the whole window
  kBursts,         ///< several short bursts
  kCamouflage,     ///< a slice of honest-looking ratings mixed in
  kManualJitter,   ///< hand-tuned look: snapped times, jittered values
};

const char* to_string(StrategyKind kind);

/// All archetypes, in enum order.
std::vector<StrategyKind> all_strategies();

/// Generates submissions for a challenge.
class ParticipantPopulation {
 public:
  ParticipantPopulation(const Challenge& challenge, std::uint64_t seed);

  /// One submission of the given archetype; `stream` individualizes it.
  [[nodiscard]] Submission make(StrategyKind kind,
                                std::uint64_t stream) const;

  /// A population of `n` submissions with the paper's reported mix: more
  /// than half straightforward, the rest defense-aware.
  [[nodiscard]] std::vector<Submission> generate(std::size_t n = 251) const;

 private:
  struct ProductPlan {
    ProductId product;
    double target_mean = 0.0;  ///< center of the unfair value distribution
    double sigma = 0.0;        ///< spread before clamping/rounding
    std::size_t count = 0;     ///< how many raters rate this product
  };

  /// Builds the ratings for one product given the value/timing plan.
  void emit_product(const ProductPlan& plan,
                    const std::vector<Day>& times, bool round_values,
                    Rng& rng, Submission& out) const;

  /// `count` times inside [window.begin + offset, +duration], uniform.
  [[nodiscard]] std::vector<Day> uniform_times(std::size_t count,
                                               double offset,
                                               double duration,
                                               Rng& rng) const;

  const Challenge* challenge_;
  std::uint64_t seed_;
};

}  // namespace rab::challenge
