// CSV persistence for attack submissions.
//
// Interchange format for sharing attack datasets (what the 2007 challenge
// collected as "submissions"): one rating per row —
//     product,rater,time,value
// prefixed by a '#label <name>' comment carrying the submission label.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "challenge/submission.hpp"

namespace rab::challenge {

/// Writes one submission (all ratings are unfair by definition).
void write_submission(std::ostream& out, const Submission& submission);
void write_submission_file(const std::string& path,
                           const Submission& submission);

/// Reads one submission previously written by write_submission. Throws
/// rab::Error on malformed input.
Submission read_submission(std::istream& in);
Submission read_submission_file(const std::string& path);

/// Writes a whole population into one stream (submissions separated by
/// their '#label' headers).
void write_population(std::ostream& out,
                      const std::vector<Submission>& population);

/// Reads a population written by write_population.
std::vector<Submission> read_population(std::istream& in);

}  // namespace rab::challenge
