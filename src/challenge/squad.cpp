#include "challenge/squad.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::challenge {

namespace {

double clamp_value(double value, bool discrete) {
  if (discrete) value = std::round(value);
  return std::clamp(value, rating::kMinRating, rating::kMaxRating);
}

/// Uniform draw that tolerates a degenerate [lo, lo] window.
double uniform_in(Rng& rng, double lo, double hi) {
  return hi > lo ? rng.uniform(lo, hi) : lo;
}

}  // namespace

SquadGenerator::SquadGenerator(const Challenge& challenge,
                               std::uint64_t seed)
    : challenge_(&challenge), seed_(seed) {}

Submission SquadGenerator::generate(const SquadConfig& config,
                                    std::uint64_t stream) const {
  RAB_EXPECTS(config.squad_size >= 1);
  RAB_EXPECTS(config.pre_days >= 0.0);
  RAB_EXPECTS(config.strike_days > 0.0);
  RAB_EXPECTS(config.sigma >= 0.0);
  RAB_EXPECTS(config.churn_rate >= 0.0 && config.churn_rate <= 1.0);
  RAB_EXPECTS(config.duty_cycle >= 0.0 && config.duty_cycle <= 1.0);

  const Interval window = challenge_->config().window;
  const double pre_end =
      std::min(window.begin + config.pre_days, window.end);
  const double strike_begin = std::clamp(
      window.begin + config.strike_offset_days, window.begin, window.end);
  const double strike_end =
      std::min(strike_begin + config.strike_days, window.end);
  const std::vector<ProductId> targets = challenge_->targets();
  const auto is_boost = [&](ProductId id) {
    const auto& boosts = challenge_->config().boost_targets;
    return std::find(boosts.begin(), boosts.end(), id) != boosts.end();
  };

  Submission out;
  {
    std::ostringstream label;
    label << "squad(n=" << config.squad_size << ",pre=" << config.pre_days
          << ",churn=" << config.churn_rate
          << ",duty=" << config.duty_cycle << ')';
    out.label = label.str();
  }

  const Rng root = Rng(seed_).fork(0x50aad000ULL + stream);
  for (std::size_t k = 0; k < config.squad_size; ++k) {
    // One substream per member: adding members, or reordering the loops
    // below, never perturbs another member's draws.
    Rng rng = root.fork(k + 1);
    const RaterId persona = challenge_->attacker(k);

    // Trust-building phase: honest ratings at the fair mean, natural
    // spread, spread over the phase.
    if (config.pre_days > 0.0) {
      for (ProductId target : targets) {
        for (std::size_t j = 0; j < config.pre_ratings; ++j) {
          rating::Rating r;
          r.time = uniform_in(rng, window.begin, pre_end);
          r.value = clamp_value(
              rng.gaussian(challenge_->fair_mean(target), 0.7),
              config.discrete_values);
          r.rater = persona;
          r.product = target;
          r.unfair = true;  // attacker-controlled, whatever the value says
          out.ratings.push_back(r);
        }
      }
    }

    // Sybil churn: a churning member retires at switch_time and continues
    // under one fresh id, so its footprint splits mid-stream.
    const bool churns = rng.bernoulli(config.churn_rate);
    const double switch_time =
        churns ? uniform_in(rng, strike_begin, strike_end)
               : std::numeric_limits<double>::infinity();
    // Fresh ids live past the contest's rater budget on purpose —
    // Challenge::attacker() enforces that budget, so mint directly.
    const RaterId sybil =
        RaterId(challenge_->config().attacker_id_base +
                static_cast<std::int64_t>(config.squad_size + k));

    // Strike: one rating per target per member inside the strike window.
    for (ProductId target : targets) {
      const double fair = challenge_->fair_mean(target);
      // Downgrade-sign bias, mirrored into the (smaller) headroom above
      // the fair mean for boost targets — AttackGenerator's convention.
      const double push =
          is_boost(target)
              ? std::min(-config.bias, rating::kMaxRating - fair)
              : config.bias;
      rating::Rating r;
      r.time = uniform_in(rng, strike_begin, strike_end);
      const bool strike_now = rng.bernoulli(config.duty_cycle);
      const double mean = strike_now ? fair + push : fair;
      r.value =
          clamp_value(rng.gaussian(mean, strike_now ? config.sigma : 0.7),
                      config.discrete_values);
      r.rater = r.time >= switch_time ? sybil : persona;
      r.product = target;
      r.unfair = true;
      out.ratings.push_back(r);
    }
  }
  return out;
}

}  // namespace rab::challenge
