// SA-scheme: simple averaging with no unfair-rating detection
// (paper Section V-A). The weakest baseline — every rating counts equally.
#pragma once

#include "aggregation/scheme.hpp"

namespace rab::aggregation {

class SaScheme final : public AggregationScheme {
 public:
  [[nodiscard]] std::string name() const override { return "SA"; }

  [[nodiscard]] AggregateSeries aggregate(const rating::Dataset& data,
                                          double bin_days) const override;

  [[nodiscard]] AggregateSeries aggregate_overlay(
      const rating::DatasetOverlay& data, double bin_days,
      const AggregateSeries* fair_baseline) const override;
};

}  // namespace rab::aggregation
