// P-scheme: the paper's proposed signal-based reliable rating aggregation
// system (Section IV).
//
// Pipeline per Section IV-A:
//   1. run the four detectors over each product's raw stream,
//   2. integrate them (Figure 1) into per-rating suspicion marks,
//   3. update rater trust epoch by epoch with Procedure 1,
//   4. remove highly suspicious ratings and combine the rest with the
//      trust-weighted average of Eq. (7):
//          R_ag = sum_i r_i * max(T_i - 0.5, 0) / sum_i max(T_i - 0.5, 0)
//
// Because the MC detector's moderate-change condition itself consumes trust,
// the scheme optionally iterates detection and trust calculation (two passes
// by default): pass 1 detects with everyone at the initial trust 0.5, pass 2
// re-detects with the learned trust.
#pragma once

#include <functional>
#include <memory>

#include "aggregation/scheme.hpp"
#include "detectors/integrator.hpp"
#include "trust/trust_manager.hpp"

namespace rab::aggregation {

struct PConfig {
  detectors::DetectorConfig detectors;
  detectors::DetectorToggles toggles;
  std::size_t passes = 2;          ///< detect/trust iterations (>= 1)
  bool remove_suspicious = true;   ///< the rating filter of Section IV-A
  /// The filter removes only *highly* suspicious ratings: marked by the
  /// detectors AND from a rater whose trust has fallen below this value.
  /// Section IV-G is explicit that suspicious intervals inevitably sweep up
  /// fair ratings, so blanket removal would distort the aggregate upward;
  /// honest raters keep enough trust that their swept-up ratings survive.
  double removal_trust = 0.6;
  double trust_epoch_days = 30.0;  ///< t_hat spacing of Procedure 1
  /// Forgetting factor applied to the S/F counts at every trust epoch
  /// (Jøsang's beta reputation discounting). 1.0 = never forget.
  double trust_forgetting = 1.0;

  /// Detector-result cache bounds (see detectors::IntegrationCache).
  /// Caching never changes results — these are perf/memory knobs only, so
  /// they do not participate in identity(). cache_streams = 0 disables
  /// caching entirely (every aggregate re-runs the full detector bank; the
  /// benches use this as the pre-cache baseline).
  std::size_t cache_streams = 64;
  std::size_t cache_variants = 8;
};

/// Per-product diagnostics from the final detection pass.
struct PDiagnostics {
  std::map<ProductId, detectors::IntegrationResult> integration;
  trust::TrustManager trust;  ///< final trust state
};

class PScheme final : public AggregationScheme {
 public:
  explicit PScheme(PConfig config = {});

  [[nodiscard]] std::string name() const override { return "P"; }

  [[nodiscard]] std::string identity() const override;

  [[nodiscard]] AggregateSeries aggregate(const rating::Dataset& data,
                                          double bin_days) const override;

  [[nodiscard]] AggregateSeries aggregate_overlay(
      const rating::DatasetOverlay& data, double bin_days,
      const AggregateSeries* fair_baseline) const override;

  /// Like aggregate() but also returns detector output and trust state.
  [[nodiscard]] AggregateSeries aggregate_detailed(
      const rating::Dataset& data, double bin_days,
      PDiagnostics* diagnostics) const;

  [[nodiscard]] const PConfig& config() const { return config_; }

  /// Hit/miss counters of the detector-result cache (see result_cache.hpp).
  [[nodiscard]] detectors::IntegrationCache::Stats cache_stats() const;

 private:
  PConfig config_;
  /// Memoizes per-product detector analysis across aggregate calls —
  /// the MP hot loop re-analyzes mostly-identical streams thousands of
  /// times. Mutable because caching never changes observable results
  /// (analyze_cached is bit-identical to analyze); internally locked, so
  /// concurrent aggregation through one scheme instance is safe. Null when
  /// config_.cache_streams == 0 (caching disabled).
  mutable std::unique_ptr<detectors::IntegrationCache> cache_;
};

}  // namespace rab::aggregation
