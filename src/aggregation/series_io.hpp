// CSV export for aggregated rating series — the format the plots in
// EXPERIMENTS.md are drawn from: one row per (product, bin) with the
// aggregate value and the filter counters.
#pragma once

#include <iosfwd>
#include <string>

#include "aggregation/scheme.hpp"

namespace rab::aggregation {

/// Writes `series` as CSV: product,bin_begin,bin_end,value,used,removed.
void write_series_csv(std::ostream& out, const AggregateSeries& series);
void write_series_csv_file(const std::string& path,
                           const AggregateSeries& series);

/// Writes two series side by side (e.g. fair baseline vs attacked) plus
/// the per-bin |delta| — the raw material of the MP metric. The series
/// must cover the same products and bins.
void write_delta_csv(std::ostream& out, const AggregateSeries& baseline,
                     const AggregateSeries& attacked);

}  // namespace rab::aggregation
