#include "aggregation/p_scheme.hpp"

#include <algorithm>
#include <unordered_map>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace rab::aggregation {

namespace {

/// Trust time series per rater: trust value after each epoch update.
/// Rebuilt chronologically so each bin's aggregation sees the trust state
/// as of that bin's epoch (Procedure 1).
struct EpochTrust {
  trust::TrustManager manager;

  explicit EpochTrust(double forgetting)
      : manager(forgetting) {}

  /// Folds one epoch: per-rater (ratings, suspicious) counts over `bin` for
  /// every product, read from the suspicion flags. Older evidence decays
  /// first when a forgetting factor is configured.
  void fold_epoch(
      const rating::Dataset& data,
      const std::map<ProductId, detectors::IntegrationResult>& integration,
      const Interval& bin) {
    manager.decay();
    std::unordered_map<RaterId, trust::EpochCounts> epoch;
    for (ProductId id : data.product_ids()) {
      const rating::ProductRatings& stream = data.product(id);
      const detectors::IntegrationResult& result = integration.at(id);
      const signal::IndexRange range = stream.index_range(bin);
      for (std::size_t i = range.first; i < range.last; ++i) {
        trust::EpochCounts& c = epoch[stream.at(i).rater];
        ++c.ratings;
        if (result.suspicious[i]) ++c.suspicious;
      }
    }
    for (const auto& [rater, counts] : epoch) manager.record(rater, counts);
  }
};

}  // namespace

PScheme::PScheme(PConfig config) : config_(config) {
  RAB_EXPECTS(config_.passes >= 1);
  RAB_EXPECTS(config_.trust_forgetting > 0.0 && config_.trust_forgetting <= 1.0);
  RAB_EXPECTS(config_.trust_epoch_days > 0.0);
}

AggregateSeries PScheme::aggregate(const rating::Dataset& data,
                                   double bin_days) const {
  return aggregate_detailed(data, bin_days, nullptr);
}

AggregateSeries PScheme::aggregate_detailed(const rating::Dataset& data,
                                            double bin_days,
                                            PDiagnostics* diagnostics) const {
  AggregateSeries series;
  const Interval span = data.span();
  if (span.empty()) return series;
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);
  const std::vector<Interval> epochs =
      make_bins(span.begin, span.end, config_.trust_epoch_days);
  const std::vector<ProductId> ids = data.product_ids();

  const detectors::DetectorIntegrator integrator(config_.detectors,
                                                 config_.toggles);

  // Iterate detection <-> trust. Detection pass p uses the trust learned in
  // pass p-1 (pass 0 uses the initial 0.5 for everyone).
  std::map<ProductId, detectors::IntegrationResult> integration;
  trust::TrustManager learned;
  for (std::size_t pass = 0; pass < config_.passes; ++pass) {
    const detectors::TrustLookup lookup =
        pass == 0 ? detectors::TrustLookup(detectors::default_trust)
                  : learned.lookup();
    // Per-product detector analysis is independent — fan it out over the
    // pool, collecting by index so the result is identical at any thread
    // count (analyze is a pure function of the stream and trust lookup).
    std::vector<detectors::IntegrationResult> per_product(ids.size());
    util::parallel_for(ids.size(), [&](std::size_t i) {
      per_product[i] = integrator.analyze(data.product(ids[i]), lookup);
    });
    integration.clear();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      integration.emplace(ids[i], std::move(per_product[i]));
    }
    EpochTrust rebuilt(config_.trust_forgetting);
    for (const Interval& epoch : epochs) {
      rebuilt.fold_epoch(data, integration, epoch);
    }
    learned = std::move(rebuilt.manager);
  }

  // Final chronological sweep: trust evolves per epoch; each aggregation bin
  // uses the trust state at the epoch covering the bin's end (Procedure 1
  // computes trust at t_hat(k), after that epoch's evidence).
  EpochTrust causal(config_.trust_forgetting);
  std::size_t next_epoch = 0;
  for (ProductId id : ids) series.products.emplace(id, ProductSeries{});

  for (const Interval& bin : bins) {
    while (next_epoch < epochs.size() &&
           epochs[next_epoch].begin < bin.end) {
      causal.fold_epoch(data, integration, epochs[next_epoch]);
      ++next_epoch;
    }
    for (ProductId id : ids) {
      const rating::ProductRatings& stream = data.product(id);
      const detectors::IntegrationResult& result = integration.at(id);
      const signal::IndexRange range = stream.index_range(bin);

      AggregatePoint point;
      point.bin = bin;
      double weight_sum = 0.0;
      double weighted_value = 0.0;
      stats::Welford retained_mean;  // fallback when all weights vanish
      stats::Welford all_mean;       // fallback when everything was removed
      for (std::size_t i = range.first; i < range.last; ++i) {
        const rating::Rating& r = stream.at(i);
        const double trust = causal.manager.trust(r.rater);
        all_mean.add(r.value);
        // Highly suspicious = marked by the detectors and from a rater the
        // trust manager has already turned against (Section IV-G).
        if (config_.remove_suspicious && result.suspicious[i] &&
            trust < config_.removal_trust) {
          ++point.removed;
          continue;
        }
        retained_mean.add(r.value);
        // Eq. (7): only raters trusted above 0.5 get any say.
        const double w = std::max(trust - 0.5, 0.0);
        weight_sum += w;
        weighted_value += w * r.value;
      }
      point.used = retained_mean.count();
      if (weight_sum > 0.0) {
        point.value = weighted_value / weight_sum;
      } else if (retained_mean.count() > 0) {
        point.value = retained_mean.mean();
      } else if (all_mean.count() > 0) {
        point.value = all_mean.mean();
        point.used = all_mean.count();
      }
      series.products.at(id).push_back(point);
    }
  }

  if (diagnostics != nullptr) {
    diagnostics->integration = std::move(integration);
    diagnostics->trust = std::move(causal.manager);
  }
  return series;
}

}  // namespace rab::aggregation
