#include "aggregation/p_scheme.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/scratch.hpp"
#include "util/trace.hpp"

namespace rab::aggregation {

namespace {

using detectors::IntegrationResult;

/// Trust time series per rater: trust value after each epoch update.
/// Rebuilt chronologically so each bin's aggregation sees the trust state
/// as of that bin's epoch (Procedure 1).
struct EpochTrust {
  trust::TrustManager manager;

  explicit EpochTrust(double forgetting)
      : manager(forgetting) {}

  /// Folds one epoch: per-rater (ratings, suspicious) counts over `bin` for
  /// every product, read from the suspicion flags. Older evidence decays
  /// first when a forgetting factor is configured. The counts accumulate in
  /// a per-thread scratch map — fold_epoch only ever runs on the
  /// coordinating thread, between parallel sections.
  void fold_epoch(
      const std::vector<const rating::ProductRatings*>& streams,
      const std::vector<std::shared_ptr<const IntegrationResult>>&
          integration,
      const Interval& bin) {
    manager.decay();
    struct EpochScratch;
    auto& epoch =
        util::scratch_map<RaterId, trust::EpochCounts, EpochScratch>();
    for (std::size_t p = 0; p < streams.size(); ++p) {
      const rating::ProductRatings& stream = *streams[p];
      const IntegrationResult& result = *integration[p];
      const signal::IndexRange range = stream.index_range(bin);
      for (std::size_t i = range.first; i < range.last; ++i) {
        trust::EpochCounts& c = epoch[stream.at(i).rater];
        ++c.ratings;
        if (result.suspicious[i]) ++c.suspicious;
      }
    }
    for (const auto& [rater, counts] : epoch) manager.record(rater, counts);
  }
};

void stream_window(std::ostream& os, const signal::WindowSpec& w) {
  if (w.is_count()) {
    os << "count:" << w.count();
  } else {
    os << "dur:" << w.duration();
  }
}

/// The full P-scheme on per-product streams. Both entry points funnel here:
/// the Dataset path hands over its streams directly, the overlay path hands
/// over merged views (the base stream itself for untouched products). The
/// detector pass goes through `cache` so identical streams under identical
/// trust reuse their analysis across evaluations.
AggregateSeries p_aggregate_streams(
    const std::vector<ProductId>& ids,
    const std::vector<const rating::ProductRatings*>& streams,
    const Interval& span, double bin_days, const PConfig& config,
    detectors::IntegrationCache* cache, PDiagnostics* diagnostics) {
  AggregateSeries series;
  if (span.empty()) return series;
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);
  const std::vector<Interval> epochs =
      make_bins(span.begin, span.end, config.trust_epoch_days);

  const detectors::DetectorIntegrator integrator(config.detectors,
                                                 config.toggles);

  // Iterate detection <-> trust. Detection pass p uses the trust learned in
  // pass p-1 (pass 0 uses the initial 0.5 for everyone).
  std::vector<std::shared_ptr<const IntegrationResult>> integration(
      ids.size());
  trust::TrustManager learned;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    const detectors::TrustLookup lookup =
        pass == 0 ? detectors::TrustLookup(detectors::default_trust)
                  : learned.lookup();
    // Per-product detector analysis is independent — fan it out over the
    // pool, collecting by index so the result is identical at any thread
    // count (analyze is a pure function of the stream and trust lookup,
    // and the cache only ever returns outputs of that same function).
    util::parallel_for(ids.size(), [&](std::size_t i) {
      integration[i] =
          cache != nullptr
              ? integrator.analyze_cached(*streams[i], lookup, *cache)
              : std::make_shared<const IntegrationResult>(
                    integrator.analyze(*streams[i], lookup));
    });
    EpochTrust rebuilt(config.trust_forgetting);
    for (const Interval& epoch : epochs) {
      rebuilt.fold_epoch(streams, integration, epoch);
    }
    learned = std::move(rebuilt.manager);
  }

  // Final chronological sweep: trust evolves per epoch; each aggregation bin
  // uses the trust state at the epoch covering the bin's end (Procedure 1
  // computes trust at t_hat(k), after that epoch's evidence).
  EpochTrust causal(config.trust_forgetting);
  std::size_t next_epoch = 0;
  for (ProductId id : ids) series.products.emplace(id, ProductSeries{});

  for (const Interval& bin : bins) {
    while (next_epoch < epochs.size() &&
           epochs[next_epoch].begin < bin.end) {
      causal.fold_epoch(streams, integration, epochs[next_epoch]);
      ++next_epoch;
    }
    for (std::size_t p = 0; p < ids.size(); ++p) {
      const rating::ProductRatings& stream = *streams[p];
      const IntegrationResult& result = *integration[p];
      const signal::IndexRange range = stream.index_range(bin);

      AggregatePoint point;
      point.bin = bin;
      double weight_sum = 0.0;
      double weighted_value = 0.0;
      stats::Welford retained_mean;  // fallback when all weights vanish
      stats::Welford all_mean;       // fallback when everything was removed
      for (std::size_t i = range.first; i < range.last; ++i) {
        const rating::Rating& r = stream.at(i);
        const double trust = causal.manager.trust(r.rater);
        all_mean.add(r.value);
        // Highly suspicious = marked by the detectors and from a rater the
        // trust manager has already turned against (Section IV-G).
        if (config.remove_suspicious && result.suspicious[i] &&
            trust < config.removal_trust) {
          ++point.removed;
          continue;
        }
        retained_mean.add(r.value);
        // Eq. (7): only raters trusted above 0.5 get any say.
        const double w = std::max(trust - 0.5, 0.0);
        weight_sum += w;
        weighted_value += w * r.value;
      }
      point.used = retained_mean.count();
      if (weight_sum > 0.0) {
        point.value = weighted_value / weight_sum;
      } else if (retained_mean.count() > 0) {
        point.value = retained_mean.mean();
      } else if (all_mean.count() > 0) {
        point.value = all_mean.mean();
        point.used = all_mean.count();
      }
      series.products.at(ids[p]).push_back(point);
    }
  }

  if (diagnostics != nullptr) {
    diagnostics->integration.clear();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      diagnostics->integration.emplace(ids[i], *integration[i]);
    }
    diagnostics->trust = std::move(causal.manager);
  }
  return series;
}

}  // namespace

PScheme::PScheme(PConfig config) : config_(config) {
  RAB_EXPECTS(config_.passes >= 1);
  RAB_EXPECTS(config_.trust_forgetting > 0.0 && config_.trust_forgetting <= 1.0);
  RAB_EXPECTS(config_.trust_epoch_days > 0.0);
  if (config_.cache_streams > 0) {
    RAB_EXPECTS(config_.cache_variants >= 1);
    cache_ = std::make_unique<detectors::IntegrationCache>(
        config_.cache_streams, config_.cache_variants);
  }
}

std::string PScheme::identity() const {
  // Every parameter that can change aggregation output, so differently
  // configured P-schemes never share a fair-baseline cache slot.
  const detectors::DetectorConfig& d = config_.detectors;
  const detectors::DetectorToggles& t = config_.toggles;
  std::ostringstream id;
  id.precision(std::numeric_limits<double>::max_digits10);
  id << name() << "(passes=" << config_.passes
     << ",rm=" << config_.remove_suspicious
     << ",rmtrust=" << config_.removal_trust
     << ",epoch=" << config_.trust_epoch_days
     << ",forget=" << config_.trust_forgetting;
  id << ",tog=" << t.use_mc << t.use_arc << t.use_hc << t.use_me;
  id << ",mc=";
  stream_window(id, d.mc.window);
  id << '/' << d.mc.glrt_threshold << '/' << d.mc.peak_separation << '/'
     << d.mc.threshold1 << '/' << d.mc.threshold2 << '/' << d.mc.trust_ratio
     << '/' << d.mc.robust_baseline;
  id << ",arc=" << d.arc.window_days << '/' << d.arc.glrt_threshold << '/'
     << d.arc.peak_separation << '/' << d.arc.z_threshold << '/'
     << d.arc.rate_jump_min << '/' << d.arc.baseline_floor << '/'
     << d.arc.min_history_days << '/' << d.arc.merge_abs << '/'
     << d.arc.merge_rel;
  id << ",hc=" << d.hc.window_ratings << '/' << d.hc.threshold << '/'
     << d.hc.min_cluster_gap;
  id << ",me=";
  stream_window(id, d.me.window);
  id << '/' << d.me.ar_order << '/' << d.me.threshold;
  id << ')';
  return id.str();
}

AggregateSeries PScheme::aggregate(const rating::Dataset& data,
                                   double bin_days) const {
  return aggregate_detailed(data, bin_days, nullptr);
}

AggregateSeries PScheme::aggregate_detailed(const rating::Dataset& data,
                                            double bin_days,
                                            PDiagnostics* diagnostics) const {
  static auto& aggregates = util::metrics::counter("scheme.p.aggregates");
  aggregates.add();
  RAB_TRACE_SPAN("scheme.p.aggregate");
  const std::vector<ProductId> ids = data.product_ids();
  std::vector<const rating::ProductRatings*> streams;
  streams.reserve(ids.size());
  for (ProductId id : ids) streams.push_back(&data.product(id));
  return p_aggregate_streams(ids, streams, data.span(), bin_days, config_,
                             cache_.get(), diagnostics);
}

AggregateSeries PScheme::aggregate_overlay(
    const rating::DatasetOverlay& data, double bin_days,
    const AggregateSeries* /*fair_baseline*/) const {
  static auto& aggregates =
      util::metrics::counter("scheme.p.overlay_aggregates");
  aggregates.add();
  RAB_TRACE_SPAN("scheme.p.aggregate_overlay");
  const std::vector<ProductId> ids = data.product_ids();
  // Merge the touched products up front (on this thread — OverlayProduct's
  // lazy merge is not re-entrant); untouched products hand back the base
  // stream itself, whose cached detector analysis they then share.
  std::vector<const rating::ProductRatings*> streams;
  streams.reserve(ids.size());
  for (ProductId id : ids) streams.push_back(&data.product(id).merged());
  return p_aggregate_streams(ids, streams, data.span(), bin_days, config_,
                             cache_.get(), /*diagnostics=*/nullptr);
}

detectors::IntegrationCache::Stats PScheme::cache_stats() const {
  return cache_ != nullptr ? cache_->stats()
                           : detectors::IntegrationCache::Stats{};
}

}  // namespace rab::aggregation
