#include "aggregation/scheme.hpp"

#include <sstream>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::aggregation {

const ProductSeries& AggregateSeries::of(ProductId id) const {
  const auto it = products.find(id);
  if (it == products.end()) {
    std::ostringstream msg;
    msg << "AggregateSeries: no product " << id;
    throw InvalidArgument(msg.str());
  }
  return it->second;
}

AggregatePoint plain_average(const Interval& bin,
                             const std::vector<rating::Rating>& rs) {
  AggregatePoint point;
  point.bin = bin;
  point.used = rs.size();
  if (rs.empty()) return point;
  stats::Welford acc;
  for (const rating::Rating& r : rs) acc.add(r.value);
  point.value = acc.mean();
  return point;
}

}  // namespace rab::aggregation
