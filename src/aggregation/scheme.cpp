#include "aggregation/scheme.hpp"

#include <sstream>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::aggregation {

const ProductSeries& AggregateSeries::of(ProductId id) const {
  const auto it = products.find(id);
  if (it == products.end()) {
    std::ostringstream msg;
    msg << "AggregateSeries: no product " << id;
    throw InvalidArgument(msg.str());
  }
  return it->second;
}

AggregateSeries AggregationScheme::aggregate_overlay(
    const rating::DatasetOverlay& data, double bin_days,
    const AggregateSeries* /*fair_baseline*/) const {
  // Correctness fallback for schemes without a view-based path: pay the
  // copy once and aggregate the materialized dataset.
  return aggregate(data.materialize(), bin_days);
}

AggregatePoint plain_average(const Interval& bin,
                             const std::vector<rating::Rating>& rs) {
  AggregatePoint point;
  point.bin = bin;
  point.used = rs.size();
  if (rs.empty()) return point;
  stats::Welford acc;
  for (const rating::Rating& r : rs) acc.add(r.value);
  point.value = acc.mean();
  return point;
}

}  // namespace rab::aggregation
