// Entropy-based unfair-rating filtering, after Weng, Miao & Goh (IEICE
// 2006) — the entropy method the paper's related-work section cites.
//
// Idea: honest opinions about one product concentrate around its quality,
// so the value distribution of a clean bin has low Shannon entropy;
// coordinated unfair ratings inject a second mode and raise it. The filter
// greedily removes ratings from levels far from the majority mode while
// the bin's entropy exceeds a threshold, then averages what remains.
#pragma once

#include "aggregation/scheme.hpp"

namespace rab::aggregation {

struct EntropyConfig {
  /// Entropy (bits, over the six 0..5 star levels) above which a bin is
  /// considered contaminated. Clean discrete ratings around a 4-star mean
  /// measure ~1.4-1.7 bits.
  double entropy_threshold = 1.8;
  /// Ratings at star-distance >= this from the bin's modal level are
  /// eligible for removal; nearer levels are treated as honest diversity.
  double min_mode_distance = 2.0;
  /// Never remove more than this fraction of a bin (a majority guard).
  double max_removal_fraction = 0.45;
};

class EntropyScheme final : public AggregationScheme {
 public:
  explicit EntropyScheme(EntropyConfig config = {});

  [[nodiscard]] std::string name() const override { return "ENT"; }

  [[nodiscard]] std::string identity() const override;

  [[nodiscard]] AggregateSeries aggregate(const rating::Dataset& data,
                                          double bin_days) const override;

  [[nodiscard]] AggregateSeries aggregate_overlay(
      const rating::DatasetOverlay& data, double bin_days,
      const AggregateSeries* fair_baseline) const override;

  /// Shannon entropy (bits) of a value multiset over whole-star levels.
  /// Exposed for tests. Empty input measures 0.
  static double star_entropy(const std::vector<double>& values);

  [[nodiscard]] const EntropyConfig& config() const { return config_; }

 private:
  EntropyConfig config_;
};

}  // namespace rab::aggregation
