// Rating-through-Voting aggregation, after Allahbakhsh & Ignjatovic
// ("Rating through Voting", arXiv:1211.0390) — see PAPERS.md.
//
// Each rating is a *vote* for one of the six whole-star levels. Voter
// weights and level credibilities reinforce each other iteratively inside
// every time bin: a level is credible when trusted voters chose it, and a
// voter is trusted when they keep choosing credible levels. Coordinated
// squads voting for an off-consensus level pull each other's weight down
// instead of pulling the aggregate, which is the scheme's robustness
// argument. The bin's score is the weight-weighted mean of the votes.
//
// Voter weights are shared across products within a bin (that is the
// point: a squad betrays itself on every product it touches), so the
// scheme is history-free but *cross-product coupled* — the scheme-contract
// suite runs it with a P-like cross-product tolerance.
#pragma once

#include "aggregation/scheme.hpp"

namespace rab::aggregation {

struct RvConfig {
  /// Fixed-point iterations of the weight <-> credibility loop. A fixed
  /// count (no epsilon early-exit) keeps runs trivially deterministic.
  std::size_t iterations = 6;
  /// Laplace smoothing mass per level when scoring credibility, so empty
  /// levels keep a small non-zero credibility and lone votes don't
  /// self-certify to 1.0.
  double smoothing = 0.25;
};

class RvScheme final : public AggregationScheme {
 public:
  explicit RvScheme(RvConfig config = {});

  [[nodiscard]] std::string name() const override { return "RV"; }

  [[nodiscard]] std::string identity() const override;

  [[nodiscard]] AggregateSeries aggregate(const rating::Dataset& data,
                                          double bin_days) const override;

  [[nodiscard]] AggregateSeries aggregate_overlay(
      const rating::DatasetOverlay& data, double bin_days,
      const AggregateSeries* fair_baseline) const override;

  [[nodiscard]] const RvConfig& config() const { return config_; }

 private:
  RvConfig config_;
};

}  // namespace rab::aggregation
