#include "aggregation/xl_scheme.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <vector>

#include "aggregation/overlay_support.hpp"
#include "util/error.hpp"

namespace rab::aggregation {

namespace {

/// Median of a copy of `values` (average of the middle two when even).
double median_of(std::vector<double> values) {
  const std::size_t n = values.size();
  std::sort(values.begin(), values.end());
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

ProductSeries xl_points(const auto& stream,
                        const std::vector<Interval>& bins,
                        const XlConfig& config) {
  ProductSeries points;
  points.reserve(bins.size());
  double reputation = 0.0;
  bool anchored = false;
  std::vector<double> values;
  std::vector<std::size_t> order;
  for (const Interval& bin : bins) {
    values.clear();
    detail::visit_in(stream, bin, [&](const rating::Rating& r) {
      values.push_back(r.value);
    });
    AggregatePoint point;
    point.bin = bin;
    if (values.empty()) {
      points.push_back(point);
      continue;
    }
    const std::size_t n = values.size();
    // The anchor: the running reputation, or this bin's own median before
    // any reputation exists (the model's bootstrap).
    const double anchor = anchored ? reputation : median_of(values);

    // Estimate the misbehaving fraction from the deviation tail, then trim
    // exactly that many ratings — the ones farthest from the anchor.
    std::size_t deviants = 0;
    for (double v : values) {
      if (std::fabs(v - anchor) > config.deviation_threshold) ++deviants;
    }
    const double fraction = std::min(
        config.max_trim_fraction,
        static_cast<double>(deviants) / static_cast<double>(n));
    const auto trim =
        static_cast<std::size_t>(fraction * static_cast<double>(n));

    order.resize(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Farthest-first; stream order breaks distance ties deterministically.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return std::fabs(values[a] - anchor) >
                              std::fabs(values[b] - anchor);
                     });
    double sum = 0.0;
    for (std::size_t k = trim; k < n; ++k) sum += values[order[k]];
    point.removed = trim;
    point.used = n - trim;
    point.value = sum / static_cast<double>(point.used);
    points.push_back(point);

    reputation = anchored
                     ? (1.0 - config.anchor_gain) * reputation +
                           config.anchor_gain * point.value
                     : point.value;
    anchored = true;
  }
  return points;
}

}  // namespace

XlScheme::XlScheme(XlConfig config) : config_(config) {
  RAB_EXPECTS(config_.deviation_threshold > 0.0);
  RAB_EXPECTS(config_.max_trim_fraction >= 0.0 &&
              config_.max_trim_fraction < 1.0);
  RAB_EXPECTS(config_.anchor_gain > 0.0 && config_.anchor_gain <= 1.0);
}

std::string XlScheme::identity() const {
  std::ostringstream id;
  id.precision(std::numeric_limits<double>::max_digits10);
  id << name() << "(dev=" << config_.deviation_threshold
     << ",maxtrim=" << config_.max_trim_fraction
     << ",gain=" << config_.anchor_gain << ')';
  return id.str();
}

AggregateSeries XlScheme::aggregate(const rating::Dataset& data,
                                    double bin_days) const {
  return detail::aggregate_independent(
      data, bin_days,
      [this](const auto& stream, const auto& bins) {
        return xl_points(stream, bins, config_);
      });
}

AggregateSeries XlScheme::aggregate_overlay(
    const rating::DatasetOverlay& data, double bin_days,
    const AggregateSeries* fair_baseline) const {
  return detail::aggregate_independent_overlay(
      data, bin_days, fair_baseline,
      [this](const auto& stream, const auto& bins) {
        return xl_points(stream, bins, config_);
      });
}

}  // namespace rab::aggregation
