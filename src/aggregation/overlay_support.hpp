// Internal aggregation loops shared by the per-product-independent schemes
// (SA, median, entropy) for the Dataset and DatasetOverlay paths.
//
// These schemes aggregate every product from its own stream alone, so the
// overlay path can (a) run directly on the merged OverlayProduct views and
// (b) reuse the caller-supplied fair baseline for untouched products — the
// recomputation would read exactly the base stream over exactly the same
// bins, so the copy is bit-identical by construction. Reuse is gated on the
// overlay preserving the base span: extras outside the base span would
// shift every bin boundary.
#pragma once

#include <utility>
#include <vector>

#include "aggregation/scheme.hpp"

namespace rab::aggregation::detail {

/// Visits, in merged order, every rating of `stream` with time inside `bin`
/// — the allocation-free replacement for `stream.in_interval(bin)` in the
/// per-bin aggregation loops. OverlayProduct walks its two sorted halves;
/// ProductRatings walks its index_range in place. Visit order matches
/// in_interval exactly, so accumulation stays bit-identical.
template <typename Stream, typename F>
void visit_in(const Stream& stream, const Interval& bin, F&& f) {
  if constexpr (requires { stream.for_each_in(bin, f); }) {
    stream.for_each_in(bin, std::forward<F>(f));
  } else {
    const auto range = stream.index_range(bin);
    for (std::size_t i = range.first; i < range.last; ++i) f(stream.at(i));
  }
}

/// Dataset path: `points_of(stream, bins)` produces one product's series.
template <typename PointsFn>
AggregateSeries aggregate_independent(const rating::Dataset& data,
                                      double bin_days, PointsFn&& points_of) {
  AggregateSeries series;
  const Interval span = data.span();
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);
  for (ProductId id : data.product_ids()) {
    series.products.emplace(id, points_of(data.product(id), bins));
  }
  return series;
}

/// Overlay path: untouched products copy their fair-baseline series when
/// one is supplied and the span is preserved; touched (or uncovered)
/// products recompute through the merged view.
template <typename PointsFn>
AggregateSeries aggregate_independent_overlay(
    const rating::DatasetOverlay& data, double bin_days,
    const AggregateSeries* fair_baseline, PointsFn&& points_of) {
  AggregateSeries series;
  const Interval span = data.span();
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);
  const bool reuse =
      fair_baseline != nullptr && span == data.base().span();
  for (ProductId id : data.product_ids()) {
    if (reuse && !data.touched(id)) {
      const auto it = fair_baseline->products.find(id);
      if (it != fair_baseline->products.end()) {
        series.products.emplace(id, it->second);
        continue;
      }
    }
    series.products.emplace(id, points_of(data.product(id), bins));
  }
  return series;
}

}  // namespace rab::aggregation::detail
