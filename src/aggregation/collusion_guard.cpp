#include "aggregation/collusion_guard.hpp"

#include <limits>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "aggregation/overlay_support.hpp"
#include "util/error.hpp"

namespace rab::aggregation {

namespace {

/// Raters whose discounted trust falls below the removal threshold, in
/// ascending order.
std::set<RaterId> flagged_raters(
    const std::vector<trust::CollusionGroup>& groups,
    const CollusionGuardConfig& config) {
  trust::TrustManager discount;
  trust::apply_collusion_discount(discount, groups);
  std::set<RaterId> flagged;
  for (const trust::CollusionGroup& group : groups) {
    for (RaterId rater : group.raters) {
      if (discount.trust(rater) < config.removal_trust) {
        flagged.insert(rater);
      }
    }
  }
  return flagged;
}

/// Per-bin counts of a product's flagged ratings — the `removed` the guard
/// adds on top of whatever the inner scheme removed from the survivors.
template <typename Stream>
std::vector<std::size_t> removed_per_bin(const Stream& stream,
                                         const std::vector<Interval>& bins,
                                         const std::set<RaterId>& flagged) {
  std::vector<std::size_t> removed(bins.size(), 0);
  for (std::size_t b = 0; b < bins.size(); ++b) {
    detail::visit_in(stream, bins[b], [&](const rating::Rating& r) {
      if (flagged.count(r.rater) > 0) ++removed[b];
    });
  }
  return removed;
}

/// Grafts the inner scheme's series over the filtered data back onto the
/// full product set: adds the guard's removals to every point, and
/// synthesizes an all-removed series for products the filter emptied.
template <typename DataLike>
AggregateSeries graft_removed(const DataLike& data,
                              AggregateSeries inner_series,
                              const std::vector<Interval>& bins,
                              const std::set<RaterId>& flagged) {
  AggregateSeries series;
  for (ProductId id : data.product_ids()) {
    const std::vector<std::size_t> removed =
        removed_per_bin(data.product(id), bins, flagged);
    const auto it = inner_series.products.find(id);
    ProductSeries points;
    if (it != inner_series.products.end()) {
      points = std::move(it->second);
      RAB_EXPECTS(points.size() == bins.size());
    } else {
      points.resize(bins.size());
      for (std::size_t b = 0; b < bins.size(); ++b) {
        points[b].bin = bins[b];
      }
    }
    for (std::size_t b = 0; b < bins.size(); ++b) {
      points[b].removed += removed[b];
    }
    series.products.emplace(id, std::move(points));
  }
  return series;
}

}  // namespace

CollusionGuardScheme::CollusionGuardScheme(
    std::unique_ptr<AggregationScheme> inner, CollusionGuardConfig config)
    : inner_(std::move(inner)), config_(config) {
  RAB_EXPECTS(inner_ != nullptr);
  RAB_EXPECTS(config_.removal_trust > 0.0 && config_.removal_trust < 1.0);
}

std::string CollusionGuardScheme::name() const {
  return inner_->name() + "+CG";
}

std::string CollusionGuardScheme::identity() const {
  const trust::CollusionConfig& c = config_.collusion;
  std::ostringstream id;
  id.precision(std::numeric_limits<double>::max_digits10);
  id << "CG(" << inner_->identity() << ",tw=" << c.time_window
     << ",vtol=" << c.value_tolerance << ",link=" << c.link_score
     << ",minov=" << c.min_overlap << ",mingrp=" << c.min_group
     << ",rmtrust=" << config_.removal_trust << ')';
  return id.str();
}

AggregateSeries CollusionGuardScheme::aggregate(const rating::Dataset& data,
                                                double bin_days) const {
  const std::set<RaterId> flagged = flagged_raters(
      trust::find_collusion_groups(data, config_.collusion), config_);
  if (flagged.empty()) return inner_->aggregate(data, bin_days);

  rating::Dataset filtered;
  for (ProductId id : data.product_ids()) {
    for (const rating::Rating& r : data.product(id).rows()) {
      if (flagged.count(r.rater) == 0) filtered.add(r);
    }
  }
  const Interval span = data.span();
  if (filtered.product_count() == 0 || filtered.span() != span) {
    // Removal would move the bin boundaries — skip the discount rather
    // than hand the inner scheme a differently-binned dataset.
    return inner_->aggregate(data, bin_days);
  }
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);
  return graft_removed(data, inner_->aggregate(filtered, bin_days), bins,
                       flagged);
}

AggregateSeries CollusionGuardScheme::aggregate_overlay(
    const rating::DatasetOverlay& data, double bin_days,
    const AggregateSeries* fair_baseline) const {
  const std::set<RaterId> flagged = flagged_raters(
      trust::find_collusion_groups(data, config_.collusion), config_);
  if (flagged.empty()) {
    // No discount: the guard *is* the inner scheme here, and the cached
    // fair baseline (CG's own aggregate of the base) coincides with the
    // inner scheme's only when the base is also discount-free — which we
    // cannot see from here, so never forward it.
    return inner_->aggregate_overlay(data, bin_days, nullptr);
  }
  for (RaterId rater : data.base().rater_ids()) {
    if (flagged.count(rater) > 0) {
      // A fair-side rater was swept into a squad: the filtered base would
      // no longer be the overlay's base. Run the reference path.
      return aggregate(data.materialize(), bin_days);
    }
  }
  std::vector<rating::Rating> kept;
  kept.reserve(data.extras().size());
  for (const rating::Rating& r : data.extras()) {
    if (flagged.count(r.rater) == 0) kept.push_back(r);
  }
  const rating::DatasetOverlay filtered(data.base(), kept);
  const Interval span = data.span();
  if (filtered.span() != span) {
    return inner_->aggregate_overlay(data, bin_days, nullptr);
  }
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);
  (void)fair_baseline;  // never the inner scheme's baseline — see above
  return graft_removed(data,
                       inner_->aggregate_overlay(filtered, bin_days,
                                                 nullptr),
                       bins, flagged);
}

}  // namespace rab::aggregation
