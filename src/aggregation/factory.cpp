#include "aggregation/factory.hpp"

#include "aggregation/bf_scheme.hpp"
#include "aggregation/collusion_guard.hpp"
#include "aggregation/entropy_scheme.hpp"
#include "aggregation/median_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/rv_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "aggregation/xl_scheme.hpp"
#include "util/error.hpp"

namespace rab::aggregation {

namespace {

std::unique_ptr<AggregationScheme> make_base(const std::string& name) {
  if (name == "SA") return std::make_unique<SaScheme>();
  if (name == "BF") return std::make_unique<BfScheme>();
  if (name == "P") return std::make_unique<PScheme>();
  if (name == "MED") return std::make_unique<MedianScheme>();
  if (name == "ENT") return std::make_unique<EntropyScheme>();
  if (name == "RV") return std::make_unique<RvScheme>();
  if (name == "XL") return std::make_unique<XlScheme>();
  return nullptr;
}

}  // namespace

std::unique_ptr<AggregationScheme> make_scheme(const std::string& spec) {
  constexpr const char* kGuardSuffix = "+CG";
  std::string base = spec;
  bool guarded = false;
  if (const std::size_t n = base.size();
      n > 3 && base.compare(n - 3, 3, kGuardSuffix) == 0) {
    base.resize(n - 3);
    guarded = true;
  }
  auto scheme = make_base(base);
  if (scheme == nullptr) {
    throw InvalidArgument(
        "unknown scheme '" + spec +
        "' (use SA, BF, P, MED, ENT, RV or XL, optionally with a +CG "
        "collusion-guard suffix, e.g. SA+CG)");
  }
  if (guarded) {
    return std::make_unique<CollusionGuardScheme>(std::move(scheme));
  }
  return scheme;
}

const std::vector<std::string>& known_scheme_names() {
  static const std::vector<std::string> names{"SA",  "BF", "P", "MED",
                                              "ENT", "RV", "XL"};
  return names;
}

}  // namespace rab::aggregation
