#include "aggregation/sa_scheme.hpp"

namespace rab::aggregation {

AggregateSeries SaScheme::aggregate(const rating::Dataset& data,
                                    double bin_days) const {
  AggregateSeries series;
  const Interval span = data.span();
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);

  for (ProductId id : data.product_ids()) {
    const rating::ProductRatings& stream = data.product(id);
    ProductSeries points;
    points.reserve(bins.size());
    for (const Interval& bin : bins) {
      points.push_back(plain_average(bin, stream.in_interval(bin)));
    }
    series.products.emplace(id, std::move(points));
  }
  return series;
}

}  // namespace rab::aggregation
