#include "aggregation/sa_scheme.hpp"

#include "aggregation/overlay_support.hpp"
#include "stats/descriptive.hpp"

namespace rab::aggregation {

namespace {

ProductSeries sa_points(const auto& stream, const std::vector<Interval>& bins) {
  ProductSeries points;
  points.reserve(bins.size());
  for (const Interval& bin : bins) {
    // plain_average without the in_interval copy: same Welford, same order.
    AggregatePoint point;
    point.bin = bin;
    stats::Welford acc;
    detail::visit_in(stream, bin,
                     [&](const rating::Rating& r) { acc.add(r.value); });
    point.used = acc.count();
    if (acc.count() > 0) point.value = acc.mean();
    points.push_back(point);
  }
  return points;
}

}  // namespace

AggregateSeries SaScheme::aggregate(const rating::Dataset& data,
                                    double bin_days) const {
  return detail::aggregate_independent(
      data, bin_days,
      [](const auto& stream, const auto& bins) {
        return sa_points(stream, bins);
      });
}

AggregateSeries SaScheme::aggregate_overlay(
    const rating::DatasetOverlay& data, double bin_days,
    const AggregateSeries* fair_baseline) const {
  return detail::aggregate_independent_overlay(
      data, bin_days, fair_baseline,
      [](const auto& stream, const auto& bins) {
        return sa_points(stream, bins);
      });
}

}  // namespace rab::aggregation
