#include "aggregation/series_io.hpp"

#include <cmath>
#include <fstream>
#include <ostream>

#include "util/error.hpp"

namespace rab::aggregation {

void write_series_csv(std::ostream& out, const AggregateSeries& series) {
  out << "# product,bin_begin,bin_end,value,used,removed\n";
  for (const auto& [id, points] : series.products) {
    for (const AggregatePoint& p : points) {
      out << id.value() << ',' << p.bin.begin << ',' << p.bin.end << ','
          << p.value << ',' << p.used << ',' << p.removed << '\n';
    }
  }
}

void write_series_csv_file(const std::string& path,
                           const AggregateSeries& series) {
  std::ofstream out(path);
  if (!out) throw IoError("write_series_csv_file: cannot open " + path);
  write_series_csv(out, series);
}

void write_delta_csv(std::ostream& out, const AggregateSeries& baseline,
                     const AggregateSeries& attacked) {
  out << "# product,bin_begin,bin_end,baseline,attacked,delta\n";
  for (const auto& [id, base_points] : baseline.products) {
    const ProductSeries& attack_points = attacked.of(id);
    RAB_EXPECTS(attack_points.size() == base_points.size());
    for (std::size_t i = 0; i < base_points.size(); ++i) {
      const AggregatePoint& a = base_points[i];
      const AggregatePoint& b = attack_points[i];
      RAB_EXPECTS(a.bin == b.bin);
      const double delta = (a.used == 0 || b.used == 0)
                               ? 0.0
                               : std::fabs(a.value - b.value);
      out << id.value() << ',' << a.bin.begin << ',' << a.bin.end << ','
          << a.value << ',' << b.value << ',' << delta << '\n';
    }
  }
}

}  // namespace rab::aggregation
