// Median scheme: per-bin median rating — the classic robust-statistics
// baseline (not evaluated in the paper; included as an extension because
// reviewers of rating-aggregation work invariably ask for it). A median
// resists value outliers completely but is still moved once the unfair
// ratings approach half of a bin's mass.
#pragma once

#include "aggregation/scheme.hpp"

namespace rab::aggregation {

class MedianScheme final : public AggregationScheme {
 public:
  [[nodiscard]] std::string name() const override { return "MED"; }

  [[nodiscard]] AggregateSeries aggregate(const rating::Dataset& data,
                                          double bin_days) const override;

  [[nodiscard]] AggregateSeries aggregate_overlay(
      const rating::DatasetOverlay& data, double bin_days,
      const AggregateSeries* fair_baseline) const override;
};

}  // namespace rab::aggregation
