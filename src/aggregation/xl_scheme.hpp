// Xie–Lui aggregation rules, after Xie & Lui ("Mathematical Modeling of
// Product Rating: Sufficiency, Misbehavior and Aggregation Rules",
// arXiv:1305.1899) — see PAPERS.md.
//
// Their model: a product has a latent quality estimate (its reputation);
// honest ratings scatter tightly around it while misbehaving users rate
// far from it. The aggregation rule first *estimates the misbehaving
// fraction* of a window from the share of ratings deviating beyond a
// threshold from the running reputation, then trims exactly that fraction
// (the ratings farthest from the reputation) before averaging — a
// reputation-anchored trimmed mean. The reputation tracks the accepted
// aggregate across bins with an exponential smoother, so a squad cannot
// drag the anchor faster than the gain allows.
//
// Products aggregate independently (the anchor is per-product), so the
// overlay path reuses the cached fair baseline for untouched products.
#pragma once

#include "aggregation/scheme.hpp"

namespace rab::aggregation {

struct XlConfig {
  /// Ratings deviating more than this (stars) from the bin's reputation
  /// anchor count toward the misbehaving-fraction estimate.
  double deviation_threshold = 1.5;
  /// Upper bound on the trimmed fraction per bin (majority guard).
  double max_trim_fraction = 0.45;
  /// Exponential gain of the cross-bin reputation update
  /// R <- (1-gain)*R + gain*aggregate; the first non-empty bin anchors at
  /// its own median.
  double anchor_gain = 0.3;
};

class XlScheme final : public AggregationScheme {
 public:
  explicit XlScheme(XlConfig config = {});

  [[nodiscard]] std::string name() const override { return "XL"; }

  [[nodiscard]] std::string identity() const override;

  [[nodiscard]] AggregateSeries aggregate(const rating::Dataset& data,
                                          double bin_days) const override;

  [[nodiscard]] AggregateSeries aggregate_overlay(
      const rating::DatasetOverlay& data, double bin_days,
      const AggregateSeries* fair_baseline) const override;

  [[nodiscard]] const XlConfig& config() const { return config_; }

 private:
  XlConfig config_;
};

}  // namespace rab::aggregation
