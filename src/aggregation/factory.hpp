// Scheme specs: one string names a configured AggregationScheme.
//
// Grammar:  BASE [ "+CG" ]
//   BASE ∈ { SA, BF, P, MED, ENT, RV, XL }
//   "+CG" wraps the base scheme in the collusion-guard trust discount
//         (aggregation/collusion_guard.hpp) with default guard config.
//
// The CLI (`rab evaluate/optimize/tournament --scheme(s)`) and the
// tournament runner both resolve specs through here, so a spec printed in
// a tournament matrix can be fed back to any subcommand verbatim.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "aggregation/scheme.hpp"

namespace rab::aggregation {

/// Builds the scheme named by `spec`; throws InvalidArgument (naming the
/// valid specs) on anything else.
std::unique_ptr<AggregationScheme> make_scheme(const std::string& spec);

/// The base scheme names the factory accepts (without the +CG suffix).
const std::vector<std::string>& known_scheme_names();

}  // namespace rab::aggregation
