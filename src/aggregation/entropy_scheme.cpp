#include "aggregation/entropy_scheme.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <sstream>

#include "aggregation/overlay_support.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::aggregation {

namespace {

constexpr std::size_t kLevels = 6;  // whole stars 0..5

std::size_t level_of(double value) {
  const double clamped =
      std::clamp(value, rating::kMinRating, rating::kMaxRating);
  return static_cast<std::size_t>(std::lround(clamped));
}

double entropy_bits(const std::array<std::size_t, kLevels>& counts,
                    std::size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

std::size_t modal_level(const std::array<std::size_t, kLevels>& counts) {
  std::size_t best = 0;
  for (std::size_t level = 1; level < kLevels; ++level) {
    if (counts[level] > counts[best]) best = level;
  }
  return best;
}

ProductSeries entropy_points(const auto& stream,
                             const std::vector<Interval>& bins,
                             const EntropyConfig& config) {
  ProductSeries points;
  points.reserve(bins.size());
  for (const Interval& bin : bins) {
    std::array<std::size_t, kLevels> counts{};
    std::size_t total = 0;
    detail::visit_in(stream, bin, [&](const rating::Rating& r) {
      ++counts[level_of(r.value)];
      ++total;
    });
    std::size_t remaining = total;
    const auto removal_budget = static_cast<std::size_t>(
        config.max_removal_fraction * static_cast<double>(total));
    std::size_t removed = 0;

    // Once the bin's entropy betrays contamination, drain the levels far
    // from the majority mode (largest level first) up to the budget —
    // the whole anomalous mass is suspect, not just enough of it to dip
    // back under the threshold. Clean bins never trip the test, so fair
    // minority opinions survive there.
    if (entropy_bits(counts, remaining) > config.entropy_threshold) {
      const std::size_t mode = modal_level(counts);
      while (removed < removal_budget) {
        std::size_t victim = kLevels;
        for (std::size_t level = 0; level < kLevels; ++level) {
          const double distance = std::fabs(static_cast<double>(level) -
                                            static_cast<double>(mode));
          if (distance < config.min_mode_distance ||
              counts[level] == 0) {
            continue;
          }
          if (victim == kLevels || counts[level] > counts[victim]) {
            victim = level;
          }
        }
        if (victim == kLevels) break;  // nothing eligible left
        --counts[victim];
        --remaining;
        ++removed;
      }
    }

    // Average the retained levels. Removal is by level, so the aggregate
    // uses level centers — exact for whole-star data.
    AggregatePoint point;
    point.bin = bin;
    point.removed = removed;
    point.used = remaining;
    if (remaining > 0) {
      double sum = 0.0;
      for (std::size_t level = 0; level < kLevels; ++level) {
        sum += static_cast<double>(counts[level]) *
               static_cast<double>(level);
      }
      point.value = sum / static_cast<double>(remaining);
    }
    points.push_back(point);
  }
  return points;
}

}  // namespace

EntropyScheme::EntropyScheme(EntropyConfig config) : config_(config) {
  RAB_EXPECTS(config_.entropy_threshold > 0.0);
  RAB_EXPECTS(config_.min_mode_distance >= 1.0);
  RAB_EXPECTS(config_.max_removal_fraction >= 0.0 &&
              config_.max_removal_fraction < 1.0);
}

double EntropyScheme::star_entropy(const std::vector<double>& values) {
  std::array<std::size_t, kLevels> counts{};
  for (double v : values) ++counts[level_of(v)];
  return entropy_bits(counts, values.size());
}

std::string EntropyScheme::identity() const {
  std::ostringstream id;
  id.precision(std::numeric_limits<double>::max_digits10);
  id << name() << "(th=" << config_.entropy_threshold
     << ",dist=" << config_.min_mode_distance
     << ",maxrm=" << config_.max_removal_fraction << ')';
  return id.str();
}

AggregateSeries EntropyScheme::aggregate(const rating::Dataset& data,
                                         double bin_days) const {
  return detail::aggregate_independent(
      data, bin_days,
      [this](const auto& stream, const auto& bins) {
        return entropy_points(stream, bins, config_);
      });
}

AggregateSeries EntropyScheme::aggregate_overlay(
    const rating::DatasetOverlay& data, double bin_days,
    const AggregateSeries* fair_baseline) const {
  return detail::aggregate_independent_overlay(
      data, bin_days, fair_baseline,
      [this](const auto& stream, const auto& bins) {
        return entropy_points(stream, bins, config_);
      });
}

}  // namespace rab::aggregation
