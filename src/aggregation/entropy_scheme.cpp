#include "aggregation/entropy_scheme.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::aggregation {

namespace {

constexpr std::size_t kLevels = 6;  // whole stars 0..5

std::size_t level_of(double value) {
  const double clamped =
      std::clamp(value, rating::kMinRating, rating::kMaxRating);
  return static_cast<std::size_t>(std::lround(clamped));
}

double entropy_bits(const std::array<std::size_t, kLevels>& counts,
                    std::size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

std::size_t modal_level(const std::array<std::size_t, kLevels>& counts) {
  std::size_t best = 0;
  for (std::size_t level = 1; level < kLevels; ++level) {
    if (counts[level] > counts[best]) best = level;
  }
  return best;
}

}  // namespace

EntropyScheme::EntropyScheme(EntropyConfig config) : config_(config) {
  RAB_EXPECTS(config_.entropy_threshold > 0.0);
  RAB_EXPECTS(config_.min_mode_distance >= 1.0);
  RAB_EXPECTS(config_.max_removal_fraction >= 0.0 &&
              config_.max_removal_fraction < 1.0);
}

double EntropyScheme::star_entropy(const std::vector<double>& values) {
  std::array<std::size_t, kLevels> counts{};
  for (double v : values) ++counts[level_of(v)];
  return entropy_bits(counts, values.size());
}

AggregateSeries EntropyScheme::aggregate(const rating::Dataset& data,
                                         double bin_days) const {
  AggregateSeries series;
  const Interval span = data.span();
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);

  for (ProductId id : data.product_ids()) {
    const rating::ProductRatings& stream = data.product(id);
    ProductSeries points;
    points.reserve(bins.size());
    for (const Interval& bin : bins) {
      const std::vector<rating::Rating> rs = stream.in_interval(bin);

      std::array<std::size_t, kLevels> counts{};
      for (const rating::Rating& r : rs) ++counts[level_of(r.value)];
      std::size_t remaining = rs.size();
      const auto removal_budget = static_cast<std::size_t>(
          config_.max_removal_fraction * static_cast<double>(rs.size()));
      std::size_t removed = 0;

      // Once the bin's entropy betrays contamination, drain the levels far
      // from the majority mode (largest level first) up to the budget —
      // the whole anomalous mass is suspect, not just enough of it to dip
      // back under the threshold. Clean bins never trip the test, so fair
      // minority opinions survive there.
      if (entropy_bits(counts, remaining) > config_.entropy_threshold) {
        const std::size_t mode = modal_level(counts);
        while (removed < removal_budget) {
          std::size_t victim = kLevels;
          for (std::size_t level = 0; level < kLevels; ++level) {
            const double distance = std::fabs(static_cast<double>(level) -
                                              static_cast<double>(mode));
            if (distance < config_.min_mode_distance ||
                counts[level] == 0) {
              continue;
            }
            if (victim == kLevels || counts[level] > counts[victim]) {
              victim = level;
            }
          }
          if (victim == kLevels) break;  // nothing eligible left
          --counts[victim];
          --remaining;
          ++removed;
        }
      }

      // Average the retained levels. Removal is by level, so the aggregate
      // uses level centers — exact for whole-star data.
      AggregatePoint point;
      point.bin = bin;
      point.removed = removed;
      point.used = remaining;
      if (remaining > 0) {
        double sum = 0.0;
        for (std::size_t level = 0; level < kLevels; ++level) {
          sum += static_cast<double>(counts[level]) *
                 static_cast<double>(level);
        }
        point.value = sum / static_cast<double>(remaining);
      }
      points.push_back(point);
    }
    series.products.emplace(id, std::move(points));
  }
  return series;
}

}  // namespace rab::aggregation
