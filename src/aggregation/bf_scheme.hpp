// BF-scheme: beta-function majority-rule filtering
// [Whitby, Jøsang, Indulska 2004], the representative majority-rule baseline
// of paper Section V-A.
//
// Per time bin and product: ratings are normalized to [0,1] and combined
// into a beta reputation Beta(alpha, beta). Any rater whose rating falls
// outside the majority's [q, 1-q] quantile band is excluded, the reputation
// is recomputed, and the test repeats until stable. Excluded ratings count
// as failures F for the rater's trust (S+1)/(S+F+2); the bin's aggregate is
// the mean of the retained ratings.
#pragma once

#include "aggregation/scheme.hpp"

namespace rab::aggregation {

struct BfConfig {
  /// q: exclusion band. Whitby et al. describe both a 1% and a 10% rule;
  /// with web-style raters contributing at most one rating per product,
  /// individual betas are broad and an 8% band is the operative variant: it
  /// convicts a floor-value rating against any ~4-star reputation while leaving
  /// every moderate rating alone (the R1-only behaviour of Figure 4).
  double quantile = 0.08;
  std::size_t max_rounds = 16; ///< iteration cap for the filter loop
};

class BfScheme final : public AggregationScheme {
 public:
  explicit BfScheme(BfConfig config = {});

  [[nodiscard]] std::string name() const override { return "BF"; }

  [[nodiscard]] std::string identity() const override;

  [[nodiscard]] AggregateSeries aggregate(const rating::Dataset& data,
                                          double bin_days) const override;

  [[nodiscard]] AggregateSeries aggregate_overlay(
      const rating::DatasetOverlay& data, double bin_days,
      const AggregateSeries* fair_baseline) const override;

  /// One bin's filtering: returns indices (into `rs`) of ratings the
  /// majority-rule filter rejects. Exposed for tests.
  [[nodiscard]] std::vector<std::size_t> rejected_indices(
      const std::vector<rating::Rating>& rs) const;

  [[nodiscard]] const BfConfig& config() const { return config_; }

 private:
  BfConfig config_;
};

}  // namespace rab::aggregation
