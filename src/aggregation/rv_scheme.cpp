#include "aggregation/rv_scheme.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "aggregation/overlay_support.hpp"
#include "util/error.hpp"

namespace rab::aggregation {

namespace {

constexpr std::size_t kLevels = 6;  // whole stars 0..5

std::size_t level_of(double value) {
  const double clamped =
      std::clamp(value, rating::kMinRating, rating::kMaxRating);
  return static_cast<std::size_t>(std::lround(clamped));
}

/// One vote: voter index into the bin's voter table, the level voted for,
/// and the raw value (the final aggregate averages raw values so half-star
/// data is not quantized away).
struct Vote {
  std::size_t voter = 0;
  std::size_t level = 0;
  double value = 0.0;
};

/// All votes cast within one bin, gathered across every product.
struct BinBallot {
  std::vector<RaterId> voters;                   ///< ascending
  std::map<ProductId, std::vector<Vote>> votes;  ///< per product, in order
  std::map<ProductId, std::size_t> counts;       ///< ratings per product
};

/// The weight <-> credibility fixed point over one bin's ballot. Returns
/// the per-voter weights after `iterations` rounds, all initialized to 1.
std::vector<double> solve_weights(const BinBallot& ballot,
                                  const RvConfig& config) {
  std::vector<double> weights(ballot.voters.size(), 1.0);
  std::vector<double> vote_count(ballot.voters.size(), 0.0);
  for (const auto& [id, votes] : ballot.votes) {
    for (const Vote& v : votes) vote_count[v.voter] += 1.0;
  }
  for (std::size_t it = 0; it < config.iterations; ++it) {
    // Credibility of level l on product p: smoothed share of voter weight
    // that chose l.
    std::vector<double> next(ballot.voters.size(), 0.0);
    for (const auto& [id, votes] : ballot.votes) {
      std::array<double, kLevels> level_weight{};
      double total = 0.0;
      for (const Vote& v : votes) {
        level_weight[v.level] += weights[v.voter];
        total += weights[v.voter];
      }
      const double denom =
          total + config.smoothing * static_cast<double>(kLevels);
      for (const Vote& v : votes) {
        const double credibility =
            (level_weight[v.level] + config.smoothing) / denom;
        next[v.voter] += credibility;
      }
    }
    // A voter's new weight is the mean credibility of the levels they
    // chose — high when they keep voting with the (weighted) consensus.
    for (std::size_t i = 0; i < next.size(); ++i) {
      weights[i] = vote_count[i] > 0.0 ? next[i] / vote_count[i] : 1.0;
    }
  }
  return weights;
}

/// Gathers the ballot for `bin` from every product stream, indexing voters
/// in ascending RaterId order (two passes: collect ids, then votes), so
/// the result is independent of product iteration interleaving.
template <typename ProductOf>
BinBallot gather_ballot(const std::vector<ProductId>& ids,
                        const ProductOf& product_of, const Interval& bin) {
  BinBallot ballot;
  std::map<RaterId, std::size_t> index;
  for (ProductId id : ids) {
    detail::visit_in(product_of(id), bin, [&](const rating::Rating& r) {
      index.emplace(r.rater, 0);
    });
  }
  ballot.voters.reserve(index.size());
  for (auto& [rater, slot] : index) {
    slot = ballot.voters.size();
    ballot.voters.push_back(rater);
  }
  for (ProductId id : ids) {
    std::vector<Vote>& votes = ballot.votes[id];
    std::size_t& count = ballot.counts[id];
    detail::visit_in(product_of(id), bin, [&](const rating::Rating& r) {
      votes.push_back(Vote{index.at(r.rater), level_of(r.value), r.value});
      ++count;
    });
  }
  return ballot;
}

template <typename ProductOf>
AggregateSeries rv_aggregate(const std::vector<ProductId>& ids,
                             const ProductOf& product_of,
                             const Interval& span, double bin_days,
                             const RvConfig& config) {
  AggregateSeries series;
  if (span.empty()) return series;
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);
  for (ProductId id : ids) series.products.emplace(id, ProductSeries{});

  for (const Interval& bin : bins) {
    const BinBallot ballot = gather_ballot(ids, product_of, bin);
    const std::vector<double> weights = solve_weights(ballot, config);
    for (ProductId id : ids) {
      AggregatePoint point;
      point.bin = bin;
      const std::vector<Vote>& votes = ballot.votes.at(id);
      point.used = ballot.counts.at(id);
      double weight_sum = 0.0;
      double weighted_value = 0.0;
      double plain_sum = 0.0;
      for (const Vote& v : votes) {
        weight_sum += weights[v.voter];
        weighted_value += weights[v.voter] * v.value;
        plain_sum += v.value;
      }
      if (weight_sum > 0.0) {
        point.value = weighted_value / weight_sum;
      } else if (!votes.empty()) {
        point.value = plain_sum / static_cast<double>(votes.size());
      }
      series.products.at(id).push_back(point);
    }
  }
  return series;
}

}  // namespace

RvScheme::RvScheme(RvConfig config) : config_(config) {
  RAB_EXPECTS(config_.iterations >= 1);
  RAB_EXPECTS(config_.smoothing > 0.0);
}

std::string RvScheme::identity() const {
  std::ostringstream id;
  id.precision(std::numeric_limits<double>::max_digits10);
  id << name() << "(it=" << config_.iterations
     << ",smooth=" << config_.smoothing << ')';
  return id.str();
}

AggregateSeries RvScheme::aggregate(const rating::Dataset& data,
                                    double bin_days) const {
  const std::vector<ProductId> ids = data.product_ids();
  return rv_aggregate(
      ids,
      [&](ProductId id) -> const rating::ProductRatings& {
        return data.product(id);
      },
      data.span(), bin_days, config_);
}

AggregateSeries RvScheme::aggregate_overlay(
    const rating::DatasetOverlay& data, double bin_days,
    const AggregateSeries* /*fair_baseline*/) const {
  // Voter weights couple products within a bin, so the fair baseline is
  // not reusable per product — every product re-aggregates through the
  // merged views (still zero-copy).
  const std::vector<ProductId> ids = data.product_ids();
  return rv_aggregate(
      ids,
      [&](ProductId id) -> const rating::OverlayProduct& {
        return data.product(id);
      },
      data.span(), bin_days, config_);
}

}  // namespace rab::aggregation
