// Collusion-guard wrapper: any aggregation scheme plus a squad-level
// trust discount (the defense half of the collusion scenario).
//
// The guard runs trust::find_collusion_groups over the dataset, folds the
// detected groups into a beta-model TrustManager as suspicious evidence
// (trust::apply_collusion_discount), and removes the ratings of every
// rater whose discounted trust falls below `removal_trust` before
// delegating to the wrapped scheme. Removed ratings are accounted in the
// per-bin `removed` counters, and products whose every rating was removed
// still report their (empty) series over the same bins.
//
// Two conservative fallbacks keep the wrapper inside the scheme contract:
//  - if removal would change the dataset span (a flagged rater's rating
//    defines a span edge), the discount is skipped for that evaluation —
//    bin boundaries must never move under the inner scheme's feet;
//  - on the overlay path, if a *base* (fair-side) rater is flagged, the
//    guard materializes and runs the Dataset path, which is the
//    bit-identity reference anyway.
#pragma once

#include <memory>

#include "aggregation/scheme.hpp"
#include "trust/collusion.hpp"

namespace rab::aggregation {

struct CollusionGuardConfig {
  trust::CollusionConfig collusion;
  /// Raters whose discounted trust drops below this are removed. The
  /// discount charges |group| suspicious observations, so a detected
  /// member of a minimum-size group (5) scores 1/7 ~ 0.14 < 0.25.
  double removal_trust = 0.25;
};

class CollusionGuardScheme final : public AggregationScheme {
 public:
  CollusionGuardScheme(std::unique_ptr<AggregationScheme> inner,
                       CollusionGuardConfig config = {});

  /// "<inner>+CG" — the spec accepted by aggregation::make_scheme.
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::string identity() const override;

  [[nodiscard]] AggregateSeries aggregate(const rating::Dataset& data,
                                          double bin_days) const override;

  [[nodiscard]] AggregateSeries aggregate_overlay(
      const rating::DatasetOverlay& data, double bin_days,
      const AggregateSeries* fair_baseline) const override;

  [[nodiscard]] const AggregationScheme& inner() const { return *inner_; }
  [[nodiscard]] const CollusionGuardConfig& config() const {
    return config_;
  }

 private:
  std::unique_ptr<AggregationScheme> inner_;
  CollusionGuardConfig config_;
};

}  // namespace rab::aggregation
