#include "aggregation/median_scheme.hpp"

#include "aggregation/overlay_support.hpp"
#include "stats/descriptive.hpp"

namespace rab::aggregation {

namespace {

ProductSeries median_points(const auto& stream,
                            const std::vector<Interval>& bins) {
  ProductSeries points;
  points.reserve(bins.size());
  for (const Interval& bin : bins) {
    std::vector<double> values;
    detail::visit_in(stream, bin, [&](const rating::Rating& r) {
      values.push_back(r.value);
    });
    AggregatePoint point;
    point.bin = bin;
    point.used = values.size();
    if (!values.empty()) point.value = stats::median(std::move(values));
    points.push_back(point);
  }
  return points;
}

}  // namespace

AggregateSeries MedianScheme::aggregate(const rating::Dataset& data,
                                        double bin_days) const {
  return detail::aggregate_independent(
      data, bin_days,
      [](const auto& stream, const auto& bins) {
        return median_points(stream, bins);
      });
}

AggregateSeries MedianScheme::aggregate_overlay(
    const rating::DatasetOverlay& data, double bin_days,
    const AggregateSeries* fair_baseline) const {
  return detail::aggregate_independent_overlay(
      data, bin_days, fair_baseline,
      [](const auto& stream, const auto& bins) {
        return median_points(stream, bins);
      });
}

}  // namespace rab::aggregation
