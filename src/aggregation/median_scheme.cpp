#include "aggregation/median_scheme.hpp"

#include "stats/descriptive.hpp"

namespace rab::aggregation {

AggregateSeries MedianScheme::aggregate(const rating::Dataset& data,
                                        double bin_days) const {
  AggregateSeries series;
  const Interval span = data.span();
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);

  for (ProductId id : data.product_ids()) {
    const rating::ProductRatings& stream = data.product(id);
    ProductSeries points;
    points.reserve(bins.size());
    for (const Interval& bin : bins) {
      const std::vector<rating::Rating> rs = stream.in_interval(bin);
      AggregatePoint point;
      point.bin = bin;
      point.used = rs.size();
      if (!rs.empty()) {
        std::vector<double> values;
        values.reserve(rs.size());
        for (const rating::Rating& r : rs) values.push_back(r.value);
        point.value = stats::median(std::move(values));
      }
      points.push_back(point);
    }
    series.products.emplace(id, std::move(points));
  }
  return series;
}

}  // namespace rab::aggregation
