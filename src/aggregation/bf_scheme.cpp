#include "aggregation/bf_scheme.hpp"

#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "stats/beta.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::aggregation {

namespace {

/// Cumulative positive/negative feedback amounts of one rater
/// (the (r, s) pair of the beta reputation model).
struct Feedback {
  double r = 0.0;
  double s = 0.0;

  void add_value(double rating_value) {
    const double x = rating_value / rating::kMaxRating;
    r += x;
    s += 1.0 - x;
  }
};

/// Majority reputation score of a bin: the median normalized rating of the
/// retained ratings. The median (rather than the beta mean) keeps the
/// majority's opinion where the majority actually sits — a burst of extreme
/// unfair ratings cannot drag the reference point toward itself and trigger
/// rejection of the honest majority.
double majority_score(const std::vector<rating::Rating>& rs,
                      const std::vector<bool>& rejected) {
  std::vector<double> xs;
  xs.reserve(rs.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (!rejected[i]) xs.push_back(rs[i].value / rating::kMaxRating);
  }
  if (xs.empty()) return 0.5;
  return stats::median(std::move(xs));
}

/// Whitby-style iterative filter. `individual[i]` is rater i's cumulative
/// feedback informing their opinion distribution (it already includes
/// rating i itself). `reference` optionally supplies the product's
/// established reputation (normalized) to use as the majority score — a
/// reference a same-bin burst of unfair ratings cannot drag; when absent
/// the bin's own median is used (and re-derived as ratings get rejected).
/// Returns per-rating rejected flags.
std::vector<bool> filter_bin(const std::vector<rating::Rating>& rs,
                             const std::vector<Feedback>& individual,
                             double quantile, std::size_t max_rounds,
                             std::optional<double> reference = std::nullopt) {
  RAB_EXPECTS(individual.size() == rs.size());
  std::vector<bool> rejected(rs.size(), false);
  if (rs.size() < 2) return rejected;

  // The acceptance band of each rating is fixed across filter rounds (only
  // the majority score moves), so compute the quantiles once.
  std::vector<std::pair<double, double>> bands;
  bands.reserve(rs.size());
  for (const Feedback& fb : individual) {
    const stats::Beta opinion(1.0 + fb.r, 1.0 + fb.s);
    bands.emplace_back(opinion.quantile(quantile),
                       opinion.quantile(1.0 - quantile));
  }

  for (std::size_t round = 0; round < max_rounds; ++round) {
    const double m =
        reference ? *reference : majority_score(rs, rejected);
    bool changed = false;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rejected[i]) continue;
      // The rater is judged unfair when the majority's score is implausible
      // under the rater's own opinion distribution (the "1% rule").
      if (m < bands[i].first || m > bands[i].second) {
        rejected[i] = true;
        changed = true;
      }
    }
    if (!changed || reference) break;  // fixed reference: one pass decides
  }
  return rejected;
}

/// The whole BF aggregation, generic over Dataset / DatasetOverlay (both
/// expose span / product_ids / product(id).in_interval). The scheme is
/// history-coupled across bins, so the overlay path recomputes every
/// product; its win is skipping the dataset copy, not per-product reuse.
template <typename Data>
AggregateSeries bf_aggregate(const Data& data, double bin_days,
                             const BfConfig& config) {
  AggregateSeries series;
  const Interval span = data.span();
  const std::vector<Interval> bins =
      make_bins(span.begin, span.end, bin_days);

  // A rater's opinion distribution is about one product (Whitby's filter
  // is per-target): feedback accumulates causally across bins but keyed by
  // (rater, product). A rater repeatedly trashing one product sharpens
  // their beta and gets filtered there; their ratings elsewhere are judged
  // on their own.
  using Key = std::pair<std::int64_t, std::int64_t>;
  std::map<Key, Feedback> history;
  auto key_of = [](const rating::Rating& r) {
    return Key{r.rater.value(), r.product.value()};
  };
  const std::vector<ProductId> ids = data.product_ids();
  for (ProductId id : ids) series.products.emplace(id, ProductSeries{});

  // Each product's previous filtered aggregate serves as the reputation
  // reference for the next bin's filter.
  std::map<ProductId, double> reputation;

  for (const Interval& bin : bins) {
    std::map<Key, Feedback> next_history = history;
    for (ProductId id : ids) {
      const std::vector<rating::Rating> rs =
          data.product(id).in_interval(bin);

      std::vector<Feedback> individual;
      individual.reserve(rs.size());
      for (const rating::Rating& r : rs) {
        Feedback fb;
        if (const auto it = history.find(key_of(r)); it != history.end()) {
          fb = it->second;
        }
        fb.add_value(r.value);
        individual.push_back(fb);
      }

      std::optional<double> reference;
      if (const auto it = reputation.find(id); it != reputation.end()) {
        reference = it->second;
      }
      const std::vector<bool> rejected = filter_bin(
          rs, individual, config.quantile, config.max_rounds, reference);

      AggregatePoint point;
      point.bin = bin;
      stats::Welford acc;
      for (std::size_t i = 0; i < rs.size(); ++i) {
        // All ratings, kept or rejected, extend the rater's record; only
        // retained ones feed the aggregate.
        next_history[key_of(rs[i])].add_value(rs[i].value);
        if (rejected[i]) {
          ++point.removed;
        } else {
          acc.add(rs[i].value);
        }
      }
      point.used = acc.count();
      if (point.used > 0) {
        point.value = acc.mean();
        reputation[id] = point.value / rating::kMaxRating;
      }
      series.products.at(id).push_back(point);
    }
    history = std::move(next_history);
  }
  return series;
}

}  // namespace

BfScheme::BfScheme(BfConfig config) : config_(config) {
  RAB_EXPECTS(config_.quantile > 0.0 && config_.quantile < 0.5);
  RAB_EXPECTS(config_.max_rounds >= 1);
}

std::vector<std::size_t> BfScheme::rejected_indices(
    const std::vector<rating::Rating>& rs) const {
  // Stateless variant: each rater's opinion is informed only by their own
  // ratings inside this bin, so repeating the same extreme value sharpens
  // (narrows) their beta and exposes them to the majority test.
  std::unordered_map<RaterId, Feedback> per_rater;
  for (const rating::Rating& r : rs) per_rater[r.rater].add_value(r.value);

  std::vector<Feedback> individual;
  individual.reserve(rs.size());
  for (const rating::Rating& r : rs) individual.push_back(per_rater[r.rater]);

  const std::vector<bool> rejected =
      filter_bin(rs, individual, config_.quantile, config_.max_rounds);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < rejected.size(); ++i) {
    if (rejected[i]) out.push_back(i);
  }
  return out;
}

std::string BfScheme::identity() const {
  std::ostringstream id;
  id.precision(std::numeric_limits<double>::max_digits10);
  id << name() << "(q=" << config_.quantile
     << ",rounds=" << config_.max_rounds << ')';
  return id.str();
}

AggregateSeries BfScheme::aggregate(const rating::Dataset& data,
                                    double bin_days) const {
  return bf_aggregate(data, bin_days, config_);
}

AggregateSeries BfScheme::aggregate_overlay(
    const rating::DatasetOverlay& data, double bin_days,
    const AggregateSeries* /*fair_baseline*/) const {
  return bf_aggregate(data, bin_days, config_);
}

}  // namespace rab::aggregation
