// Rating aggregation scheme interface.
//
// A scheme consumes a whole dataset and produces, per product, the
// aggregated rating score over consecutive time bins (the challenge used
// 30-day bins). Trust-based schemes evolve rater trust across the bins, so
// aggregation is defined at dataset granularity, not per-window.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "rating/dataset.hpp"
#include "rating/overlay.hpp"
#include "util/day.hpp"

namespace rab::aggregation {

/// Aggregated score of one product over one time bin.
struct AggregatePoint {
  Interval bin;
  double value = 0.0;     ///< aggregated rating; meaningless if used == 0
  std::size_t used = 0;   ///< ratings contributing after filtering
  std::size_t removed = 0;///< ratings filtered out as unfair
};

/// Scores of one product over all bins, in time order.
using ProductSeries = std::vector<AggregatePoint>;

/// Scores for every product.
struct AggregateSeries {
  std::map<ProductId, ProductSeries> products;

  [[nodiscard]] const ProductSeries& of(ProductId id) const;
};

/// Abstract rating aggregation scheme (SA / BF / P).
class AggregationScheme {
 public:
  virtual ~AggregationScheme() = default;

  AggregationScheme() = default;
  AggregationScheme(const AggregationScheme&) = delete;
  AggregationScheme& operator=(const AggregationScheme&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Stable identity of this scheme *instance*: name plus every
  /// configuration parameter that can change aggregation output. Two
  /// schemes with equal identity must aggregate identically; caches (the
  /// MP fair-baseline cache) key on it. Defaults to name() for
  /// configuration-free schemes.
  [[nodiscard]] virtual std::string identity() const { return name(); }

  /// Aggregates `data` over consecutive `bin_days` bins spanning the
  /// dataset. Bins are aligned to the dataset span's start.
  [[nodiscard]] virtual AggregateSeries aggregate(const rating::Dataset& data,
                                                  double bin_days) const = 0;

  /// Aggregates an overlay dataset (fair base + attack extras) without
  /// materializing the combined Dataset. Must be bit-identical to
  /// aggregate(data.materialize(), bin_days); the default falls back to
  /// exactly that, and every built-in scheme overrides it with a
  /// view-based path.
  ///
  /// `fair_baseline`, when non-null, is this scheme's aggregate of
  /// data.base() over the same bins (the MP metric's cached fair series).
  /// Schemes whose products aggregate independently (SA, median, entropy)
  /// reuse it for untouched products instead of recomputing them;
  /// history-coupled schemes (BF, P) ignore it.
  [[nodiscard]] virtual AggregateSeries aggregate_overlay(
      const rating::DatasetOverlay& data, double bin_days,
      const AggregateSeries* fair_baseline = nullptr) const;
};

/// Mean of the ratings of `rs` (unweighted); used = rs.size().
AggregatePoint plain_average(const Interval& bin,
                             const std::vector<rating::Rating>& rs);

}  // namespace rab::aggregation
