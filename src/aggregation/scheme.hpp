// Rating aggregation scheme interface.
//
// A scheme consumes a whole dataset and produces, per product, the
// aggregated rating score over consecutive time bins (the challenge used
// 30-day bins). Trust-based schemes evolve rater trust across the bins, so
// aggregation is defined at dataset granularity, not per-window.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "rating/dataset.hpp"
#include "util/day.hpp"

namespace rab::aggregation {

/// Aggregated score of one product over one time bin.
struct AggregatePoint {
  Interval bin;
  double value = 0.0;     ///< aggregated rating; meaningless if used == 0
  std::size_t used = 0;   ///< ratings contributing after filtering
  std::size_t removed = 0;///< ratings filtered out as unfair
};

/// Scores of one product over all bins, in time order.
using ProductSeries = std::vector<AggregatePoint>;

/// Scores for every product.
struct AggregateSeries {
  std::map<ProductId, ProductSeries> products;

  [[nodiscard]] const ProductSeries& of(ProductId id) const;
};

/// Abstract rating aggregation scheme (SA / BF / P).
class AggregationScheme {
 public:
  virtual ~AggregationScheme() = default;

  AggregationScheme() = default;
  AggregationScheme(const AggregationScheme&) = delete;
  AggregationScheme& operator=(const AggregationScheme&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Aggregates `data` over consecutive `bin_days` bins spanning the
  /// dataset. Bins are aligned to the dataset span's start.
  [[nodiscard]] virtual AggregateSeries aggregate(const rating::Dataset& data,
                                                  double bin_days) const = 0;
};

/// Mean of the ratings of `rs` (unweighted); used = rs.size().
AggregatePoint plain_average(const Interval& bin,
                             const std::vector<rating::Rating>& rs);

}  // namespace rab::aggregation
