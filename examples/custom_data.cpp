// Bringing your own data: export a dataset to CSV, read it back (stand-in
// for loading real production ratings), run the P-scheme's detection
// pipeline over it, and print a suspicious-rater report — the workflow an
// operator of a real rating site would use.
//
//   $ ./custom_data ratings.csv     # writes then re-reads ratings.csv
#include <algorithm>
#include <cstdio>
#include <vector>

#include "aggregation/p_scheme.hpp"
#include "challenge/challenge.hpp"
#include "challenge/participants.hpp"
#include "rating/io.hpp"

int main(int argc, char** argv) {
  using namespace rab;
  const std::string path = argc > 1 ? argv[1] : "/tmp/rab_ratings.csv";

  // Stand-in for production data: a challenge dataset with one embedded
  // attack, exported to CSV. Replace this block with your own exporter.
  const challenge::Challenge challenge = challenge::Challenge::make_default();
  const challenge::ParticipantPopulation population(challenge, 41);
  const challenge::Submission attack =
      population.make(challenge::StrategyKind::kNaiveSpread, 2);
  rating::write_csv_file(path, challenge.apply(attack));
  std::printf("wrote dataset with an embedded attack to %s\n", path.c_str());

  // --- From here on: the operator's side. Load, analyze, report. ---
  const rating::Dataset data = rating::read_csv_file(path);
  std::printf("loaded %zu ratings across %zu products\n",
              data.total_ratings(), data.product_count());

  const aggregation::PScheme p;
  aggregation::PDiagnostics diagnostics;
  (void)p.aggregate_detailed(data, 30.0, &diagnostics);

  // Rank raters by final trust; report the least trusted.
  struct RaterReport {
    RaterId rater;
    double trust;
    double flagged;
  };
  std::vector<RaterReport> reports;
  for (RaterId rater : data.rater_ids()) {
    reports.push_back(RaterReport{rater, diagnostics.trust.trust(rater),
                                  diagnostics.trust.failures(rater)});
  }
  std::sort(reports.begin(), reports.end(),
            [](const RaterReport& a, const RaterReport& b) {
              return a.trust < b.trust;
            });

  std::printf("\nleast trusted raters (bottom 15):\n");
  int attacker_hits = 0;
  int listed = 0;
  for (const RaterReport& r : reports) {
    if (listed >= 15) break;
    const bool is_attacker = r.rater.value() >= 1'000'000;
    if (is_attacker) ++attacker_hits;
    std::printf("  rater %-8lld trust %.3f (%.0f ratings flagged)%s\n",
                static_cast<long long>(r.rater.value()), r.trust, r.flagged,
                is_attacker ? "  <- planted attacker" : "");
    ++listed;
  }
  std::printf("\n%d of the %d least-trusted raters are planted attackers.\n",
              attacker_hits, listed);
  return 0;
}
