// Detector anatomy: inject an attack into one product and dump every
// indicator curve (MC / H-ARC / L-ARC / HC / ME) plus the suspicious
// intervals as CSV, ready for plotting.
//
//   $ ./detector_curves > curves.csv
//
// Shows how to drive the detectors directly (below the aggregation-scheme
// level) — the workflow for anyone tuning a new detector.
#include <cstdio>

#include "detectors/integrator.hpp"
#include "rating/fair_generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace rab;

void dump_curve(const char* name, const signal::Curve& curve) {
  for (const auto& point : curve) {
    std::printf("curve,%s,%.4f,%.6f\n", name, point.time, point.value);
  }
}

void dump_intervals(const char* name,
                    const std::vector<Interval>& intervals) {
  for (const Interval& iv : intervals) {
    std::printf("suspicious,%s,%.4f,%.4f\n", name, iv.begin, iv.end);
  }
}

}  // namespace

int main() {
  using namespace rab;

  // One product of fair history.
  rating::FairDataConfig config;
  config.product_count = 1;
  config.history_days = 150.0;
  rating::ProductRatings stream =
      rating::FairDataGenerator(config).generate_product(ProductId(1));

  // Inject a downgrade burst: 50 one-star ratings over days 60-75.
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    rating::Rating r;
    r.time = rng.uniform(60.0, 75.0);
    r.value = 1.0;
    r.rater = RaterId(1'000'000 + i);
    r.product = ProductId(1);
    r.unfair = true;
    stream.add(r);
  }

  const detectors::DetectorIntegrator integrator;
  const detectors::IntegrationResult result = integrator.analyze(stream);

  std::printf("# kind,detector,time/begin,value/end\n");
  dump_curve("MC", result.mc.curve);
  dump_curve("H-ARC", result.harc.curve);
  dump_curve("L-ARC", result.larc.curve);
  dump_curve("HC", result.hc.curve);
  dump_curve("ME", result.me.curve);
  dump_intervals("MC", result.mc.suspicious);
  dump_intervals("H-ARC", result.harc.suspicious);
  dump_intervals("L-ARC", result.larc.suspicious);
  dump_intervals("HC", result.hc.suspicious);
  dump_intervals("ME", result.me.suspicious);

  // Ground-truth check printed as a trailing comment.
  std::size_t unfair = 0;
  std::size_t caught = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (!stream.at(i).unfair) continue;
    ++unfair;
    if (result.suspicious[i]) ++caught;
  }
  std::printf("# integrator flagged %zu of %zu unfair ratings\n", caught,
              unfair);
  return 0;
}
