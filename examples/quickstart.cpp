// Quickstart: generate a rating challenge, craft one attack with the
// unfair-rating generator, and score it against the three aggregation
// schemes.
//
//   $ ./quickstart
//
// Walks through the library's main entry points in ~50 lines: Challenge,
// AttackProfile, AttackGenerator, and MpMetric.
#include <cstdio>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "challenge/challenge.hpp"
#include "core/attack_generator.hpp"

int main() {
  using namespace rab;

  // 1. A challenge: 9 products of synthetic fair ratings, 50 attacker-
  //    controlled raters, boost products 2 & 3, downgrade products 1 & 4.
  const challenge::Challenge challenge = challenge::Challenge::make_default();
  std::printf("challenge: %zu products, %zu fair ratings, window [%.0f, %.0f)\n",
              challenge.fair().product_count(),
              challenge.fair().total_ratings(),
              challenge.config().window.begin,
              challenge.config().window.end);

  // 2. One attack: medium bias, large variance, one-and-a-half months —
  //    the region the paper found strongest against signal-based defenses.
  core::AttackProfile profile;
  profile.bias = -2.3;
  profile.sigma = 1.2;
  profile.duration_days = 45.0;

  const core::AttackGenerator generator(challenge, /*seed=*/1);
  const challenge::Submission attack = generator.generate(profile, 0);
  std::printf("attack: %zu unfair ratings (%s)\n", attack.ratings.size(),
              attack.label.c_str());

  // 3. Score the attack: manipulation power under each aggregation scheme.
  const aggregation::SaScheme sa;
  const aggregation::BfScheme bf;
  const aggregation::PScheme p;
  for (const aggregation::AggregationScheme* scheme :
       {static_cast<const aggregation::AggregationScheme*>(&sa),
        static_cast<const aggregation::AggregationScheme*>(&bf),
        static_cast<const aggregation::AggregationScheme*>(&p)}) {
    const challenge::MpResult mp = challenge.evaluate(attack, *scheme);
    std::printf("  scheme %-2s -> overall MP %.3f (product 1: %.3f)\n",
                scheme->name().c_str(), mp.overall,
                mp.per_product.at(ProductId(1)));
  }

  std::printf(
      "\nThe P-scheme (signal-based detection + trust) should report the\n"
      "smallest MP: it removes or downweights most of the unfair ratings.\n");
  return 0;
}
