// Evaluating your own defense: implement the AggregationScheme interface
// for a custom aggregator (here: a per-bin trimmed mean) and stress it with
// the attack generator — the workflow the paper proposes for "evaluating
// current and future rating aggregation systems".
//
//   $ ./defense_evaluation
#include <algorithm>
#include <cstdio>
#include <vector>

#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "challenge/challenge.hpp"
#include "core/attack_generator.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace rab;

/// A simple robust baseline: per bin, drop the lowest and highest `trim`
/// fraction of ratings and average the rest.
class TrimmedMeanScheme final : public aggregation::AggregationScheme {
 public:
  explicit TrimmedMeanScheme(double trim = 0.1) : trim_(trim) {}

  [[nodiscard]] std::string name() const override { return "TRIM"; }

  [[nodiscard]] aggregation::AggregateSeries aggregate(
      const rating::Dataset& data, double bin_days) const override {
    aggregation::AggregateSeries series;
    const Interval span = data.span();
    const std::vector<Interval> bins =
        make_bins(span.begin, span.end, bin_days);
    for (ProductId id : data.product_ids()) {
      aggregation::ProductSeries points;
      for (const Interval& bin : bins) {
        const auto rs = data.product(id).in_interval(bin);
        std::vector<double> values;
        for (const auto& r : rs) values.push_back(r.value);
        std::sort(values.begin(), values.end());
        const auto cut =
            static_cast<std::size_t>(trim_ * static_cast<double>(values.size()));
        aggregation::AggregatePoint point;
        point.bin = bin;
        if (values.size() > 2 * cut) {
          stats::Welford acc;
          for (std::size_t i = cut; i < values.size() - cut; ++i) {
            acc.add(values[i]);
          }
          point.value = acc.mean();
          point.used = acc.count();
          point.removed = 2 * cut;
        }
        points.push_back(point);
      }
      series.products.emplace(id, std::move(points));
    }
    return series;
  }

 private:
  double trim_;
};

}  // namespace

int main() {
  using namespace rab;

  const challenge::Challenge challenge = challenge::Challenge::make_default();
  const core::AttackGenerator generator(challenge, /*seed=*/3);

  const TrimmedMeanScheme trimmed(0.15);
  const aggregation::SaScheme sa;
  const aggregation::PScheme p;

  // Let the generator LEARN the best attack against each defense
  // (Procedure 2), then report the residual manipulation power.
  core::AttackProfile timing;
  timing.duration_days = 50.0;
  core::RegionSearchOptions options;
  options.trials = 4;
  options.max_rounds = 4;

  std::printf("# defense,learned_bias,learned_sigma,worst_case_mp\n");
  for (const aggregation::AggregationScheme* scheme :
       {static_cast<const aggregation::AggregationScheme*>(&sa),
        static_cast<const aggregation::AggregationScheme*>(&trimmed),
        static_cast<const aggregation::AggregationScheme*>(&p)}) {
    const core::RegionSearchResult search =
        generator.optimize(*scheme, options, timing);
    std::printf("%s,%.2f,%.2f,%.3f\n", scheme->name().c_str(),
                search.best_bias, search.best_sigma, search.best_mp);
  }

  std::printf(
      "\nA trimmed mean resists extreme-value floods but, like every\n"
      "majority-rule defense, passes moderate-bias attacks through; the\n"
      "signal-based P-scheme bounds the worst case the tightest.\n");
  return 0;
}
