// Streaming deployment: feed ratings to the OnlineMonitor one at a time
// (the way a live site ingests them) and watch alarms fire as a planted
// attack crosses epoch boundaries.
//
//   $ ./streaming_monitor
#include <algorithm>
#include <cstdio>
#include <vector>

#include "detectors/online_monitor.hpp"
#include "rating/fair_generator.hpp"
#include "util/rng.hpp"

int main() {
  using namespace rab;

  // Fair history for two products plus a downgrade burst on product 1
  // around days 60-72.
  rating::FairDataConfig config;
  config.product_count = 2;
  config.history_days = 150.0;
  rating::Dataset data = rating::FairDataGenerator(config).generate();
  Rng rng(21);
  std::vector<rating::Rating> attack;
  for (int i = 0; i < 50; ++i) {
    rating::Rating r;
    r.time = rng.uniform(60.0, 72.0);
    r.value = 0.0;
    r.rater = RaterId(1'000'000 + i);
    r.product = ProductId(1);
    r.unfair = true;
    attack.push_back(r);
  }
  data = data.with_added(attack);

  // Merge all products into one time-ordered feed.
  std::vector<rating::Rating> feed;
  for (ProductId id : data.product_ids()) {
    const auto& rs = data.product(id).rows();
    feed.insert(feed.end(), rs.begin(), rs.end());
  }
  std::sort(feed.begin(), feed.end(), rating::ByTime{});

  detectors::OnlineConfig monitor_config;
  monitor_config.epoch_days = 15.0;  // analyze twice a month
  detectors::OnlineMonitor monitor(monitor_config);

  std::size_t reported = 0;
  for (const rating::Rating& r : feed) {
    monitor.ingest(r);
    // Print alarms as they appear.
    while (reported < monitor.alarms().size()) {
      const detectors::Alarm& alarm = monitor.alarms()[reported++];
      std::printf(
          "day %6.1f  ALARM product %lld: %zu ratings marked in "
          "[%.1f, %.1f)\n",
          alarm.raised_at, static_cast<long long>(alarm.product.value()),
          alarm.marked_ratings, alarm.interval.begin, alarm.interval.end);
    }
  }
  monitor.flush();
  while (reported < monitor.alarms().size()) {
    const detectors::Alarm& alarm = monitor.alarms()[reported++];
    std::printf("flush     ALARM product %lld: %zu ratings marked\n",
                static_cast<long long>(alarm.product.value()),
                alarm.marked_ratings);
  }

  std::printf("\ningested %zu ratings, %zu alarms total\n",
              monitor.ingested(), monitor.alarms().size());
  double attacker_trust = 0.0;
  for (int i = 0; i < 50; ++i) {
    attacker_trust += monitor.trust().trust(RaterId(1'000'000 + i));
  }
  std::printf("mean attacker trust after the run: %.3f (honest ~0.8)\n",
              attacker_trust / 50.0);
  return 0;
}
