// Replaying the rating challenge: generate a synthetic participant
// population (standing in for the 2007 challenge's 251 human submissions),
// validate every entry against the contest rules, and print the
// leaderboard under the P-scheme — plus where each strategy archetype
// lands. Optionally exports the fair dataset to CSV.
//
//   $ ./challenge_replay [fair_data.csv]
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "aggregation/p_scheme.hpp"
#include "challenge/participants.hpp"
#include "rating/io.hpp"

int main(int argc, char** argv) {
  using namespace rab;

  const challenge::Challenge challenge = challenge::Challenge::make_default();
  if (argc > 1) {
    rating::write_csv_file(argv[1], challenge.fair());
    std::printf("fair dataset exported to %s\n", argv[1]);
  }

  const challenge::ParticipantPopulation population(challenge, /*seed=*/29);
  const std::vector<challenge::Submission> submissions =
      population.generate(60);  // a fast replay; the benches run all 251

  const aggregation::PScheme p;
  struct Entry {
    double mp;
    std::string label;
  };
  std::vector<Entry> board;
  std::map<std::string, double> best_by_strategy;
  for (const challenge::Submission& submission : submissions) {
    // evaluate() validates against the contest rules and throws on a
    // violation; the population generator always produces legal entries.
    const double mp = challenge.evaluate(submission, p).overall;
    board.push_back(Entry{mp, submission.label});
    const std::string strategy =
        submission.label.substr(0, submission.label.rfind('-'));
    best_by_strategy[strategy] =
        std::max(best_by_strategy[strategy], mp);
  }
  std::sort(board.begin(), board.end(),
            [](const Entry& a, const Entry& b) { return a.mp > b.mp; });

  std::printf("leaderboard (P-scheme defense), top 10 of %zu:\n",
              board.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(10, board.size()); ++i) {
    std::printf("  %2zu. %-22s MP %.3f\n", i + 1, board[i].label.c_str(),
                board[i].mp);
  }

  std::printf("\nbest MP per strategy archetype:\n");
  for (const auto& [strategy, mp] : best_by_strategy) {
    std::printf("  %-16s %.3f\n", strategy.c_str(), mp);
  }
  std::printf(
      "\nExpected: naive archetypes near the bottom; variance-inflated\n"
      "medium-bias attacks (high-variance, manual-jitter) at the top.\n");
  return 0;
}
