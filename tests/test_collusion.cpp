// Tests for collusion-group discovery.
#include <gtest/gtest.h>

#include <set>

#include "challenge/collusion.hpp"
#include "challenge/participants.hpp"
#include "challenge/squad.hpp"
#include "cluster/single_linkage.hpp"
#include "rating/fair_generator.hpp"
#include "rating/overlay.hpp"
#include "trust/trust_manager.hpp"
#include "util/error.hpp"

namespace rab::challenge {
namespace {

TEST(ConnectedComponents, BasicGraph) {
  // 0-1, 1-2 form one component; 3 isolated; 4-5 another.
  const std::vector<cluster::Edge> edges{{0, 1}, {1, 2}, {4, 5}};
  const cluster::Clustering c =
      cluster::connected_components(edges, 6);
  EXPECT_EQ(c.cluster_count, 3u);
  EXPECT_EQ(c.labels[0], c.labels[1]);
  EXPECT_EQ(c.labels[1], c.labels[2]);
  EXPECT_NE(c.labels[0], c.labels[3]);
  EXPECT_EQ(c.labels[4], c.labels[5]);
}

TEST(ConnectedComponents, EdgeOutOfRangeThrows) {
  const std::vector<cluster::Edge> edges{{0, 7}};
  EXPECT_THROW(cluster::connected_components(edges, 3), Error);
}

TEST(Collusion, RejectsBadConfig) {
  rating::Dataset data;
  CollusionConfig config;
  config.min_group = 1;
  EXPECT_THROW(find_collusion_groups(data, config), Error);
  config = {};
  config.link_score = 0.0;
  EXPECT_THROW(find_collusion_groups(data, config), Error);
}

TEST(Collusion, EmptyDataset) {
  rating::Dataset data;
  EXPECT_TRUE(find_collusion_groups(data).empty());
}

TEST(Collusion, FairDataHasNoLargeGroups) {
  rating::FairDataConfig config;
  config.product_count = 6;
  config.history_days = 150.0;
  const rating::Dataset data =
      rating::FairDataGenerator(config).generate();
  const auto groups = find_collusion_groups(data);
  // Honest raters rate independently; coincidental 5-cliques of co-rating
  // agreement should not appear.
  EXPECT_TRUE(groups.empty());
}

TEST(Collusion, PlantedSquadRecovered) {
  const Challenge c = Challenge::make_default(12);
  const ParticipantPopulation population(c, 5);
  // A burst squad: 50 raters hitting 4 products in the same short window
  // with near-identical values — maximal coordination.
  const Submission attack = population.make(StrategyKind::kNaiveExtreme, 0);
  const rating::Dataset data = c.apply(attack);

  const auto groups = find_collusion_groups(data);
  ASSERT_FALSE(groups.empty());
  const CollusionGroup& top = groups.front();
  // The biggest group should be (mostly) the squad.
  std::size_t attackers_in_group = 0;
  for (RaterId rater : top.raters) {
    if (rater.value() >= c.config().attacker_id_base) ++attackers_in_group;
  }
  EXPECT_GE(attackers_in_group, 40u);
  EXPECT_GE(static_cast<double>(attackers_in_group) /
                static_cast<double>(top.raters.size()),
            0.8);
  EXPECT_GT(top.mean_pair_score, 0.5);
}

TEST(Collusion, SpreadSquadStillLinksThroughSharedTargets) {
  const Challenge c = Challenge::make_default(13);
  const ParticipantPopulation population(c, 5);
  const Submission attack =
      population.make(StrategyKind::kModerateBias, 1);
  const rating::Dataset data = c.apply(attack);

  CollusionConfig config;
  config.time_window = 20.0;  // wider window for a month-long attack
  const auto groups = find_collusion_groups(data, config);
  ASSERT_FALSE(groups.empty());
  std::size_t attackers_in_top = 0;
  for (RaterId rater : groups.front().raters) {
    if (rater.value() >= c.config().attacker_id_base) ++attackers_in_top;
  }
  EXPECT_GE(attackers_in_top, 25u);
}

TEST(Collusion, GroupsSortedBySizeDescending) {
  const Challenge c = Challenge::make_default(14);
  const ParticipantPopulation population(c, 5);
  const rating::Dataset data =
      c.apply(population.make(StrategyKind::kNaiveSpread, 2));
  CollusionConfig config;
  config.time_window = 30.0;
  const auto groups = find_collusion_groups(data, config);
  for (std::size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GE(groups[i - 1].raters.size(), groups[i].raters.size());
  }
}

TEST(Collusion, MinGroupFiltersSmallComponents) {
  const Challenge c = Challenge::make_default(15);
  const ParticipantPopulation population(c, 5);
  const rating::Dataset data =
      c.apply(population.make(StrategyKind::kNaiveExtreme, 3));
  CollusionConfig config;
  config.min_group = 60;  // larger than the squad
  EXPECT_TRUE(find_collusion_groups(data, config).empty());
}

// ---------------------------------------------------------------------
// Precision/recall on planted SquadGenerator squads (the coordinated
// attacks the tournament actually runs), including the Sybil-churn case
// where each member's footprint splits across two ids.

struct SquadQuality {
  double precision = 0.0;  ///< flagged raters that really are squad ids
  double recall = 0.0;     ///< squad ids that got flagged
};

SquadQuality squad_quality(const Challenge& c,
                           const std::vector<CollusionGroup>& groups) {
  std::set<RaterId> flagged;
  for (const CollusionGroup& g : groups) {
    flagged.insert(g.raters.begin(), g.raters.end());
  }
  std::size_t true_positive = 0;
  for (RaterId rater : flagged) {
    if (rater.value() >= c.config().attacker_id_base) ++true_positive;
  }
  SquadQuality q;
  if (!flagged.empty()) {
    q.precision = static_cast<double>(true_positive) /
                  static_cast<double>(flagged.size());
  }
  // Recall denominator: the personas. A churned member's pre-churn
  // ratings still carry its persona, so the persona stays detectable.
  q.recall = static_cast<double>(true_positive) /
             static_cast<double>(c.config().attack_raters);
  return q;
}

TEST(CollusionSquad, PlantedSquadPrecisionRecall) {
  const Challenge c = Challenge::make_default(21);
  const SquadGenerator generator(c, 21);
  SquadConfig config;
  config.squad_size = c.config().attack_raters;
  config.pre_days = 30.0;
  config.strike_offset_days = 35.0;
  config.strike_days = 30.0;
  config.bias = -3.0;
  config.sigma = 0.3;
  const rating::Dataset data =
      c.apply(generator.generate(config, /*stream=*/0));

  CollusionConfig cc;
  cc.time_window = 10.0;  // strike spans a month; widen the agreement net
  const auto groups = find_collusion_groups(data, cc);
  ASSERT_FALSE(groups.empty());
  const SquadQuality q = squad_quality(c, groups);
  EXPECT_GE(q.precision, 0.9);
  EXPECT_GE(q.recall, 0.8);
}

TEST(CollusionSquad, SybilChurnStillCaught) {
  const Challenge c = Challenge::make_default(22);
  const SquadGenerator generator(c, 22);
  SquadConfig config;
  config.squad_size = c.config().attack_raters;
  config.pre_days = 30.0;
  config.strike_offset_days = 35.0;
  config.strike_days = 30.0;
  config.bias = -3.0;
  config.sigma = 0.3;
  config.churn_rate = 0.5;  // half the squad swaps to a fresh id mid-strike
  const rating::Dataset data =
      c.apply(generator.generate(config, /*stream=*/0));

  CollusionConfig cc;
  cc.time_window = 10.0;
  const auto groups = find_collusion_groups(data, cc);
  ASSERT_FALSE(groups.empty());
  const SquadQuality q = squad_quality(c, groups);
  // Churn fragments footprints (a sybil id has only post-switch strike
  // ratings), so recall over the personas may dip — but the co-rating
  // graph still links whoever keeps enough shared targets.
  EXPECT_GE(q.precision, 0.9);
  EXPECT_GE(q.recall, 0.6);
}

TEST(CollusionSquad, OverlayGroupsMatchMaterialized) {
  const Challenge c = Challenge::make_default(23);
  const SquadGenerator generator(c, 23);
  SquadConfig config;
  config.squad_size = c.config().attack_raters;
  config.pre_days = 30.0;
  config.strike_offset_days = 35.0;
  config.strike_days = 30.0;
  config.bias = -3.0;
  config.sigma = 0.3;
  config.churn_rate = 0.3;
  const Submission attack = generator.generate(config, /*stream=*/0);

  const rating::DatasetOverlay overlay(c.metric().fair(), attack.ratings);
  const rating::Dataset materialized = c.apply(attack);

  CollusionConfig cc;
  cc.time_window = 10.0;
  const auto via_overlay = find_collusion_groups(overlay, cc);
  const auto via_dataset = find_collusion_groups(materialized, cc);
  ASSERT_EQ(via_overlay.size(), via_dataset.size());
  for (std::size_t i = 0; i < via_overlay.size(); ++i) {
    EXPECT_EQ(via_overlay[i].raters, via_dataset[i].raters);
    EXPECT_DOUBLE_EQ(via_overlay[i].mean_pair_score,
                     via_dataset[i].mean_pair_score);
  }
}

TEST(CollusionSquad, DiscountDropsGroupMembersBelowRemoval) {
  const Challenge c = Challenge::make_default(24);
  const SquadGenerator generator(c, 24);
  SquadConfig config;
  config.squad_size = c.config().attack_raters;
  config.pre_days = 30.0;
  config.strike_offset_days = 35.0;
  config.strike_days = 30.0;
  config.bias = -3.0;
  config.sigma = 0.3;
  const rating::Dataset data =
      c.apply(generator.generate(config, /*stream=*/0));

  CollusionConfig cc;
  cc.time_window = 10.0;
  const auto groups = find_collusion_groups(data, cc);
  ASSERT_FALSE(groups.empty());

  trust::TrustManager trust;
  trust::apply_collusion_discount(trust, groups);
  // Charging each member of an n-clique n suspicious epochs drives its
  // beta trust to ~1/(n+2); with min_group 5 that is below any sane
  // removal threshold.
  for (RaterId rater : groups.front().raters) {
    EXPECT_LT(trust.trust(rater), 0.25);
  }
}

}  // namespace
}  // namespace rab::challenge
