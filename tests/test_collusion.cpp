// Tests for collusion-group discovery.
#include <gtest/gtest.h>

#include <set>

#include "challenge/collusion.hpp"
#include "challenge/participants.hpp"
#include "cluster/single_linkage.hpp"
#include "rating/fair_generator.hpp"
#include "util/error.hpp"

namespace rab::challenge {
namespace {

TEST(ConnectedComponents, BasicGraph) {
  // 0-1, 1-2 form one component; 3 isolated; 4-5 another.
  const std::vector<cluster::Edge> edges{{0, 1}, {1, 2}, {4, 5}};
  const cluster::Clustering c =
      cluster::connected_components(edges, 6);
  EXPECT_EQ(c.cluster_count, 3u);
  EXPECT_EQ(c.labels[0], c.labels[1]);
  EXPECT_EQ(c.labels[1], c.labels[2]);
  EXPECT_NE(c.labels[0], c.labels[3]);
  EXPECT_EQ(c.labels[4], c.labels[5]);
}

TEST(ConnectedComponents, EdgeOutOfRangeThrows) {
  const std::vector<cluster::Edge> edges{{0, 7}};
  EXPECT_THROW(cluster::connected_components(edges, 3), Error);
}

TEST(Collusion, RejectsBadConfig) {
  rating::Dataset data;
  CollusionConfig config;
  config.min_group = 1;
  EXPECT_THROW(find_collusion_groups(data, config), Error);
  config = {};
  config.link_score = 0.0;
  EXPECT_THROW(find_collusion_groups(data, config), Error);
}

TEST(Collusion, EmptyDataset) {
  rating::Dataset data;
  EXPECT_TRUE(find_collusion_groups(data).empty());
}

TEST(Collusion, FairDataHasNoLargeGroups) {
  rating::FairDataConfig config;
  config.product_count = 6;
  config.history_days = 150.0;
  const rating::Dataset data =
      rating::FairDataGenerator(config).generate();
  const auto groups = find_collusion_groups(data);
  // Honest raters rate independently; coincidental 5-cliques of co-rating
  // agreement should not appear.
  EXPECT_TRUE(groups.empty());
}

TEST(Collusion, PlantedSquadRecovered) {
  const Challenge c = Challenge::make_default(12);
  const ParticipantPopulation population(c, 5);
  // A burst squad: 50 raters hitting 4 products in the same short window
  // with near-identical values — maximal coordination.
  const Submission attack = population.make(StrategyKind::kNaiveExtreme, 0);
  const rating::Dataset data = c.apply(attack);

  const auto groups = find_collusion_groups(data);
  ASSERT_FALSE(groups.empty());
  const CollusionGroup& top = groups.front();
  // The biggest group should be (mostly) the squad.
  std::size_t attackers_in_group = 0;
  for (RaterId rater : top.raters) {
    if (rater.value() >= c.config().attacker_id_base) ++attackers_in_group;
  }
  EXPECT_GE(attackers_in_group, 40u);
  EXPECT_GE(static_cast<double>(attackers_in_group) /
                static_cast<double>(top.raters.size()),
            0.8);
  EXPECT_GT(top.mean_pair_score, 0.5);
}

TEST(Collusion, SpreadSquadStillLinksThroughSharedTargets) {
  const Challenge c = Challenge::make_default(13);
  const ParticipantPopulation population(c, 5);
  const Submission attack =
      population.make(StrategyKind::kModerateBias, 1);
  const rating::Dataset data = c.apply(attack);

  CollusionConfig config;
  config.time_window = 20.0;  // wider window for a month-long attack
  const auto groups = find_collusion_groups(data, config);
  ASSERT_FALSE(groups.empty());
  std::size_t attackers_in_top = 0;
  for (RaterId rater : groups.front().raters) {
    if (rater.value() >= c.config().attacker_id_base) ++attackers_in_top;
  }
  EXPECT_GE(attackers_in_top, 25u);
}

TEST(Collusion, GroupsSortedBySizeDescending) {
  const Challenge c = Challenge::make_default(14);
  const ParticipantPopulation population(c, 5);
  const rating::Dataset data =
      c.apply(population.make(StrategyKind::kNaiveSpread, 2));
  CollusionConfig config;
  config.time_window = 30.0;
  const auto groups = find_collusion_groups(data, config);
  for (std::size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GE(groups[i - 1].raters.size(), groups[i].raters.size());
  }
}

TEST(Collusion, MinGroupFiltersSmallComponents) {
  const Challenge c = Challenge::make_default(15);
  const ParticipantPopulation population(c, 5);
  const rating::Dataset data =
      c.apply(population.make(StrategyKind::kNaiveExtreme, 3));
  CollusionConfig config;
  config.min_group = 60;  // larger than the squad
  EXPECT_TRUE(find_collusion_groups(data, config).empty());
}

}  // namespace
}  // namespace rab::challenge
